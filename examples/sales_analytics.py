"""A domain-specific example: an ad-hoc sales analytics workload.

The paper motivates query compilation with in-memory, CPU-bound analytics.
This example plays the role of an application developer who

1. loads a warehouse-style star schema (the TPC-H-shaped generator),
2. formulates three management reports as query plans,
3. compiles them once through the five-level stack, and
4. runs them repeatedly (as a dashboard would), comparing against the
   interpreter to show both the identical answers and the latency gap.

Run with:  python examples/sales_analytics.py
"""
import time

from repro.codegen.compiler import QueryCompiler
from repro.dsl.expr import col, date, like
from repro.dsl.qplan import Agg, AggSpec, HashJoin, Limit, Scan, Select, Sort
from repro.engine.volcano import execute
from repro.stack.configs import build_config
from repro.tpch.dbgen import generate_catalog


def revenue_by_nation():
    """Yearly revenue per customer nation for orders placed in 1995."""
    orders_1995 = Select(Scan("orders"),
                         (col("o_orderdate") >= date("1995-01-01"))
                         & (col("o_orderdate") <= date("1995-12-31")))
    joined = HashJoin(
        HashJoin(
            HashJoin(Scan("customer"), orders_1995, col("c_custkey"), col("o_custkey")),
            Scan("lineitem"), col("o_orderkey"), col("l_orderkey")),
        Scan("nation"), col("c_nationkey"), col("n_nationkey"))
    grouped = Agg(joined, [("nation", col("n_name"))],
                  [AggSpec("sum", col("l_extendedprice") * (1 - col("l_discount")),
                           "revenue"),
                   AggSpec("count", None, "line_items")])
    return Sort(grouped, [(col("revenue"), "desc")])


def top_urgent_customers():
    """Ten customers with the highest urgent-order spend."""
    urgent = Select(Scan("orders"), like(col("o_orderpriority"), "1-URGENT%"))
    joined = HashJoin(Scan("customer"), urgent, col("c_custkey"), col("o_custkey"))
    grouped = Agg(joined, [("c_name", col("c_name"))],
                  [AggSpec("sum", col("o_totalprice"), "spend"),
                   AggSpec("count", None, "orders")])
    return Limit(Sort(grouped, [(col("spend"), "desc")]), 10)


def shipping_delay_profile():
    """Average receipt delay per ship mode (committed vs received dates)."""
    late = Select(Scan("lineitem"), col("l_receiptdate") > col("l_commitdate"))
    return Sort(
        Agg(late, [("l_shipmode", col("l_shipmode"))],
            [AggSpec("count", None, "late_lines"),
             AggSpec("avg", col("l_receiptdate") - col("l_commitdate"), "avg_delay_code")]),
        [(col("late_lines"), "desc")])


REPORTS = {
    "revenue_by_nation": revenue_by_nation,
    "top_urgent_customers": top_urgent_customers,
    "shipping_delay_profile": shipping_delay_profile,
}


def main() -> None:
    print("Loading the warehouse (scale factor 0.002) ...")
    catalog = generate_catalog(scale_factor=0.002, seed=7)
    config = build_config("dblab-5")
    compiler = QueryCompiler(config.stack, config.flags)

    for name, build in REPORTS.items():
        plan = build()
        compiled = compiler.compile(plan, catalog, name)
        aux = compiled.prepare(catalog)

        start = time.perf_counter()
        reference = execute(plan, catalog)
        interpreted_ms = (time.perf_counter() - start) * 1000

        start = time.perf_counter()
        rows = compiled.run(catalog, aux)
        compiled_ms = (time.perf_counter() - start) * 1000

        assert len(rows) == len(reference)
        print(f"\n=== {name} ===")
        print(f"  interpreter: {interpreted_ms:7.1f} ms   compiled: {compiled_ms:6.1f} ms   "
              f"({interpreted_ms / max(compiled_ms, 1e-6):.1f}x)")
        for row in rows[:5]:
            print("   ", {k: (round(v, 2) if isinstance(v, float) else v)
                          for k, v in row.items()})
        if len(rows) > 5:
            print(f"    ... {len(rows) - 5} more rows")


if __name__ == "__main__":
    main()
