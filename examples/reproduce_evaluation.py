"""Reproduce the paper's evaluation (Table 3, Table 4, Figures 8 and 9).

Generates a deterministic TPC-H-shaped database, runs every query under every
engine configuration and prints the paper's tables/figures as text.

Usage:
    python examples/reproduce_evaluation.py                  # quick subset
    python examples/reproduce_evaluation.py --full           # all 22 queries
    python examples/reproduce_evaluation.py --sf 0.01        # larger data
    python examples/reproduce_evaluation.py --skip-interpreter
"""
import argparse

from repro.bench.harness import BenchmarkHarness, ENGINE_NAMES
from repro.bench.loc import format_table4, loc_by_package
from repro.tpch.dbgen import generate_catalog
from repro.tpch.queries import QUERY_NAMES

QUICK_QUERIES = ["Q1", "Q3", "Q4", "Q5", "Q6", "Q10", "Q12", "Q13", "Q14", "Q18"]


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--sf", type=float, default=0.002, help="TPC-H scale factor")
    parser.add_argument("--seed", type=int, default=20160626)
    parser.add_argument("--full", action="store_true", help="run all 22 queries")
    parser.add_argument("--repetitions", type=int, default=2)
    parser.add_argument("--skip-interpreter", action="store_true",
                        help="skip the (slow) Volcano interpreter column")
    args = parser.parse_args()

    print(f"Generating TPC-H data at scale factor {args.sf} ...")
    catalog = generate_catalog(scale_factor=args.sf, seed=args.seed)
    for table in catalog.table_names():
        print(f"  {table:10s} {catalog.size(table):>8} rows")
    print()

    engines = [name for name in ENGINE_NAMES
               if not (args.skip_interpreter and name == "interpreter")]
    harness = BenchmarkHarness(catalog, repetitions=args.repetitions, engines=engines)
    queries = QUERY_NAMES if args.full else QUICK_QUERIES

    # ------------------------------------------------------------------
    print("=" * 70)
    print("Table 3 — query execution time in milliseconds")
    print("=" * 70)
    results = harness.table3(queries=queries, engines=engines)
    print(harness.format_table3(results, engines))
    print()
    if "interpreter" in engines:
        speedups = harness.speedups(results, "interpreter", "dblab-5")
        print(f"dblab-5 vs interpreter: geometric-mean speedup "
              f"{harness.geometric_mean(speedups.values()):.1f}x")
    speedups = harness.speedups(results, "dblab-2", "dblab-5")
    print(f"dblab-5 vs dblab-2 (two-level stack): geometric-mean speedup "
          f"{harness.geometric_mean(speedups.values()):.1f}x")
    speedups = harness.speedups(results, "dblab-3", "dblab-4")
    print(f"dblab-4 vs dblab-3 (adding the data-structure-aware level): "
          f"geometric-mean speedup {harness.geometric_mean(speedups.values()):.2f}x")
    print()

    # ------------------------------------------------------------------
    print("=" * 70)
    print("Figure 8 — peak memory of the generated code (MB, dblab-5)")
    print("=" * 70)
    memory = harness.figure8_memory(queries=queries)
    for name in queries:
        print(f"  {name:4s} {memory[name].peak_memory_bytes / 1e6:8.2f} MB")
    print(f"  (loaded database: {catalog.memory_footprint() / 1e6:.2f} MB)")
    print()

    # ------------------------------------------------------------------
    print("=" * 70)
    print("Figure 9 — compilation time split (seconds, dblab-5)")
    print("=" * 70)
    split = harness.figure9_compilation(queries=queries)
    print(f"  {'query':6s}{'stack generation':>18s}{'python compile':>16s}{'lines':>8s}")
    for name in queries:
        data = split[name]
        print(f"  {name:6s}{data['generation']:>18.3f}{data['target_compile']:>16.4f}"
              f"{data['source_lines']:>8d}")
    print()

    # ------------------------------------------------------------------
    print("=" * 70)
    print("Table 4 — lines of code per transformation")
    print("=" * 70)
    print(format_table4())
    print()
    print("Lines of code per package:")
    for package, lines in loc_by_package().items():
        print(f"  {package:12s} {lines:>6d}")


if __name__ == "__main__":
    main()
