"""Quickstart: build a database, write a plan, compile it through the DSL stack.

This walks through the paper's running example (Section 4 / Figure 4): count
the matches of a filtered join, compare the Volcano interpreter with the
compiled query, and look at the generated Python for different numbers of DSL
levels.

Run with:  python examples/quickstart.py
"""
from repro.codegen.compiler import QueryCompiler
from repro.dsl.expr import col
from repro.dsl.qplan import Agg, AggSpec, HashJoin, Scan, Select
from repro.engine.volcano import execute
from repro.stack.configs import build_config
from repro.storage.catalog import Catalog
from repro.storage.layouts import ColumnarTable
from repro.storage.schema import TableSchema, float_column, int_column, string_column


def build_database() -> Catalog:
    """Two tiny relations R(name, sid) and S(rid, val), as in the paper."""
    catalog = Catalog()
    r_schema = TableSchema("R", [int_column("r_id"), string_column("r_name"),
                                 int_column("r_sid")], primary_key=("r_id",))
    s_schema = TableSchema("S", [int_column("s_id"),
                                 int_column("s_rid", references=("R", "r_sid")),
                                 float_column("s_val")], primary_key=("s_id",))
    catalog.register(ColumnarTable(r_schema, {
        "r_id": [1, 2, 3, 4],
        "r_name": ["R1", "R2", "R1", "R3"],
        "r_sid": [10, 20, 30, 40],
    }))
    catalog.register(ColumnarTable(s_schema, {
        "s_id": [100, 101, 102, 103, 104],
        "s_rid": [10, 30, 10, 40, 30],
        "s_val": [1.0, 2.0, 3.0, 4.0, 5.0],
    }))
    return catalog


def build_plan():
    """SELECT COUNT(*) FROM R, S WHERE R.name = 'R1' AND R.sid = S.rid."""
    return Agg(
        HashJoin(
            Select(Scan("R"), col("r_name") == "R1"),
            Scan("S"),
            col("r_sid"), col("s_rid")),
        [], [AggSpec("count", None, "count")])


def main() -> None:
    catalog = build_database()
    plan = build_plan()

    print("Query plan (QPlan front end):")
    print(plan)
    print()

    print("Interpreted with the Volcano iterator engine:")
    print(" ", execute(plan, catalog))
    print()

    for config_name in ("dblab-2", "dblab-5"):
        config = build_config(config_name)
        compiler = QueryCompiler(config.stack, config.flags)
        compiled = compiler.compile(plan, catalog, "example_query")
        print(f"Compiled with the {config.levels}-level stack ({config_name}):")
        print(" ", compiled.run(catalog))
        print(f"  generated {compiled.source_lines} lines of Python "
              f"in {compiled.compile_seconds * 1000:.1f} ms")
        print("  phases:", " -> ".join(p.name for p in compiled.phases))
        print()

    config = build_config("dblab-5")
    compiled = QueryCompiler(config.stack, config.flags).compile(plan, catalog, "example_query")
    print("Generated Python of the five-level configuration:")
    print("-" * 60)
    print(compiled.source)


if __name__ == "__main__":
    main()
