"""Unit tests for the generic IR optimizations (DCE, folding, scalar replacement,
allocation hoisting, branchless booleans)."""

from repro.ir import IRBuilder, Const, make_program
from repro.ir.nodes import Sym
from repro.ir.traversal import count_ops
from repro.stack import CompilationContext, OptimizationFlags, SCALITE, C_PY
from repro.transforms.control_flow import BranchlessBooleans
from repro.transforms.dce import DeadCodeElimination
from repro.transforms.memory_hoisting import MemoryAllocationHoisting
from repro.transforms.partial_eval import PartialEvaluation
from repro.transforms.scalar_replacement import ScalarReplacement


def context():
    return CompilationContext(flags=OptimizationFlags())


class TestDeadCodeElimination:
    def test_removes_unused_pure_and_read_statements(self):
        b = IRBuilder()
        used = b.emit("add", [1, 2])
        b.emit("mul", [used, 10])            # unused pure
        arr = b.emit("array_new", [5])
        b.emit("array_get", [arr, 0])        # unused read
        program = make_program(b.finish(used), [], "ScaLite")
        cleaned = DeadCodeElimination(SCALITE).run(program, context())
        counts = count_ops(cleaned)
        assert "mul" not in counts
        assert "array_get" not in counts
        # the array itself becomes dead once its only reader is gone
        assert "array_new" not in counts

    def test_keeps_writes_to_escaping_objects_and_io(self):
        b = IRBuilder()
        lst = b.emit("list_new", [])
        b.emit("list_append", [lst, 1])
        b.emit("print_", [Const("hello")])
        # returning the list makes it escape: the append is observable
        program = make_program(b.finish(lst), [], "ScaLite")
        cleaned = DeadCodeElimination(SCALITE).run(program, context())
        counts = count_ops(cleaned)
        assert counts["list_append"] == 1
        assert counts["print_"] == 1
        assert counts["list_new"] == 1   # kept alive by the escape

    def test_removes_write_only_non_escaping_objects(self):
        b = IRBuilder()
        lst = b.emit("list_new", [])
        b.emit("list_append", [lst, 1])
        b.emit("print_", [Const("hello")])
        # the list never escapes and is never read: it dies with its writes
        program = make_program(b.finish(Const(0)), [], "ScaLite")
        cleaned = DeadCodeElimination(SCALITE).run(program, context())
        counts = count_ops(cleaned)
        assert "list_append" not in counts
        assert "list_new" not in counts
        assert counts["print_"] == 1

    def test_cleans_inside_loop_bodies(self):
        b = IRBuilder()
        acc = b.emit("var_new", [0])

        def body(i):
            b.emit("mul", [i, 3])   # dead inside the loop
            b.emit("var_write", [acc, b.emit("add", [b.emit("var_read", [acc]), i])])

        b.for_range(0, 10, body)
        program = make_program(b.finish(b.emit("var_read", [acc])), [], "ScaLite")
        cleaned = DeadCodeElimination(SCALITE).run(program, context())
        assert "mul" not in count_ops(cleaned)
        assert count_ops(cleaned)["var_write"] == 1

    def test_respects_disabled_flag(self):
        b = IRBuilder()
        keep = b.emit("add", [1, 2])
        b.emit("mul", [keep, 3])
        program = make_program(b.finish(keep), [], "ScaLite")
        dce = DeadCodeElimination(SCALITE)
        assert not dce.applies(CompilationContext(flags=OptimizationFlags.all_disabled()))


class TestPartialEvaluation:
    def test_folds_constant_arithmetic(self):
        b = IRBuilder()
        x = b.emit("add", [2, 3])
        y = b.emit("mul", [x, 4])
        program = make_program(b.finish(y), [], "ScaLite")
        folded = PartialEvaluation(SCALITE).run(program, context())
        folded = PartialEvaluation(SCALITE).run(folded, context())
        assert count_ops(folded) == {}
        assert folded.body.result == Const(20)

    def test_folds_comparisons_and_logic(self):
        b = IRBuilder()
        c = b.emit("lt", [1, 2])
        d = b.emit("and_", [c, Const(True)])
        program = make_program(b.finish(d), [], "ScaLite")
        folded = PartialEvaluation(SCALITE).run(program, context())
        folded = PartialEvaluation(SCALITE).run(folded, context())
        assert folded.body.result == Const(True)

    def test_division_by_zero_not_folded(self):
        b = IRBuilder()
        x = b.emit("div", [1, 0])
        program = make_program(b.finish(x), [], "ScaLite")
        folded = PartialEvaluation(SCALITE).run(program, context())
        assert "div" in count_ops(folded)

    def test_mod_by_zero_not_folded(self):
        """Folding `7 mod 0` must skip the fold, not raise at compile time."""
        b = IRBuilder()
        x = b.emit("mod", [7, 0])
        program = make_program(b.finish(x), [], "ScaLite")
        folded = PartialEvaluation(SCALITE).run(program, context())
        assert "mod" in count_ops(folded)

    def test_mismatched_constant_types_not_folded(self):
        b = IRBuilder()
        x = b.emit("div", [Const("text"), Const(3)])
        y = b.emit("neg", [Const("text")])
        b.emit("add", [x, y])
        program = make_program(b.finish(Const(0)), [], "ScaLite")
        folded = PartialEvaluation(SCALITE).run(program, context())
        counts = count_ops(folded)
        assert "div" in counts and "neg" in counts

    def test_non_constant_args_untouched(self):
        b = IRBuilder()
        v = b.emit("var_new", [1])
        x = b.emit("add", [b.emit("var_read", [v]), 2])
        program = make_program(b.finish(x), [], "ScaLite")
        folded = PartialEvaluation(SCALITE).run(program, context())
        assert "add" in count_ops(folded)

    def test_year_of_date_folding(self):
        b = IRBuilder()
        x = b.emit("year_of_date", [19980902])
        program = make_program(b.finish(x), [], "ScaLite")
        folded = PartialEvaluation(SCALITE).run(program, context())
        assert folded.body.result == Const(1998)


class TestScalarReplacement:
    def test_record_get_of_fresh_record_is_forwarded(self):
        b = IRBuilder()
        a = b.emit("add", [1, 2])
        rec = b.emit("record_new", [a, Const(7)], attrs={"fields": ("x", "y"),
                                                         "layout": "boxed"})
        read = b.emit("record_get", [rec], attrs={"field": "y"})
        out = b.emit("mul", [read, 2])
        program = make_program(b.finish(out), [], "ScaLite")
        replaced = ScalarReplacement(SCALITE).run(program, context())
        cleaned = DeadCodeElimination(SCALITE).run(replaced, context())
        counts = count_ops(cleaned)
        assert "record_get" not in counts
        assert "record_new" not in counts   # flattened away entirely

    def test_records_stored_in_structures_are_kept(self):
        b = IRBuilder()
        rec = b.emit("record_new", [Const(1)], attrs={"fields": ("x",), "layout": "boxed"})
        lst = b.emit("list_new", [])
        b.emit("list_append", [lst, rec])
        read = b.emit("record_get", [rec], attrs={"field": "x"})
        program = make_program(b.finish(read), [], "ScaLite")
        replaced = ScalarReplacement(SCALITE).run(program, context())
        cleaned = DeadCodeElimination(SCALITE).run(replaced, context())
        counts = count_ops(cleaned)
        assert counts["record_new"] == 1      # still stored in the list
        assert "record_get" not in counts     # but the read is forwarded


class TestMemoryHoisting:
    def test_hoists_table_access_and_pure_statements(self):
        db = Sym("db")
        b = IRBuilder()
        n = b.emit("table_size", [db], attrs={"table": "t"})
        col = b.emit("table_column", [db], attrs={"table": "t", "column": "c"})
        lst = b.emit("list_new", [])

        def body(i):
            b.emit("list_append", [lst, b.emit("array_get", [col, i])])

        b.for_range(0, n, body)
        program = make_program(b.finish(lst), [db], "ScaLite")
        hoisted = MemoryAllocationHoisting(SCALITE).run(program, context())
        hoisted_ops = {s.expr.op for s in hoisted.hoisted.stmts}
        assert "table_size" in hoisted_ops and "table_column" in hoisted_ops
        body_ops = {s.expr.op for s in hoisted.body.stmts}
        assert "list_new" in body_ops          # mutable state stays in the body
        assert "for_range" in body_ops

    def test_does_not_hoist_statements_depending_on_body_state(self):
        db = Sym("db")
        b = IRBuilder()
        v = b.emit("var_new", [1])
        r = b.emit("var_read", [v])
        x = b.emit("add", [r, 1])
        program = make_program(b.finish(x), [db], "ScaLite")
        hoisted = MemoryAllocationHoisting(SCALITE).run(program, context())
        assert all(s.expr.op != "add" for s in hoisted.hoisted.stmts)


class TestBranchlessBooleans:
    def test_boolean_and_becomes_bitwise(self):
        b = IRBuilder()
        v = b.emit("var_new", [1])
        r = b.emit("var_read", [v])
        c1 = b.emit("lt", [r, 10])
        c2 = b.emit("gt", [r, 0])
        both = b.emit("and_", [c1, c2])
        program = make_program(b.finish(both), [], "C.Py")
        rewritten = BranchlessBooleans(C_PY).run(program, context())
        counts = count_ops(rewritten)
        assert "band" in counts and "and_" not in counts

    def test_non_boolean_operands_left_alone(self):
        b = IRBuilder()
        v = b.emit("var_new", [1])
        r = b.emit("var_read", [v])
        both = b.emit("and_", [r, Const(5)])
        program = make_program(b.finish(both), [], "C.Py")
        rewritten = BranchlessBooleans(C_PY).run(program, context())
        assert "and_" in count_ops(rewritten)
