"""Unit tests for the push-engine pipelining lowering."""
import pytest

from repro.codegen.compiler import QueryCompiler
from repro.dsl import qplan as Q
from repro.dsl.expr import Col, col
from repro.engine.volcano import execute
from repro.ir.nodes import Program
from repro.ir.traversal import count_ops, iter_program_stmts, ops_used
from repro.stack import CompilationContext, SCALITE_MAP_LIST
from repro.stack.configs import build_config
from repro.transforms.pipelining import PipeliningError, PushPipelineLowering


def lower(plan, catalog, flags=None):
    lowering = PushPipelineLowering(SCALITE_MAP_LIST)
    context = CompilationContext(catalog=catalog,
                                 flags=flags or build_config("dblab-4").flags)
    return lowering.run(plan, context), context


def compile_and_run(plan, catalog, config_name="dblab-5"):
    config = build_config(config_name)
    compiled = QueryCompiler(config.stack, config.flags).compile(plan, catalog, "test")
    return compiled


def canon(rows):
    return sorted(tuple(sorted((k, repr(v)) for k, v in row.items())) for row in rows)


class TestLoweringStructure:
    def test_scan_becomes_bounded_loop(self, tiny_catalog):
        program, _ = lower(Q.Scan("R"), tiny_catalog)
        assert isinstance(program, Program)
        counts = count_ops(program)
        assert counts["for_range"] == 1
        assert counts["table_size"] == 1
        assert program.language == "ScaLite[Map, List]"

    def test_select_emits_conditional_inside_loop(self, tiny_catalog):
        program, _ = lower(Q.Select(Q.Scan("R"), col("r_id") > 2), tiny_catalog)
        assert count_ops(program)["if_"] >= 1

    def test_pipelining_produces_no_intermediate_lists_for_select_chain(self, tiny_catalog):
        """Fused selects share one loop: no materialisation between operators."""
        plan = Q.Select(Q.Select(Q.Scan("R"), col("r_id") > 1), col("r_sid") > 5)
        program, _ = lower(plan, tiny_catalog)
        counts = count_ops(program)
        assert counts["for_range"] == 1
        # only the query result list is ever allocated
        assert counts["list_new"] == 1

    def test_hash_join_uses_multimap(self, tiny_catalog):
        plan = Q.HashJoin(Q.Scan("R"), Q.Scan("S"), col("r_sid"), col("s_rid"))
        program, _ = lower(plan, tiny_catalog)
        used = ops_used(program)
        assert {"mmap_new", "mmap_add", "mmap_get", "list_foreach"} <= used

    def test_aggregate_uses_hashmap_agg(self, tiny_catalog):
        plan = Q.Agg(Q.Scan("S"), [("s_rid", col("s_rid"))],
                     [Q.AggSpec("sum", col("s_val"), "total")])
        program, _ = lower(plan, tiny_catalog)
        used = ops_used(program)
        assert {"hashmap_agg_new", "hashmap_agg_update", "hashmap_agg_foreach"} <= used

    def test_sort_key_must_be_plain_column(self, tiny_catalog):
        plan = Q.Sort(Q.Scan("S"), [(col("s_val") * 2, "asc")])
        with pytest.raises(PipeliningError):
            lower(plan, tiny_catalog)

    def test_requires_catalog(self, tiny_catalog):
        lowering = PushPipelineLowering(SCALITE_MAP_LIST)
        with pytest.raises(PipeliningError):
            lowering.run(Q.Scan("R"), CompilationContext(catalog=None))

    def test_dense_key_annotations_attached(self, tiny_catalog):
        """Key range facts flow to mmap_new as annotations (Section 3.3)."""
        plan = Q.HashJoin(Q.Scan("R"), Q.Scan("S"), col("r_sid"), col("s_rid"))
        program, _ = lower(plan, tiny_catalog)
        mmap_news = [s for s, _ in iter_program_stmts(program) if s.expr.op == "mmap_new"]
        assert len(mmap_news) == 1
        attrs = mmap_news[0].expr.attrs
        assert attrs["key_lo"] == 10 and attrs["key_hi"] == 40
        assert attrs["build_is_base"] is True

    def test_probe_in_range_detected_for_fk_pk_join(self):
        """A foreign-key probe against its referenced key shares the key domain."""
        from repro.storage.catalog import Catalog
        from repro.storage.layouts import ColumnarTable
        from repro.storage.schema import TableSchema, int_column
        catalog = Catalog()
        catalog.register(ColumnarTable(
            TableSchema("dept", [int_column("d_id")], primary_key=("d_id",)),
            {"d_id": [1, 2, 3]}))
        catalog.register(ColumnarTable(
            TableSchema("emp", [int_column("e_id"),
                                int_column("e_dept", references=("dept", "d_id"))],
                        primary_key=("e_id",)),
            {"e_id": [10, 11], "e_dept": [1, 3]}))
        plan = Q.HashJoin(Q.Scan("dept"), Q.Scan("emp"), col("d_id"), col("e_dept"))
        program, _ = lower(plan, catalog)
        attrs = [s for s, _ in iter_program_stmts(program)
                 if s.expr.op == "mmap_new"][0].expr.attrs
        assert attrs["probe_in_range"] is True
        assert attrs["unique"] is True

    def test_probe_guard_kept_without_foreign_key(self, tiny_catalog):
        """The tiny catalog has a dangling rid and no FK: the guard must stay."""
        plan = Q.HashJoin(Q.Scan("R"), Q.Scan("S"), col("r_sid"), col("s_rid"))
        program, _ = lower(plan, tiny_catalog)
        attrs = [s for s, _ in iter_program_stmts(program)
                 if s.expr.op == "mmap_new"][0].expr.attrs
        assert attrs["probe_in_range"] is False

    def test_partitioned_build_moves_to_hoisted_block(self, tiny_catalog):
        flags = build_config("dblab-4").flags
        plan = Q.HashJoin(Q.Select(Q.Scan("R"), col("r_name") == "R1"),
                          Q.Scan("S"), col("r_sid"), col("s_rid"))
        program, _ = lower(plan, tiny_catalog, flags)
        hoisted_ops = {s.expr.op for s in program.hoisted.stmts}
        assert "mmap_new" in hoisted_ops
        assert "for_range" in hoisted_ops
        # the filter is applied at probe time (Figure 7c), inside the body
        body_ops = ops_used(Program(body=program.body, params=program.params, language=""))
        assert "eq" in body_ops

    def test_no_partitioning_when_flag_disabled(self, tiny_catalog):
        flags = build_config("tpch-compliant").flags
        plan = Q.HashJoin(Q.Select(Q.Scan("R"), col("r_name") == "R1"),
                          Q.Scan("S"), col("r_sid"), col("s_rid"))
        program, _ = lower(plan, tiny_catalog, flags)
        assert not program.hoisted.stmts

    def test_boxed_records_without_scalar_replacement(self, tiny_catalog):
        flags = build_config("dblab-2").flags
        program, _ = lower(Q.Select(Q.Scan("R"), col("r_id") > 1), tiny_catalog, flags)
        counts = count_ops(program)
        assert counts["record_new"] >= 1
        assert counts["record_get"] >= 1


class TestLoweredSemantics:
    """The compiled plans must agree with the Volcano interpreter."""

    @pytest.mark.parametrize("config_name", ["dblab-2", "dblab-3", "dblab-4", "dblab-5",
                                             "tpch-compliant"])
    def test_join_aggregate_pipeline(self, tiny_catalog, config_name):
        plan = Q.Agg(
            Q.HashJoin(Q.Select(Q.Scan("R"), col("r_name") == "R1"),
                       Q.Scan("S"), col("r_sid"), col("s_rid")),
            [("r_name", col("r_name"))],
            [Q.AggSpec("sum", col("s_val"), "total"), Q.AggSpec("count", None, "n")])
        compiled = compile_and_run(plan, tiny_catalog, config_name)
        assert canon(compiled.run(tiny_catalog)) == canon(execute(plan, tiny_catalog))

    @pytest.mark.parametrize("kind", ["leftsemi", "leftanti", "leftouter"])
    def test_join_variants(self, tiny_catalog, kind):
        plan = Q.HashJoin(Q.Scan("R"), Q.Scan("S"), col("r_sid"), col("s_rid"), kind=kind)
        compiled = compile_and_run(plan, tiny_catalog)
        assert canon(compiled.run(tiny_catalog)) == canon(execute(plan, tiny_catalog))

    def test_join_with_sided_residual(self, tiny_catalog):
        plan = Q.HashJoin(Q.Scan("S"), Q.Scan("S", fields=("s_rid", "s_id")),
                          col("s_rid"), Col("s_rid"), kind="leftsemi",
                          residual=Col("s_id", "left") != Col("s_id", "right"))
        compiled = compile_and_run(plan, tiny_catalog)
        assert canon(compiled.run(tiny_catalog)) == canon(execute(plan, tiny_catalog))

    def test_nested_loop_join(self, tiny_catalog):
        plan = Q.NestedLoopJoin(Q.Scan("R"), Q.Scan("S"),
                                predicate=Col("r_sid", "left") < Col("s_rid", "right"))
        compiled = compile_and_run(plan, tiny_catalog)
        assert canon(compiled.run(tiny_catalog)) == canon(execute(plan, tiny_catalog))

    def test_sort_and_limit(self, tiny_catalog):
        plan = Q.Limit(Q.Sort(Q.Scan("S"), [(col("s_val"), "desc")]), 3)
        compiled = compile_and_run(plan, tiny_catalog)
        assert compiled.run(tiny_catalog) == execute(plan, tiny_catalog)

    def test_global_aggregate_with_having_free_group(self, tiny_catalog):
        plan = Q.Agg(Q.Scan("S"), [],
                     [Q.AggSpec("min", col("s_val"), "lo"),
                      Q.AggSpec("max", col("s_val"), "hi"),
                      Q.AggSpec("avg", col("s_val"), "mean")])
        compiled = compile_and_run(plan, tiny_catalog)
        assert canon(compiled.run(tiny_catalog)) == canon(execute(plan, tiny_catalog))

    def test_projection_with_computed_columns(self, tiny_catalog):
        plan = Q.Project(Q.Scan("S"), [("twice", col("s_val") * 2),
                                       ("shifted", col("s_rid") + 1)])
        compiled = compile_and_run(plan, tiny_catalog)
        assert canon(compiled.run(tiny_catalog)) == canon(execute(plan, tiny_catalog))

    def test_prepared_structures_are_reusable_across_runs(self, tiny_catalog):
        plan = Q.Agg(Q.HashJoin(Q.Scan("R"), Q.Scan("S"), col("r_sid"), col("s_rid")),
                     [], [Q.AggSpec("count", None, "n")])
        compiled = compile_and_run(plan, tiny_catalog, "dblab-5")
        aux = compiled.prepare(tiny_catalog)
        first = compiled.run(tiny_catalog, aux)
        second = compiled.run(tiny_catalog, aux)
        assert first == second == execute(plan, tiny_catalog)


class TestCatalogAccessLowering:
    """PrunedScan and IndexJoin lower onto the catalog's access layer."""

    def _pruned_plan(self):
        from repro.dsl.expr import date
        predicate = (col("l_shipdate") >= date("1994-01-01")) & \
            (col("l_shipdate") < date("1995-01-01"))
        return Q.PrunedScan(
            Q.Scan("lineitem", fields=("l_shipdate", "l_quantity")), predicate,
            (("l_shipdate", ">=", 19940101), ("l_shipdate", "<", 19950101)))

    def _index_plan(self, kind="inner"):
        return Q.IndexJoin(
            Q.Scan("orders", fields=("o_orderkey", "o_totalprice")),
            Q.Scan("lineitem", fields=("l_orderkey", "l_quantity")),
            col("o_orderkey"), col("l_orderkey"), kind=kind,
            index_table="orders", index_column="o_orderkey")

    def test_pruned_scan_loops_over_candidates(self, tpch_catalog):
        program, _ = lower(self._pruned_plan(), tpch_catalog,
                           build_config("dblab-5").flags)
        hoisted_ops = {s.expr.op for s in program.hoisted.stmts}
        assert "access_pruned_indices" in hoisted_ops
        counts = count_ops(program)
        assert counts["list_foreach"] >= 1
        assert "for_range" not in counts  # no full-table loop remains

    def test_pruned_scan_falls_back_without_the_flag(self, tpch_catalog):
        flags = build_config("dblab-5").flags.copy_with(catalog_access_layer=False)
        program, _ = lower(self._pruned_plan(), tpch_catalog, flags)
        assert "access_pruned_indices" not in ops_used(program)
        assert count_ops(program)["for_range"] >= 1

    def test_inner_index_join_probes_without_a_build(self, tpch_catalog):
        program, _ = lower(self._index_plan(), tpch_catalog,
                           build_config("dblab-5").flags)
        hoisted_ops = {s.expr.op for s in program.hoisted.stmts}
        assert "access_key_index" in hoisted_ops
        used = ops_used(program)
        assert "access_index_lookup" in used
        assert "mmap_new" not in used and "mmap_add" not in used

    def test_semi_index_join_marks_matches_in_a_set(self, tpch_catalog):
        program, _ = lower(self._index_plan("leftsemi"), tpch_catalog,
                           build_config("dblab-5").flags)
        used = ops_used(program)
        assert {"access_index_lookup", "set_new", "set_add",
                "set_contains"} <= used
        assert "mmap_new" not in used

    def test_leftouter_falls_back_to_the_hash_lowering(self, tpch_catalog):
        program, _ = lower(self._index_plan("leftouter"), tpch_catalog,
                           build_config("dblab-5").flags)
        used = ops_used(program)
        assert "access_index_lookup" not in used
        assert "mmap_new" in used or "array_new" in used

    @pytest.mark.parametrize("kind", ["inner", "leftsemi", "leftanti"])
    def test_index_join_rows_match_volcano(self, tpch_catalog, kind):
        plan = Q.Agg(self._index_plan(kind), [],
                     [Q.AggSpec("count", None, "n")])
        compiled = compile_and_run(plan, tpch_catalog)
        assert compiled.run(tpch_catalog) == execute(plan, tpch_catalog)

    def test_pruned_scan_rows_match_volcano(self, tpch_catalog):
        plan = Q.Agg(self._pruned_plan(), [],
                     [Q.AggSpec("sum", col("l_quantity"), "total"),
                      Q.AggSpec("count", None, "n")])
        compiled = compile_and_run(plan, tpch_catalog)
        assert canon(compiled.run(tpch_catalog)) == canon(execute(plan, tpch_catalog))
