"""Tests for unused-field removal, string dictionaries and data-structure
specialization (the level-specific transformations of the stack)."""
import pytest

from repro.codegen.compiler import QueryCompiler
from repro.dsl import qplan as Q
from repro.dsl.expr import col, in_list, like
from repro.engine.volcano import execute
from repro.ir.traversal import ops_used
from repro.stack import CompilationContext, SCALITE, SCALITE_MAP_LIST
from repro.stack.configs import build_config
from repro.transforms.field_removal import UnusedFieldRemoval
from repro.transforms.hashmap_specialization import HashTableSpecialization
from repro.transforms.pipelining import PushPipelineLowering
from repro.transforms.string_dictionary import StringDictionaries


def canon(rows):
    return sorted(tuple(sorted((k, repr(v)) for k, v in row.items())) for row in rows)


class TestUnusedFieldRemoval:
    def _plan(self):
        return Q.Agg(
            Q.HashJoin(Q.Select(Q.Scan("R"), col("r_name") == "R1"),
                       Q.Scan("S"), col("r_sid"), col("s_rid")),
            [], [Q.AggSpec("sum", col("s_val"), "total")])

    def test_scans_are_pruned_to_referenced_columns(self, tiny_catalog):
        context = CompilationContext(catalog=tiny_catalog,
                                     flags=build_config("dblab-4").flags)
        pruned = UnusedFieldRemoval().run(self._plan(), context)
        scans = {node.table: node for node in Q.walk(pruned) if isinstance(node, Q.Scan)}
        assert set(scans["R"].fields) == {"r_name", "r_sid"}
        assert set(scans["S"].fields) == {"s_rid", "s_val"}

    def test_pruning_preserves_results(self, tiny_catalog):
        context = CompilationContext(catalog=tiny_catalog,
                                     flags=build_config("dblab-4").flags)
        plan = self._plan()
        pruned = UnusedFieldRemoval().run(plan, context)
        assert canon(execute(pruned, tiny_catalog)) == canon(execute(plan, tiny_catalog))

    def test_semi_join_prunes_right_side_to_key_and_residual(self, tiny_catalog):
        plan = Q.HashJoin(Q.Scan("R"), Q.Scan("S"), col("r_sid"), col("s_rid"),
                          kind="leftsemi")
        context = CompilationContext(catalog=tiny_catalog,
                                     flags=build_config("dblab-4").flags)
        pruned = UnusedFieldRemoval().run(plan, context)
        right_scan = [n for n in Q.walk(pruned) if isinstance(n, Q.Scan) and n.table == "S"][0]
        assert right_scan.fields == ("s_rid",)

    def test_scan_never_pruned_to_zero_columns(self, tiny_catalog):
        plan = Q.Agg(Q.Scan("R"), [], [Q.AggSpec("count", None, "n")])
        context = CompilationContext(catalog=tiny_catalog,
                                     flags=build_config("dblab-4").flags)
        pruned = UnusedFieldRemoval().run(plan, context)
        scan = [n for n in Q.walk(pruned) if isinstance(n, Q.Scan)][0]
        assert len(scan.fields) == 1


class TestStringDictionaries:
    def _lowered(self, tiny_catalog, plan, catalog_access=False):
        flags = build_config("dblab-4").flags.copy_with(
            catalog_access_layer=catalog_access)
        context = CompilationContext(catalog=tiny_catalog, flags=flags)
        program = PushPipelineLowering(SCALITE_MAP_LIST).run(plan, context)
        return StringDictionaries().run(program, context), context

    def test_equality_predicate_rewritten_to_codes(self, tiny_catalog):
        plan = Q.Select(Q.Scan("R"), col("r_name") == "R1")
        program, context = self._lowered(tiny_catalog, plan)
        hoisted_ops = {s.expr.op for s in program.hoisted.stmts}
        assert {"strdict_build", "strdict_encode_column", "strdict_code"} <= hoisted_ops
        assert ("R", "r_name") in context.info["string_dictionary_columns"]

    def test_catalog_access_layer_serves_the_dictionary(self, tiny_catalog):
        """With the access layer on, nothing is built or encoded per query:
        the hoisted block fetches the catalog-resident dictionary and its
        shared code column."""
        plan = Q.Select(Q.Scan("R"), col("r_name") == "R1")
        program, context = self._lowered(tiny_catalog, plan, catalog_access=True)
        hoisted_ops = {s.expr.op for s in program.hoisted.stmts}
        assert {"access_strdict", "access_strdict_codes", "strdict_code"} <= hoisted_ops
        assert "strdict_build" not in hoisted_ops
        assert "strdict_encode_column" not in hoisted_ops
        assert ("R", "r_name") in context.info["string_dictionary_columns"]

    def test_prefix_predicate_uses_ordered_dictionary_range(self, tiny_catalog):
        plan = Q.Select(Q.Scan("R"), like(col("r_name"), "R%"))
        program, _ = self._lowered(tiny_catalog, plan)
        hoisted = [s for s in program.hoisted.stmts if s.expr.op == "strdict_build"]
        assert hoisted and hoisted[0].expr.attrs["ordered"] is True
        assert any(s.expr.op == "strdict_prefix_range" for s in program.hoisted.stmts)

    def test_prefix_predicate_on_the_catalog_dictionary(self, tiny_catalog):
        """Catalog dictionaries are always sorted, so prefix predicates use
        the access-layer range op (inclusive [lo, hi] contract)."""
        plan = Q.Select(Q.Scan("R"), like(col("r_name"), "R%"))
        program, _ = self._lowered(tiny_catalog, plan, catalog_access=True)
        hoisted_ops = {s.expr.op for s in program.hoisted.stmts}
        assert "access_prefix_range" in hoisted_ops
        assert "strdict_prefix_range" not in hoisted_ops

    def test_in_list_predicate_rewritten(self, tiny_catalog):
        plan = Q.Select(Q.Scan("R"), in_list(col("r_name"), ["R1", "R3"]))
        program, _ = self._lowered(tiny_catalog, plan)
        codes = [s for s in program.hoisted.stmts if s.expr.op == "strdict_code"]
        assert len(codes) == 2

    def test_numeric_predicates_untouched(self, tiny_catalog):
        plan = Q.Select(Q.Scan("R"), col("r_sid") == 10)
        program, _ = self._lowered(tiny_catalog, plan)
        assert not program.hoisted.stmts

    def test_results_preserved_end_to_end(self, tiny_catalog):
        plan = Q.Agg(Q.Select(Q.Scan("R"), col("r_name") == "R1"), [],
                     [Q.AggSpec("count", None, "n")])
        config = build_config("dblab-4")
        compiled = QueryCompiler(config.stack, config.flags).compile(plan, tiny_catalog, "sd")
        assert compiled.run(tiny_catalog) == execute(plan, tiny_catalog)
        assert ".build(" in compiled.source or \
            "_rt.catalog_dictionary(" in compiled.source

    def test_absent_constant_still_correct(self, tiny_catalog):
        """Comparing against a string that never occurs yields an always-false code."""
        plan = Q.Agg(Q.Select(Q.Scan("R"), col("r_name") == "NO_SUCH"), [],
                     [Q.AggSpec("count", None, "n")])
        config = build_config("dblab-4")
        compiled = QueryCompiler(config.stack, config.flags).compile(plan, tiny_catalog, "sd")
        assert canon(compiled.run(tiny_catalog)) == canon(execute(plan, tiny_catalog))


class TestHashTableSpecialization:
    def test_dense_base_build_becomes_bucket_array(self, tiny_catalog):
        plan = Q.Agg(Q.HashJoin(Q.Scan("R"), Q.Scan("S"), col("r_sid"), col("s_rid")),
                     [], [Q.AggSpec("count", None, "n")])
        flags = build_config("dblab-4").flags
        context = CompilationContext(catalog=tiny_catalog, flags=flags)
        program = PushPipelineLowering(SCALITE_MAP_LIST).run(plan, context)
        specialized = HashTableSpecialization(SCALITE).run(program, context)
        used = ops_used(specialized)
        assert "mmap_new" not in used
        assert "array_new" in used
        assert specialized.language == "ScaLite"

    def test_generic_keys_stay_on_generic_containers(self, tiny_catalog):
        """String join keys have no dense range: the GLib-substitute map survives."""
        plan = Q.HashJoin(Q.Scan("R"), Q.Scan("R", fields=("r_name",)),
                          col("r_name"), col("r_name"), kind="leftsemi")
        flags = build_config("dblab-4").flags
        context = CompilationContext(catalog=tiny_catalog, flags=flags)
        program = PushPipelineLowering(SCALITE_MAP_LIST).run(plan, context)
        specialized = HashTableSpecialization(SCALITE).run(program, context)
        assert "mmap_new" in ops_used(specialized)

    def test_specialization_disabled_by_flag(self, tiny_catalog):
        plan = Q.HashJoin(Q.Scan("R"), Q.Scan("S"), col("r_sid"), col("s_rid"))
        flags = build_config("tpch-compliant").flags.copy_with(hash_table_specialization=False)
        context = CompilationContext(catalog=tiny_catalog, flags=flags)
        program = PushPipelineLowering(SCALITE_MAP_LIST).run(plan, context)
        specialized = HashTableSpecialization(SCALITE).run(program, context)
        assert "mmap_new" in ops_used(specialized)
        assert specialized.language == "ScaLite"

    def test_dense_aggregation_uses_dense_table(self, tiny_catalog):
        plan = Q.Agg(Q.Scan("S"), [("s_id", col("s_id"))],
                     [Q.AggSpec("sum", col("s_val"), "total")])
        flags = build_config("dblab-4").flags
        context = CompilationContext(catalog=tiny_catalog, flags=flags)
        program = PushPipelineLowering(SCALITE_MAP_LIST).run(plan, context)
        specialized = HashTableSpecialization(SCALITE).run(program, context)
        used = ops_used(specialized)
        assert {"dense_agg_new", "dense_agg_update", "dense_agg_foreach"} <= used
        assert "hashmap_agg_new" not in used

    def test_unique_maps_deferred_for_five_level_stack(self, tiny_catalog):
        plan = Q.HashJoin(Q.Scan("R"), Q.Scan("S"), col("r_id"), col("s_id"))
        flags = build_config("dblab-5").flags
        context = CompilationContext(catalog=tiny_catalog, flags=flags)
        from repro.stack import SCALITE_LIST
        program = PushPipelineLowering(SCALITE_MAP_LIST).run(plan, context)
        deferred = HashTableSpecialization(
            SCALITE_LIST, defer_unique_to_list_level=True).run(program, context)
        assert "mmap_new" in ops_used(deferred)

    @pytest.mark.parametrize("config_name", ["dblab-4", "dblab-5"])
    def test_specialized_plans_agree_with_interpreter(self, tiny_catalog, config_name):
        plan = Q.Agg(
            Q.HashJoin(Q.Scan("R"), Q.Scan("S"), col("r_id"), col("s_id"),
                       kind="leftouter"),
            [("r_name", col("r_name"))],
            [Q.AggSpec("count", col("s_val"), "matched")])
        config = build_config(config_name)
        compiled = QueryCompiler(config.stack, config.flags).compile(plan, tiny_catalog, "x")
        assert canon(compiled.run(tiny_catalog)) == canon(execute(plan, tiny_catalog))
