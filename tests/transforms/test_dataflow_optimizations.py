"""Unit tests for the analysis-driven passes: dataflow folding and LICM."""

from repro.ir import IRBuilder, Const, make_program
from repro.ir.traversal import count_ops
from repro.stack import CompilationContext, OptimizationFlags, SCALITE
from repro.transforms.folding import DataflowFolding
from repro.transforms.licm import LoopInvariantHoisting


def context():
    return CompilationContext(flags=OptimizationFlags())


def _loop_body_ops(program):
    for stmt in program.body.stmts:
        if stmt.expr.op == "for_range":
            return [s.expr.op for s in stmt.expr.blocks[0].stmts]
    raise AssertionError("no for_range in program body")


class TestDataflowFolding:
    def test_provably_true_branch_unwraps_with_justification(self):
        b = IRBuilder()
        x = b.emit("add", [1, 2])
        cond = b.emit("lt", [x, 100])          # [3,3] < [100,100]: provable
        result = b.if_(cond, lambda: b.const(5), lambda: b.const(9))
        program = make_program(b.finish(result), [], "ScaLite")
        ctx = context()
        folded = DataflowFolding(SCALITE).run(program, ctx)
        counts = count_ops(folded)
        assert "if_" not in counts
        assert "lt" not in counts              # the predicate folded too
        assert isinstance(folded.body.result, Const)
        assert folded.body.result.value == 5
        justifications = ctx.info["dataflow_justifications"]
        assert any("provably true" in text for text in justifications.values())

    def test_unknown_predicate_is_left_alone(self):
        b = IRBuilder()
        lst = b.emit("list_new", [])
        n = b.emit("list_len", [lst])          # [0, +inf]: no verdict
        cond = b.emit("lt", [n, 100])
        program = make_program(b.finish(cond), [], "ScaLite")
        assert DataflowFolding(SCALITE).run(program, context()) is program

    def test_effectful_dropped_arm_blocks_the_unwrap(self):
        b = IRBuilder()
        x = b.emit("add", [1, 2])
        cond = b.emit("lt", [x, 100])
        b.if_(cond, lambda: b.emit("add", [x, 1]),
              lambda: b.emit("print_", [Const("side effect")]))
        program = make_program(b.finish(None), [], "ScaLite")
        folded = DataflowFolding(SCALITE).run(program, context())
        counts = count_ops(folded)
        # the predicate folds, but dropping an arm with I/O is not allowed
        assert counts["if_"] == 1
        assert counts["print_"] == 1

    def test_none_result_unwrap_skipped_when_sym_is_used(self):
        """Unwrapping a branch whose arm yields None would substitute a None
        literal into the consumer; the folder keeps the branch instead."""
        b = IRBuilder()
        x = b.emit("add", [1, 2])
        cond = b.emit("lt", [x, 100])
        def then_arm():
            b.emit("add", [x, 1])              # emits, returns no result

        branch = b.if_(cond, then_arm)
        b.emit("print_", [branch])
        program = make_program(b.finish(None), [], "ScaLite")
        folded = DataflowFolding(SCALITE).run(program, context())
        assert count_ops(folded)["if_"] == 1


class TestLoopInvariantHoisting:
    def test_invariant_binding_hoists_in_front_of_the_loop(self):
        b = IRBuilder()
        out = b.emit("list_new", [], hint="out")
        x = b.emit("add", [2, 3], hint="x")    # [5,5], non-null

        def body(i):
            y = b.emit("add", [x, 7], hint="y")
            b.emit("list_append", [out, y])

        b.for_range(0, 100, body)
        program = make_program(b.finish(out), [], "ScaLite")
        hoisted = LoopInvariantHoisting(SCALITE).run(program, context())
        assert _loop_body_ops(hoisted) == ["list_append"]
        # the hoisted binding keeps its symbol, just moves to the outer block
        outer_hints = [s.sym.hint for s in hoisted.body.stmts]
        assert "y" in outer_hints

    def test_index_dependent_binding_stays_inside(self):
        b = IRBuilder()
        out = b.emit("list_new", [], hint="out")

        def body(i):
            y = b.emit("add", [i, 7])
            b.emit("list_append", [out, y])

        b.for_range(0, 100, body)
        program = make_program(b.finish(out), [], "ScaLite")
        assert LoopInvariantHoisting(SCALITE).run(program, context()) is program

    def test_non_whitelisted_op_is_not_hoisted(self):
        """div can raise on a zero divisor, so hoisting it in front of a
        possibly zero-iteration loop would introduce an exception."""
        b = IRBuilder()
        out = b.emit("list_new", [], hint="out")
        x = b.emit("add", [2, 3])

        def body(i):
            y = b.emit("div", [100, x])
            b.emit("list_append", [out, y])

        b.for_range(0, 100, body)
        program = make_program(b.finish(out), [], "ScaLite")
        assert LoopInvariantHoisting(SCALITE).run(program, context()) is program

    def test_possibly_null_operand_is_not_hoisted(self):
        b = IRBuilder()
        out = b.emit("list_new", [], hint="out")
        var = b.emit("var_new", [0], hint="v")
        x = b.emit("var_read", [var])          # fact is top: maybe-null

        def body(i):
            y = b.emit("add", [x, 7])
            b.emit("list_append", [out, y])

        b.for_range(0, 100, body)
        program = make_program(b.finish(out), [], "ScaLite")
        assert LoopInvariantHoisting(SCALITE).run(program, context()) is program
