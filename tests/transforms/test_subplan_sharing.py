"""IR-level common-subplan sharing in the compiled DSL stacks.

The direct engines execute repeated subplans once per query through a runtime
cache (:mod:`repro.engine.sharing`); the compiled stacks now get the same
behaviour at compile time: the pipelining lowering materialises each shared
subtree once behind a list binding in the generated program and replays the
binding for every occurrence (:mod:`repro.transforms.subplan_sharing`).

The *execution-count probe*: a counting catalog records every ``column()``
read the generated code performs, so a subplan that scans a table twice in
the unshared program provably scans it once in the shared one.
"""
import pytest

from repro.codegen.compiler import QueryCompiler
from repro.dsl import qplan as Q
from repro.dsl.expr import col
from repro.engine.volcano import VolcanoEngine
from repro.bench.harness import assert_rows_equivalent
from repro.planner import sort_contract
from repro.stack.configs import build_config
from repro.storage.catalog import Catalog
from repro.tpch.queries import build_query
from repro.transforms.subplan_sharing import shared_binding_count

#: the TPC-H queries whose (raw) plans contain repeated subtrees
SHARED_QUERIES = ("Q11", "Q15", "Q22")


class CountingCatalog(Catalog):
    """A catalog that counts every column read of the generated code."""

    def __init__(self, base: Catalog) -> None:
        super().__init__(schema=base.schema, tables=base.tables,
                         statistics=base.statistics)
        self.column_reads = {}

    def column(self, table, column):
        key = (table, column)
        self.column_reads[key] = self.column_reads.get(key, 0) + 1
        return super().column(table, column)

    def reads_of_table(self, table):
        return sum(count for (t, _), count in self.column_reads.items()
                   if t == table)

    def reset(self):
        self.column_reads = {}


@pytest.fixture(autouse=True)
def fresh_cache():
    QueryCompiler.clear_cache()
    yield
    QueryCompiler.clear_cache()


def _compile(plan, catalog, shared: bool, name: str):
    config = build_config("dblab-5")
    flags = config.flags.copy_with(subplan_sharing=shared)
    return QueryCompiler(config.stack, flags).compile(plan, catalog, name)


class TestSharedBindings:
    @pytest.mark.parametrize("query_name", SHARED_QUERIES)
    def test_shared_queries_materialise_bindings(self, tpch_catalog, query_name):
        compiled = _compile(build_query(query_name), tpch_catalog, True,
                            query_name)
        assert shared_binding_count(compiled.program) >= 1

    def test_unshared_plan_gets_no_bindings(self, tpch_catalog):
        compiled = _compile(build_query("Q6"), tpch_catalog, True, "Q6")
        assert shared_binding_count(compiled.program) == 0

    def test_flag_off_keeps_the_inlined_duplicates(self, tpch_catalog):
        compiled = _compile(build_query("Q15"), tpch_catalog, False, "Q15-off")
        assert shared_binding_count(compiled.program) == 0


class TestExecutionCountProbe:
    """Each shared subplan runs exactly once in the generated program."""

    @pytest.mark.parametrize("query_name,table,shared_reads", [
        ("Q11", "partsupp", 4),   # the partsupp pipeline is built twice
        ("Q15", "lineitem", 4),   # the revenue view feeds a join and a max
        ("Q22", "customer", 3),   # the avg-acctbal subquery reuses the filter
    ])
    def test_shared_subplan_scans_its_table_once(self, tpch_catalog,
                                                 query_name, table,
                                                 shared_reads):
        def reads(compiled, counting):
            compiled._aux = None  # force prepare() against the counting db
            counting.reset()
            compiled.prepare(counting)
            rows = compiled.run(counting)
            return counting.reads_of_table(table), rows

        counting = CountingCatalog(tpch_catalog)
        unshared = _compile(build_query(query_name), counting, False,
                            f"{query_name}-unshared")
        reads_unshared, _ = reads(unshared, counting)

        shared = _compile(build_query(query_name), counting, True,
                          f"{query_name}-shared")
        reads_shared, rows = reads(shared, counting)

        # the duplicated pipeline read the shared subtree's columns twice;
        # the shared binding reads each exactly once
        assert reads_shared == shared_reads
        assert reads_shared < reads_unshared

        raw = build_query(query_name)
        assert_rows_equivalent(VolcanoEngine(tpch_catalog).execute(raw), rows,
                               sort_keys=sort_contract(raw),
                               context=query_name)

    @pytest.mark.parametrize("query_name", SHARED_QUERIES)
    def test_shared_rows_match_the_unshared_program(self, tpch_catalog,
                                                    query_name):
        plan = build_query(query_name)
        shared = _compile(plan, tpch_catalog, True, f"{query_name}-s")
        unshared = _compile(plan, tpch_catalog, False, f"{query_name}-u")
        assert shared.run(tpch_catalog) == unshared.run(tpch_catalog)


class TestHandBuiltSharing:
    def test_identity_shared_subtree_runs_once(self, tiny_catalog):
        """One subplan object referenced from two parents (the Q15 shape)."""
        view = Q.Agg(Q.Select(Q.Scan("S"), col("s_val") > 1.0),
                     [("s_rid", col("s_rid"))],
                     [Q.AggSpec("sum", col("s_val"), "total")])
        plan = Q.HashJoin(
            Q.Project(view, [("k1", col("s_rid")), ("t1", col("total"))]),
            Q.Project(view, [("k2", col("s_rid")), ("t2", col("total"))]),
            col("k1"), col("k2"))
        counting = CountingCatalog(tiny_catalog)
        compiled = _compile(plan, counting, True, "hand")
        assert shared_binding_count(compiled.program) == 1
        counting.reset()
        compiled.prepare(counting)
        rows = compiled.run(counting)
        assert counting.reads_of_table("S") == 2  # s_rid + s_val, once each
        assert rows == VolcanoEngine(tiny_catalog).execute(plan)
