"""Planner parity: optimized plans must return *identical* results.

The default planner rule set (pushdown, pruning, folding, equi-join
conversion) is order- and value-preserving by construction, so these tests
compare optimized against raw plans with plain ``==`` on the result lists —
same rows, same values (bit-for-bit floats), same order — across every TPC-H
query on the interpreter, the vectorized engine and the template expander,
and on a representative subset through the full compiled stack.

The opt-in ``join_strategy`` rules preserve the result multiset but may
change row order and float accumulation order; they are checked separately
under a canonicalisation that rounds floats.
"""
import pytest

from repro.codegen.compiler import QueryCompiler
from repro.engine.template_expander import TemplateExpander
from repro.engine.vectorized import VectorizedEngine
from repro.engine.volcano import VolcanoEngine
from repro.planner import Planner, PlannerOptions
from repro.stack.configs import build_config
from repro.tpch.queries import QUERY_NAMES, build_query

#: queries exercised through the (expensive to compile) five-level stack:
#: scans, join pipelines, residuals, outer/semi/anti joins, cross joins
STACK_SUBSET = ("Q1", "Q3", "Q5", "Q9", "Q13", "Q15", "Q19", "Q21")

#: queries with join chains / residuals for the cost-based strategy check
STRATEGY_SUBSET = ("Q2", "Q5", "Q7", "Q8", "Q9", "Q11", "Q21", "Q22")


@pytest.fixture(scope="module")
def planner(tpch_catalog):
    return Planner(tpch_catalog)


def rounded_canon(rows, digits=6):
    def norm(value):
        return round(value, digits) if isinstance(value, float) else value
    return sorted(tuple(sorted((k, repr(norm(v))) for k, v in row.items()))
                  for row in rows)


class TestExactParity:
    """Raw and optimized plans: identical rows, values and order."""

    @pytest.mark.parametrize("query_name", QUERY_NAMES)
    def test_interpreter(self, tpch_catalog, planner, query_name):
        raw = build_query(query_name)
        optimized = planner.optimize(build_query(query_name))
        engine = VolcanoEngine(tpch_catalog)
        assert engine.execute(optimized) == engine.execute(raw)

    @pytest.mark.parametrize("query_name", QUERY_NAMES)
    def test_vectorized(self, tpch_catalog, planner, query_name):
        raw = build_query(query_name)
        optimized = planner.optimize(build_query(query_name))
        engine = VectorizedEngine(tpch_catalog)
        assert engine.execute(optimized) == engine.execute(raw)

    @pytest.mark.parametrize("query_name", QUERY_NAMES)
    def test_template_expander(self, tpch_catalog, planner, query_name):
        raw = build_query(query_name)
        optimized = planner.optimize(build_query(query_name))
        expander = TemplateExpander(tpch_catalog)
        assert expander.compile(optimized, query_name).run(tpch_catalog) == \
            expander.compile(raw, query_name).run(tpch_catalog)

    @pytest.mark.parametrize("query_name", STACK_SUBSET)
    def test_compiled_five_level_stack(self, tpch_catalog, planner, query_name):
        config = build_config("dblab-5")
        compiler = QueryCompiler(config.stack, config.flags)
        raw = compiler.compile(build_query(query_name), tpch_catalog, query_name)
        optimized = compiler.compile(planner.optimize(build_query(query_name)),
                                     tpch_catalog, query_name)
        assert optimized.run(tpch_catalog) == raw.run(tpch_catalog)


class TestJoinStrategyParity:
    """The cost-based rules keep the result multiset (floats rounded)."""

    @pytest.mark.parametrize("query_name", STRATEGY_SUBSET)
    def test_interpreter_multiset(self, tpch_catalog, query_name):
        planner = Planner(tpch_catalog, PlannerOptions.all_rules())
        raw = build_query(query_name)
        optimized = planner.optimize(build_query(query_name))
        engine = VolcanoEngine(tpch_catalog)
        assert rounded_canon(engine.execute(optimized)) == \
            rounded_canon(engine.execute(raw))

    def test_strategy_rules_fire_somewhere(self, tpch_catalog):
        planner = Planner(tpch_catalog, PlannerOptions.all_rules())
        fired = set()
        for query_name in STRATEGY_SUBSET:
            report = planner.explain(build_query(query_name))
            fired.update(a for a in report.applied
                         if a in ("join-reorder", "build-side-swap"))
        assert fired == {"join-reorder", "build-side-swap"}


class TestPlannerThroughCompilerFlag:
    def test_cache_is_keyed_on_the_optimized_fingerprint(self, tpch_catalog):
        """Compiling a raw plan and its pre-optimized form shares one entry."""
        config = build_config("dblab-3", planner=True)
        compiler = QueryCompiler(config.stack, config.flags)
        QueryCompiler.clear_cache()
        first = compiler.compile(build_query("Q6"), tpch_catalog, "Q6")
        assert not first.cache_hit
        pre_optimized = Planner(tpch_catalog).optimize(build_query("Q6"))
        second = compiler.compile(pre_optimized, tpch_catalog, "Q6")
        assert second.cache_hit
        assert second.source == first.source
        assert second.run(tpch_catalog) == first.run(tpch_catalog)

    def test_flag_default_off(self):
        assert build_config("dblab-3").flags.logical_plan_optimizer is False
        assert build_config("dblab-3", planner=True).flags.logical_plan_optimizer


class TestExplain:
    def test_report_shows_rules_and_estimates(self, tpch_catalog, planner):
        report = planner.explain(build_query("Q3"))
        assert report.changed
        assert "field-pruning" in report.applied
        assert "Scan(lineitem" in report.before and "Scan(lineitem" in report.after
        assert report.estimated_rows_before > 0
        assert report.reached_fixpoint
        assert "rewrites" in report.summary()
