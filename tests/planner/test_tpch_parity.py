"""Planner parity under the order-contract framework.

Two suites:

* **Exact parity** — ``PlannerOptions.exact_order()`` (pushdown, pruning,
  folding, equi-join conversion, top-k fusion) is order- and value-preserving
  by construction, so optimized plans are compared against raw ones with
  plain ``==`` on the result lists — same rows, same values (bit-for-bit
  floats), same order — across every TPC-H query on the interpreter, the
  vectorized engine and the template expander, and on a representative
  subset through the full compiled stack.

* **Contract parity** — the *default* options additionally enable the
  cost-based join-strategy rules, which preserve the result multiset and the
  plan's sort contract but not tie order or float accumulation order.  All
  22 queries are checked on all three direct engines with the sort-key-aware
  multiset comparator (:func:`repro.bench.harness.rows_equivalent`) against
  the raw plan's :func:`repro.planner.sort_contract`.
"""
import pytest

from repro.bench.harness import assert_rows_equivalent, rows_equivalent
from repro.codegen.compiler import QueryCompiler
from repro.dsl import qplan as Q
from repro.engine.template_expander import TemplateExpander
from repro.engine.vectorized import VectorizedEngine
from repro.engine.volcano import VolcanoEngine
from repro.planner import Planner, PlannerOptions, sort_contract
from repro.stack.configs import build_config
from repro.tpch.queries import QUERY_NAMES, build_query

#: queries exercised through the (expensive to compile) five-level stack:
#: scans, join pipelines, residuals, outer/semi/anti joins, cross joins
STACK_SUBSET = ("Q1", "Q3", "Q5", "Q9", "Q13", "Q15", "Q19", "Q21")

#: queries with join chains / residuals for the cost-based strategy check
STRATEGY_SUBSET = ("Q2", "Q5", "Q7", "Q8", "Q9", "Q11", "Q21", "Q22")

#: queries ending in Sort+Limit, which the planner fuses into TopK
TOPK_QUERIES = ("Q2", "Q3", "Q10", "Q18")


@pytest.fixture(scope="module")
def exact_planner(tpch_catalog):
    return Planner(tpch_catalog, PlannerOptions.exact_order())


@pytest.fixture(scope="module")
def default_planner(tpch_catalog):
    return Planner(tpch_catalog)


class TestExactParity:
    """Order-preserving rules: identical rows, values and order."""

    @pytest.mark.parametrize("query_name", QUERY_NAMES)
    def test_interpreter(self, tpch_catalog, exact_planner, query_name):
        raw = build_query(query_name)
        optimized = exact_planner.optimize(build_query(query_name))
        engine = VolcanoEngine(tpch_catalog)
        assert engine.execute(optimized) == engine.execute(raw)

    @pytest.mark.parametrize("query_name", QUERY_NAMES)
    def test_vectorized(self, tpch_catalog, exact_planner, query_name):
        raw = build_query(query_name)
        optimized = exact_planner.optimize(build_query(query_name))
        engine = VectorizedEngine(tpch_catalog)
        assert engine.execute(optimized) == engine.execute(raw)

    @pytest.mark.parametrize("query_name", QUERY_NAMES)
    def test_template_expander(self, tpch_catalog, exact_planner, query_name):
        raw = build_query(query_name)
        optimized = exact_planner.optimize(build_query(query_name))
        expander = TemplateExpander(tpch_catalog)
        assert expander.compile(optimized, query_name).run(tpch_catalog) == \
            expander.compile(raw, query_name).run(tpch_catalog)

    @pytest.mark.parametrize("query_name", STACK_SUBSET)
    def test_compiled_five_level_stack(self, tpch_catalog, exact_planner, query_name):
        config = build_config("dblab-5")
        compiler = QueryCompiler(config.stack, config.flags)
        raw = compiler.compile(build_query(query_name), tpch_catalog, query_name)
        optimized = compiler.compile(exact_planner.optimize(build_query(query_name)),
                                     tpch_catalog, query_name)
        assert optimized.run(tpch_catalog) == raw.run(tpch_catalog)


class TestContractParity:
    """Default options (cost-based join strategies on): every query on every
    direct engine satisfies the raw plan's sort contract, with rows compared
    as multisets within key ties and floats to accumulation tolerance."""

    @pytest.mark.parametrize("query_name", QUERY_NAMES)
    def test_interpreter(self, tpch_catalog, default_planner, query_name):
        self._check(tpch_catalog, default_planner, query_name,
                    VolcanoEngine(tpch_catalog).execute)

    @pytest.mark.parametrize("query_name", QUERY_NAMES)
    def test_vectorized(self, tpch_catalog, default_planner, query_name):
        self._check(tpch_catalog, default_planner, query_name,
                    VectorizedEngine(tpch_catalog).execute)

    @pytest.mark.parametrize("query_name", QUERY_NAMES)
    def test_template_expander(self, tpch_catalog, default_planner, query_name):
        expander = TemplateExpander(tpch_catalog)
        self._check(tpch_catalog, default_planner, query_name,
                    lambda plan: expander.compile(plan).run(tpch_catalog))

    @pytest.mark.parametrize("query_name", STACK_SUBSET)
    def test_compiled_five_level_stack(self, tpch_catalog, default_planner,
                                       query_name):
        config = build_config("dblab-5")
        compiler = QueryCompiler(config.stack, config.flags)
        self._check(tpch_catalog, default_planner, query_name,
                    lambda plan: compiler.compile(plan, tpch_catalog,
                                                  query_name).run(tpch_catalog))

    @staticmethod
    def _check(catalog, planner, query_name, execute):
        raw = build_query(query_name)
        optimized = planner.optimize(build_query(query_name))
        assert_rows_equivalent(execute(raw), execute(optimized),
                               sort_keys=sort_contract(raw),
                               context=query_name)

    def test_strategy_rules_fire_somewhere(self, tpch_catalog, default_planner):
        fired = set()
        for query_name in STRATEGY_SUBSET:
            report = default_planner.explain(build_query(query_name))
            fired.update(a for a in report.applied
                         if a in ("join-reorder", "build-side-swap"))
        assert fired == {"join-reorder", "build-side-swap"}


class TestTopKFusion:
    """Sort+Limit queries fuse into TopK and stay row-identical."""

    @pytest.mark.parametrize("query_name", TOPK_QUERIES)
    def test_fusion_fires_and_is_exact(self, tpch_catalog, exact_planner,
                                       query_name):
        raw = build_query(query_name)
        optimized = exact_planner.optimize(build_query(query_name))
        assert any(isinstance(node, Q.TopK) for node in Q.walk(optimized))
        assert not any(isinstance(node, (Q.Sort, Q.Limit))
                       for node in Q.walk(optimized))
        engine = VolcanoEngine(tpch_catalog)
        assert engine.execute(optimized) == engine.execute(raw)

    def test_comparator_rejects_wrong_key_order(self, tpch_catalog,
                                                default_planner):
        raw = build_query("Q3")
        rows = VolcanoEngine(tpch_catalog).execute(raw)
        assert len(rows) > 1
        contract = sort_contract(raw)
        assert contract is not None
        assert rows_equivalent(rows, rows, sort_keys=contract)
        assert not rows_equivalent(rows, list(reversed(rows)),
                                   sort_keys=contract)


class TestAccessPathsDefaultOn:
    """The physical access-path rules run in the default rule set — every
    contract-parity check above therefore already executes ``PrunedScan`` /
    ``IndexJoin`` plans on all three direct engines.  This class pins the
    selection itself: the ops are present where expected, on by default,
    and order-preserving (exact ``==`` against the raw plan)."""

    #: queries whose default-optimized plans must carry each op
    INDEX_JOIN_QUERIES = ("Q10", "Q12", "Q14", "Q18")
    PRUNED_SCAN_QUERIES = ("Q1", "Q3", "Q4", "Q6", "Q12", "Q14", "Q19")

    def test_index_joins_selected(self, tpch_catalog, default_planner):
        for query_name in self.INDEX_JOIN_QUERIES:
            optimized = default_planner.optimize(build_query(query_name))
            assert any(isinstance(node, Q.IndexJoin)
                       for node in Q.walk(optimized)), query_name

    def test_pruned_scans_selected(self, tpch_catalog, default_planner):
        for query_name in self.PRUNED_SCAN_QUERIES:
            optimized = default_planner.optimize(build_query(query_name))
            assert any(isinstance(node, Q.PrunedScan)
                       for node in Q.walk(optimized)), query_name

    @pytest.mark.parametrize("query_name", QUERY_NAMES)
    def test_access_ops_preserve_exact_order(self, tpch_catalog, exact_planner,
                                             query_name):
        """Under exact_order() the access rules still fire, and the result is
        ``==``-identical on the engine with the most specialised access-path
        execution (vectorized: pruning, index probing, dictionaries)."""
        raw = build_query(query_name)
        optimized = exact_planner.optimize(build_query(query_name))
        engine = VectorizedEngine(tpch_catalog)
        assert engine.execute(optimized) == engine.execute(raw)


class TestPlannerThroughCompilerFlag:
    def test_cache_is_keyed_on_the_optimized_fingerprint(self, tpch_catalog):
        """Compiling a raw plan and its pre-optimized form shares one entry."""
        config = build_config("dblab-3", planner=True)
        compiler = QueryCompiler(config.stack, config.flags)
        QueryCompiler.clear_cache()
        first = compiler.compile(build_query("Q6"), tpch_catalog, "Q6")
        assert not first.cache_hit
        pre_optimized = Planner(tpch_catalog).optimize(build_query("Q6"))
        second = compiler.compile(pre_optimized, tpch_catalog, "Q6")
        assert second.cache_hit
        assert second.source == first.source
        assert second.run(tpch_catalog) == first.run(tpch_catalog)

    def test_flag_default_off(self):
        assert build_config("dblab-3").flags.logical_plan_optimizer is False
        assert build_config("dblab-3", planner=True).flags.logical_plan_optimizer


class TestExplain:
    def test_report_shows_rules_and_estimates(self, tpch_catalog, default_planner):
        report = default_planner.explain(build_query("Q3"))
        assert report.changed
        assert "field-pruning" in report.applied
        assert "topk-fusion" in report.applied
        assert "Scan(lineitem" in report.before and "Scan(lineitem" in report.after
        assert report.estimated_rows_before > 0
        assert report.reached_fixpoint
        assert "rewrites" in report.summary()
