"""Unit tests for the order-contract framework: sort-contract inference,
top-k fusion, and the sort-key-aware multiset comparator."""
import pytest

from repro.bench.harness import (assert_rows_equivalent, canonical_value,
                                 rows_equivalent)
from repro.dsl import qplan as Q
from repro.dsl.expr import Col, col
from repro.dsl.expr_compile import expr_fingerprint
from repro.engine.volcano import execute as volcano_execute
from repro.planner import Planner, PlannerOptions, sort_contract


def contract_keys(plan):
    """``[(fingerprint, order)]`` of a contract, for easy assertions."""
    contract = sort_contract(plan)
    if contract is None:
        return None
    return [(expr_fingerprint(expr), order) for expr, order in contract]


class TestSortContract:
    SORT = Q.Sort(Q.Scan("R"), [(col("r_name"), "asc"), (col("r_id"), "desc")])

    def test_sort_establishes_its_keys(self):
        assert contract_keys(self.SORT) == [
            (expr_fingerprint(col("r_name")), "asc"),
            (expr_fingerprint(col("r_id")), "desc")]

    def test_topk_establishes_its_keys(self):
        topk = Q.TopK(Q.Scan("R"), [(col("r_id"), "asc")], 5)
        assert contract_keys(topk) == [(expr_fingerprint(col("r_id")), "asc")]

    def test_limit_and_select_preserve_the_contract(self):
        assert contract_keys(Q.Limit(self.SORT, 3)) == contract_keys(self.SORT)
        filtered = Q.Select(Q.Limit(self.SORT, 3), col("r_id") > 1)
        assert contract_keys(filtered) == contract_keys(self.SORT)

    def test_identity_projection_keeps_keys(self):
        projected = Q.Project(self.SORT, [("r_name", col("r_name")),
                                          ("r_id", col("r_id"))])
        assert contract_keys(projected) == contract_keys(self.SORT)

    def test_renaming_projection_remaps_keys(self):
        projected = Q.Project(self.SORT, [("label", col("r_name")),
                                          ("r_id", col("r_id"))])
        assert contract_keys(projected) == [
            (expr_fingerprint(col("label")), "asc"),
            (expr_fingerprint(col("r_id")), "desc")]

    def test_dropped_key_truncates_to_a_prefix(self):
        projected = Q.Project(self.SORT, [("r_name", col("r_name"))])
        assert contract_keys(projected) == [
            (expr_fingerprint(col("r_name")), "asc")]

    def test_dropped_leading_key_voids_the_contract(self):
        projected = Q.Project(self.SORT, [("r_id", col("r_id"))])
        assert sort_contract(projected) is None

    def test_order_destroying_operators_have_no_contract(self):
        join = Q.HashJoin(self.SORT, Q.Scan("S"), col("r_sid"), col("s_rid"))
        assert sort_contract(join) is None
        agg = Q.Agg(self.SORT, [("name", col("r_name"))],
                    [Q.AggSpec("count", None, "n")])
        assert sort_contract(agg) is None
        assert sort_contract(Q.Scan("R")) is None


class TestTopKFusionRule:
    OPTIONS = PlannerOptions(field_pruning=False, join_strategy=False)

    def plan(self, count, keys=((col("r_id"), "desc"),)):
        return Q.Limit(Q.Sort(Q.Scan("R"), list(keys)), count)

    def test_limit_over_sort_fuses(self, tiny_catalog):
        optimized = Planner(tiny_catalog, self.OPTIONS).optimize(self.plan(3))
        assert isinstance(optimized, Q.TopK)
        assert optimized.count == 3
        assert volcano_execute(optimized, tiny_catalog) == \
            volcano_execute(self.plan(3), tiny_catalog)

    def test_limit_over_topk_tightens(self, tiny_catalog):
        plan = Q.Limit(Q.TopK(Q.Scan("R"), [(col("r_id"), "asc")], 4), 2)
        optimized = Planner(tiny_catalog, self.OPTIONS).optimize(plan)
        assert isinstance(optimized, Q.TopK) and optimized.count == 2

    def test_looser_limit_over_topk_is_dropped(self, tiny_catalog):
        plan = Q.Limit(Q.TopK(Q.Scan("R"), [(col("r_id"), "asc")], 2), 10)
        optimized = Planner(tiny_catalog, self.OPTIONS).optimize(plan)
        assert isinstance(optimized, Q.TopK) and optimized.count == 2

    def test_stacked_limits_collapse(self, tiny_catalog):
        plan = Q.Limit(Q.Limit(Q.Scan("R"), 4), 2)
        optimized = Planner(tiny_catalog, self.OPTIONS).optimize(plan)
        assert isinstance(optimized, Q.Limit) and optimized.count == 2
        assert isinstance(optimized.child, Q.Scan)

    def test_fusion_can_be_disabled(self, tiny_catalog):
        options = PlannerOptions(field_pruning=False, join_strategy=False,
                                 topk_fusion=False)
        optimized = Planner(tiny_catalog, options).optimize(self.plan(3))
        assert isinstance(optimized, Q.Limit)

    def test_fused_fingerprint_is_stable(self, tiny_catalog):
        planner = Planner(tiny_catalog, self.OPTIONS)
        once = planner.optimize(self.plan(3))
        twice = planner.optimize(once)
        assert Q.plan_fingerprint(once) == Q.plan_fingerprint(twice)


class TestRowsEquivalent:
    ROWS = [{"k": 2, "v": 1.0}, {"k": 1, "v": 2.0}, {"k": 1, "v": 3.0}]

    def test_multiset_comparison_ignores_order(self):
        assert rows_equivalent(self.ROWS, list(reversed(self.ROWS)))

    def test_multiset_comparison_counts_duplicates(self):
        assert not rows_equivalent([{"k": 1}, {"k": 1}, {"k": 2}],
                                   [{"k": 1}, {"k": 2}, {"k": 2}])

    def test_length_mismatch_fails(self):
        assert not rows_equivalent(self.ROWS, self.ROWS[:2])

    def test_float_accumulation_tolerance(self):
        total = sum([0.1] * 10)           # 0.9999999999999999
        assert total != 1.0
        assert rows_equivalent([{"v": total}], [{"v": 1.0}])
        assert not rows_equivalent([{"v": 1.0}], [{"v": 1.001}])
        assert canonical_value(total) == canonical_value(1.0)

    def test_tolerance_survives_rounding_bucket_boundaries(self):
        # These two values differ by ~2e-14 but canonicalise to different
        # 9-significant-digit strings; the comparator must still treat them
        # as equal (rounding is bucketing, not a tolerance).
        left, right = 0.12345678949999, 0.12345678950001
        assert canonical_value(left) != canonical_value(right)
        assert rows_equivalent([{"v": left}], [{"v": right}])
        assert rows_equivalent([{"k": 1, "v": left}], [{"k": 1, "v": right}],
                               sort_keys=((Col("v"), "desc"),))

    def test_sort_key_aware_allows_permuted_ties_only(self):
        keys = ((Col("k"), "desc"),)
        swapped_tie = [self.ROWS[0], self.ROWS[2], self.ROWS[1]]
        assert rows_equivalent(self.ROWS, swapped_tie, sort_keys=keys)
        out_of_order = [self.ROWS[1], self.ROWS[0], self.ROWS[2]]
        assert not rows_equivalent(self.ROWS, out_of_order, sort_keys=keys)

    def test_assert_helper_reports_context(self):
        with pytest.raises(AssertionError, match="Qx: row count mismatch"):
            assert_rows_equivalent(self.ROWS, self.ROWS[:1], context="Qx")
        with pytest.raises(AssertionError, match="order contract"):
            assert_rows_equivalent(self.ROWS,
                                   [self.ROWS[1], self.ROWS[0], self.ROWS[2]],
                                   sort_keys=((Col("k"), "desc"),))
