"""Unit tests for the planner's expression analysis and rewriting helpers."""

from repro.dsl.expr import (BinOp, Col, Lit, UnaryOp, case, col, columns_used,
                            evaluate, in_list, like, lit, substr, year)
from repro.planner.exprs import (classify_columns, conjoin, flip_sides,
                                 fold_constants, is_literal_true,
                                 simplify_predicate, split_conjuncts,
                                 strip_sides, substitute_columns)


class TestConjuncts:
    def test_split_flattens_nested_ands(self):
        predicate = (col("a") > 1) & (col("b") > 2) & (col("c") > 3)
        parts = split_conjuncts(predicate)
        assert len(parts) == 3
        assert columns_used(parts[0]) == ["a"]
        assert columns_used(parts[2]) == ["c"]

    def test_split_keeps_disjunctions_whole(self):
        predicate = (col("a") > 1) | (col("b") > 2)
        assert split_conjuncts(predicate) == [predicate]

    def test_conjoin_round_trips(self):
        parts = [col("a") > 1, col("b") > 2]
        rebuilt = conjoin(parts)
        assert split_conjuncts(rebuilt) == parts
        assert conjoin([]) is None


class TestSubstitution:
    def test_substitute_replaces_unsided_references(self):
        mapping = {"revenue": col("price") * (1 - col("discount"))}
        substituted = substitute_columns(col("revenue") > 100.0, mapping)
        assert set(columns_used(substituted)) == {"price", "discount"}

    def test_substitute_preserves_untouched_tree_identity(self):
        predicate = col("other") > 1
        assert substitute_columns(predicate, {"revenue": col("x")}) is predicate

    def test_substitute_skips_sided_references(self):
        predicate = Col("k", "left") == col("k")
        substituted = substitute_columns(predicate, {"k": col("j")})
        assert substituted.left.side == "left" and substituted.left.name == "k"
        assert substituted.right.name == "j"


class TestSides:
    def test_flip_sides(self):
        flipped = flip_sides(Col("a", "left") == Col("b", "right"))
        assert flipped.left.side == "right" and flipped.right.side == "left"

    def test_strip_sides(self):
        stripped = strip_sides(Col("a", "left") == col("b"))
        assert stripped.left.side is None and stripped.right.side is None

    def test_classify_columns(self):
        left, right = ["a", "b"], ["c", "d"]
        assert classify_columns(col("a") > 1, left, right) == "left"
        assert classify_columns(col("c") > 1, left, right) == "right"
        assert classify_columns(col("a") == col("d"), left, right) == "both"
        assert classify_columns(lit(1) == 1, left, right) == "none"
        assert classify_columns(col("zz") > 1, left, right) is None

    def test_classify_resolves_unsided_shadowing_right(self):
        # same name on both inputs: engines resolve right-shadows-left
        assert classify_columns(col("k") > 1, ["k"], ["k"]) == "right"
        assert classify_columns(Col("k", "left") > 1, ["k"], ["k"]) == "left"


class TestConstantFolding:
    def test_folds_pure_arithmetic_and_comparisons(self):
        folded = fold_constants(BinOp("*", lit(6), lit(7)))
        assert isinstance(folded, Lit) and folded.value == 42
        folded = fold_constants(BinOp("<", lit(1), lit(2)))
        assert folded.value is True

    def test_skips_division_by_zero(self):
        expr = BinOp("/", lit(1), lit(0))
        assert fold_constants(expr) is expr

    def test_skips_type_mismatches(self):
        expr = BinOp("-", lit("text"), lit(3))
        assert fold_constants(expr) is expr

    def test_folds_inside_larger_trees(self):
        expr = col("x") * BinOp("+", lit(2), lit(3))
        folded = fold_constants(expr)
        assert isinstance(folded.right, Lit) and folded.right.value == 5
        assert folded.left.name == "x"

    def test_folding_matches_evaluate(self):
        cases = [
            BinOp("and", lit(True), lit(0)),
            BinOp("or", lit(0), lit(3)),
            UnaryOp("not", lit(0)),
            like(lit("PROMO BRASS"), "PROMO%"),
            in_list(lit(3), [1, 2, 3]),
            substr(lit("abcdef"), 2, 3),
            year(lit(19980902)),
        ]
        for expr in cases:
            folded = fold_constants(expr)
            assert isinstance(folded, Lit)
            assert folded.value == evaluate(expr, {})

    def test_untouched_trees_keep_identity(self):
        expr = (col("a") > 1) & (col("b") < 2)
        assert fold_constants(expr) is expr

    def test_case_with_literal_conditions(self):
        expr = case([(lit(False), lit(1)), (lit(True), col("x"))], lit(0))
        folded = fold_constants(expr)
        assert isinstance(folded, Col) and folded.name == "x"


class TestPredicateSimplification:
    def test_drops_literal_true_conjuncts(self):
        predicate = (col("a") > 1) & lit(True)
        simplified = simplify_predicate(predicate)
        assert columns_used(simplified) == ["a"]
        assert not (isinstance(simplified, BinOp) and simplified.op == "and")

    def test_collapses_literal_false(self):
        simplified = simplify_predicate((col("a") > 1) & lit(False))
        assert isinstance(simplified, Lit) and simplified.value is False

    def test_or_with_literal_true_short_circuits(self):
        simplified = simplify_predicate((col("a") > 1) | lit(True))
        assert is_literal_true(simplified)

    def test_fully_constant_predicate(self):
        assert is_literal_true(simplify_predicate(BinOp(">", lit(2), lit(1))))
