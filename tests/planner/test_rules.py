"""Unit tests for the individual plan rewrite rules.

Structural assertions run with field pruning disabled so the rewritten tree
shape is easy to inspect; every structural case also checks exact result
parity (values *and* order) against the raw plan on the Volcano reference.
"""
import pytest

from repro.dsl import qplan as Q
from repro.dsl.expr import BinOp, Col, col, columns_used, lit
from repro.engine.volcano import execute as volcano_execute
from repro.engine.vectorized import execute as vectorized_execute
from repro.planner import (CardinalityEstimator, Planner, PlannerContext, PlannerError,
                           PlannerOptions, PlanRule, apply_rules_fixpoint, prune_plan)
from repro.storage.catalog import Catalog
from repro.storage.schema import TableSchema, int_column, string_column

#: structural-assertion options: no pruning and no cost-based join rewrites,
#: so the rewritten tree shape is determined by the rule under test alone
STRUCTURE = PlannerOptions(field_pruning=False, join_strategy=False)


def check_parity(raw, catalog, options=None, ordered=True):
    """Optimize ``raw`` and verify engine results; returns the optimized plan."""
    optimized = Planner(catalog, options).optimize(raw)
    raw_rows = volcano_execute(raw, catalog)
    opt_rows = volcano_execute(optimized, catalog)
    if ordered:
        assert opt_rows == raw_rows
        assert vectorized_execute(optimized, catalog) == \
            vectorized_execute(raw, catalog)
    else:
        key = lambda rows: sorted(sorted(r.items()) for r in rows)
        assert key(opt_rows) == key(raw_rows)
    return optimized


@pytest.fixture()
def skewed_catalog() -> Catalog:
    """A star schema with very different table sizes for the cost-based rules:
    fact (60 rows) referencing dima (3 rows) and dimc (8 rows)."""
    catalog = Catalog()
    catalog.register_rows(
        TableSchema("dima", [int_column("a_id"), string_column("a_name")],
                    primary_key=("a_id",)),
        [{"a_id": i, "a_name": f"A{i}"} for i in range(3)])
    catalog.register_rows(
        TableSchema("dimc", [int_column("c_id"), string_column("c_name")],
                    primary_key=("c_id",)),
        [{"c_id": i, "c_name": f"C{i}"} for i in range(8)])
    catalog.register_rows(
        TableSchema("fact", [int_column("f_id"), int_column("f_a"),
                             int_column("f_c"), int_column("f_val")],
                    primary_key=("f_id",)),
        [{"f_id": i, "f_a": i % 3, "f_c": i % 8, "f_val": i * 7 % 11}
         for i in range(60)])
    return catalog


class TestConstantFoldingRule:
    def test_tautological_select_is_removed(self, tiny_catalog):
        raw = Q.Select(Q.Scan("R"), BinOp(">", lit(2), lit(1)))
        optimized = check_parity(raw, tiny_catalog, STRUCTURE)
        assert isinstance(optimized, Q.Scan)

    def test_literal_true_residual_is_dropped(self, tiny_catalog):
        raw = Q.HashJoin(Q.Scan("R"), Q.Scan("S"), col("r_sid"), col("s_rid"),
                         residual=BinOp("==", lit(1), lit(1)))
        optimized = check_parity(raw, tiny_catalog, STRUCTURE)
        assert optimized.residual is None

    def test_folds_inside_projections(self, tiny_catalog):
        raw = Q.Project(Q.Scan("R"), [("x", col("r_id") * BinOp("+", lit(2), lit(3)))])
        optimized = check_parity(raw, tiny_catalog, STRUCTURE)
        folded = optimized.projections[0][1]
        assert folded.right.value == 5


class TestPredicatePushdownRule:
    def test_adjacent_selects_merge(self, tiny_catalog):
        raw = Q.Select(Q.Select(Q.Scan("R"), col("r_id") > 1), col("r_sid") > 10)
        optimized = check_parity(raw, tiny_catalog, STRUCTURE)
        assert isinstance(optimized, Q.Select)
        assert isinstance(optimized.child, Q.Scan)

    def test_pushes_below_project_with_substitution(self, tiny_catalog):
        raw = Q.Select(Q.Project(Q.Scan("R"), [("key", col("r_id") + 1)]),
                       col("key") > 2)
        optimized = check_parity(raw, tiny_catalog, STRUCTURE)
        assert isinstance(optimized, Q.Project)
        pushed = optimized.child
        assert isinstance(pushed, Q.Select)
        assert "r_id" in columns_used(pushed.predicate)

    def test_splits_conjuncts_across_inner_join(self, tiny_catalog):
        join = Q.HashJoin(Q.Scan("R"), Q.Scan("S"), col("r_sid"), col("s_rid"))
        raw = Q.Select(join, (col("r_name") == "R1")
                       & (col("s_val") > 1.0)
                       & (col("r_id") < col("s_id")))
        optimized = check_parity(raw, tiny_catalog, STRUCTURE)
        assert isinstance(optimized, Q.HashJoin)
        assert isinstance(optimized.left, Q.Select)    # r_name conjunct
        assert isinstance(optimized.right, Q.Select)   # s_val conjunct
        assert optimized.residual is not None          # two-sided conjunct

    def test_semi_join_filters_stay_above(self, tiny_catalog):
        join = Q.HashJoin(Q.Scan("R"), Q.Scan("S"), col("r_sid"), col("s_rid"),
                          kind="leftsemi")
        raw = Q.Select(join, col("r_name") == "R1")
        optimized = check_parity(raw, tiny_catalog, STRUCTURE)
        # bucket-order emission makes left-pushes order-unsafe for semi joins
        assert isinstance(optimized, Q.Select)
        assert isinstance(optimized.child, Q.HashJoin)

    def test_nested_loop_left_push_works_for_semi_joins(self, tiny_catalog):
        join = Q.NestedLoopJoin(Q.Scan("R"), Q.Scan("S"),
                                col("r_sid") == col("s_rid"), kind="leftsemi")
        raw = Q.Select(join, col("r_name") == "R1")
        optimized = check_parity(raw, tiny_catalog, STRUCTURE)
        # nested-loop emission is left-major, so the push is order-safe
        assert isinstance(optimized, Q.NestedLoopJoin)
        assert isinstance(optimized.left, Q.Select)

    def test_pushes_group_key_filter_below_aggregation(self, tiny_catalog):
        agg = Q.Agg(Q.Scan("R"), [("name", col("r_name"))],
                    [Q.AggSpec("count", None, "n")])
        raw = Q.Select(agg, col("name") == "R1")
        optimized = check_parity(raw, tiny_catalog, STRUCTURE)
        assert isinstance(optimized, Q.Agg)
        assert isinstance(optimized.child, Q.Select)

    def test_aggregate_output_filter_stays_above(self, tiny_catalog):
        agg = Q.Agg(Q.Scan("R"), [("name", col("r_name"))],
                    [Q.AggSpec("count", None, "n")])
        raw = Q.Select(agg, col("n") > 1)
        optimized = check_parity(raw, tiny_catalog, STRUCTURE)
        assert isinstance(optimized, Q.Select)

    def test_pushes_below_sort_but_not_limit(self, tiny_catalog):
        sorted_plan = Q.Sort(Q.Scan("R"), [(col("r_id"), "desc")])
        optimized = check_parity(Q.Select(sorted_plan, col("r_id") > 1),
                                 tiny_catalog, STRUCTURE)
        assert isinstance(optimized, Q.Sort)
        limited = Q.Limit(Q.Sort(Q.Scan("R"), [(col("r_id"), "desc")]), 3)
        optimized = check_parity(Q.Select(limited, col("r_id") > 1),
                                 tiny_catalog, STRUCTURE)
        assert isinstance(optimized, Q.Select)

    def test_filter_sinks_through_multiple_levels(self, tiny_catalog):
        join = Q.HashJoin(Q.Scan("R"), Q.Scan("S"), col("r_sid"), col("s_rid"))
        raw = Q.Select(Q.Sort(join, [(col("s_val"), "asc")]), col("r_name") == "R1")
        optimized = check_parity(raw, tiny_catalog, STRUCTURE)
        assert isinstance(optimized, Q.Sort)
        assert isinstance(optimized.child, Q.HashJoin)
        assert isinstance(optimized.child.left, Q.Select)


class TestEquiJoinConversionRule:
    def test_inner_nested_loop_becomes_hash_join(self, tiny_catalog):
        raw = Q.NestedLoopJoin(
            Q.Scan("R"), Q.Scan("S"),
            (col("r_sid") == col("s_rid")) & (col("r_id") < col("s_id")))
        optimized = check_parity(raw, tiny_catalog, STRUCTURE)
        assert isinstance(optimized, Q.HashJoin)
        # build side is the nested loop's right input: pair order is preserved
        assert isinstance(optimized.left, Q.Scan) and optimized.left.table == "S"
        assert optimized.right.table == "R"
        assert optimized.residual is not None

    def test_sided_references_are_flipped_into_the_residual(self, tiny_catalog):
        raw = Q.NestedLoopJoin(
            Q.Scan("R"), Q.Scan("S"),
            BinOp("and",
                  BinOp("==", Col("r_sid", "left"), Col("s_rid", "right")),
                  BinOp("<", Col("r_id", "left"), Col("s_id", "right"))))
        optimized = check_parity(raw, tiny_catalog, STRUCTURE)
        assert isinstance(optimized, Q.HashJoin)
        residual = optimized.residual
        assert residual.left.side == "right"   # r_id now lives on the probe side
        assert residual.right.side == "left"

    def test_cross_product_and_non_equi_are_untouched(self, tiny_catalog):
        cross = Q.NestedLoopJoin(Q.Scan("R"), Q.Scan("S"), None)
        assert isinstance(Planner(tiny_catalog, STRUCTURE).optimize(cross),
                          Q.NestedLoopJoin)
        theta = Q.NestedLoopJoin(Q.Scan("R"), Q.Scan("S"),
                                 col("r_sid") < col("s_rid"))
        optimized = check_parity(theta, tiny_catalog, STRUCTURE)
        assert isinstance(optimized, Q.NestedLoopJoin)

    def test_semi_nested_loops_are_not_converted(self, tiny_catalog):
        raw = Q.NestedLoopJoin(Q.Scan("R"), Q.Scan("S"),
                               col("r_sid") == col("s_rid"), kind="leftsemi")
        optimized = check_parity(raw, tiny_catalog, STRUCTURE)
        assert isinstance(optimized, Q.NestedLoopJoin)


class TestJoinStrategyRules:
    def test_build_side_swap_builds_on_the_smaller_input(self, skewed_catalog):
        raw = Q.HashJoin(Q.Scan("fact"), Q.Scan("dima"), col("f_a"), col("a_id"))
        options = PlannerOptions(field_pruning=False, join_strategy=True)
        optimized = check_parity(raw, skewed_catalog, options, ordered=False)
        assert isinstance(optimized, Q.HashJoin)
        assert optimized.left.table == "dima"
        assert optimized.right.table == "fact"

    def test_swap_flips_residual_sides(self, skewed_catalog):
        raw = Q.HashJoin(Q.Scan("fact"), Q.Scan("dima"), col("f_a"), col("a_id"),
                         residual=BinOp("<", Col("f_val", "left"), Col("a_id", "right")))
        options = PlannerOptions(field_pruning=False, join_strategy=True)
        optimized = check_parity(raw, skewed_catalog, options, ordered=False)
        assert optimized.left.table == "dima"
        assert optimized.residual.left.side == "right"

    def test_swap_fires_under_the_default_options(self, skewed_catalog):
        raw = Q.HashJoin(Q.Scan("fact"), Q.Scan("dima"), col("f_a"), col("a_id"))
        optimized = Planner(skewed_catalog).optimize(raw)
        assert optimized.left.table == "dima"

    def test_no_swap_under_exact_order_options(self, skewed_catalog):
        raw = Q.HashJoin(Q.Scan("fact"), Q.Scan("dima"), col("f_a"), col("a_id"))
        optimized = Planner(skewed_catalog,
                            PlannerOptions.exact_order()).optimize(raw)
        assert optimized.left.table == "fact"

    def test_greedy_reorder_starts_from_the_smallest_input(self, skewed_catalog):
        from repro.planner.reorder import reorder_join_chains

        chain = Q.HashJoin(
            Q.HashJoin(Q.Scan("fact"), Q.Scan("dimc"), col("f_c"), col("c_id")),
            Q.Scan("dima"), col("f_a"), col("a_id"))
        context = PlannerContext(catalog=skewed_catalog)
        reordered = reorder_join_chains(chain, context,
                                        CardinalityEstimator(skewed_catalog))

        def spine_tables(node):
            tables = []
            while isinstance(node, Q.HashJoin):
                tables.append(node.right.table)
                node = node.left
            tables.append(node.table)
            return list(reversed(tables))

        # greedy: start at dima (3 rows), join fact (the only connected
        # input), then dimc — instead of the written fact-first order
        assert spine_tables(reordered) == ["dima", "fact", "dimc"]
        key = lambda rows: sorted(sorted(r.items()) for r in rows)
        assert key(volcano_execute(reordered, skewed_catalog)) == \
            key(volcano_execute(chain, skewed_catalog))

    def test_full_strategy_pipeline_is_multiset_correct(self, skewed_catalog):
        chain = Q.HashJoin(
            Q.HashJoin(Q.Scan("fact"), Q.Scan("dimc"), col("f_c"), col("c_id")),
            Q.Scan("dima"), col("f_a"), col("a_id"))
        options = PlannerOptions(field_pruning=False, join_strategy=True)
        check_parity(chain, skewed_catalog, options, ordered=False)

    def test_reorder_keeps_residual_edges(self, skewed_catalog):
        # the dima edge arrives via a residual, not a key pair
        chain = Q.HashJoin(
            Q.HashJoin(Q.Scan("fact"), Q.Scan("dimc"), col("f_c"), col("c_id")),
            Q.Scan("dima"), col("f_a"), col("a_id"))
        options = PlannerOptions(join_strategy=True)
        check_parity(chain, skewed_catalog, options, ordered=False)


class TestFieldPruning:
    def test_scan_fields_narrowed_to_what_is_used(self, tiny_catalog):
        raw = Q.Agg(Q.Scan("R"), [("name", col("r_name"))],
                    [Q.AggSpec("count", None, "n")])
        optimized = check_parity(raw, tiny_catalog)
        assert optimized.child.fields == ("r_name",)

    def test_unused_projections_are_pruned(self, tiny_catalog):
        project = Q.Project(Q.Scan("R"), [("a", col("r_id")), ("b", col("r_name"))])
        raw = Q.Agg(project, [("a", col("a"))], [Q.AggSpec("count", None, "n")])
        optimized = check_parity(raw, tiny_catalog)
        assert [name for name, _ in optimized.child.projections] == ["a"]
        assert optimized.child.child.fields == ("r_id",)

    def test_unused_aggregates_are_pruned(self, tiny_catalog):
        agg = Q.Agg(Q.Scan("S"), [("rid", col("s_rid"))],
                    [Q.AggSpec("sum", col("s_val"), "total"),
                     Q.AggSpec("count", None, "n")])
        raw = Q.Project(agg, [("rid", col("rid")), ("total", col("total"))])
        optimized = check_parity(raw, tiny_catalog)
        assert [spec.name for spec in optimized.child.aggregates] == ["total"]

    def test_having_keeps_its_aggregate(self, tiny_catalog):
        agg = Q.Agg(Q.Scan("S"), [("rid", col("s_rid"))],
                    [Q.AggSpec("sum", col("s_val"), "total"),
                     Q.AggSpec("count", None, "n")],
                    having=col("n") > 1)
        raw = Q.Project(agg, [("rid", col("rid"))])
        optimized = check_parity(raw, tiny_catalog)
        assert {spec.name for spec in optimized.child.aggregates} == {"n"}

    def test_top_level_output_is_never_pruned(self, tiny_catalog):
        raw = Q.Scan("R")
        optimized = Planner(tiny_catalog).optimize(raw)
        assert optimized is raw
        pruned = prune_plan(Q.Scan("R"), tiny_catalog)
        assert Q.output_fields(pruned, tiny_catalog) == ["r_id", "r_name", "r_sid"]

    def test_residual_columns_survive_pruning(self, tiny_catalog):
        raw = Q.Project(
            Q.HashJoin(Q.Scan("R"), Q.Scan("S"), col("r_sid"), col("s_rid"),
                       residual=col("r_id") < col("s_id")),
            [("name", col("r_name"))])
        optimized = check_parity(raw, tiny_catalog)
        join = optimized.child
        # R needs all three columns (projection + key + residual): unpruned.
        # S keeps the key and the residual column but drops s_val.
        assert join.left.fields is None
        assert join.right.fields == ("s_id", "s_rid")


class TestCardinalityEstimator:
    def test_scan_estimates_match_statistics(self, tiny_catalog):
        estimator = CardinalityEstimator(tiny_catalog)
        assert estimator.estimate_rows(Q.Scan("R")) == 5.0
        assert estimator.estimate_rows(Q.Scan("S")) == 6.0

    def test_equality_selectivity_uses_distinct_counts(self, tiny_catalog):
        estimator = CardinalityEstimator(tiny_catalog)
        # r_name has 3 distinct values over 5 rows
        estimate = estimator.estimate_rows(
            Q.Select(Q.Scan("R"), col("r_name") == "R1"))
        assert estimate == pytest.approx(5.0 / 3.0)

    def test_limit_caps_the_estimate(self, tiny_catalog):
        estimator = CardinalityEstimator(tiny_catalog)
        assert estimator.estimate_rows(Q.Limit(Q.Scan("S"), 2)) == 2.0

    def test_selectivity_is_clamped(self, tiny_catalog):
        estimator = CardinalityEstimator(tiny_catalog)
        predicate = (col("r_id") > 0) | (col("r_id") < 100)
        assert 0.0 <= estimator.selectivity(predicate) <= 1.0


class TestRewriteFramework:
    def test_empty_rule_list_reaches_fixpoint(self, tiny_catalog):
        plan = Q.Scan("R")
        context = PlannerContext(catalog=tiny_catalog)
        result, report = apply_rules_fixpoint(plan, [], context)
        assert result is plan and report.reached_fixpoint

    def test_runaway_rule_is_detected(self, tiny_catalog):
        class Runaway(PlanRule):
            name = "runaway"

            def apply(self, node, context):
                return Q.Limit(node, 5)

        with pytest.raises(PlannerError, match="runaway"):
            apply_rules_fixpoint(Q.Scan("R"), [Runaway()],
                                 PlannerContext(catalog=tiny_catalog))

    def test_optimizer_is_idempotent(self, tiny_catalog):
        join = Q.HashJoin(Q.Scan("R"), Q.Scan("S"), col("r_sid"), col("s_rid"))
        raw = Q.Select(join, (col("r_name") == "R1") & (col("s_val") > 1.0))
        planner = Planner(tiny_catalog)
        once = planner.optimize(raw)
        twice = planner.optimize(once)
        assert Q.plan_fingerprint(once) == Q.plan_fingerprint(twice)
