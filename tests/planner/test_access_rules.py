"""Tests for the access-path selection rules (repro.planner.access_rules)."""
import pytest

from repro.dsl import qplan as Q
from repro.dsl.expr import col, date, like
from repro.engine.volcano import VolcanoEngine
from repro.planner import (IndexJoinSelection, Planner, PlannerOptions,
                           PrunedScanSelection, index_eligible_build)
from repro.planner.rewrite import PlannerContext
from repro.tpch.queries import build_query


def _context(catalog, options=None):
    return PlannerContext(catalog=catalog,
                          options=options or PlannerOptions())


class TestPrunedScanSelection:
    def test_fires_on_select_over_scan(self, tpch_catalog):
        rule = PrunedScanSelection()
        plan = Q.Select(Q.Scan("lineitem"), col("l_shipdate") > date("1995-03-15"))
        rewritten = rule.apply(plan, _context(tpch_catalog))
        assert isinstance(rewritten, Q.PrunedScan)
        assert rewritten.zone_filters == (("l_shipdate", ">", 19950315),)
        assert rewritten.predicate is plan.predicate

    def test_does_not_refire_on_its_own_output(self, tpch_catalog):
        rule = PrunedScanSelection()
        plan = Q.Select(Q.Scan("lineitem"), col("l_shipdate") > date("1995-03-15"))
        pruned = rule.apply(plan, _context(tpch_catalog))
        assert rule.apply(pruned, _context(tpch_catalog)) is None

    def test_no_prunable_conjunct_no_rewrite(self, tpch_catalog):
        rule = PrunedScanSelection()
        plan = Q.Select(Q.Scan("lineitem"),
                        col("l_commitdate") < col("l_receiptdate"))
        assert rule.apply(plan, _context(tpch_catalog)) is None

    def test_like_prefix_is_a_zone_filter(self, tpch_catalog):
        rule = PrunedScanSelection()
        plan = Q.Select(Q.Scan("part"), like(col("p_type"), "PROMO%"))
        rewritten = rule.apply(plan, _context(tpch_catalog))
        assert rewritten.zone_filters == (("p_type", "prefix", "PROMO"),)


class TestIndexJoinSelection:
    def test_bare_pk_scan_build_becomes_index_join(self, tpch_catalog):
        rule = IndexJoinSelection()
        join = Q.HashJoin(Q.Scan("orders"), Q.Scan("lineitem"),
                          col("o_orderkey"), col("l_orderkey"))
        rewritten = rule.apply(join, _context(tpch_catalog))
        assert isinstance(rewritten, Q.IndexJoin)
        assert (rewritten.index_table, rewritten.index_column) == \
            ("orders", "o_orderkey")
        assert rule.apply(rewritten, _context(tpch_catalog)) is None

    def test_non_pk_build_key_is_left_alone(self, tpch_catalog):
        rule = IndexJoinSelection()
        join = Q.HashJoin(Q.Scan("lineitem"), Q.Scan("orders"),
                          col("l_orderkey"), col("o_orderkey"))
        assert rule.apply(join, _context(tpch_catalog)) is None

    def test_left_outer_join_is_index_served(self, tpch_catalog):
        rule = IndexJoinSelection()
        join = Q.HashJoin(Q.Scan("customer"), Q.Scan("orders"),
                          col("c_custkey"), col("o_custkey"), kind="leftouter")
        rewritten = rule.apply(join, _context(tpch_catalog))
        assert isinstance(rewritten, Q.IndexJoin)
        assert rewritten.kind == "leftouter"
        assert (rewritten.index_table, rewritten.index_column) == \
            ("customer", "c_custkey")

    def test_left_outer_join_requires_a_bare_scan_build(self, tpch_catalog):
        rule = IndexJoinSelection()
        filtered = Q.HashJoin(
            Q.Select(Q.Scan("customer"), col("c_custkey") > 0),
            Q.Scan("orders"), col("c_custkey"), col("o_custkey"),
            kind="leftouter")
        assert rule.apply(filtered, _context(tpch_catalog)) is None

    def test_semi_join_requires_a_bare_scan_build(self, tpch_catalog):
        rule = IndexJoinSelection()
        bare = Q.HashJoin(Q.Scan("orders"), Q.Scan("lineitem"),
                          col("o_orderkey"), col("l_orderkey"), kind="leftsemi")
        assert isinstance(rule.apply(bare, _context(tpch_catalog)), Q.IndexJoin)
        filtered = Q.HashJoin(
            Q.Select(Q.Scan("orders"), col("o_orderdate") < date("1994-01-01")),
            Q.Scan("lineitem"), col("o_orderkey"), col("l_orderkey"),
            kind="leftsemi")
        assert rule.apply(filtered, _context(tpch_catalog)) is None

    def test_cost_gate_on_filtered_builds(self, tpch_catalog):
        estimator = Planner(tpch_catalog).estimator
        rule = IndexJoinSelection(estimator)
        # a highly selective build filter probed by a whole big table: the
        # saved hash build is tiny, the per-key screening is not — keep hash
        selective_build = Q.HashJoin(
            Q.Select(Q.Scan("customer"), col("c_custkey") == 7),
            Q.Scan("orders"), col("c_custkey"), col("o_custkey"))
        assert rule.apply(selective_build, _context(tpch_catalog)) is None
        # a small probe against a lightly filtered build: index join wins
        light_build = Q.HashJoin(
            Q.Select(Q.Scan("orders"), col("o_orderkey") > 0),
            Q.Select(Q.Scan("lineitem"), col("l_orderkey") == 7),
            col("o_orderkey"), col("l_orderkey"))
        assert isinstance(rule.apply(light_build, _context(tpch_catalog)),
                          Q.IndexJoin)

    def test_eligibility_requires_loaded_statistics(self, tpch_catalog):
        join = Q.HashJoin(Q.Scan("orders"), Q.Scan("lineitem"),
                          col("o_orderkey"), col("l_orderkey"))
        assert index_eligible_build(join, tpch_catalog) == \
            ("orders", "o_orderkey")


class TestPlannerIntegration:
    def test_default_options_select_access_paths(self, tpch_catalog):
        optimized = Planner(tpch_catalog).optimize(build_query("Q12"))
        kinds = {type(node).__name__ for node in Q.walk(optimized)}
        assert "IndexJoin" in kinds
        assert "PrunedScan" in kinds

    def test_exact_order_keeps_access_paths(self, tpch_catalog):
        optimized = Planner(tpch_catalog, PlannerOptions.exact_order()) \
            .optimize(build_query("Q14"))
        kinds = {type(node).__name__ for node in Q.walk(optimized)}
        assert "IndexJoin" in kinds
        assert "PrunedScan" in kinds

    def test_no_access_paths_and_none_disable_them(self, tpch_catalog):
        for options in (PlannerOptions.no_access_paths(), PlannerOptions.none()):
            optimized = Planner(tpch_catalog, options).optimize(build_query("Q12"))
            kinds = {type(node).__name__ for node in Q.walk(optimized)}
            assert "IndexJoin" not in kinds
            assert "PrunedScan" not in kinds

    def test_explain_reports_access_rules(self, tpch_catalog):
        report = Planner(tpch_catalog).explain(build_query("Q14"))
        assert "index-join" in report.applied
        assert "pruned-scan" in report.applied

    def test_build_side_swap_keeps_index_eligible_builds(self, tpch_catalog):
        # orders (15k rows) would normally be swapped behind the far smaller
        # filtered lineitem probe; with access paths on, the PK build stays
        # and becomes an IndexJoin
        plan = Q.Agg(
            Q.HashJoin(Q.Scan("orders"),
                       Q.Select(Q.Scan("lineitem"),
                                col("l_shipdate") >= date("1998-08-01")),
                       col("o_orderkey"), col("l_orderkey")),
            [], [Q.AggSpec("count", None, "n")])
        optimized = Planner(tpch_catalog).optimize(plan)
        joins = [node for node in Q.walk(optimized)
                 if isinstance(node, Q.HashJoin)]
        assert len(joins) == 1
        assert isinstance(joins[0], Q.IndexJoin)
        assert joins[0].index_table == "orders"
        # without access paths the swap is free to fire again
        swapped = Planner(tpch_catalog, PlannerOptions.no_access_paths()) \
            .optimize(plan)
        swapped_joins = [node for node in Q.walk(swapped)
                         if isinstance(node, Q.HashJoin)]
        assert not isinstance(swapped_joins[0], Q.IndexJoin)

    def test_optimized_plans_validate_and_fingerprint_distinctly(self, tpch_catalog):
        raw = build_query("Q12")
        optimized = Planner(tpch_catalog).optimize(build_query("Q12"))
        Q.validate(optimized, tpch_catalog)
        assert Q.plan_fingerprint(optimized) != Q.plan_fingerprint(raw)
        # the access ops fingerprint differently from their logical parents
        baseline = Planner(tpch_catalog, PlannerOptions.no_access_paths()) \
            .optimize(build_query("Q12"))
        assert Q.plan_fingerprint(optimized) != Q.plan_fingerprint(baseline)

    def test_pruning_preserves_access_nodes(self, tpch_catalog):
        from repro.planner import prune_plan
        optimized = Planner(tpch_catalog).optimize(build_query("Q12"))
        pruned = prune_plan(optimized, tpch_catalog)
        kinds = {type(node).__name__ for node in Q.walk(pruned)}
        assert "IndexJoin" in kinds
        assert "PrunedScan" in kinds


class TestValidation:
    def test_index_join_rejects_non_scan_build(self, tpch_catalog):
        join = Q.IndexJoin(
            Q.Project(Q.Scan("orders"), [("o_orderkey", col("o_orderkey"))]),
            Q.Scan("lineitem"), col("o_orderkey"), col("l_orderkey"),
            index_table="orders", index_column="o_orderkey")
        with pytest.raises(Q.PlanError):
            Q.validate(join, tpch_catalog)

    def test_index_join_rejects_mismatched_table(self, tpch_catalog):
        join = Q.IndexJoin(Q.Scan("orders"), Q.Scan("lineitem"),
                           col("o_orderkey"), col("l_orderkey"),
                           index_table="customer", index_column="c_custkey")
        with pytest.raises(Q.PlanError):
            Q.validate(join, tpch_catalog)

    def test_index_join_rejects_non_key_left_key(self, tpch_catalog):
        join = Q.IndexJoin(Q.Scan("orders"), Q.Scan("lineitem"),
                           col("o_custkey"), col("l_orderkey"),
                           index_table="orders", index_column="o_orderkey")
        with pytest.raises(Q.PlanError):
            Q.validate(join, tpch_catalog)

    def test_pruned_scan_rejects_bad_filters(self, tpch_catalog):
        with pytest.raises(Q.PlanError):
            Q.PrunedScan(Q.Scan("orders"), col("o_orderkey") > 5,
                         zone_filters=(("o_orderkey", "~~", 5),))
        with pytest.raises(Q.PlanError):
            Q.PrunedScan(Q.Select(Q.Scan("orders"), col("o_orderkey") > 5),
                         col("o_orderkey") > 5)
        plan = Q.PrunedScan(Q.Scan("orders"), col("o_orderkey") > 5,
                            zone_filters=(("nope", ">", 5),))
        with pytest.raises(Q.PlanError):
            Q.validate(plan, tpch_catalog)


class TestIndexJoinFallbacks:
    """Engines fall back to the plain hash join when the index is unusable."""

    def test_hand_built_left_outer_index_join_matches_hash_join(self, tpch_catalog):
        hash_plan = Q.HashJoin(Q.Scan("customer"), Q.Scan("orders"),
                               col("c_custkey"), col("o_custkey"),
                               kind="leftouter")
        index_plan = Q.IndexJoin(Q.Scan("customer"), Q.Scan("orders"),
                                 col("c_custkey"), col("o_custkey"),
                                 kind="leftouter", index_table="customer",
                                 index_column="c_custkey")
        engine = VolcanoEngine(tpch_catalog)
        assert engine.execute(index_plan) == engine.execute(hash_plan)
