"""Concurrent-access stress tests for the serving substrate.

The async front door executes queries on a thread pool, so the pieces it
shares across workers — :class:`IncidentLog`, :class:`CircuitBreaker` and
the process-wide compiled-query LRU — must hold up under concurrency.
These tests hammer each from many threads and assert *exact* counter
arithmetic (lost updates are the failure mode locks exist to prevent), and
pin the one genuinely subtle interleaving: a compile that started before a
table re-registration must not resurrect its stale entry after the
generation bump evicted that data's cache cohort.
"""
import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.codegen.compiler import QueryCompiler
from repro.dsl import qplan as Q
from repro.dsl.expr import col
from repro.robustness.fallback import CircuitBreaker, HardenedExecutor
from repro.robustness.faults import FaultPlan, FaultSpec, inject
from repro.robustness.incidents import CATEGORIES, IncidentLog
from repro.stack.configs import build_config
from repro.storage.access import AccessLayer

THREADS = 8
REPORTS_PER_THREAD = 200


class TestIncidentLogConcurrency:
    def test_no_lost_reports_under_concurrent_writers(self):
        log = IncidentLog(capacity=64)
        barrier = threading.Barrier(THREADS)

        def hammer(thread_id):
            barrier.wait()
            for i in range(REPORTS_PER_THREAD):
                log.report(CATEGORIES[i % len(CATEGORIES)],
                           query=f"t{thread_id}", tier="compiled")

        with ThreadPoolExecutor(THREADS) as pool:
            list(pool.map(hammer, range(THREADS)))

        snapshot = log.snapshot()
        total = THREADS * REPORTS_PER_THREAD
        assert snapshot["total_reported"] == total
        assert sum(snapshot["by_category"].values()) == total
        assert snapshot["buffered"] == 64  # ring stayed bounded
        assert snapshot["evicted"] == total - 64
        assert len(log) == 64

    def test_concurrent_readers_see_consistent_records(self):
        log = IncidentLog(capacity=256)
        stop = threading.Event()
        errors = []

        def writer():
            i = 0
            while not stop.is_set():
                log.report("tier_failure", query=f"q{i}")
                i += 1

        def reader():
            while not stop.is_set():
                try:
                    records = log.records(category="tier_failure")
                    assert all(r.category == "tier_failure" for r in records)
                    log.snapshot()
                    log.last()
                    len(log)
                except Exception as error:  # noqa: BLE001
                    errors.append(error)
                    stop.set()

        threads = [threading.Thread(target=writer) for _ in range(2)] + \
                  [threading.Thread(target=reader) for _ in range(2)]
        for thread in threads:
            thread.start()
        timer = threading.Timer(0.5, stop.set)
        timer.start()
        for thread in threads:
            thread.join(timeout=10)
        timer.cancel()
        assert errors == []

    def test_unique_seq_under_concurrency(self):
        log = IncidentLog(capacity=THREADS * REPORTS_PER_THREAD)

        def hammer(_):
            return [log.report("budget_trip").seq
                    for _ in range(REPORTS_PER_THREAD)]

        with ThreadPoolExecutor(THREADS) as pool:
            seqs = [seq for chunk in pool.map(hammer, range(THREADS))
                    for seq in chunk]
        assert len(set(seqs)) == len(seqs)


class TestCircuitBreakerConcurrency:
    def test_exact_failure_counting(self):
        """Lost increments would leave the breaker closed after exactly
        ``threshold`` concurrent failures; with the lock the arithmetic is
        exact: one True per failure at-or-past the threshold."""
        total = THREADS * 50
        breaker = CircuitBreaker(threshold=total, cooldown_seconds=3600.0)
        key = ("fp", "compiled")
        barrier = threading.Barrier(THREADS)

        def hammer(_):
            barrier.wait()
            return sum(1 for _ in range(50) if breaker.record_failure(key))

        with ThreadPoolExecutor(THREADS) as pool:
            opens = sum(pool.map(hammer, range(THREADS)))
        assert breaker.is_open(key)
        assert not breaker.allow(key)
        assert opens == 1  # exactly the hit that reached the threshold

    def test_success_failure_races_leave_consistent_state(self):
        breaker = CircuitBreaker(threshold=3, cooldown_seconds=3600.0)
        key = ("fp", "vectorized")
        stop = threading.Event()
        errors = []

        def flip(record):
            while not stop.is_set():
                try:
                    record(key)
                    breaker.allow(key)
                    breaker.is_open(key)
                except Exception as error:  # noqa: BLE001
                    errors.append(error)
                    stop.set()

        threads = [threading.Thread(target=flip, args=(breaker.record_failure,)),
                   threading.Thread(target=flip, args=(breaker.record_success,))]
        for thread in threads:
            thread.start()
        timer = threading.Timer(0.5, stop.set)
        timer.start()
        for thread in threads:
            thread.join(timeout=10)
        timer.cancel()
        assert errors == []
        # terminal state is one of the two legal ones, not corruption
        breaker.record_success(key)
        assert not breaker.is_open(key)


def _compiler():
    config = build_config("dblab-5")
    return QueryCompiler(config.stack,
                         config.flags.copy_with(logical_plan_optimizer=False))


def _scan_plan(threshold=0.0):
    return Q.Select(Q.Scan("S"), col("s_val") > threshold)


class TestCompiledQueryCacheConcurrency:
    def test_concurrent_hits_and_inserts_stay_bounded(self, tiny_catalog):
        QueryCompiler.clear_cache()
        QueryCompiler.set_cache_capacity(4)
        try:
            compiler = _compiler()
            plans = [_scan_plan(i / 10.0) for i in range(8)]
            barrier = threading.Barrier(THREADS)
            errors = []

            def hammer(thread_id):
                barrier.wait()
                try:
                    for i in range(20):
                        plan = plans[(thread_id + i) % len(plans)]
                        compiled = compiler.compile(plan, tiny_catalog, "cq")
                        assert compiled.run(tiny_catalog) is not None
                except Exception as error:  # noqa: BLE001
                    errors.append(error)

            with ThreadPoolExecutor(THREADS) as pool:
                list(pool.map(hammer, range(THREADS)))
            assert errors == []
            assert QueryCompiler.cache_len() <= 4
        finally:
            QueryCompiler.set_cache_capacity(512)
            QueryCompiler.clear_cache()

    def test_generation_bump_during_concurrent_lookup_cannot_resurrect(
            self, tiny_catalog):
        """A compile that began before a table re-registration finishes
        *after* the generation bump: its result must not be inserted — that
        would resurrect an evicted-stale entry (and its eviction sweep,
        keyed on the stale generation, would evict the fresh cohort)."""
        QueryCompiler.clear_cache()
        try:
            compiler = _compiler()
            plan = _scan_plan()
            stale_started = threading.Event()
            release = threading.Event()

            def block_first_compile(_context):
                # only the first (stale) compile blocks; the fresh compile
                # on the main thread sails through (fires_on=(1,))
                stale_started.set()
                assert release.wait(timeout=30)

            faults = FaultPlan([FaultSpec(site="compiler.compile",
                                          action=block_first_compile,
                                          fires_on=(1,))])
            with inject(faults):
                stale_thread = threading.Thread(
                    target=lambda: compiler.compile(plan, tiny_catalog, "rq"))
                stale_thread.start()
                assert stale_started.wait(timeout=30)
                # the stale compile has computed its (old-generation) cache
                # key and is stuck mid-compile; now the table re-registers
                tiny_catalog.register(tiny_catalog.table("S"))
                live_generation = AccessLayer.for_catalog(tiny_catalog).generation
                fresh = compiler.compile(plan, tiny_catalog, "rq")
                assert not fresh.cache_hit
                release.set()
                stale_thread.join(timeout=30)
                assert not stale_thread.is_alive()

            with QueryCompiler._cache_lock:
                generations = [generation for _, (_, ref, generation)
                               in QueryCompiler._cache.items()
                               if ref() is tiny_catalog]
            assert generations, "fresh entry must be cached"
            assert all(generation == live_generation
                       for generation in generations)
            # the fresh entry survived: the next compile is a cache hit
            again = compiler.compile(plan, tiny_catalog, "rq")
            assert again.cache_hit
        finally:
            QueryCompiler.clear_cache()


@pytest.mark.timeout(120)
class TestHardenedExecutorConcurrency:
    def test_concurrent_executions_share_one_executor(self, tiny_catalog):
        """The serving layer's usage pattern: one executor, many worker
        threads, subplan-sharing state isolated per thread."""
        executor = HardenedExecutor(tiny_catalog, incidents=IncidentLog())
        plan = _scan_plan()
        from repro.engine.volcano import VolcanoEngine
        reference = VolcanoEngine(tiny_catalog).execute(plan)
        errors = []

        def run(_):
            try:
                report = executor.execute(plan, "tq")
                assert report.rows == reference
            except Exception as error:  # noqa: BLE001
                errors.append(error)

        with ThreadPoolExecutor(THREADS) as pool:
            list(pool.map(run, range(THREADS * 4)))
        assert errors == []
