"""Fault-injection registry tests: determinism, firing rules, install/uninstall."""
import pytest

from repro.robustness import faults
from repro.robustness.faults import (KNOWN_SITES, DataCorruptionFault,
                                     EngineFault, FaultPlan, FaultSpec,
                                     InjectedFault, TransientFault,
                                     fault_point, fault_value, inject)


class TestFaultSpec:
    def test_rejects_unknown_site(self):
        with pytest.raises(ValueError, match="unknown fault site"):
            FaultSpec(site="engine.warp_drive")

    def test_rejects_probability_out_of_range(self):
        with pytest.raises(ValueError):
            FaultSpec(site="catalog.table", probability=1.5)

    def test_exception_hierarchy(self):
        assert issubclass(TransientFault, InjectedFault)
        assert issubclass(EngineFault, InjectedFault)
        assert issubclass(DataCorruptionFault, InjectedFault)
        assert issubclass(InjectedFault, RuntimeError)


class TestFaultPlan:
    def test_fires_on_selects_hit_numbers(self):
        plan = FaultPlan([FaultSpec(site="catalog.table", error=TransientFault,
                                    fires_on=(2,))])
        with inject(plan):
            fault_point("catalog.table", table="R")  # hit 1: no fire
            with pytest.raises(TransientFault):
                fault_point("catalog.table", table="R")  # hit 2: fires
            fault_point("catalog.table", table="R")  # hit 3: no fire
        assert plan.hits["catalog.table"] == 3
        assert plan.fired == [("catalog.table", 2)]

    def test_fires_on_none_means_every_hit(self):
        plan = FaultPlan([FaultSpec(site="access.zone_map",
                                    error=DataCorruptionFault, fires_on=None)])
        with inject(plan):
            for _ in range(3):
                with pytest.raises(DataCorruptionFault):
                    fault_point("access.zone_map", table="S")
        assert plan.fired_sites() == ("access.zone_map",) * 3

    def test_max_fires_clears_a_transient_fault(self):
        plan = FaultPlan([FaultSpec(site="catalog.table", error=TransientFault,
                                    fires_on=None, max_fires=2)])
        with inject(plan):
            for _ in range(2):
                with pytest.raises(TransientFault):
                    fault_point("catalog.table", table="R")
            fault_point("catalog.table", table="R")  # cleared
        assert len(plan.fired) == 2

    def test_seeded_probability_is_deterministic(self):
        def firing_pattern(seed):
            plan = FaultPlan([FaultSpec(site="engine.volcano.operator",
                                        error=EngineFault, probability=0.5)],
                             seed=seed)
            pattern = []
            with inject(plan):
                for _ in range(20):
                    try:
                        fault_point("engine.volcano.operator", operator="Scan")
                        pattern.append(False)
                    except EngineFault:
                        pattern.append(True)
            return pattern

        assert firing_pattern(7) == firing_pattern(7)
        assert any(firing_pattern(7))
        assert not all(firing_pattern(7))

    def test_value_sites(self):
        plan = FaultPlan([FaultSpec(site="compiler.slow_compile", value=3.5,
                                    fires_on=(1,))])
        with inject(plan):
            assert fault_value("compiler.slow_compile", 0.0) == 3.5
            assert fault_value("compiler.slow_compile", 0.0) == 0.0  # hit 2

    def test_value_default_without_plan(self):
        assert fault_value("compiler.slow_compile", 0.25) == 0.25

    def test_action_receives_site_context(self):
        seen = []
        plan = FaultPlan([FaultSpec(site="executor.pre_execute",
                                    action=seen.append)])
        with inject(plan):
            fault_point("executor.pre_execute", query="q6", tier="compiled")
        assert seen == [{"query": "q6", "tier": "compiled"}]

    def test_action_runs_before_error(self):
        order = []
        plan = FaultPlan([FaultSpec(site="catalog.table",
                                    action=lambda ctx: order.append("action"),
                                    error=TransientFault)])
        with inject(plan):
            with pytest.raises(TransientFault):
                fault_point("catalog.table", table="R")
        assert order == ["action"]


class TestInstallation:
    def test_fault_point_is_noop_without_plan(self):
        assert faults._PLAN is None
        fault_point("engine.compiled.run", query="q1")  # must not raise

    def test_inject_uninstalls_on_exit(self):
        with inject(FaultPlan([])):
            assert faults._PLAN is not None
        assert faults._PLAN is None

    def test_inject_uninstalls_on_error(self):
        with pytest.raises(RuntimeError, match="boom"):
            with inject(FaultPlan([])):
                raise RuntimeError("boom")
        assert faults._PLAN is None

    def test_nested_inject_is_rejected(self):
        with inject(FaultPlan([])):
            with pytest.raises(RuntimeError, match="already installed"):
                with inject(FaultPlan([])):
                    pass

    def test_known_sites_cover_every_planted_fault_point(self):
        # the registry is the single source of truth; every site string used
        # in these tests must be registered
        assert "executor.pre_execute" in KNOWN_SITES
        for site in ("server.queue_stall", "server.executor_slow",
                     "server.deadline_skew"):
            assert site in KNOWN_SITES
        assert len(KNOWN_SITES) == 13
