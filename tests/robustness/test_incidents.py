"""Structured incident-log tests: schema, validation, ring-buffer bound."""
import pytest

from repro.robustness.incidents import CATEGORIES, Incident, IncidentLog


class TestReporting:
    def test_report_returns_a_schema_complete_incident(self):
        log = IncidentLog(clock=lambda: 123.5)
        incident = log.report("tier_failure", query="q1", tier="compiled",
                              cause="EngineFault", message="operator blew up",
                              elapsed_seconds=0.25, operator="HashJoin")
        assert isinstance(incident, Incident)
        assert incident.category == "tier_failure"
        assert incident.query == "q1"
        assert incident.tier == "compiled"
        assert incident.cause == "EngineFault"
        assert incident.timestamp == 123.5
        assert incident.detail == {"operator": "HashJoin"}
        record = incident.as_dict()
        for field in ("seq", "timestamp", "category", "query", "tier",
                      "cause", "message", "elapsed_seconds", "detail"):
            assert field in record

    def test_unknown_category_is_rejected(self):
        log = IncidentLog()
        with pytest.raises(ValueError, match="unknown incident category"):
            log.report("spontaneous_combustion", query="q1")

    def test_sequence_numbers_are_monotonic(self):
        log = IncidentLog()
        first = log.report("budget_trip", query="a")
        second = log.report("budget_trip", query="b")
        assert second.seq > first.seq

    def test_every_category_is_reportable(self):
        log = IncidentLog()
        for category in CATEGORIES:
            log.report(category, query="q")
        assert len(log) == len(CATEGORIES)


class TestQuerying:
    def _seeded(self):
        log = IncidentLog()
        log.report("tier_failure", query="q1", tier="compiled")
        log.report("plan_degraded", query="q1", tier="compiled")
        log.report("tier_failure", query="q2", tier="vectorized")
        return log

    def test_records_filter_by_category(self):
        log = self._seeded()
        assert len(log.records(category="tier_failure")) == 2
        assert len(log.records(category="plan_degraded")) == 1

    def test_records_filter_by_query(self):
        log = self._seeded()
        assert len(log.records(query="q1")) == 2
        assert [i.tier for i in log.records(category="tier_failure",
                                            query="q2")] == ["vectorized"]

    def test_last(self):
        log = self._seeded()
        assert log.last("tier_failure").query == "q2"
        assert log.last("circuit_open") is None

    def test_clear(self):
        log = self._seeded()
        log.clear()
        assert len(log) == 0
        assert list(log) == []


class TestRingBuffer:
    def test_capacity_bounds_retention(self):
        log = IncidentLog(capacity=3)
        for n in range(10):
            log.report("budget_trip", query=f"q{n}")
        assert len(log) == 3
        assert [i.query for i in log] == ["q7", "q8", "q9"]


class TestSnapshot:
    """Per-category counters survive ring eviction; snapshot/to_json are
    the serving stats endpoint's view of the log."""

    def test_snapshot_counts_by_category(self):
        log = IncidentLog(capacity=8)
        log.report("tier_failure", query="q1")
        log.report("tier_failure", query="q2")
        log.report("admission_reject", query="q3")
        snapshot = log.snapshot()
        assert snapshot["total_reported"] == 3
        assert snapshot["buffered"] == 3
        assert snapshot["evicted"] == 0
        assert snapshot["capacity"] == 8
        assert snapshot["by_category"] == {"tier_failure": 2,
                                           "admission_reject": 1}

    def test_counters_survive_ring_eviction(self):
        log = IncidentLog(capacity=2)
        for n in range(50):
            log.report(CATEGORIES[n % 3], query=f"q{n}")
        snapshot = log.snapshot()
        assert snapshot["total_reported"] == 50
        assert snapshot["buffered"] == 2
        assert snapshot["evicted"] == 48
        assert sum(snapshot["by_category"].values()) == 50
        assert log.count(CATEGORIES[0]) == snapshot["by_category"][CATEGORIES[0]]

    def test_count_for_unreported_category_is_zero(self):
        log = IncidentLog()
        assert log.count("circuit_open") == 0

    def test_clear_resets_counters(self):
        log = IncidentLog()
        log.report("budget_trip")
        log.clear()
        snapshot = log.snapshot()
        assert snapshot["total_reported"] == 0
        assert snapshot["by_category"] == {}

    def test_to_json_round_trips(self):
        import json

        log = IncidentLog(capacity=4)
        log.report("deadline_expired", query="q1", tier="compiled",
                   detail={"remaining": 0.0})
        payload = json.loads(log.to_json())
        assert payload["total_reported"] == 1
        assert payload["by_category"] == {"deadline_expired": 1}
        assert "records" not in payload

    def test_to_json_with_records(self):
        import json

        log = IncidentLog(capacity=4)
        log.report("admission_downgrade", query="q9", tier="interpreter")
        payload = json.loads(log.to_json(include_records=True, indent=2))
        assert len(payload["records"]) == 1
        record = payload["records"][0]
        assert record["category"] == "admission_downgrade"
        assert record["query"] == "q9"

    def test_serving_categories_exist(self):
        for category in ("admission_reject", "admission_downgrade",
                         "deadline_expired"):
            assert category in CATEGORIES
