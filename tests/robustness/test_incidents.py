"""Structured incident-log tests: schema, validation, ring-buffer bound."""
import pytest

from repro.robustness.incidents import CATEGORIES, Incident, IncidentLog


class TestReporting:
    def test_report_returns_a_schema_complete_incident(self):
        log = IncidentLog(clock=lambda: 123.5)
        incident = log.report("tier_failure", query="q1", tier="compiled",
                              cause="EngineFault", message="operator blew up",
                              elapsed_seconds=0.25, operator="HashJoin")
        assert isinstance(incident, Incident)
        assert incident.category == "tier_failure"
        assert incident.query == "q1"
        assert incident.tier == "compiled"
        assert incident.cause == "EngineFault"
        assert incident.timestamp == 123.5
        assert incident.detail == {"operator": "HashJoin"}
        record = incident.as_dict()
        for field in ("seq", "timestamp", "category", "query", "tier",
                      "cause", "message", "elapsed_seconds", "detail"):
            assert field in record

    def test_unknown_category_is_rejected(self):
        log = IncidentLog()
        with pytest.raises(ValueError, match="unknown incident category"):
            log.report("spontaneous_combustion", query="q1")

    def test_sequence_numbers_are_monotonic(self):
        log = IncidentLog()
        first = log.report("budget_trip", query="a")
        second = log.report("budget_trip", query="b")
        assert second.seq > first.seq

    def test_every_category_is_reportable(self):
        log = IncidentLog()
        for category in CATEGORIES:
            log.report(category, query="q")
        assert len(log) == len(CATEGORIES)


class TestQuerying:
    def _seeded(self):
        log = IncidentLog()
        log.report("tier_failure", query="q1", tier="compiled")
        log.report("plan_degraded", query="q1", tier="compiled")
        log.report("tier_failure", query="q2", tier="vectorized")
        return log

    def test_records_filter_by_category(self):
        log = self._seeded()
        assert len(log.records(category="tier_failure")) == 2
        assert len(log.records(category="plan_degraded")) == 1

    def test_records_filter_by_query(self):
        log = self._seeded()
        assert len(log.records(query="q1")) == 2
        assert [i.tier for i in log.records(category="tier_failure",
                                            query="q2")] == ["vectorized"]

    def test_last(self):
        log = self._seeded()
        assert log.last("tier_failure").query == "q2"
        assert log.last("circuit_open") is None

    def test_clear(self):
        log = self._seeded()
        log.clear()
        assert len(log) == 0
        assert list(log) == []


class TestRingBuffer:
    def test_capacity_bounds_retention(self):
        log = IncidentLog(capacity=3)
        for n in range(10):
            log.report("budget_trip", query=f"q{n}")
        assert len(log) == 3
        assert [i.query for i in log] == ["q7", "q8", "q9"]
