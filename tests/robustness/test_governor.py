"""Resource-governor tests: budget trips on every engine, checkpoint
granularity, and the zero-overhead inactive path."""
import pytest

from repro.codegen.compiler import QueryCompiler
from repro.codegen.runtime import governed_iter, governed_range
from repro.dsl import qplan as Q
from repro.dsl.expr import col
from repro.engine.template_expander import TemplateExpander
from repro.engine.vectorized import VectorizedEngine
from repro.engine.volcano import VolcanoEngine
from repro.robustness.governor import (BudgetExceeded, QueryBudget,
                                       ResourceGovernor, current_governor,
                                       governed)
from repro.stack.configs import build_config


def _scan_plan():
    return Q.Select(Q.Scan("S"), col("s_val") > 0.0)


class TestQueryBudget:
    def test_defaults_are_unlimited(self):
        budget = QueryBudget.unlimited()
        assert budget.timeout_seconds is None
        assert budget.max_output_rows is None
        assert budget.max_intermediate_rows is None
        assert budget.max_compile_seconds is None

    def test_rejects_negative_limits(self):
        with pytest.raises(ValueError):
            QueryBudget(timeout_seconds=-1.0)
        with pytest.raises(ValueError):
            QueryBudget(max_output_rows=-5)
        with pytest.raises(ValueError):
            QueryBudget(check_interval=0)


class TestGovernorCore:
    def test_no_governor_outside_context(self):
        assert current_governor() is None
        with governed(QueryBudget.unlimited()) as governor:
            assert current_governor() is governor
        assert current_governor() is None

    def test_context_restored_on_error(self):
        with pytest.raises(RuntimeError):
            with governed(QueryBudget.unlimited()):
                raise RuntimeError("boom")
        assert current_governor() is None

    def test_row_budget_trips_within_one_row(self):
        governor = ResourceGovernor(QueryBudget(max_intermediate_rows=10))
        with pytest.raises(BudgetExceeded) as info:
            for _ in range(100):
                governor.tick()
        assert info.value.kind == "rows"
        assert info.value.stats.rows_processed == 11  # exactly one past

    def test_output_row_budget(self):
        governor = ResourceGovernor(QueryBudget(max_output_rows=5))
        governor.note_output_rows(5)  # at the limit: fine
        with pytest.raises(BudgetExceeded) as info:
            governor.note_output_rows(1)
        assert info.value.kind == "output_rows"

    def test_compile_budget(self):
        governor = ResourceGovernor(QueryBudget(max_compile_seconds=1.0))
        governor.charge_compile(0.5)
        with pytest.raises(BudgetExceeded) as info:
            governor.charge_compile(0.6)
        assert info.value.kind == "compile"
        assert info.value.stats.compile_seconds == pytest.approx(1.1)

    def test_timeout_checked_at_checkpoints(self):
        governor = ResourceGovernor(QueryBudget(timeout_seconds=0.0,
                                                check_interval=4))
        with pytest.raises(BudgetExceeded) as info:
            for _ in range(8):
                governor.tick()
        assert info.value.kind == "timeout"
        # the clock is only consulted every check_interval rows
        assert info.value.stats.rows_processed == 4

    def test_stats_carry_partial_progress(self):
        governor = ResourceGovernor(QueryBudget(max_intermediate_rows=3))
        with pytest.raises(BudgetExceeded) as info:
            governor.guard_rows(iter(range(100))).__next__()
            for _ in governor.guard_rows(iter(range(100))):
                pass
        stats = info.value.stats.as_dict()
        assert stats["rows_processed"] == 4
        assert stats["elapsed_seconds"] >= 0.0


class TestRuntimeHooks:
    def test_governed_range_is_native_range_when_inactive(self):
        assert current_governor() is None
        assert governed_range(0, 5) == range(0, 5)
        assert type(governed_range(0, 5)) is range

    def test_governed_iter_passthrough_when_inactive(self):
        values = [1, 2, 3]
        assert governed_iter(values) is values

    def test_governed_range_ticks_when_active(self):
        with governed(QueryBudget(max_intermediate_rows=3)):
            with pytest.raises(BudgetExceeded):
                for _ in governed_range(0, 100):
                    pass


@pytest.mark.timeout(20)
class TestEngineCancellation:
    """Row-budget trips cancel within one checkpoint interval per engine."""

    def test_volcano_row_budget(self, tiny_catalog):
        engine = VolcanoEngine(tiny_catalog)
        with governed(QueryBudget(max_intermediate_rows=3)):
            with pytest.raises(BudgetExceeded) as info:
                engine.execute(_scan_plan())
        assert info.value.kind == "rows"
        assert info.value.stats.rows_processed == 4

    def test_volcano_timeout(self, tiny_catalog):
        engine = VolcanoEngine(tiny_catalog)
        with governed(QueryBudget(timeout_seconds=0.0, check_interval=1)):
            with pytest.raises(BudgetExceeded) as info:
                engine.execute(_scan_plan())
        assert info.value.kind == "timeout"

    def test_volcano_output_budget(self, tiny_catalog):
        engine = VolcanoEngine(tiny_catalog)
        with governed(QueryBudget(max_output_rows=2)):
            with pytest.raises(BudgetExceeded) as info:
                engine.execute(Q.Scan("R"))
        assert info.value.kind == "output_rows"

    def test_vectorized_batch_budget(self, tiny_catalog):
        engine = VectorizedEngine(tiny_catalog, batch_size=2)
        with governed(QueryBudget(max_intermediate_rows=3)):
            with pytest.raises(BudgetExceeded) as info:
                engine.execute(_scan_plan())
        assert info.value.kind == "rows"
        # batch boundaries are the checkpoints: the trip lands within one
        # batch (2 rows) of the 3-row limit
        assert info.value.stats.rows_processed <= 3 + 2

    def test_vectorized_timeout(self, tiny_catalog):
        engine = VectorizedEngine(tiny_catalog)
        with governed(QueryBudget(timeout_seconds=0.0)):
            with pytest.raises(BudgetExceeded) as info:
                engine.execute(_scan_plan())
        assert info.value.kind == "timeout"

    def test_template_expander_checkpoints(self, tiny_catalog):
        expanded = TemplateExpander(tiny_catalog).compile(_scan_plan(), "tq")
        assert "_tpl_checkpoint(" in expanded.source
        with governed(QueryBudget(max_intermediate_rows=3)):
            with pytest.raises(BudgetExceeded) as info:
                expanded.run(tiny_catalog)
        assert info.value.kind == "rows"

    def test_template_expander_runs_clean_without_governor(self, tiny_catalog):
        expanded = TemplateExpander(tiny_catalog).compile(_scan_plan(), "tq")
        reference = VolcanoEngine(tiny_catalog).execute(_scan_plan())
        assert expanded.run(tiny_catalog) == reference

    def test_compiled_stack_in_loop_cancellation(self, tiny_catalog):
        config = build_config("dblab-5")
        compiler = QueryCompiler(config.stack, config.flags)
        compiled = compiler.compile(_scan_plan(), tiny_catalog, "gq")
        assert "_rt.governed_" in compiled.source
        with governed(QueryBudget(max_intermediate_rows=3)):
            with pytest.raises(BudgetExceeded) as info:
                compiled.run(tiny_catalog)
        assert info.value.kind == "rows"
        assert info.value.stats.rows_processed == 4

    def test_compiled_stack_clean_run_matches_reference(self, tiny_catalog):
        config = build_config("dblab-5")
        compiler = QueryCompiler(config.stack, config.flags)
        compiled = compiler.compile(_scan_plan(), tiny_catalog, "gq")
        assert compiled.run(tiny_catalog) == \
            VolcanoEngine(tiny_catalog).execute(_scan_plan())

    def test_compile_time_budget_via_compiler(self, tiny_catalog):
        QueryCompiler.clear_cache()
        config = build_config("dblab-5")
        compiler = QueryCompiler(config.stack, config.flags)
        with governed(QueryBudget(max_compile_seconds=0.0)):
            with pytest.raises(BudgetExceeded) as info:
                compiler.compile(_scan_plan(), tiny_catalog, "slowq")
        assert info.value.kind == "compile"
