"""Deadline-propagation edge cases for :class:`QueryBudget`.

The serving front door translates a request's *remaining* deadline into
``QueryBudget.timeout_seconds`` at dispatch time, so the budget machinery
must behave sensibly at the boundary the queue creates: zero or near-zero
time left.  These tests pin that a zero/near-zero timeout trips on the
governed path of **every** engine tier — first checkpoint, before
meaningful work — and that the :class:`BudgetExceeded` carried out of each
tier has a fully populated :class:`ProgressStats` (the server copies it
into the response ``detail`` so callers can see how far a killed query
got).
"""
import pytest

from repro.codegen.compiler import QueryCompiler
from repro.dsl import qplan as Q
from repro.dsl.expr import col
from repro.engine.template_expander import TemplateExpander
from repro.engine.vectorized import VectorizedEngine
from repro.engine.volcano import VolcanoEngine
from repro.robustness.fallback import ENGINE_TIERS, HardenedExecutor
from repro.robustness.governor import BudgetExceeded, QueryBudget, governed
from repro.robustness.incidents import IncidentLog
from repro.stack.configs import build_config

STATS_KEYS = {"rows_processed", "output_rows", "checkpoints",
              "elapsed_seconds", "compile_seconds"}


def _scan_plan():
    return Q.Select(Q.Scan("S"), col("s_val") > 0.0)


def _assert_populated(error: BudgetExceeded):
    """The trip carries usable partial-progress stats, not an empty shell."""
    assert error.kind == "timeout"
    stats = error.stats.as_dict()
    assert set(stats) == STATS_KEYS
    assert stats["rows_processed"] >= 1  # at least one governed step ran
    assert stats["elapsed_seconds"] >= 0.0


class TestZeroTimeoutBudget:
    """timeout_seconds=0.0 — a request admitted with no deadline left."""

    def test_zero_timeout_is_a_valid_budget(self):
        budget = QueryBudget(timeout_seconds=0.0)
        assert budget.timeout_seconds == 0.0

    def test_volcano_trips_at_first_checkpoint(self, tiny_catalog):
        with governed(QueryBudget(timeout_seconds=0.0, check_interval=1)):
            with pytest.raises(BudgetExceeded) as info:
                VolcanoEngine(tiny_catalog).execute(_scan_plan())
        _assert_populated(info.value)
        assert info.value.stats.rows_processed == 1

    def test_vectorized_trips_at_first_batch(self, tiny_catalog):
        with governed(QueryBudget(timeout_seconds=0.0, check_interval=1)):
            with pytest.raises(BudgetExceeded) as info:
                VectorizedEngine(tiny_catalog, batch_size=2).execute(
                    _scan_plan())
        _assert_populated(info.value)
        assert info.value.stats.checkpoints >= 1

    def test_template_trips_at_first_checkpoint(self, tiny_catalog):
        expanded = TemplateExpander(tiny_catalog).compile(_scan_plan(), "zq")
        with governed(QueryBudget(timeout_seconds=0.0, check_interval=1)):
            with pytest.raises(BudgetExceeded) as info:
                expanded.run(tiny_catalog)
        _assert_populated(info.value)

    def test_compiled_trips_inside_governed_range(self, tiny_catalog):
        config = build_config("dblab-5")
        compiler = QueryCompiler(config.stack, config.flags)
        compiled = compiler.compile(_scan_plan(), tiny_catalog, "zq")
        assert "_rt.governed_" in compiled.source
        with governed(QueryBudget(timeout_seconds=0.0, check_interval=1)):
            with pytest.raises(BudgetExceeded) as info:
                compiled.run(tiny_catalog)
        _assert_populated(info.value)


class TestNearZeroTimeoutBudget:
    """A few nanoseconds of deadline behave like zero, not like unlimited."""

    @pytest.mark.parametrize("timeout", [1e-9, 1e-6])
    def test_every_engine_trips(self, tiny_catalog, timeout):
        runs = [
            lambda: VolcanoEngine(tiny_catalog).execute(_scan_plan()),
            lambda: VectorizedEngine(tiny_catalog).execute(_scan_plan()),
            lambda: TemplateExpander(tiny_catalog).compile(
                _scan_plan(), "nq").run(tiny_catalog),
        ]
        for run in runs:
            with governed(QueryBudget(timeout_seconds=timeout,
                                      check_interval=1)):
                with pytest.raises(BudgetExceeded) as info:
                    run()
            _assert_populated(info.value)


@pytest.mark.timeout(60)
class TestHardenedExecutorDeadlineEdges:
    """The ladder treats a timeout trip as final on every tier — exactly
    the behavior the front door's deadline propagation relies on."""

    @pytest.mark.parametrize("tier", ENGINE_TIERS)
    def test_timeout_is_final_with_populated_stats(self, tiny_catalog, tier):
        executor = HardenedExecutor(tiny_catalog, incidents=IncidentLog())
        budget = QueryBudget(timeout_seconds=0.0, check_interval=1)
        with pytest.raises(BudgetExceeded) as info:
            executor.execute(_scan_plan(), f"edge-{tier}", budget=budget,
                             tiers=(tier,))
        _assert_populated(info.value)

    def test_zero_timeout_never_falls_through_the_ladder(self, tiny_catalog):
        """Full ladder + zero timeout: the first tier's trip ends the run;
        later tiers must not be attempted (a deadline miss is not an engine
        bug to route around)."""
        incidents = IncidentLog()
        executor = HardenedExecutor(tiny_catalog, incidents=incidents)
        budget = QueryBudget(timeout_seconds=0.0, check_interval=1)
        with pytest.raises(BudgetExceeded):
            executor.execute(_scan_plan(), "edge-ladder", budget=budget)
        trips = incidents.records(category="budget_trip")
        assert len(trips) == 1
        assert incidents.count("tier_failure") == 0

    def test_invalid_tier_subset_rejected(self, tiny_catalog):
        executor = HardenedExecutor(tiny_catalog, incidents=IncidentLog())
        with pytest.raises(ValueError):
            executor.execute(_scan_plan(), "edge-bad", tiers=("warp-drive",))
