"""Fallback-ladder tests: tier degradation, plan degradation, retries,
circuit breaking, generation skew, and the cache-hygiene regressions."""
import pytest

from repro.bench.harness import assert_rows_equivalent
from repro.codegen.compiler import QueryCompiler
from repro.dsl import qplan as Q
from repro.dsl.expr import col
from repro.engine.vectorized import VectorizedEngine
from repro.engine.volcano import VolcanoEngine
from repro.robustness.faults import (DataCorruptionFault, EngineFault,
                                     FaultPlan, FaultSpec, TransientFault,
                                     inject)
from repro.robustness.fallback import (CircuitBreaker, HardenedExecutor,
                                       LadderExhausted)
from repro.robustness.governor import BudgetExceeded, QueryBudget
from repro.robustness.incidents import DEFAULT_INCIDENTS, IncidentLog
from repro.stack.configs import build_config
from repro.storage.access import AccessError
from repro.storage.layouts import ColumnarTable
from repro.storage.schema import TableSchema, float_column, int_column


def _select_plan():
    return Q.Select(Q.Scan("S"), col("s_val") > 0.0)


def _join_plan():
    return Q.HashJoin(Q.Scan("R"), Q.Scan("S"), col("r_id"), col("s_rid"))


def _executor(catalog, **overrides):
    kwargs = dict(incidents=IncidentLog(), backoff_seconds=0.001)
    kwargs.update(overrides)
    return HardenedExecutor(catalog, **kwargs)


class TestCircuitBreaker:
    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            CircuitBreaker(threshold=0)

    def test_opens_after_threshold_failures(self):
        now = [0.0]
        breaker = CircuitBreaker(threshold=2, cooldown_seconds=10.0,
                                 clock=lambda: now[0])
        key = ("fp", "compiled")
        assert breaker.record_failure(key) is False
        assert not breaker.is_open(key)
        assert breaker.record_failure(key) is True
        assert breaker.is_open(key)
        assert not breaker.allow(key)

    def test_cooldown_lets_a_probe_through(self):
        now = [0.0]
        breaker = CircuitBreaker(threshold=1, cooldown_seconds=10.0,
                                 clock=lambda: now[0])
        key = ("fp", "compiled")
        breaker.record_failure(key)
        assert not breaker.allow(key)
        now[0] = 10.0
        assert breaker.allow(key)       # half-open probe
        assert breaker.is_open(key)     # still open until a success lands
        assert breaker.record_success(key) is True
        assert breaker.allow(key)
        assert not breaker.is_open(key)

    def test_keys_are_independent(self):
        breaker = CircuitBreaker(threshold=1)
        breaker.record_failure(("fp", "compiled"))
        assert not breaker.allow(("fp", "compiled"))
        assert breaker.allow(("fp", "vectorized"))
        assert breaker.allow(("other", "compiled"))


class TestCleanExecution:
    def test_clean_run_uses_the_top_tier(self, tiny_catalog):
        executor = _executor(tiny_catalog)
        report = executor.execute(_select_plan(), "clean_q")
        assert report.tier == "compiled"
        assert report.plan_mode == "access"
        assert report.attempts == []
        assert not report.degraded
        assert_rows_equivalent(
            VolcanoEngine(tiny_catalog).execute(_select_plan()), report.rows)
        assert len(executor.incidents) == 0

    def test_template_tier(self, tiny_catalog):
        executor = _executor(tiny_catalog, tiers=("template",))
        report = executor.execute(_select_plan(), "tmpl_q")
        assert report.tier == "template"
        assert_rows_equivalent(
            VolcanoEngine(tiny_catalog).execute(_select_plan()), report.rows)

    def test_tier_validation(self, tiny_catalog):
        with pytest.raises(ValueError, match="unknown tiers"):
            HardenedExecutor(tiny_catalog, tiers=("quantum",))
        with pytest.raises(ValueError, match="at least one tier"):
            HardenedExecutor(tiny_catalog, tiers=())


class TestTierDegradation:
    def test_compiled_failure_falls_to_vectorized(self, tiny_catalog):
        reference = VolcanoEngine(tiny_catalog).execute(_select_plan())
        executor = _executor(tiny_catalog)
        faults = FaultPlan([FaultSpec(site="engine.compiled.run",
                                      error=EngineFault, fires_on=(1,))])
        with inject(faults):
            report = executor.execute(_select_plan(), "deg_q")
        assert report.tier == "vectorized"
        assert report.degraded
        assert [a["tier"] for a in report.attempts] == ["compiled"]
        assert report.attempts[0]["error_type"] == "EngineFault"
        assert_rows_equivalent(reference, report.rows)
        failures = executor.incidents.records(category="tier_failure")
        assert [i.tier for i in failures] == ["compiled"]

    def test_two_failures_fall_to_interpreter(self, tiny_catalog):
        reference = VolcanoEngine(tiny_catalog).execute(_select_plan())
        executor = _executor(tiny_catalog)
        faults = FaultPlan([
            FaultSpec(site="engine.compiled.run", error=EngineFault,
                      fires_on=None),
            FaultSpec(site="engine.vectorized.batch", error=EngineFault,
                      fires_on=(1,)),
        ])
        with inject(faults):
            report = executor.execute(_select_plan(), "deg2_q")
        assert report.tier == "interpreter"
        assert [a["tier"] for a in report.attempts] == ["compiled", "vectorized"]
        assert_rows_equivalent(reference, report.rows)

    def test_ladder_exhausted(self, tiny_catalog):
        executor = _executor(tiny_catalog, tiers=("interpreter",))
        faults = FaultPlan([FaultSpec(site="engine.volcano.operator",
                                      error=EngineFault, fires_on=None)])
        with inject(faults):
            with pytest.raises(LadderExhausted) as info:
                executor.execute(_select_plan(), "doomed_q")
        assert info.value.query == "doomed_q"
        assert [a["tier"] for a in info.value.attempts] == ["interpreter"]
        assert "interpreter" in str(info.value)


class TestPlanDegradation:
    def test_broken_index_degrades_plan_not_engine(self, tiny_catalog):
        reference = VolcanoEngine(tiny_catalog).execute(_join_plan())
        executor = _executor(tiny_catalog)
        faults = FaultPlan([FaultSpec(
            site="access.key_index",
            error=lambda: AccessError("injected: key index missing"),
            fires_on=None)])
        with inject(faults):
            report = executor.execute(_join_plan(), "idx_q")
        # same engine tier, safer plan: the access-path plan was replaced
        assert report.tier == "compiled"
        assert report.plan_mode == "no_access"
        assert_rows_equivalent(reference, report.rows)
        degraded = executor.incidents.records(category="plan_degraded")
        assert len(degraded) == 1
        assert degraded[0].detail["from_mode"] == "access"
        assert degraded[0].detail["to_mode"] == "no_access"

    def test_persistent_corruption_exhausts_plan_modes(self, tiny_catalog):
        executor = _executor(tiny_catalog, tiers=("interpreter",))
        faults = FaultPlan([FaultSpec(site="catalog.table",
                                      error=DataCorruptionFault,
                                      fires_on=None)])
        with inject(faults):
            with pytest.raises(LadderExhausted) as info:
                executor.execute(_select_plan(), "corrupt_q")
        assert [a["plan_mode"] for a in info.value.attempts] == \
            ["access", "no_access", "raw"]
        assert len(executor.incidents.records(category="plan_degraded")) == 2
        assert len(executor.incidents.records(category="tier_failure")) == 1


class TestTransientRetry:
    def test_transient_fault_retries_in_place(self, tiny_catalog):
        sleeps = []
        executor = _executor(tiny_catalog, tiers=("interpreter",),
                             backoff_seconds=0.01, sleep=sleeps.append)
        faults = FaultPlan([FaultSpec(site="catalog.table",
                                      error=TransientFault, fires_on=(1,),
                                      max_fires=1)])
        with inject(faults):
            report = executor.execute(_select_plan(), "flaky_q")
        assert report.tier == "interpreter"
        assert [a["error_type"] for a in report.attempts] == ["TransientFault"]
        assert sleeps == [0.01]
        retry = executor.incidents.last("transient_retry")
        assert retry is not None
        assert retry.detail["attempt"] == 1
        assert retry.detail["backoff_seconds"] == 0.01

    def test_backoff_doubles_per_retry(self, tiny_catalog):
        sleeps = []
        executor = _executor(tiny_catalog, tiers=("interpreter",),
                             max_retries=2, backoff_seconds=0.01,
                             sleep=sleeps.append)
        faults = FaultPlan([FaultSpec(site="catalog.table",
                                      error=TransientFault, fires_on=(1, 2))])
        with inject(faults):
            report = executor.execute(_select_plan(), "flaky2_q")
        assert report.tier == "interpreter"
        assert sleeps == [0.01, 0.02]

    def test_retries_exhausted_moves_to_next_tier(self, tiny_catalog):
        sleeps = []
        executor = _executor(tiny_catalog, tiers=("interpreter",),
                             max_retries=1, backoff_seconds=0.01,
                             sleep=sleeps.append)
        faults = FaultPlan([FaultSpec(site="catalog.table",
                                      error=TransientFault, fires_on=None)])
        with inject(faults):
            with pytest.raises(LadderExhausted) as info:
                executor.execute(_select_plan(), "hopeless_q")
        assert len(sleeps) == 1  # one retry, then the tier is given up
        assert len(info.value.attempts) == 2


class TestCircuitBreakerIntegration:
    def test_open_breaker_skips_the_tier(self, tiny_catalog):
        executor = _executor(tiny_catalog, breaker_threshold=1,
                             breaker_cooldown_seconds=300.0)
        faults = FaultPlan([FaultSpec(site="engine.compiled.run",
                                      error=EngineFault, fires_on=(1,))])
        with inject(faults):
            first = executor.execute(_select_plan(), "cb_q")
        assert first.tier == "vectorized"
        assert executor.incidents.last("circuit_open") is not None
        # second run: no fault installed, but the breaker skips compiled
        second = executor.execute(_select_plan(), "cb_q")
        assert second.tier == "vectorized"
        assert second.attempts[0]["error_type"] == "CircuitOpen"

    def test_breaker_closes_after_successful_probe(self, tiny_catalog):
        executor = _executor(tiny_catalog, breaker_threshold=1,
                             breaker_cooldown_seconds=0.0)
        faults = FaultPlan([FaultSpec(site="engine.compiled.run",
                                      error=EngineFault, fires_on=(1,))])
        with inject(faults):
            executor.execute(_select_plan(), "probe_q")
        report = executor.execute(_select_plan(), "probe_q")
        assert report.tier == "compiled"
        assert executor.incidents.last("circuit_close") is not None


class TestBudgets:
    def test_final_budget_trip_reraises(self, tiny_catalog):
        executor = _executor(tiny_catalog, tiers=("interpreter",))
        with pytest.raises(BudgetExceeded) as info:
            executor.execute(_select_plan(), "over_q",
                             budget=QueryBudget(max_intermediate_rows=2))
        assert info.value.kind == "rows"
        trip = executor.incidents.last("budget_trip")
        assert trip is not None
        assert trip.cause == "budget:rows"
        assert trip.detail["stats"]["rows_processed"] == 3

    def test_compile_budget_trip_degrades_to_direct_tier(self, tiny_catalog):
        QueryCompiler.clear_cache()
        reference = VolcanoEngine(tiny_catalog).execute(_select_plan())
        executor = _executor(tiny_catalog,
                             budget=QueryBudget(max_compile_seconds=0.0))
        report = executor.execute(_select_plan(), "slow_compile_q")
        assert report.tier == "vectorized"
        assert report.attempts[0]["error_type"] == "BudgetExceeded"
        assert_rows_equivalent(reference, report.rows)
        trip = executor.incidents.last("budget_trip")
        assert trip.cause == "budget:compile"
        assert executor.incidents.last("tier_failure").tier == "compiled"

    def test_injected_slow_compile_trips_a_finite_budget(self, tiny_catalog):
        QueryCompiler.clear_cache()
        executor = _executor(tiny_catalog,
                             budget=QueryBudget(max_compile_seconds=5.0))
        faults = FaultPlan([FaultSpec(site="compiler.slow_compile",
                                      value=10.0, fires_on=(1,))])
        with inject(faults):
            report = executor.execute(_select_plan(), "molasses_q")
        assert report.tier == "vectorized"
        assert executor.incidents.last("budget_trip").cause == "budget:compile"


def _bigger_s_table():
    schema = TableSchema("S", [int_column("s_id"), int_column("s_rid"),
                               float_column("s_val")], primary_key=("s_id",))
    return ColumnarTable(schema, {
        "s_id": [100, 101, 102, 103, 104, 105, 106],
        "s_rid": [10, 30, 10, 50, 30, 40, 10],
        "s_val": [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0],
    })


class TestGenerationHandling:
    def test_reregistration_between_queries_is_replanned(self, tiny_catalog):
        executor = _executor(tiny_catalog)
        first = executor.execute(Q.Scan("S"), "gen_q")
        assert len(first.rows) == 6
        tiny_catalog.register(_bigger_s_table())
        second = executor.execute(Q.Scan("S"), "gen_q")
        assert len(second.rows) == 7
        assert second.attempts == []
        # the stale memo is caught at planning time: no skew incident needed
        assert executor.incidents.records(category="generation_skew") == []

    def test_skew_inside_the_plan_execute_window(self, tiny_catalog):
        executor = _executor(tiny_catalog)

        def reregister(context):
            context["catalog"].register(_bigger_s_table())

        faults = FaultPlan([FaultSpec(site="executor.pre_execute",
                                      action=reregister, fires_on=(1,),
                                      max_fires=1)])
        with inject(faults):
            report = executor.execute(Q.Scan("S"), "skew_q")
        assert report.tier == "compiled"
        assert report.attempts == []
        assert len(report.rows) == 7  # the re-planned run sees the new data
        skew = executor.incidents.last("generation_skew")
        assert skew is not None
        assert skew.query == "skew_q"


def _shared_plan():
    # the filtered S appears twice: once renamed, once raw — a genuinely
    # shared subtree without duplicate join output columns
    base = Q.Select(Q.Scan("S"), col("s_val") > 0.0)
    renamed = Q.Project(base, [("k_id", col("s_id")), ("k_val", col("s_val"))])
    return Q.HashJoin(renamed, base, col("k_id"), col("s_id"))


class TestSharingCacheHygiene:
    """Regressions for the shared-subplan cache: error paths and re-entrant
    execute() must never leak one execution's materialisation into another."""

    @pytest.mark.parametrize("engine_cls", [VolcanoEngine, VectorizedEngine])
    def test_failed_query_discards_shared_cache(self, tiny_catalog, engine_cls):
        engine = engine_cls(tiny_catalog)
        site = ("engine.volcano.operator" if engine_cls is VolcanoEngine
                else "engine.vectorized.batch")
        faults = FaultPlan([FaultSpec(site=site, error=EngineFault,
                                      fires_on=(2,))])
        with inject(faults):
            with pytest.raises(EngineFault):
                engine.execute(_shared_plan())
        assert engine._shared_ids is None
        assert engine._shared_cache is None
        # a clean rerun on the same engine instance must succeed
        reference = engine_cls(tiny_catalog).execute(_shared_plan())
        assert_rows_equivalent(reference, engine.execute(_shared_plan()))

    def test_nested_execute_does_not_disarm_outer_context(self, tiny_catalog):
        engine = VolcanoEngine(tiny_catalog)
        plan = _shared_plan()
        with engine._sharing_active(plan):
            assert engine._shared_ids is not None  # the plan really shares
            engine.execute(Q.Scan("R"))  # nested, unshared
            assert engine._shared_ids is not None
            engine.execute(_shared_plan())  # nested, shared
            assert engine._shared_ids is not None
            assert engine._shared_ids == Q.shared_subplan_fingerprints(plan)
        assert engine._shared_ids is None

    def test_hardened_executor_reuses_engines_cleanly(self, tiny_catalog):
        """Ladder fallback re-runs on the same engine instances; a fault in
        one attempt must not poison the next query's sharing state."""
        executor = _executor(tiny_catalog, tiers=("interpreter",))
        reference = VolcanoEngine(tiny_catalog).execute(_shared_plan())
        faults = FaultPlan([FaultSpec(site="engine.volcano.operator",
                                      error=TransientFault, fires_on=(2,),
                                      max_fires=1)])
        with inject(faults):
            report = executor.execute(_shared_plan(), "shared_q")
        assert [a["error_type"] for a in report.attempts] == ["TransientFault"]
        assert_rows_equivalent(reference, report.rows)


class TestLeftOuterLoweringFallback:
    """The compiled stack silently lowers a leftouter IndexJoin to the hash
    join; that downgrade must be visible as a lowering_fallback incident."""

    def test_leftouter_index_join_reports_and_stays_correct(self, tpch_catalog):
        plan = Q.IndexJoin(Q.Scan("customer"), Q.Scan("orders"),
                           col("c_custkey"), col("o_custkey"),
                           kind="leftouter", index_table="customer",
                           index_column="c_custkey")
        reference = VolcanoEngine(tpch_catalog).execute(plan)
        QueryCompiler.clear_cache()
        DEFAULT_INCIDENTS.clear()
        config = build_config("dblab-5")
        compiler = QueryCompiler(config.stack, config.flags)
        try:
            compiled = compiler.compile(plan, tpch_catalog, "louter_q")
            rows = compiled.run(tpch_catalog)
        finally:
            incidents = DEFAULT_INCIDENTS.records(category="lowering_fallback")
            DEFAULT_INCIDENTS.clear()
        assert_rows_equivalent(reference, rows)
        assert len(incidents) == 1
        assert incidents[0].cause == "leftouter_index_join"
        assert incidents[0].query == "louter_q"
        assert incidents[0].tier == "compiled"
        assert incidents[0].detail["table"] == "customer"
