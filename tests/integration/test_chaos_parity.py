"""Chaos parity: every TPC-H query, under injected faults, still answers
exactly the interpreter's answer — possibly on a degraded tier or plan.

Each test installs a seeded, deterministic :class:`FaultPlan` and runs the
query through the :class:`HardenedExecutor` ladder.  The contract checked
throughout is the reproduction's core claim under failure:

* the rows are equivalent to the clean Volcano reference under the query's
  order contract (:func:`repro.bench.harness.rows_equivalent`), and
* every degradation the ladder performed is visible in the incident log —
  no silent fallback, no silent wrong answer.

``CHAOS_SEED`` (environment) feeds the probabilistic fault-storm test so CI
can sweep a fixed seed matrix; the default is seed 0.
"""
import os

import pytest

from repro.bench.harness import assert_rows_equivalent
from repro.codegen.compiler import QueryCompiler
from repro.engine.volcano import execute
from repro.planner import sort_contract
from repro.robustness.faults import (DataCorruptionFault, EngineFault,
                                     FaultPlan, FaultSpec, TransientFault,
                                     inject)
from repro.robustness.fallback import HardenedExecutor
from repro.robustness.governor import BudgetExceeded
from repro.robustness.incidents import IncidentLog
from repro.storage.access import AccessError
from repro.tpch.queries import QUERY_NAMES, build_query

CHAOS_SEED = int(os.environ.get("CHAOS_SEED", "0"))

#: Queries whose access-path plan degrades when the named structure breaks
#: (measured against the deterministic sf=0.001/seed=20160626 catalog: the
#: planner only chooses an IndexJoin / zone-map pruned scan where the
#: statistics justify one, and only a *used* structure can fault).
KEY_INDEX_DEPENDENT = {"Q7", "Q10", "Q12", "Q14", "Q15", "Q18", "Q19", "Q20"}
ZONE_MAP_DEPENDENT = {"Q1", "Q3", "Q4", "Q5", "Q6", "Q7", "Q8", "Q10", "Q12",
                      "Q14", "Q15", "Q19", "Q20", "Q21", "Q22"}


@pytest.fixture(scope="module")
def reference_results(tpch_catalog):
    return {name: execute(build_query(name), tpch_catalog)
            for name in QUERY_NAMES}


def _check_parity(reference_results, name, report):
    assert_rows_equivalent(reference_results[name], report.rows,
                           sort_keys=sort_contract(build_query(name)),
                           context=f"{name} on {report.tier}/{report.plan_mode}")


@pytest.mark.timeout(120)
class TestEngineFaultCascade:
    """Both fast tiers die mid-query; the interpreter still answers."""

    @pytest.mark.parametrize("name", QUERY_NAMES)
    def test_falls_through_to_interpreter(self, tpch_catalog,
                                          reference_results, name):
        executor = HardenedExecutor(tpch_catalog, incidents=IncidentLog())
        faults = FaultPlan([
            FaultSpec(site="engine.compiled.run", error=EngineFault,
                      fires_on=None),
            FaultSpec(site="engine.vectorized.batch", error=EngineFault,
                      fires_on=(1,)),
        ], seed=CHAOS_SEED)
        with inject(faults):
            report = executor.execute(build_query(name), name)
        assert report.tier == "interpreter"
        assert [a["tier"] for a in report.attempts] == ["compiled", "vectorized"]
        failures = executor.incidents.records(category="tier_failure")
        assert [i.tier for i in failures] == ["compiled", "vectorized"]
        _check_parity(reference_results, name, report)


@pytest.mark.timeout(120)
class TestTransientCatalogFault:
    """A one-shot catalog hiccup is retried in place, not degraded."""

    @pytest.mark.parametrize("name", QUERY_NAMES)
    def test_retry_recovers_on_the_same_tier(self, tpch_catalog,
                                             reference_results, name):
        executor = HardenedExecutor(tpch_catalog, tiers=("interpreter",),
                                    incidents=IncidentLog(),
                                    backoff_seconds=0.0)
        faults = FaultPlan([FaultSpec(site="catalog.table",
                                      error=TransientFault, fires_on=(1,),
                                      max_fires=1)], seed=CHAOS_SEED)
        with inject(faults):
            report = executor.execute(build_query(name), name)
        assert report.tier == "interpreter"
        assert [a["error_type"] for a in report.attempts] == ["TransientFault"]
        assert executor.incidents.last("transient_retry") is not None
        _check_parity(reference_results, name, report)


@pytest.mark.timeout(120)
class TestBrokenKeyIndex:
    """A broken PK index degrades the *plan* (drop access paths), keeping the
    compiled tier; queries that never touch an index are unaffected."""

    @pytest.mark.parametrize("name", QUERY_NAMES)
    def test_plan_degrades_only_where_an_index_is_used(self, tpch_catalog,
                                                       reference_results,
                                                       name):
        executor = HardenedExecutor(tpch_catalog, incidents=IncidentLog())
        faults = FaultPlan([FaultSpec(
            site="access.key_index",
            error=lambda: AccessError("injected: key index corrupted"),
            fires_on=None)], seed=CHAOS_SEED)
        with inject(faults):
            report = executor.execute(build_query(name), name)
        assert report.tier == "compiled"
        degraded = executor.incidents.records(category="plan_degraded")
        if name in KEY_INDEX_DEPENDENT:
            assert report.plan_mode == "no_access"
            assert len(degraded) == 1
            assert degraded[0].detail["to_mode"] == "no_access"
        else:
            assert report.plan_mode == "access"
            assert degraded == []
        _check_parity(reference_results, name, report)


@pytest.mark.timeout(120)
class TestCorruptZoneMap:
    """A corrupted zone map likewise costs the access paths, not the tier."""

    @pytest.mark.parametrize("name", QUERY_NAMES)
    def test_plan_degrades_only_where_pruning_is_used(self, tpch_catalog,
                                                      reference_results,
                                                      name):
        executor = HardenedExecutor(tpch_catalog, incidents=IncidentLog())
        faults = FaultPlan([FaultSpec(site="access.zone_map",
                                      error=DataCorruptionFault,
                                      fires_on=None)], seed=CHAOS_SEED)
        with inject(faults):
            report = executor.execute(build_query(name), name)
        assert report.tier == "compiled"
        if name in ZONE_MAP_DEPENDENT:
            assert report.plan_mode == "no_access"
            assert executor.incidents.last("plan_degraded") is not None
        else:
            assert report.plan_mode == "access"
        _check_parity(reference_results, name, report)


@pytest.mark.timeout(120)
class TestGenerationSkew:
    """A table re-registered in the plan→execute window forces a re-plan."""

    @pytest.mark.parametrize("name", ["Q1", "Q6"])
    def test_skew_is_detected_and_replanned(self, tpch_catalog,
                                            reference_results, name):
        def reregister(context):
            catalog = context["catalog"]
            catalog.register(catalog.table("lineitem"))

        executor = HardenedExecutor(tpch_catalog, incidents=IncidentLog())
        faults = FaultPlan([FaultSpec(site="executor.pre_execute",
                                      action=reregister, fires_on=(1,),
                                      max_fires=1)], seed=CHAOS_SEED)
        with inject(faults):
            report = executor.execute(build_query(name), name)
        assert report.attempts == []
        skew = executor.incidents.last("generation_skew")
        assert skew is not None and skew.query == name
        _check_parity(reference_results, name, report)


@pytest.mark.timeout(120)
class TestCompileTimeFault:
    """A compile-time explosion costs the compiled tier only."""

    @pytest.mark.parametrize("name", ["Q1", "Q6", "Q14"])
    def test_compile_error_falls_to_vectorized(self, tpch_catalog,
                                               reference_results, name):
        QueryCompiler.clear_cache()  # the fault site sits behind the cache
        executor = HardenedExecutor(tpch_catalog, incidents=IncidentLog())
        faults = FaultPlan([FaultSpec(site="compiler.compile",
                                      error=EngineFault, fires_on=(1,))],
                           seed=CHAOS_SEED)
        with inject(faults):
            report = executor.execute(build_query(name), name)
        assert report.tier == "vectorized"
        assert executor.incidents.last("tier_failure").tier == "compiled"
        _check_parity(reference_results, name, report)


@pytest.mark.timeout(300)
class TestFaultStorm:
    """Probabilistic multi-site chaos: whatever fires, the answer is either
    correct or a *typed* failure — never silently wrong."""

    SPECS = (
        ("engine.compiled.run", EngineFault, 0.30),
        ("engine.vectorized.batch", EngineFault, 0.10),
        ("access.key_index",
         lambda: AccessError("storm: index corrupted"), 0.20),
        ("access.zone_map", DataCorruptionFault, 0.15),
    )

    @pytest.mark.parametrize("name", QUERY_NAMES)
    def test_storm_preserves_parity(self, tpch_catalog, reference_results,
                                    name):
        specs = [FaultSpec(site=site, error=error, probability=probability)
                 for site, error, probability in self.SPECS]
        specs.append(FaultSpec(site="catalog.table", error=TransientFault,
                               probability=0.05, max_fires=2))
        seed = CHAOS_SEED * 1000 + QUERY_NAMES.index(name)
        executor = HardenedExecutor(tpch_catalog, incidents=IncidentLog(),
                                    backoff_seconds=0.0)
        try:
            with inject(FaultPlan(specs, seed=seed)):
                report = executor.execute(build_query(name), name)
        except BudgetExceeded:
            pytest.fail("no budget installed; a budget trip is impossible")
        _check_parity(reference_results, name, report)
        # every failed attempt must be a known, typed failure
        allowed = {"EngineFault", "AccessError", "DataCorruptionFault",
                   "TransientFault", "CircuitOpen"}
        assert {a["error_type"] for a in report.attempts} <= allowed
