"""Integration tests: every TPC-H query, every engine, identical results.

This is the core correctness claim of the reproduction: the multi-level stack
may restructure the computation arbitrarily (push pipelines, partitioned
indices, string dictionaries, dense arrays) but the answer of every query must
stay exactly the interpreter's answer, at every number of DSL levels.
"""
import pytest

from repro.codegen.compiler import QueryCompiler
from repro.dsl import qplan
from repro.engine.template_expander import TemplateExpander
from repro.engine.volcano import execute
from repro.stack.configs import CONFIG_NAMES, build_config
from repro.tpch.queries import QUERY_NAMES, all_queries, build_query


def canon(rows):
    """Order-insensitive canonical form of a result set."""
    return sorted(tuple(sorted((k, repr(v)) for k, v in row.items())) for row in rows)


def ordered_prefix_is_sorted(rows, keys):
    """Check that rows respect the (field, order) keys of the top-level sort."""
    def as_key(row):
        return tuple((row[f] if o == "asc" else _neg(row[f])) for f, o in keys)
    values = [as_key(r) for r in rows]
    return values == sorted(values)


def _neg(value):
    if isinstance(value, (int, float)):
        return -value
    return tuple(-ord(c) for c in str(value))


@pytest.fixture(scope="module")
def reference_results(tpch_catalog):
    return {name: execute(build_query(name), tpch_catalog) for name in QUERY_NAMES}


class TestPlanWellFormedness:
    def test_all_queries_build_and_validate(self, tpch_catalog):
        for name, plan in all_queries().items():
            qplan.validate(plan, tpch_catalog)

    def test_all_queries_touch_expected_tables(self):
        plans = all_queries()
        assert "lineitem" in qplan.tables_used(plans["Q1"])
        assert set(qplan.tables_used(plans["Q5"])) >= {"customer", "orders", "lineitem",
                                                       "supplier", "nation", "region"}
        assert "part" in qplan.tables_used(plans["Q19"])

    def test_registry_is_complete(self):
        assert len(QUERY_NAMES) == 22
        with pytest.raises(KeyError):
            build_query("Q23")


class TestAllQueriesAtFullStack:
    """All 22 queries: interpreter vs the five-level stack."""

    @pytest.mark.parametrize("query_name", QUERY_NAMES)
    def test_dblab5_matches_interpreter(self, tpch_catalog, reference_results, query_name):
        config = build_config("dblab-5")
        plan = build_query(query_name)
        compiled = QueryCompiler(config.stack, config.flags).compile(
            plan, tpch_catalog, query_name)
        assert canon(compiled.run(tpch_catalog)) == canon(reference_results[query_name])

    @pytest.mark.parametrize("query_name", QUERY_NAMES)
    def test_template_expander_matches_interpreter(self, tpch_catalog, reference_results,
                                                   query_name):
        expanded = TemplateExpander(tpch_catalog).compile(build_query(query_name), query_name)
        assert canon(expanded.run(tpch_catalog)) == canon(reference_results[query_name])


class TestRepresentativeQueriesAtEveryLevel:
    """A representative subset across every stack configuration."""

    REPRESENTATIVE = ("Q1", "Q3", "Q4", "Q6", "Q13", "Q14", "Q16", "Q21", "Q22")

    @pytest.mark.parametrize("config_name", CONFIG_NAMES)
    @pytest.mark.parametrize("query_name", REPRESENTATIVE)
    def test_configuration_matches_interpreter(self, tpch_catalog, reference_results,
                                               query_name, config_name):
        config = build_config(config_name)
        plan = build_query(query_name)
        compiled = QueryCompiler(config.stack, config.flags).compile(
            plan, tpch_catalog, query_name)
        assert canon(compiled.run(tpch_catalog)) == canon(reference_results[query_name])


class TestOrderingOfSortedQueries:
    """Queries ending in Sort/Limit must respect the requested order."""

    CASES = {
        "Q1": (("l_returnflag", "asc"), ("l_linestatus", "asc")),
        "Q3": (("revenue", "desc"),),
        "Q10": (("revenue", "desc"),),
        "Q16": (("supplier_cnt", "desc"), ("p_brand", "asc")),
    }

    @pytest.mark.parametrize("query_name", sorted(CASES))
    def test_compiled_output_is_sorted(self, tpch_catalog, query_name):
        config = build_config("dblab-5")
        compiled = QueryCompiler(config.stack, config.flags).compile(
            build_query(query_name), tpch_catalog, query_name)
        rows = compiled.run(tpch_catalog)
        assert rows, f"{query_name} returned no rows at the test scale factor"
        assert ordered_prefix_is_sorted(rows, self.CASES[query_name])
