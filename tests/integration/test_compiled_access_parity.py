"""All-22 contract parity for the access-aware compiled stacks.

The compiled lineup now consumes the same catalog-resident physical access
layer as the direct engines (PR 4) and shares repeated subplans at the IR
level.  This suite proves the closed architecture loop end to end: every
TPC-H query, planner-optimized and pushed through ``dblab-5`` and
``tpch-compliant`` with the access layer and subplan sharing enabled,
returns rows equivalent (under the raw plan's sort contract) to the Volcano
reference executing the raw plan — and the whole 22-query run builds every
access structure exactly once.
"""
import pytest

from repro.bench.harness import assert_rows_equivalent
from repro.codegen.compiler import QueryCompiler
from repro.engine.volcano import VolcanoEngine
from repro.planner import Planner, sort_contract
from repro.stack.configs import build_config
from repro.tpch.queries import QUERY_NAMES, build_query

CONFIGS = ("dblab-5", "tpch-compliant")


@pytest.fixture(scope="module")
def planned(tpch_catalog):
    planner = Planner(tpch_catalog)
    return {name: planner.optimize(build_query(name)) for name in QUERY_NAMES}


@pytest.fixture(scope="module")
def reference(tpch_catalog):
    engine = VolcanoEngine(tpch_catalog)
    return {name: engine.execute(build_query(name)) for name in QUERY_NAMES}


@pytest.fixture(scope="module")
def compilers(tpch_catalog):
    built = {}
    for config_name in CONFIGS:
        config = build_config(config_name)
        flags = config.flags.copy_with(catalog_access_layer=True,
                                       subplan_sharing=True)
        built[config_name] = QueryCompiler(config.stack, flags)
    return built


@pytest.mark.parametrize("config_name", CONFIGS)
@pytest.mark.parametrize("query_name", QUERY_NAMES)
def test_all22_contract_parity(tpch_catalog, planned, reference, compilers,
                               config_name, query_name):
    compiled = compilers[config_name].compile(planned[query_name],
                                              tpch_catalog, query_name)
    rows = compiled.run(tpch_catalog)
    assert_rows_equivalent(reference[query_name], rows,
                           sort_keys=sort_contract(build_query(query_name)),
                           context=f"{config_name}/{query_name}")


def test_access_structures_build_once_across_compiled_runs(tpch_catalog,
                                                           planned, compilers):
    """One shared access layer serves both compiled configs and repeated
    prepare()/run() cycles without ever rebuilding a structure."""
    layer = tpch_catalog.access_layer()
    compiled = [compilers["dblab-5"].compile(planned[name], tpch_catalog, name)
                for name in ("Q6", "Q12", "Q14", "Q19")]
    for query in compiled:
        query.prepare(tpch_catalog)
        query.run(tpch_catalog)
    counts = dict(layer.build_counts)
    assert counts[("key_index", "orders", "o_orderkey")] == 1
    # a second full prepare+run cycle, plus the compliant config, reuses
    # every structure: the build counters do not move
    for query in compiled:
        query.prepare(tpch_catalog)
        query.run(tpch_catalog)
    compliant = compilers["tpch-compliant"].compile(planned["Q12"],
                                                    tpch_catalog, "Q12")
    compliant.run(tpch_catalog)
    assert layer.build_counts == counts
