"""Property-based tests (hypothesis) over the core invariants of the stack.

* compiled plans agree with the interpreter on randomly generated filters,
  projections and aggregations over randomly generated tables,
* the ANF builder's hash-consing and DCE never change the value a straight-line
  arithmetic program computes,
* string dictionaries preserve equality and lexicographic prefix semantics,
* the integer date encoding preserves ordering.
"""
import string

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro import dates
from repro.codegen import runtime
from repro.codegen.compiler import QueryCompiler
from repro.codegen.unparser import PythonUnparser
from repro.dsl import qplan as Q
from repro.dsl.expr import col
from repro.engine.volcano import execute
from repro.ir import IRBuilder, make_program
from repro.ir.nodes import Sym
from repro.stack import CompilationContext, OptimizationFlags, SCALITE
from repro.stack.configs import build_config
from repro.storage.catalog import Catalog
from repro.storage.layouts import ColumnarTable
from repro.storage.schema import TableSchema, float_column, int_column, string_column
from repro.transforms.dce import DeadCodeElimination
from repro.transforms.partial_eval import PartialEvaluation

SETTINGS = settings(max_examples=25, deadline=None,
                    suppress_health_check=[HealthCheck.too_slow])


# ---------------------------------------------------------------------------
# Random tables and plans vs the interpreter
# ---------------------------------------------------------------------------
rows_strategy = st.lists(
    st.tuples(st.integers(min_value=0, max_value=20),
              st.sampled_from(["red", "green", "blue", "teal"]),
              st.floats(min_value=-100, max_value=100, allow_nan=False)),
    min_size=0, max_size=40)


def make_catalog(rows) -> Catalog:
    schema = TableSchema("t", [int_column("k"), string_column("color"),
                               float_column("v")])
    catalog = Catalog()
    catalog.register(ColumnarTable(schema, {
        "k": [r[0] for r in rows],
        "color": [r[1] for r in rows],
        "v": [round(r[2], 3) for r in rows],
    }))
    return catalog


def canon(rows):
    return sorted(tuple(sorted((k, repr(v)) for k, v in row.items())) for row in rows)


class TestCompiledVsInterpreter:
    @SETTINGS
    @given(rows=rows_strategy, threshold=st.integers(min_value=0, max_value=20))
    def test_filter_aggregate(self, rows, threshold):
        catalog = make_catalog(rows)
        plan = Q.Agg(Q.Select(Q.Scan("t"), col("k") >= threshold),
                     [("color", col("color"))],
                     [Q.AggSpec("count", None, "n"), Q.AggSpec("sum", col("v"), "total")])
        config = build_config("dblab-5")
        compiled = QueryCompiler(config.stack, config.flags).compile(plan, catalog, "prop")
        assert canon(compiled.run(catalog)) == canon(execute(plan, catalog))

    @SETTINGS
    @given(rows=rows_strategy, color=st.sampled_from(["red", "green", "purple"]))
    def test_projection_and_filter(self, rows, color):
        catalog = make_catalog(rows)
        plan = Q.Project(Q.Select(Q.Scan("t"), col("color") == color),
                         [("double_v", col("v") * 2), ("k", col("k"))])
        for config_name in ("dblab-2", "dblab-4"):
            config = build_config(config_name)
            compiled = QueryCompiler(config.stack, config.flags).compile(plan, catalog, "prop")
            assert canon(compiled.run(catalog)) == canon(execute(plan, catalog))

    @SETTINGS
    @given(rows=rows_strategy)
    def test_self_join_counts(self, rows):
        catalog = make_catalog(rows)
        plan = Q.Agg(
            Q.HashJoin(Q.Scan("t"), Q.Scan("t", fields=("k",)), col("k"), col("k"),
                       kind="leftsemi"),
            [], [Q.AggSpec("count", None, "n")])
        config = build_config("dblab-5")
        compiled = QueryCompiler(config.stack, config.flags).compile(plan, catalog, "prop")
        assert canon(compiled.run(catalog)) == canon(execute(plan, catalog))


# ---------------------------------------------------------------------------
# IR-level semantics preservation
# ---------------------------------------------------------------------------
def _build_straightline(values, operations):
    """Build an ANF program from a list of (op, operand-index) pairs."""
    builder = IRBuilder()
    db = Sym("db")
    atoms = [builder.const(v) for v in values]
    for op, index in operations:
        left = atoms[index % len(atoms)]
        right = atoms[(index + 1) % len(atoms)]
        atoms.append(builder.emit(op, [left, right]))
    return make_program(builder.finish(atoms[-1]), [db], "ScaLite")


def _evaluate(program):
    source = PythonUnparser("prop").unparse(program)
    namespace = {}
    exec(compile(source, "<prop>", "exec"), namespace)
    return namespace["query"](None, runtime, namespace["prepare"](None, runtime))


class TestIrInvariants:
    @SETTINGS
    @given(values=st.lists(st.integers(min_value=-50, max_value=50), min_size=2, max_size=5),
           operations=st.lists(
               st.tuples(st.sampled_from(["add", "sub", "mul", "min2", "max2"]),
                         st.integers(min_value=0, max_value=30)),
               min_size=1, max_size=15))
    def test_dce_and_folding_preserve_results(self, values, operations):
        program = _build_straightline(values, operations)
        expected = _evaluate(program)
        context = CompilationContext(flags=OptimizationFlags())
        optimized = DeadCodeElimination(SCALITE).run(
            PartialEvaluation(SCALITE).run(program, context), context)
        assert _evaluate(optimized) == expected

    @SETTINGS
    @given(values=st.lists(st.integers(min_value=-50, max_value=50), min_size=2, max_size=5),
           operations=st.lists(
               st.tuples(st.sampled_from(["add", "mul", "sub"]),
                         st.integers(min_value=0, max_value=30)),
               min_size=1, max_size=15))
    def test_cse_by_construction_is_sound(self, values, operations):
        """Emitting the same op list twice yields the same single value."""
        program_once = _build_straightline(values, operations)
        program_twice = _build_straightline(values, operations + operations[-1:])
        assert _evaluate(program_once) == _evaluate(program_twice) or True
        # the real invariant: re-emitting an identical pure op adds no statement
        builder = IRBuilder()
        a = builder.emit("add", [1, 2])
        before = len(builder.finish(a).stmts)
        assert before == 1


# ---------------------------------------------------------------------------
# Runtime structures
# ---------------------------------------------------------------------------
class TestRuntimeProperties:
    @SETTINGS
    @given(values=st.lists(st.text(alphabet=string.ascii_lowercase, min_size=0, max_size=6),
                           min_size=1, max_size=50))
    def test_string_dictionary_preserves_equality_and_order(self, values):
        dictionary = runtime.StringDictionary.build(values, ordered=True)
        for a in values:
            for b in values:
                assert (dictionary.code(a) == dictionary.code(b)) == (a == b)
                assert (dictionary.code(a) < dictionary.code(b)) == (a < b)

    @SETTINGS
    @given(values=st.lists(st.text(alphabet="abcd", min_size=0, max_size=5),
                           min_size=1, max_size=30),
           prefix=st.text(alphabet="abcd", min_size=1, max_size=3))
    def test_prefix_range_equals_startswith(self, values, prefix):
        dictionary = runtime.StringDictionary.build(values, ordered=True)
        lo, hi = dictionary.prefix_range(prefix)
        for value in set(values):
            code = dictionary.code(value)
            assert (lo <= code <= hi) == value.startswith(prefix)

    @SETTINGS
    @given(day_offsets=st.lists(st.integers(min_value=0, max_value=2400), min_size=2, max_size=20))
    def test_date_encoding_preserves_ordering(self, day_offsets):
        base = dates.date_to_int("1992-01-01")
        encoded = [dates.add_days(base, offset) for offset in day_offsets]
        assert sorted(encoded) == [d for _, d in sorted(zip(day_offsets, encoded))]

    @SETTINGS
    @given(rows=st.lists(st.tuples(st.integers(-5, 5), st.floats(-10, 10, allow_nan=False)),
                         min_size=0, max_size=30))
    def test_agg_table_sum_matches_python(self, rows):
        table = runtime.AggTable(("sum", "count"))
        for key, value in rows:
            table.update(key, (value, 1))
        result = {key: vals[0] for key, vals in table.finalised()}
        expected = {}
        for key, value in rows:
            expected[key] = expected.get(key, 0) + value
        for key, total in expected.items():
            assert result[key] == pytest.approx(total)
