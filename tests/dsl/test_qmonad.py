"""Tests for the QMonad collection front end and its shortcut-fusion lowering."""
import pytest

from repro.codegen.compiler import QueryCompiler
from repro.dsl import qplan as Q
from repro.dsl.expr import BinOp, col
from repro.dsl.qmonad import QMonadError, QueryMonad, to_qplan
from repro.engine.volcano import execute
from repro.stack import CompilationContext, OptimizationFlags, QMONAD
from repro.stack.configs import build_config
from repro.transforms.fusion import MonadFusionRules


def canon(rows):
    return sorted(tuple(sorted((k, repr(v)) for k, v in row.items())) for row in rows)


def example_query():
    """The paper's Figure 4c: R.filter(name == "R1").hashJoin(S).count."""
    return (QueryMonad.table("R")
            .filter(col("r_name") == "R1")
            .hashJoin(QueryMonad.table("S"), col("r_sid"), col("s_rid"))
            .count("count"))


class TestConstruction:
    def test_fluent_chain_builds_tree(self):
        query = example_query()
        assert query.op == "fold"
        assert query.children[0].op == "hashJoin"
        assert "table(R)" in repr(query)

    def test_invalid_join_kind_rejected(self):
        with pytest.raises(QMonadError):
            QueryMonad.table("R").hashJoin(QueryMonad.table("S"), col("a"), col("b"),
                                           kind="full-outer")

    def test_to_qplan_structure(self):
        plan = to_qplan(example_query())
        assert isinstance(plan, Q.Agg)
        assert isinstance(plan.child, Q.HashJoin)
        assert isinstance(plan.child.left, Q.Select)
        assert isinstance(plan.child.left.child, Q.Scan)

    def test_to_qplan_covers_every_operator(self):
        query = (QueryMonad.table("R", fields=("r_id", "r_name"))
                 .map([("key", col("r_id"))])
                 .groupBy([("key", col("key"))], [Q.AggSpec("count", None, "n")])
                 .sortBy([(col("n"), "desc")])
                 .take(3))
        plan = to_qplan(query)
        kinds = [type(node).__name__ for node in Q.walk(plan)]
        assert kinds == ["Limit", "Sort", "Agg", "Project", "Scan"]

    def test_unknown_operator_rejected(self):
        with pytest.raises(QMonadError):
            to_qplan(QueryMonad("teleport", {}))


class TestToQPlanRoundTrip:
    """``to_qplan`` produces exactly the hand-built plan for every operator —
    checked by structural fingerprint equality, the same notion of identity
    the compiled-query cache uses."""

    def assert_same_plan(self, query, expected):
        assert Q.plan_fingerprint(to_qplan(query)) == Q.plan_fingerprint(expected)

    def test_table(self):
        self.assert_same_plan(QueryMonad.table("R"), Q.Scan("R"))
        self.assert_same_plan(QueryMonad.table("R", fields=("r_id", "r_name")),
                              Q.Scan("R", ("r_id", "r_name")))

    def test_filter(self):
        self.assert_same_plan(
            QueryMonad.table("R").filter(col("r_name") == "R1"),
            Q.Select(Q.Scan("R"), col("r_name") == "R1"))

    def test_map(self):
        self.assert_same_plan(
            QueryMonad.table("R").map([("key", col("r_id") + 1)]),
            Q.Project(Q.Scan("R"), [("key", col("r_id") + 1)]))

    @pytest.mark.parametrize("kind", Q.JOIN_KINDS)
    def test_hash_join_kinds(self, kind):
        self.assert_same_plan(
            QueryMonad.table("R").hashJoin(QueryMonad.table("S"),
                                           col("r_sid"), col("s_rid"), kind=kind),
            Q.HashJoin(Q.Scan("R"), Q.Scan("S"), col("r_sid"), col("s_rid"),
                       kind=kind))

    def test_hash_join_residual(self):
        residual = col("r_id") < col("s_id")
        self.assert_same_plan(
            QueryMonad.table("R").hashJoin(QueryMonad.table("S"),
                                           col("r_sid"), col("s_rid"),
                                           residual=residual),
            Q.HashJoin(Q.Scan("R"), Q.Scan("S"), col("r_sid"), col("s_rid"),
                       residual=residual))

    def test_group_by_with_having(self):
        aggregates = [Q.AggSpec("sum", col("s_val"), "total")]
        having = col("total") > 2.0
        self.assert_same_plan(
            QueryMonad.table("S").groupBy([("rid", col("s_rid"))], aggregates,
                                          having=having),
            Q.Agg(Q.Scan("S"), [("rid", col("s_rid"))], tuple(aggregates),
                  having=having))

    def test_folds(self):
        self.assert_same_plan(QueryMonad.table("S").count("n"),
                              Q.Agg(Q.Scan("S"), (),
                                    (Q.AggSpec("count", None, "n"),)))
        self.assert_same_plan(QueryMonad.table("S").sum(col("s_val"), "t"),
                              Q.Agg(Q.Scan("S"), (),
                                    (Q.AggSpec("sum", col("s_val"), "t"),)))
        self.assert_same_plan(QueryMonad.table("S").avg(col("s_val"), "m"),
                              Q.Agg(Q.Scan("S"), (),
                                    (Q.AggSpec("avg", col("s_val"), "m"),)))

    def test_sort_by_and_take(self):
        chain = (QueryMonad.table("R")
                 .sortBy([(col("r_id"), "desc")])
                 .take(2))
        self.assert_same_plan(
            chain, Q.Limit(Q.Sort(Q.Scan("R"), [(col("r_id"), "desc")]), 2))

    def test_take_sort_chain_fuses_to_topk_after_planning(self, tiny_catalog):
        from repro.planner import Planner, PlannerOptions

        chain = (QueryMonad.table("R")
                 .sortBy([(col("r_id"), "desc"), (col("r_name"), "asc")])
                 .take(3))
        options = PlannerOptions(field_pruning=False, join_strategy=False)
        optimized = Planner(tiny_catalog, options).optimize(to_qplan(chain))
        expected = Q.TopK(Q.Scan("R"),
                          [(col("r_id"), "desc"), (col("r_name"), "asc")], 3)
        assert Q.plan_fingerprint(optimized) == Q.plan_fingerprint(expected)
        assert execute(optimized, tiny_catalog) == \
            execute(to_qplan(chain), tiny_catalog)


class TestFusionRules:
    def _context(self):
        return CompilationContext(flags=OptimizationFlags())

    def test_filter_filter_fusion(self):
        query = QueryMonad.table("R").filter(col("r_id") > 1).filter(col("r_sid") > 5)
        fused = MonadFusionRules().run(query, self._context())
        assert fused.op == "filter"
        assert fused.children[0].op == "table"
        assert isinstance(fused.args["predicate"], BinOp)
        assert fused.args["predicate"].op == "and"

    def test_map_map_fusion_composes_projections(self):
        """Figure 5: R.map(f).map(g) -> R.map(g o f)."""
        query = (QueryMonad.table("S")
                 .map([("v2", col("s_val") * 2)])
                 .map([("v4", col("v2") * 2)]))
        fused = MonadFusionRules().run(query, self._context())
        assert fused.op == "map"
        assert fused.children[0].op == "table"
        (name, expr), = fused.args["projections"]
        assert name == "v4"
        # v4 = (s_val * 2) * 2
        assert expr.op == "*"
        assert expr.left.op == "*"

    def test_fusion_preserves_semantics(self, tiny_catalog):
        query = (QueryMonad.table("S")
                 .map([("v2", col("s_val") * 2)])
                 .map([("v4", col("v2") * 2)])
                 .sum(col("v4"), "total"))
        fused = MonadFusionRules().run(query, self._context())
        assert canon(execute(to_qplan(fused), tiny_catalog)) == \
            canon(execute(to_qplan(query), tiny_catalog))

    def test_fusion_is_idempotent(self):
        query = QueryMonad.table("R").filter(col("r_id") > 1).filter(col("r_sid") > 5)
        once = MonadFusionRules().run(query, self._context())
        twice = MonadFusionRules().run(once, self._context())
        assert repr(once) == repr(twice)


class TestCompilation:
    @pytest.mark.parametrize("config_name", ["dblab-2", "dblab-3", "dblab-4", "dblab-5"])
    def test_qmonad_compiles_through_every_stack(self, tiny_catalog, config_name):
        query = example_query()
        reference = execute(to_qplan(query), tiny_catalog)
        config = build_config(config_name)
        compiled = QueryCompiler(config.stack, config.flags).compile(query, tiny_catalog, "qm")
        assert compiled.run(tiny_catalog) == reference

    def test_qmonad_group_by_and_sort(self, tiny_catalog):
        query = (QueryMonad.table("S")
                 .filter(col("s_val") > 1.0)
                 .groupBy([("s_rid", col("s_rid"))],
                          [Q.AggSpec("sum", col("s_val"), "total")])
                 .sortBy([(col("total"), "desc")]))
        config = build_config("dblab-5")
        compiled = QueryCompiler(config.stack, config.flags).compile(query, tiny_catalog, "qm")
        assert compiled.run(tiny_catalog) == execute(to_qplan(query), tiny_catalog)

    def test_qmonad_and_qplan_front_ends_agree(self, tiny_catalog):
        """Both front ends, same stack, same answer (Section 4.6)."""
        config = build_config("dblab-5")
        compiler = QueryCompiler(config.stack, config.flags)
        monad_result = compiler.compile(example_query(), tiny_catalog, "qm").run(tiny_catalog)
        plan = Q.Agg(
            Q.HashJoin(Q.Select(Q.Scan("R"), col("r_name") == "R1"),
                       Q.Scan("S"), col("r_sid"), col("s_rid")),
            [], [Q.AggSpec("count", None, "count")])
        plan_result = compiler.compile(plan, tiny_catalog, "qp").run(tiny_catalog)
        assert monad_result == plan_result

    def test_stack_rejects_other_program_types(self, tiny_catalog):
        config = build_config("dblab-5")
        from repro.codegen.compiler import CompilerError
        with pytest.raises(CompilerError):
            QueryCompiler(config.stack, config.flags).compile("SELECT 1", tiny_catalog)

    def test_qmonad_language_registered_in_stacks(self):
        for name in ("dblab-2", "dblab-5"):
            config = build_config(name)
            assert QMONAD in config.stack.languages
            assert config.stack.lowering_from(QMONAD) is not None
