"""Unit tests for the expression-to-closure compiler."""
import pytest

from repro.dsl import expr_compile as EC
from repro.dsl.expr import (Col, case, col, evaluate, in_list, is_null, like,
                            lit, substr, year)


ROWS = [
    {"a": 1, "b": 2.5, "s": "FooBar", "d": 9131, "n": None},
    {"a": -3, "b": 0.0, "s": "special requests", "d": 10500, "n": 7},
    {"a": 50, "b": 100.0, "s": "BARRELS", "d": 8766, "n": 0},
]

EXPRESSIONS = [
    col("a") + col("b") * 2 - 1,
    (col("a") > 0) & (col("b") < 50.0),
    (col("a") == 1) | ~(col("b") >= 2.5),
    col("b") / 2 + (0 - col("a")),
    like(col("s"), "Foo%"),
    like(col("s"), "%special%requests%"),
    in_list(col("a"), [1, 50, 99]),
    case([(col("a") > 10, col("b")), (col("a") > 0, lit(0.5))], lit(-1)),
    substr(col("s"), 1, 3),
    year(col("d")),
    is_null(col("n")),
    lit(True) & (col("a") != 2),
]


class TestRowForm:
    @pytest.mark.parametrize("expr", EXPRESSIONS, ids=repr)
    def test_matches_evaluate(self, expr):
        fn = EC.compile_row(expr)
        for row in ROWS:
            assert fn(row) == evaluate(expr, row)

    def test_and_or_return_plain_bools(self):
        # evaluate() coerces connective operands with bool(); the compiled
        # form must not leak truthy operand values.
        expr = col("a") & col("n")
        fn = EC.compile_row(expr)
        row = {"a": 7, "n": 3}
        assert fn(row) is True
        assert fn(row) == evaluate(expr, row)

    def test_closures_are_cached(self):
        first = EC.compile_row(col("a") + 1)
        second = EC.compile_row(col("a") + 1)
        assert first is second

    def test_structurally_different_expressions_compile_separately(self):
        assert EC.compile_row(col("a") + 1) is not EC.compile_row(col("a") + 2)


class TestPairForm:
    def test_sided_columns(self):
        expr = Col("x", "left") < Col("x", "right")
        fn = EC.compile_pair(expr)
        assert fn({"x": 1}, {"x": 2}) is True
        assert fn({"x": 3}, {"x": 2}) is False

    def test_unsided_columns_follow_merged_dict_semantics(self):
        # evaluate() resolves unsided columns against {**left, **right}:
        # the right side shadows the left.
        expr = col("x") + col("y")
        fn = EC.compile_pair(expr)
        left, right = {"x": 1, "y": 10}, {"x": 100}
        assert fn(left, right) == evaluate(expr, {**left, **right})
        assert fn(left, right) == 110


class TestColumnarForms:
    COLS = {"a": [1, -3, 50], "b": [2.5, 0.0, 100.0], "s": ["Foo", "xx", "Fob"],
            "n": [None, 7, 0]}

    @pytest.mark.parametrize("expr", [
        col("a") * 2 + col("b"),
        case([(col("a") > 0, col("b"))], lit(0)),
        is_null(col("n")),
    ], ids=repr)
    def test_values_match_row_at_a_time(self, expr):
        fn = EC.compile_columnar(expr)
        rows = [{k: v[i] for k, v in self.COLS.items()} for i in range(3)]
        assert fn(self.COLS, range(3)) == [evaluate(expr, row) for row in rows]

    def test_predicate_returns_selection_vector(self):
        pred = EC.compile_columnar_predicate((col("a") > 0) & (col("b") < 50.0))
        assert pred(self.COLS, range(3)) == [0]

    def test_predicate_respects_incoming_selection(self):
        pred = EC.compile_columnar_predicate(col("a") != 0)
        assert pred(self.COLS, [2, 0]) == [2, 0]

    def test_predicate_on_empty_selection(self):
        pred = EC.compile_columnar_predicate(col("a") > 0)
        assert pred(self.COLS, []) == []

    def test_columnar_pair_binder(self):
        lcols = {"k": [1, 2, 3], "v": [10, 20, 30]}
        rcols = {"k": [2, 3], "w": [200, 300]}
        expr = Col("v", "left") + Col("w", "right")
        fn = EC.compile_columnar_pair(expr, ("k", "v"), ("k", "w"))(lcols, rcols)
        assert fn(0, 1) == 310
        # unsided column resolves to the right side when both have it
        shadow = EC.compile_columnar_pair(col("k"), ("k", "v"), ("k", "w"))(lcols, rcols)
        assert shadow(0, 1) == 3


class TestFingerprints:
    def test_stable_across_equal_structures(self):
        assert EC.expr_fingerprint(col("a") + 1) == EC.expr_fingerprint(col("a") + 1)

    def test_sensitive_to_literals_ops_and_sides(self):
        prints = {
            EC.expr_fingerprint(col("a") + 1),
            EC.expr_fingerprint(col("a") + 2),
            EC.expr_fingerprint(col("a") - 1),
            EC.expr_fingerprint(col("b") + 1),
            EC.expr_fingerprint(Col("a", "left") + 1),
            EC.expr_fingerprint(lit(1) + col("a")),
        }
        assert len(prints) == 6

    def test_distinguishes_value_types(self):
        assert EC.expr_fingerprint(lit(1)) != EC.expr_fingerprint(lit(1.0))
        assert EC.expr_fingerprint(lit(True)) != EC.expr_fingerprint(lit(1))


class TestSlots:
    def test_expr_nodes_have_no_instance_dict(self):
        for node in (col("a"), lit(1), col("a") + 1, ~col("a"),
                     like(col("a"), "x%"), in_list(col("a"), [1]),
                     substr(col("a"), 1, 2), year(col("a")), is_null(col("a"))):
            assert not hasattr(node, "__dict__"), type(node).__name__
