"""Unit tests for the scalar expression DSL."""
import pytest

from repro.dsl.expr import (BinOp, Col, ExprError, Like, UnaryOp, and_all, case, col,
                            columns_used, date, evaluate, in_list, is_null, like, lit,
                            substr, wrap, year)


ROW = {"a": 10, "b": 3, "name": "PROMO BRUSHED STEEL", "flag": True,
       "ship": 19950315, "price": 100.0, "disc": 0.05, "null_col": None}


class TestConstruction:
    def test_operator_overloading_builds_binops(self):
        expr = (col("a") + 1) * col("b")
        assert isinstance(expr, BinOp)
        assert expr.op == "*"
        assert expr.left.op == "+"

    def test_comparison_builds_expression_not_bool(self):
        expr = col("a") == 10
        assert isinstance(expr, BinOp)
        assert expr.op == "=="

    def test_reverse_operators(self):
        assert evaluate(1 - col("disc"), ROW) == pytest.approx(0.95)
        assert evaluate(2 * col("b"), ROW) == 6
        assert evaluate(1 + col("b"), ROW) == 4

    def test_wrap_rejects_unsupported(self):
        with pytest.raises(ExprError):
            wrap(object())

    def test_invalid_operator_names_rejected(self):
        with pytest.raises(ExprError):
            BinOp("**", lit(1), lit(2))
        with pytest.raises(ExprError):
            UnaryOp("abs", lit(1))

    def test_date_literal_uses_integer_encoding(self):
        assert date("1998-09-02").value == 19980902

    def test_and_all(self):
        assert evaluate(and_all([col("a") > 1, col("b") > 1]), ROW) is True
        assert evaluate(and_all([]), ROW) is True


class TestEvaluation:
    def test_arithmetic(self):
        assert evaluate(col("a") + col("b"), ROW) == 13
        assert evaluate(col("a") - col("b"), ROW) == 7
        assert evaluate(col("a") * col("b"), ROW) == 30
        assert evaluate(col("a") / lit(4), ROW) == 2.5

    def test_comparisons(self):
        assert evaluate(col("a") > col("b"), ROW)
        assert not evaluate(col("a") < col("b"), ROW)
        assert evaluate(col("a") != col("b"), ROW)
        assert evaluate(col("a") >= 10, ROW)
        assert evaluate(col("a") <= 10, ROW)

    def test_boolean_connectives(self):
        assert evaluate((col("a") > 5) & (col("b") < 5), ROW)
        assert evaluate((col("a") > 50) | (col("b") < 5), ROW)
        assert evaluate(~(col("a") > 50), ROW)

    def test_missing_column_raises(self):
        with pytest.raises(ExprError):
            evaluate(col("zzz"), ROW)

    def test_sided_column_references(self):
        left = {"k": 1}
        right = {"k": 2}
        expr = Col("k", "left") != Col("k", "right")
        assert evaluate(expr, {**left, **right}, left=left, right=right)

    def test_like_prefix(self):
        assert evaluate(like(col("name"), "PROMO%"), ROW)
        assert not evaluate(like(col("name"), "ECONOMY%"), ROW)

    def test_like_contains(self):
        assert evaluate(like(col("name"), "%BRUSHED%"), ROW)

    def test_like_suffix(self):
        assert evaluate(like(col("name"), "%STEEL"), ROW)

    def test_like_multi_wildcard(self):
        assert evaluate(like(col("name"), "%PROMO%STEEL%"), ROW)
        assert not evaluate(like(col("name"), "%STEEL%PROMO%"), ROW)

    def test_like_kind_classification(self):
        assert Like(col("x"), "abc%").kind() == ("prefix", "abc")
        assert Like(col("x"), "%abc").kind() == ("suffix", "abc")
        assert Like(col("x"), "%abc%").kind() == ("contains", "abc")
        assert Like(col("x"), "abc").kind() == ("equals", "abc")

    def test_in_list(self):
        assert evaluate(in_list(col("b"), [1, 2, 3]), ROW)
        assert not evaluate(in_list(col("b"), [7, 8]), ROW)

    def test_case(self):
        expr = case([(col("a") > 100, lit("big")), (col("a") > 5, lit("medium"))], lit("small"))
        assert evaluate(expr, ROW) == "medium"

    def test_case_falls_through_to_otherwise(self):
        expr = case([(col("a") > 100, lit(1))], lit(0))
        assert evaluate(expr, ROW) == 0

    def test_substr_is_one_based(self):
        assert evaluate(substr(col("name"), 1, 5), ROW) == "PROMO"
        assert evaluate(substr(col("name"), 7, 7), ROW) == "BRUSHED"

    def test_year_of(self):
        assert evaluate(year(col("ship")), ROW) == 1995

    def test_is_null(self):
        assert evaluate(is_null(col("null_col")), ROW)
        assert not evaluate(is_null(col("a")), ROW)


class TestAnalysis:
    def test_columns_used_simple(self):
        assert columns_used(col("a") + col("b") * col("a")) == ["a", "b"]

    def test_columns_used_all_node_kinds(self):
        expr = case([(like(col("s"), "x%"), year(col("d")))],
                    in_list(col("e"), [1]) & is_null(substr(col("f"), 1, 2)))
        assert set(columns_used(expr)) == {"s", "d", "e", "f"}

    def test_columns_used_ignores_literals(self):
        assert columns_used(lit(5) + lit(3)) == []
