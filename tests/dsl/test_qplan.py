"""Unit tests for QPlan operator construction and analysis."""
import pytest

from repro.dsl import qplan
from repro.dsl.expr import Col, col
from repro.storage.catalog import Catalog
from repro.storage.layouts import ColumnarTable
from repro.storage.schema import TableSchema, float_column, int_column, string_column


@pytest.fixture()
def catalog():
    cat = Catalog()
    r_schema = TableSchema("r", [int_column("r_id"), string_column("r_name"),
                                 int_column("r_sid")], primary_key=("r_id",))
    s_schema = TableSchema("s", [int_column("s_id"), float_column("s_val")],
                           primary_key=("s_id",))
    cat.register(ColumnarTable(r_schema, {"r_id": [1, 2], "r_name": ["a", "b"],
                                          "r_sid": [10, 20]}))
    cat.register(ColumnarTable(s_schema, {"s_id": [10, 20], "s_val": [1.5, 2.5]}))
    return cat


class TestConstruction:
    def test_invalid_join_kind_rejected(self):
        with pytest.raises(qplan.PlanError):
            qplan.HashJoin(qplan.Scan("r"), qplan.Scan("s"), col("r_sid"), col("s_id"),
                           kind="full")

    def test_invalid_agg_kind_rejected(self):
        with pytest.raises(qplan.PlanError):
            qplan.AggSpec("median", col("x"), "m")

    def test_agg_requires_expression_except_count(self):
        qplan.AggSpec("count", None, "n")
        with pytest.raises(qplan.PlanError):
            qplan.AggSpec("sum", None, "s")

    def test_duplicate_projection_names_rejected(self):
        with pytest.raises(qplan.PlanError):
            qplan.Project(qplan.Scan("r"), [("x", col("r_id")), ("x", col("r_sid"))])

    def test_duplicate_agg_output_names_rejected(self):
        with pytest.raises(qplan.PlanError):
            qplan.Agg(qplan.Scan("r"), [("k", col("r_id"))],
                      [qplan.AggSpec("count", None, "k")])

    def test_invalid_sort_order_rejected(self):
        with pytest.raises(qplan.PlanError):
            qplan.Sort(qplan.Scan("r"), [(col("r_id"), "sideways")])

    def test_tree_repr_shows_structure(self):
        plan = qplan.Limit(qplan.Select(qplan.Scan("r"), col("r_id") > 1), 5)
        text = repr(plan)
        assert "Limit(5)" in text and "Scan(r" in text and "Select" in text

    def test_with_children_rebuilds_nodes(self):
        scan = qplan.Scan("r")
        select = qplan.Select(scan, col("r_id") > 1)
        other = qplan.Scan("s")
        rebuilt = select.with_children([other])
        assert rebuilt.child is other
        assert rebuilt.predicate is select.predicate


class TestAnalysis:
    def test_output_fields_scan_defaults_to_all_columns(self, catalog):
        assert qplan.output_fields(qplan.Scan("r"), catalog) == ["r_id", "r_name", "r_sid"]

    def test_output_fields_scan_with_pruned_fields(self, catalog):
        assert qplan.output_fields(qplan.Scan("r", fields=("r_id",)), catalog) == ["r_id"]

    def test_output_fields_project_and_agg(self, catalog):
        project = qplan.Project(qplan.Scan("r"), [("key", col("r_id"))])
        assert qplan.output_fields(project, catalog) == ["key"]
        agg = qplan.Agg(qplan.Scan("r"), [("k", col("r_name"))],
                        [qplan.AggSpec("count", None, "n")])
        assert qplan.output_fields(agg, catalog) == ["k", "n"]

    def test_output_fields_joins(self, catalog):
        join = qplan.HashJoin(qplan.Scan("r"), qplan.Scan("s"), col("r_sid"), col("s_id"))
        assert qplan.output_fields(join, catalog) == ["r_id", "r_name", "r_sid", "s_id", "s_val"]
        semi = qplan.HashJoin(qplan.Scan("r"), qplan.Scan("s"), col("r_sid"), col("s_id"),
                              kind="leftsemi")
        assert qplan.output_fields(semi, catalog) == ["r_id", "r_name", "r_sid"]

    def test_duplicate_column_join_rejected(self, catalog):
        join = qplan.HashJoin(qplan.Scan("r"), qplan.Scan("r"), col("r_id"), col("r_id"))
        with pytest.raises(qplan.PlanError):
            qplan.output_fields(join, catalog)

    def test_tables_used(self, catalog):
        join = qplan.HashJoin(qplan.Scan("r"), qplan.Scan("s"), col("r_sid"), col("s_id"))
        assert qplan.tables_used(join) == ["r", "s"]

    def test_validate_accepts_well_formed_plan(self, catalog):
        plan = qplan.Agg(
            qplan.Select(
                qplan.HashJoin(qplan.Scan("r"), qplan.Scan("s"), col("r_sid"), col("s_id")),
                col("s_val") > 1.0),
            [("r_name", col("r_name"))],
            [qplan.AggSpec("sum", col("s_val"), "total")])
        qplan.validate(plan, catalog)

    def test_validate_rejects_unknown_column_in_predicate(self, catalog):
        plan = qplan.Select(qplan.Scan("r"), col("bogus") > 1)
        with pytest.raises(qplan.PlanError):
            qplan.validate(plan, catalog)

    def test_validate_rejects_unknown_scan_field(self, catalog):
        plan = qplan.Scan("r", fields=("nope",))
        with pytest.raises(qplan.PlanError):
            qplan.validate(plan, catalog)

    def test_validate_rejects_column_lost_by_projection(self, catalog):
        plan = qplan.Select(qplan.Project(qplan.Scan("r"), [("key", col("r_id"))]),
                            col("r_name") == "a")
        with pytest.raises(qplan.PlanError):
            qplan.validate(plan, catalog)

    def test_validate_checks_hash_join_residual(self, catalog):
        """Regression: residuals used to be skipped by validation entirely."""
        good = qplan.HashJoin(qplan.Scan("r"), qplan.Scan("s"),
                              col("r_sid"), col("s_id"),
                              residual=col("s_val") > col("r_id"))
        qplan.validate(good, catalog)
        bad = qplan.HashJoin(qplan.Scan("r"), qplan.Scan("s"),
                             col("r_sid"), col("s_id"),
                             residual=col("bogus") > 1)
        with pytest.raises(qplan.PlanError, match="bogus"):
            qplan.validate(bad, catalog)

    def test_validate_checks_residual_sides(self, catalog):
        """A sided residual reference must exist on the *referenced* side."""
        bad = qplan.HashJoin(qplan.Scan("r"), qplan.Scan("s"),
                             col("r_sid"), col("s_id"),
                             residual=Col("s_val", "left") > 1)
        with pytest.raises(qplan.PlanError, match="s_val"):
            qplan.validate(bad, catalog)
        good = qplan.HashJoin(qplan.Scan("r"), qplan.Scan("s"),
                              col("r_sid"), col("s_id"),
                              residual=Col("s_val", "right") > 1)
        qplan.validate(good, catalog)

    def test_validate_checks_semi_join_residual_against_both_inputs(self, catalog):
        """Semi/anti joins output only left fields, but their residual is
        evaluated on candidate pairs and may reference the right input."""
        good = qplan.HashJoin(qplan.Scan("r"), qplan.Scan("s"),
                              col("r_sid"), col("s_id"), kind="leftsemi",
                              residual=Col("s_val", "right") > Col("r_id", "left"))
        qplan.validate(good, catalog)
        bad = qplan.HashJoin(qplan.Scan("r"), qplan.Scan("s"),
                             col("r_sid"), col("s_id"), kind="leftanti",
                             residual=col("missing") == 1)
        with pytest.raises(qplan.PlanError, match="missing"):
            qplan.validate(bad, catalog)

    def test_validate_checks_nested_loop_predicate(self, catalog):
        """Regression: nested-loop predicates used to be skipped too."""
        good = qplan.NestedLoopJoin(qplan.Scan("r"), qplan.Scan("s"),
                                    col("r_sid") < col("s_id"))
        qplan.validate(good, catalog)
        bad = qplan.NestedLoopJoin(qplan.Scan("r"), qplan.Scan("s"),
                                   col("r_sid") < col("nope"))
        with pytest.raises(qplan.PlanError, match="nope"):
            qplan.validate(bad, catalog)

    def test_output_fields_memo_reused_within_one_pass(self, catalog):
        scan = qplan.Scan("r")
        plan = qplan.Sort(qplan.Select(scan, col("r_id") > 1), [(col("r_id"), "asc")])
        memo = {}
        fields = qplan.output_fields(plan, catalog, memo)
        assert fields == ["r_id", "r_name", "r_sid"]
        # every node of the chain was cached, including the shared scan
        assert memo[id(scan)] == fields
        assert qplan.output_fields(plan, catalog, memo) is memo[id(plan)]


class TestValidationErrorPaths:
    """Field-resolution hardening: schema problems surface as PlanError with
    the offending name, never as storage-layer SchemaError escaping through
    plan analysis."""

    def test_unknown_table_is_a_plan_error(self, catalog):
        with pytest.raises(qplan.PlanError, match="unknown table 'ghost'"):
            qplan.validate(qplan.Scan("ghost"), catalog)

    def test_unknown_table_with_explicit_fields_is_a_plan_error(self, catalog):
        """Scans with a field list used to skip table resolution entirely."""
        with pytest.raises(qplan.PlanError, match="unknown table"):
            qplan.validate(qplan.Scan("ghost", fields=("r_id",)), catalog)

    def test_unknown_table_nested_in_join_is_a_plan_error(self, catalog):
        plan = qplan.HashJoin(qplan.Scan("r"), qplan.Scan("ghost"),
                              col("r_sid"), col("s_id"))
        with pytest.raises(qplan.PlanError, match="ghost"):
            qplan.validate(plan, catalog)

    def test_output_fields_unknown_table_is_a_plan_error(self, catalog):
        with pytest.raises(qplan.PlanError, match="unknown table"):
            qplan.output_fields(qplan.Scan("ghost"), catalog)

    def test_index_join_unknown_table_is_a_plan_error(self, catalog):
        plan = qplan.IndexJoin(qplan.Scan("ghost"), qplan.Scan("s"),
                               col("g_id"), col("s_id"),
                               index_table="ghost", index_column="g_id")
        with pytest.raises(qplan.PlanError):
            qplan.validate(plan, catalog)

    def test_index_join_unknown_column_is_a_plan_error(self, catalog):
        plan = qplan.IndexJoin(qplan.Scan("r"), qplan.Scan("s"),
                               col("nope"), col("s_id"),
                               index_table="r", index_column="nope")
        with pytest.raises(qplan.PlanError, match="nope"):
            qplan.validate(plan, catalog)

    def test_error_names_the_unknown_predicate_column(self, catalog):
        plan = qplan.Select(qplan.Scan("r"), col("bogus") > 1)
        with pytest.raises(qplan.PlanError, match="bogus"):
            qplan.validate(plan, catalog)
