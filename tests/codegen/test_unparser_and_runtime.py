"""Unit tests for the Python unparser and the generated-code runtime."""
import pytest

from repro.codegen import runtime
from repro.codegen.unparser import PythonUnparser, UnparserError
from repro.ir import IRBuilder, Const, make_program
from repro.ir.nodes import Block, Expr, Program, Stmt, Sym


def unparse_and_run(program, db=None):
    source = PythonUnparser("t").unparse(program)
    namespace = {}
    exec(compile(source, "<test>", "exec"), namespace)
    aux = namespace["prepare"](db, runtime)
    return namespace["query"](db, runtime, aux), source


class TestUnparser:
    def test_arithmetic_program(self):
        db = Sym("db")
        b = IRBuilder()
        x = b.emit("add", [4, 5])
        y = b.emit("mul", [x, 3])
        z = b.emit("sub", [y, 7])
        program = make_program(b.finish(z), [db], "C.Py")
        result, source = unparse_and_run(program)
        assert result == 20
        assert "def prepare(" in source and "def query(" in source

    def test_loop_with_mutable_variable(self):
        db = Sym("db")
        b = IRBuilder()
        acc = b.emit("var_new", [0])

        def body(i):
            b.emit("var_write", [acc, b.emit("add", [b.emit("var_read", [acc]), i])])

        b.for_range(0, 10, body)
        program = make_program(b.finish(b.emit("var_read", [acc])), [db], "C.Py")
        result, _ = unparse_and_run(program)
        assert result == sum(range(10))

    def test_if_expression_produces_value_on_both_branches(self):
        db = Sym("db")
        b = IRBuilder()
        cond = b.emit("lt", [3, 2])
        value = b.if_(cond, lambda: Const(1), lambda: Const(2))
        program = make_program(b.finish(value), [db], "C.Py")
        result, source = unparse_and_run(program)
        assert result == 2
        assert "else:" in source

    def test_while_loop(self):
        db = Sym("db")
        b = IRBuilder()
        counter = b.emit("var_new", [0])
        b.while_(lambda: b.emit("lt", [b.emit("var_read", [counter]), 5]),
                 lambda: b.emit("var_write", [counter,
                                              b.emit("add", [b.emit("var_read", [counter]), 1])]))
        program = make_program(b.finish(b.emit("var_read", [counter])), [db], "C.Py")
        result, _ = unparse_and_run(program)
        assert result == 5

    def test_records_boxed_and_row_layout(self):
        db = Sym("db")
        b = IRBuilder()
        boxed = b.emit("record_new", [1, "a"], attrs={"fields": ("x", "y"), "layout": "boxed"})
        row = b.emit("record_new", [2, "b"], attrs={"fields": ("x", "y"), "layout": "row"})
        bx = b.emit("record_get", [boxed], attrs={"field": "y", "layout": "boxed"})
        rx = b.emit("record_get", [row], attrs={"field": "x", "layout": "row",
                                                "fields": ("x", "y")})
        pair = b.emit("tuple_new", [bx, rx])
        program = make_program(b.finish(pair), [db], "C.Py")
        result, _ = unparse_and_run(program)
        assert result == ("a", 2)

    def test_generic_containers(self):
        db = Sym("db")
        b = IRBuilder()
        table = b.emit("mmap_new", [])
        b.emit("mmap_add", [table, 1, "a"])
        b.emit("mmap_add", [table, 1, "b"])
        bucket = b.emit("mmap_get", [table, 1])
        count = b.emit("list_len", [bucket])
        miss = b.emit("mmap_get", [table, 99])
        miss_count = b.emit("list_len", [miss])
        program = make_program(b.finish(b.emit("tuple_new", [count, miss_count])), [db], "C.Py")
        result, _ = unparse_and_run(program)
        assert result == (2, 0)

    def test_hoisted_block_becomes_prepare(self, tiny_catalog):
        db = Sym("db")
        hoisted = IRBuilder()
        col = hoisted.emit("table_column", [db], attrs={"table": "R", "column": "r_sid"})
        body = IRBuilder()
        value = body.emit("array_get", [col, 2])
        program = Program(body=body.finish(value), params=(db,), language="C.Py",
                          hoisted=hoisted.finish())
        result, source = unparse_and_run(program, tiny_catalog)
        assert result == 30
        assert "aux[" in source

    def test_string_operations(self):
        db = Sym("db")
        b = IRBuilder()
        starts = b.emit("str_startswith", ["PROMO BRUSHED", "PROMO"])
        contains = b.emit("str_contains", ["PROMO BRUSHED", "USH"])
        pattern = b.emit("str_like", ["special packed requests"],
                         attrs={"pattern": "%special%requests%"})
        sub = b.emit("str_substr", ["telephone"], attrs={"start": 1, "length": 4})
        program = make_program(b.finish(b.emit("tuple_new", [starts, contains, pattern, sub])),
                               [db], "C.Py")
        result, _ = unparse_and_run(program)
        assert result == (True, True, True, "tele")

    def test_unknown_op_raises(self):
        db = Sym("db")
        block = Block([Stmt(Sym("x"), Expr("print_", (Const("ok"),)))], Const(None))
        program = Program(body=block, params=(db,), language="C.Py")
        # replace with an unregistered op name to hit the error path
        block.stmts[0] = Stmt(Sym("x"), Expr("quantum_sort", ()))
        with pytest.raises(UnparserError):
            PythonUnparser().unparse(program)

    def test_requires_single_parameter(self):
        program = make_program(Block(), [], "C.Py")
        with pytest.raises(UnparserError):
            PythonUnparser().unparse(program)


class TestRuntime:
    def test_agg_table_all_kinds(self):
        table = runtime.AggTable(("sum", "count", "min", "max", "avg", "count_distinct"))
        table.update("k", (1.0, 1, 5, 5, 10.0, "a"))
        table.update("k", (2.0, None, 3, 7, 20.0, "b"))
        table.update("k", (None, 1, None, None, None, "a"))
        rows = dict(table.finalised())
        assert rows["k"] == (3.0, 2, 3, 7, 15.0, 2)

    def test_agg_table_multiple_groups(self):
        table = runtime.AggTable(("sum",))
        table.update(1, (10,))
        table.update(2, (20,))
        table.update(1, (5,))
        assert dict(table.finalised()) == {1: (15,), 2: (20,)}

    def test_dense_agg_table(self):
        table = runtime.DenseAggTable(("sum", "count"), size=10)
        table.update(3, (2.5, 1))
        table.update(3, (1.5, 1))
        table.update(7, (1.0, 1))
        rows = dict(table.finalised())
        assert rows[3] == (4.0, 2)
        assert rows[7] == (1.0, 1)
        table.reset()
        assert dict(table.finalised()) == {}

    def test_string_dictionary_round_trip(self):
        dictionary = runtime.StringDictionary.build(["b", "a", "c", "a"], ordered=True)
        assert dictionary.code("a") == 0
        assert dictionary.code("missing") == -1
        assert dictionary.encode_column(["c", "a"]) == [2, 0]

    def test_string_dictionary_prefix_range(self):
        values = ["PROMO TIN", "PROMO STEEL", "ECONOMY BRASS", "STANDARD COPPER"]
        dictionary = runtime.StringDictionary.build(values, ordered=True)
        lo, hi = dictionary.prefix_range("PROMO")
        codes = [dictionary.code(v) for v in values if v.startswith("PROMO")]
        assert all(lo <= c <= hi for c in codes)
        other = [dictionary.code(v) for v in values if not v.startswith("PROMO")]
        assert all(c < lo or c > hi for c in other)

    def test_string_dictionary_empty_prefix_range(self):
        dictionary = runtime.StringDictionary.build(["alpha", "beta"], ordered=True)
        lo, hi = dictionary.prefix_range("zzz")
        assert lo > hi

    def test_prefix_range_requires_ordered(self):
        dictionary = runtime.StringDictionary.build(["a"], ordered=False)
        with pytest.raises(ValueError):
            dictionary.prefix_range("a")

    def test_memory_pool_grows_when_exhausted(self):
        pool = runtime.MemoryPool(2)
        indices = [pool.next() for _ in range(5)]
        assert indices == [0, 1, 2, 3, 4]
        pool.reset()
        assert pool.next() == 0

    def test_sort_records_boxed_and_row(self):
        boxed = [{"a": 2, "b": "x"}, {"a": 1, "b": "y"}, {"a": 2, "b": "a"}]
        result = runtime.sort_records(boxed, [("a", "asc"), ("b", "desc")], "boxed")
        assert [(r["a"], r["b"]) for r in result] == [(1, "y"), (2, "x"), (2, "a")]
        rows = [(2, "x"), (1, "y")]
        result = runtime.sort_records(rows, [("a", "asc")], "row", ("a", "b"))
        assert result == [(1, "y"), (2, "x")]

    def test_like_multi_wildcard(self):
        assert runtime.like("the special delivery requests arrived", "%special%requests%")
        assert not runtime.like("requests then special", "%special%requests%")
        assert runtime.like("forest green", "forest%")
        assert not runtime.like("green forest", "forest%")
