"""Unit tests for the QueryCompiler facade."""
import pytest

from repro.codegen.compiler import QueryCompiler
from repro.dsl import qplan as Q
from repro.dsl.expr import col
from repro.engine.volcano import execute
from repro.stack.configs import build_config


@pytest.fixture()
def plan():
    return Q.Agg(
        Q.HashJoin(Q.Select(Q.Scan("R"), col("r_name") == "R1"),
                   Q.Scan("S"), col("r_sid"), col("s_rid")),
        [], [Q.AggSpec("count", None, "n")])


class TestQueryCompiler:
    def test_compile_produces_runnable_query(self, tiny_catalog, plan):
        config = build_config("dblab-5")
        compiled = QueryCompiler(config.stack, config.flags).compile(plan, tiny_catalog, "ex")
        assert compiled.run(tiny_catalog) == execute(plan, tiny_catalog)
        assert compiled.name == "ex"
        assert compiled.config == "dblab-5"

    def test_compile_validates_plan_first(self, tiny_catalog):
        config = build_config("dblab-2")
        bad = Q.Select(Q.Scan("R"), col("not_a_column") == 1)
        with pytest.raises(Q.PlanError):
            QueryCompiler(config.stack, config.flags).compile(bad, tiny_catalog)

    def test_compile_records_timings_and_phases(self, tiny_catalog, plan):
        config = build_config("dblab-5")
        compiled = QueryCompiler(config.stack, config.flags).compile(plan, tiny_catalog)
        assert compiled.generation_seconds > 0
        assert compiled.python_compile_seconds > 0
        assert compiled.compile_seconds == pytest.approx(
            compiled.generation_seconds + compiled.python_compile_seconds)
        kinds = {p.kind for p in compiled.phases}
        assert "lowering" in kinds
        assert "optimization-fixpoint" in kinds

    def test_source_is_inspectable(self, tiny_catalog, plan):
        config = build_config("dblab-3")
        compiled = QueryCompiler(config.stack, config.flags).compile(plan, tiny_catalog)
        assert "def query(" in compiled.source
        assert compiled.source_lines > 10

    def test_generated_program_reaches_target_language(self, tiny_catalog, plan):
        for name in ("dblab-2", "dblab-3", "dblab-4", "dblab-5"):
            config = build_config(name)
            compiled = QueryCompiler(config.stack, config.flags).compile(plan, tiny_catalog)
            assert compiled.program.language == "C.Py"

    def test_run_without_prepare_prepares_lazily(self, tiny_catalog, plan):
        config = build_config("dblab-4")
        compiled = QueryCompiler(config.stack, config.flags).compile(plan, tiny_catalog)
        assert compiled.run(tiny_catalog) == execute(plan, tiny_catalog)

    def test_more_levels_never_change_results(self, tiny_catalog, plan):
        reference = execute(plan, tiny_catalog)
        for name in ("dblab-2", "dblab-3", "dblab-4", "dblab-5", "tpch-compliant"):
            config = build_config(name)
            compiled = QueryCompiler(config.stack, config.flags).compile(plan, tiny_catalog)
            assert compiled.run(tiny_catalog) == reference
