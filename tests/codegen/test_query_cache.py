"""Tests for the compiled-query cache and plan fingerprints."""
import pytest

from repro.codegen.compiler import QueryCompiler
from repro.dsl import qplan as Q
from repro.dsl.expr import col
from repro.stack.configs import build_config
from repro.tpch.dbgen import generate_catalog


def _plan():
    return Q.Agg(
        Q.HashJoin(Q.Select(Q.Scan("R"), col("r_name") == "R1"),
                   Q.Scan("S"), col("r_sid"), col("s_rid")),
        [], [Q.AggSpec("count", None, "n")])


@pytest.fixture(autouse=True)
def fresh_cache():
    QueryCompiler.clear_cache()
    yield
    QueryCompiler.clear_cache()


class TestPlanFingerprint:
    def test_structurally_equal_plans_share_a_fingerprint(self):
        assert Q.plan_fingerprint(_plan()) == Q.plan_fingerprint(_plan())

    def test_fingerprint_changes_with_any_component(self):
        base = _plan()
        variants = [
            Q.Limit(base, 10),
            Q.Agg(base.child, [], [Q.AggSpec("count", None, "m")]),
            Q.Agg(base.child, [], [Q.AggSpec("sum", col("s_val"), "n")]),
            Q.Agg(Q.HashJoin(Q.Select(Q.Scan("R"), col("r_name") == "R2"),
                             Q.Scan("S"), col("r_sid"), col("s_rid")),
                  [], [Q.AggSpec("count", None, "n")]),
        ]
        prints = {Q.plan_fingerprint(p) for p in [base] + variants}
        assert len(prints) == len(variants) + 1

    def test_scan_field_pruning_changes_fingerprint(self):
        assert Q.plan_fingerprint(Q.Scan("R")) != \
            Q.plan_fingerprint(Q.Scan("R", fields=("r_id",)))

    def test_sort_direction_changes_fingerprint(self):
        asc = Q.Sort(Q.Scan("R"), [(col("r_id"), "asc")])
        desc = Q.Sort(Q.Scan("R"), [(col("r_id"), "desc")])
        assert Q.plan_fingerprint(asc) != Q.plan_fingerprint(desc)


class TestCompiledQueryCache:
    def test_second_compile_skips_the_dsl_stack(self, tiny_catalog):
        config = build_config("dblab-5")
        compiler = QueryCompiler(config.stack, config.flags)
        stack_runs = []
        original = config.stack.compile

        def counting_compile(*args, **kwargs):
            stack_runs.append(1)
            return original(*args, **kwargs)

        config.stack.compile = counting_compile
        try:
            first = compiler.compile(_plan(), tiny_catalog, "q")
            second = compiler.compile(_plan(), tiny_catalog, "q")
        finally:
            config.stack.compile = original

        assert len(stack_runs) == 1
        assert not first.cache_hit and second.cache_hit
        assert QueryCompiler.cache_stats.hits == 1
        assert QueryCompiler.cache_stats.misses == 1
        assert second.source == first.source
        assert second.run(tiny_catalog) == first.run(tiny_catalog)

    def test_cached_copy_has_independent_prepared_state(self, tiny_catalog):
        config = build_config("dblab-4")
        compiler = QueryCompiler(config.stack, config.flags)
        first = compiler.compile(_plan(), tiny_catalog, "q")
        first.prepare(tiny_catalog)
        second = compiler.compile(_plan(), tiny_catalog, "q")
        assert second._aux is None  # lazily re-prepared against its catalog
        assert second.run(tiny_catalog) == first.run(tiny_catalog)

    def test_different_configuration_misses(self, tiny_catalog):
        five = build_config("dblab-5")
        compliant = build_config("tpch-compliant")
        QueryCompiler(five.stack, five.flags).compile(_plan(), tiny_catalog, "q")
        other = QueryCompiler(compliant.stack, compliant.flags).compile(
            _plan(), tiny_catalog, "q")
        assert not other.cache_hit
        assert QueryCompiler.cache_stats.misses == 2

    def test_different_plan_misses(self, tiny_catalog):
        config = build_config("dblab-5")
        compiler = QueryCompiler(config.stack, config.flags)
        compiler.compile(_plan(), tiny_catalog, "q")
        other = compiler.compile(Q.Select(Q.Scan("R"), col("r_id") > 1),
                                 tiny_catalog, "q")
        assert not other.cache_hit

    def test_different_catalog_misses(self):
        # Identical plan, config, flags and name: only the catalog differs,
        # so this isolates the catalog component of the cache key.
        config = build_config("dblab-5")
        compiler = QueryCompiler(config.stack, config.flags)
        catalog_a = generate_catalog(scale_factor=0.0005, seed=7)
        catalog_b = generate_catalog(scale_factor=0.0005, seed=7)
        plan = Q.Agg(Q.Scan("lineitem", fields=("l_quantity",)), [],
                     [Q.AggSpec("sum", col("l_quantity"), "total")])
        first = compiler.compile(plan, catalog_a, "q")
        second = compiler.compile(plan, catalog_b, "q")
        assert not first.cache_hit
        assert not second.cache_hit
        assert QueryCompiler.cache_stats.misses == 2

    def test_clear_cache_resets(self, tiny_catalog):
        config = build_config("dblab-5")
        compiler = QueryCompiler(config.stack, config.flags)
        compiler.compile(_plan(), tiny_catalog, "q")
        assert QueryCompiler.cache_len() == 1
        QueryCompiler.clear_cache()
        assert QueryCompiler.cache_len() == 0
        assert QueryCompiler.cache_stats.misses == 0


class TestAccessLayerGeneration:
    """Re-registering a table must invalidate memoized compiled queries.

    Regression: the cache used to serve a query compiled against the old
    data, whose prepared state (and statistics-derived constants: dense key
    ranges, dictionary availability) closed over stale index objects.
    """

    def _index_plan(self):
        return Q.Agg(
            Q.HashJoin(Q.Scan("R"), Q.Scan("S"), col("r_id"), col("s_rid")),
            [], [Q.AggSpec("count", None, "n")])

    def test_reregister_then_requery_recompiles(self, tiny_catalog):
        from repro.storage.layouts import ColumnarTable
        config = build_config("dblab-5")
        compiler = QueryCompiler(config.stack, config.flags)
        plan = self._index_plan()
        first = compiler.compile(plan, tiny_catalog, "gen")
        assert first.run(tiny_catalog) == [{"n": 0}]  # r_id 1..5, s_rid 10..50

        # reload S so that its rids now hit R's primary keys
        table = tiny_catalog.table("S")
        tiny_catalog.register(ColumnarTable(table.schema, {
            "s_id": [100, 101, 102],
            "s_rid": [1, 3, 3],
            "s_val": [1.0, 2.0, 3.0],
        }))
        second = compiler.compile(plan, tiny_catalog, "gen")
        assert not second.cache_hit
        assert second.run(tiny_catalog) == [{"n": 3}]

        # and the same catalog without further reloads hits the cache again
        third = compiler.compile(plan, tiny_catalog, "gen")
        assert third.cache_hit

    def test_prepared_state_is_invalidated_without_recompiling(self, tiny_catalog):
        """run() on an already-prepared CompiledQuery must not serve aux
        structures built against pre-reload data: the prepared state is
        stamped with the access-layer generation and re-prepared on
        mismatch."""
        from repro.storage.layouts import ColumnarTable
        config = build_config("dblab-5")
        compiler = QueryCompiler(config.stack, config.flags)
        compiled = compiler.compile(self._index_plan(), tiny_catalog, "gen2")
        assert compiled.run(tiny_catalog) == [{"n": 0}]  # prepares + caches aux

        table = tiny_catalog.table("S")
        tiny_catalog.register(ColumnarTable(table.schema, {
            "s_id": [100, 101, 102],
            "s_rid": [1, 3, 3],
            "s_val": [1.0, 2.0, 3.0],
        }))
        # same CompiledQuery object, no recompile: stale aux is detected
        assert compiled.run(tiny_catalog) == [{"n": 3}]

    def test_generation_counter_tracks_invalidations(self, tiny_catalog):
        from repro.storage.layouts import ColumnarTable
        layer = tiny_catalog.access_layer()
        assert layer.generation == 0
        table = tiny_catalog.table("R")
        tiny_catalog.register(ColumnarTable(table.schema, dict(table.columns)))
        assert layer.generation == 1
        tiny_catalog.register(ColumnarTable(table.schema, dict(table.columns)))
        assert layer.generation == 2


def _distinct_plan(n):
    return Q.Select(Q.Scan("R"), col("r_id") > n)


@pytest.fixture()
def bounded_capacity():
    saved = QueryCompiler.cache_capacity
    yield
    QueryCompiler.cache_capacity = saved


class TestCacheBounds:
    """The compiled-query cache is a bounded LRU: a long-lived process must
    not grow it without limit, and recency must decide who gets evicted."""

    def _compiler(self):
        config = build_config("dblab-5")
        return QueryCompiler(config.stack, config.flags)

    def test_capacity_must_be_positive(self, bounded_capacity):
        from repro.codegen.compiler import CompilerError
        with pytest.raises(CompilerError, match="positive"):
            QueryCompiler.set_cache_capacity(0)

    def test_inserts_beyond_capacity_evict_lru_first(self, tiny_catalog,
                                                     bounded_capacity):
        QueryCompiler.set_cache_capacity(2)
        compiler = self._compiler()
        for n in range(3):
            compiler.compile(_distinct_plan(n), tiny_catalog, "q")
        assert QueryCompiler.cache_len() == 2
        assert QueryCompiler.cache_stats.evictions == 1
        # plan 0 was least recently used: recompiling it misses
        assert not compiler.compile(_distinct_plan(0), tiny_catalog, "q").cache_hit
        # plan 2 survived the plan-0 reinsert (which evicted plan 1)
        assert compiler.compile(_distinct_plan(2), tiny_catalog, "q").cache_hit

    def test_cache_hits_refresh_recency(self, tiny_catalog, bounded_capacity):
        QueryCompiler.set_cache_capacity(2)
        compiler = self._compiler()
        compiler.compile(_distinct_plan(0), tiny_catalog, "q")
        compiler.compile(_distinct_plan(1), tiny_catalog, "q")
        assert compiler.compile(_distinct_plan(0), tiny_catalog, "q").cache_hit
        compiler.compile(_distinct_plan(2), tiny_catalog, "q")  # evicts plan 1
        assert compiler.compile(_distinct_plan(0), tiny_catalog, "q").cache_hit
        assert not compiler.compile(_distinct_plan(1), tiny_catalog, "q").cache_hit

    def test_shrinking_capacity_evicts_immediately(self, tiny_catalog,
                                                   bounded_capacity):
        QueryCompiler.set_cache_capacity(4)
        compiler = self._compiler()
        for n in range(4):
            compiler.compile(_distinct_plan(n), tiny_catalog, "q")
        QueryCompiler.set_cache_capacity(1)
        assert QueryCompiler.cache_len() == 1
        assert QueryCompiler.cache_stats.evictions == 3
        # the survivor is the most recently inserted plan
        assert compiler.compile(_distinct_plan(3), tiny_catalog, "q").cache_hit

    def test_generation_bump_evicts_stale_entries(self, tiny_catalog,
                                                  bounded_capacity):
        from repro.storage.layouts import ColumnarTable
        compiler = self._compiler()
        for n in range(3):
            compiler.compile(_distinct_plan(n), tiny_catalog, "q")
        assert QueryCompiler.cache_len() == 3

        table = tiny_catalog.table("S")
        tiny_catalog.register(ColumnarTable(table.schema, dict(table.columns)))
        # the first compile after the reload drops every pre-reload entry
        compiler.compile(_distinct_plan(0), tiny_catalog, "q")
        assert QueryCompiler.cache_len() == 1
        assert QueryCompiler.cache_stats.evictions == 3
