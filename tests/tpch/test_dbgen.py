"""Unit tests for the TPC-H schema and the deterministic data generator."""
import pytest

from repro import dates
from repro.tpch.dbgen import (BASE_CARDINALITIES, NATIONS, REGIONS, TpchGenerator,
                              generate_catalog)
from repro.tpch.schema import ALL_TABLES, tpch_schema

SF = 0.001


@pytest.fixture(scope="module")
def catalog():
    return generate_catalog(scale_factor=SF, seed=7)


class TestSchema:
    def test_eight_tables(self):
        schema = tpch_schema()
        assert sorted(schema.table_names()) == sorted(t.name for t in ALL_TABLES)
        assert len(schema.table_names()) == 8

    def test_foreign_keys_resolve(self):
        tpch_schema().validate_foreign_keys()

    def test_lineitem_composite_primary_key(self):
        schema = tpch_schema()
        assert schema.table("lineitem").primary_key == ("l_orderkey", "l_linenumber")
        assert schema.table("orders").single_column_primary_key == "o_orderkey"

    def test_column_names_globally_unique(self):
        schema = tpch_schema()
        all_columns = [c for t in schema.tables.values() for c in t.column_names()]
        assert len(all_columns) == len(set(all_columns))


class TestGenerator:
    def test_determinism(self):
        a = generate_catalog(scale_factor=SF, seed=42)
        b = generate_catalog(scale_factor=SF, seed=42)
        assert a.column("orders", "o_totalprice") == b.column("orders", "o_totalprice")
        assert a.column("lineitem", "l_shipdate") == b.column("lineitem", "l_shipdate")

    def test_different_seeds_differ(self):
        a = generate_catalog(scale_factor=SF, seed=1)
        b = generate_catalog(scale_factor=SF, seed=2)
        assert a.column("orders", "o_totalprice") != b.column("orders", "o_totalprice")

    def test_cardinalities_scale(self, catalog):
        assert catalog.size("nation") == 25
        assert catalog.size("region") == 5
        assert catalog.size("customer") == int(BASE_CARDINALITIES["customer"] * SF)
        assert catalog.size("orders") == int(BASE_CARDINALITIES["orders"] * SF)
        lo, hi = BASE_CARDINALITIES["lineitems_per_order"]
        n_orders = catalog.size("orders")
        assert n_orders * lo <= catalog.size("lineitem") <= n_orders * hi

    def test_invalid_scale_factor(self):
        with pytest.raises(ValueError):
            TpchGenerator(scale_factor=0)

    def test_primary_keys_are_dense(self, catalog):
        for table, column in [("orders", "o_orderkey"), ("customer", "c_custkey"),
                              ("part", "p_partkey"), ("supplier", "s_suppkey")]:
            values = catalog.column(table, column)
            assert values == list(range(1, len(values) + 1))

    def test_foreign_keys_reference_existing_rows(self, catalog):
        n_customers = catalog.size("customer")
        assert all(1 <= k <= n_customers for k in catalog.column("orders", "o_custkey"))
        n_orders = catalog.size("orders")
        assert all(1 <= k <= n_orders for k in catalog.column("lineitem", "l_orderkey"))
        n_parts = catalog.size("part")
        assert all(1 <= k <= n_parts for k in catalog.column("partsupp", "ps_partkey"))

    def test_nation_region_mapping_is_official(self, catalog):
        assert catalog.column("nation", "n_name") == [name for name, _ in NATIONS]
        assert catalog.column("region", "r_name") == REGIONS

    def test_date_domains(self, catalog):
        orderdates = catalog.column("orders", "o_orderdate")
        assert min(orderdates) >= dates.date_to_int("1992-01-01")
        assert max(orderdates) <= dates.date_to_int("1998-08-02")
        ship = catalog.column("lineitem", "l_shipdate")
        receipt = catalog.column("lineitem", "l_receiptdate")
        assert all(r > s for s, r in zip(ship, receipt))

    def test_lineitem_status_consistent_with_dates(self, catalog):
        cutoff = dates.date_to_int("1995-06-17")
        ship = catalog.column("lineitem", "l_shipdate")
        status = catalog.column("lineitem", "l_linestatus")
        for s, st in zip(ship, status):
            assert st == ("O" if s > cutoff else "F")

    def test_value_domains(self, catalog):
        assert set(catalog.column("lineitem", "l_returnflag")) <= {"R", "A", "N"}
        assert set(catalog.column("orders", "o_orderstatus")) <= {"F", "O", "P"}
        assert all(0 <= d <= 0.10 for d in catalog.column("lineitem", "l_discount"))
        assert all(1 <= q <= 50 for q in catalog.column("lineitem", "l_quantity"))
        segments = set(catalog.column("customer", "c_mktsegment"))
        assert "BUILDING" in segments

    def test_workload_keywords_present(self, catalog):
        """Queries rely on certain substrings being present in text columns."""
        comments = catalog.column("orders", "o_comment")
        assert any("special" in c and "requests" in c for c in comments)
        types = catalog.column("part", "p_type")
        assert any(t.startswith("PROMO") for t in types)
        names = catalog.column("part", "p_name")
        assert any("green" in n for n in names)

    def test_statistics_available_for_every_table(self, catalog):
        for name in catalog.table_names():
            assert catalog.statistics.has_table(name)
            assert catalog.statistics.cardinality(name) == catalog.size(name)
