"""Tests for the vectorized columnar engine.

The headline guarantee is row-identical output (values *and* order) with the
Volcano reference interpreter on every TPC-H query; the unit tests cover the
selection-vector semantics the batch model introduces.
"""
import pytest

from repro.dsl import qplan
from repro.dsl.expr import Col, col, is_null, lit
from repro.engine.vectorized import ColumnBatch, VectorizedEngine, VectorizedError
from repro.engine.volcano import execute as volcano_execute
from repro.storage.catalog import Catalog
from repro.storage.layouts import ColumnarTable
from repro.storage.schema import TableSchema, float_column, int_column, string_column
from repro.tpch.queries import QUERY_NAMES, build_query


# ---------------------------------------------------------------------------
# TPC-H parity: the engine's correctness contract
# ---------------------------------------------------------------------------
class TestTpchParity:
    @pytest.mark.parametrize("query_name", QUERY_NAMES)
    def test_row_identical_to_volcano(self, tpch_catalog, query_name):
        plan = build_query(query_name)
        reference = volcano_execute(plan, tpch_catalog)
        assert VectorizedEngine(tpch_catalog).execute(plan) == reference

    @pytest.mark.parametrize("query_name", ["Q1", "Q3", "Q4", "Q6", "Q13", "Q21"])
    def test_chunked_batches_are_row_identical_too(self, tpch_catalog, query_name):
        plan = build_query(query_name)
        reference = volcano_execute(plan, tpch_catalog)
        assert VectorizedEngine(tpch_catalog, batch_size=17).execute(plan) == reference


# ---------------------------------------------------------------------------
# Selection-vector semantics
# ---------------------------------------------------------------------------
def _catalog_with(rows):
    schema = TableSchema("T", [int_column("t_id"), int_column("t_key"),
                               float_column("t_val"), string_column("t_tag")])
    catalog = Catalog()
    catalog.register(ColumnarTable.from_rows(schema, rows))
    return catalog


@pytest.fixture()
def small_catalog():
    return _catalog_with([
        {"t_id": 1, "t_key": 10, "t_val": 1.0, "t_tag": "a"},
        {"t_id": 2, "t_key": 20, "t_val": 2.0, "t_tag": "b"},
        {"t_id": 3, "t_key": 10, "t_val": 3.0, "t_tag": "a"},
        {"t_id": 4, "t_key": None, "t_val": 4.0, "t_tag": "c"},
        {"t_id": 5, "t_key": 30, "t_val": 5.0, "t_tag": "b"},
    ])


class TestColumnBatch:
    def test_no_selection_means_all_rows(self):
        batch = ColumnBatch({"x": [1, 2, 3]}, None, 3)
        assert list(batch.indices()) == [0, 1, 2]
        assert batch.num_selected == 3

    def test_selection_vector_restricts_and_orders(self):
        batch = ColumnBatch({"x": [1, 2, 3]}, [2, 0], 3)
        assert list(batch.indices()) == [2, 0]
        assert batch.num_selected == 2

    def test_has_slots(self):
        batch = ColumnBatch({}, None, 0)
        assert not hasattr(batch, "__dict__")

    def test_invalid_batch_size_rejected(self, small_catalog):
        with pytest.raises(VectorizedError):
            VectorizedEngine(small_catalog, batch_size=0)


class TestSelectionVectors:
    def test_scan_is_zero_copy(self, small_catalog):
        engine = VectorizedEngine(small_catalog)
        (batch,) = list(engine.execute_batches(qplan.Scan("T")))
        assert batch.sel is None
        assert batch.columns["t_id"] is small_catalog.table("T").column("t_id")

    def test_select_only_shrinks_the_selection(self, small_catalog):
        engine = VectorizedEngine(small_catalog)
        plan = qplan.Select(qplan.Scan("T"), col("t_val") > 2.0)
        (batch,) = list(engine.execute_batches(plan))
        assert batch.sel == [2, 3, 4]
        # the data itself is untouched storage
        assert batch.columns["t_val"] is small_catalog.table("T").column("t_val")

    def test_all_filtered_batch_flows_through(self, small_catalog):
        engine = VectorizedEngine(small_catalog)
        plan = qplan.Agg(qplan.Select(qplan.Scan("T"), lit(False)),
                         [("t_tag", col("t_tag"))],
                         [qplan.AggSpec("count", None, "n")])
        assert engine.execute(plan) == []

    def test_empty_table(self):
        catalog = _catalog_with([])
        plan = qplan.Sort(qplan.Select(qplan.Scan("T"), col("t_val") > 0),
                          [(col("t_id"), "asc")])
        assert VectorizedEngine(catalog).execute(plan) == []

    def test_chunked_scan_covers_every_row_once(self, small_catalog):
        engine = VectorizedEngine(small_catalog, batch_size=2)
        batches = list(engine.execute_batches(qplan.Scan("T")))
        assert [list(b.indices()) for b in batches] == [[0, 1], [2, 3], [4]]
        assert engine.execute(qplan.Scan("T")) == \
            VectorizedEngine(small_catalog).execute(qplan.Scan("T"))

    def test_limit_cuts_across_batches(self, small_catalog):
        engine = VectorizedEngine(small_catalog, batch_size=2)
        plan = qplan.Limit(qplan.Scan("T"), 3)
        rows = engine.execute(plan)
        assert [r["t_id"] for r in rows] == [1, 2, 3]

    def test_limit_zero(self, small_catalog):
        assert VectorizedEngine(small_catalog).execute(
            qplan.Limit(qplan.Scan("T"), 0)) == []


class TestNullKeys:
    """Null join/group keys follow the interpreter's dictionary semantics."""

    def test_join_on_null_key_matches_volcano(self, small_catalog):
        schema = TableSchema("U", [int_column("u_key"), string_column("u_name")])
        small_catalog.register(ColumnarTable.from_rows(schema, [
            {"u_key": 10, "u_name": "ten"},
            {"u_key": None, "u_name": "nil"},
            {"u_key": 99, "u_name": "miss"},
        ]))
        plan = qplan.HashJoin(qplan.Scan("T"), qplan.Scan("U"),
                              col("t_key"), col("u_key"))
        assert VectorizedEngine(small_catalog).execute(plan) == \
            volcano_execute(plan, small_catalog)

    def test_group_by_null_key_matches_volcano(self, small_catalog):
        plan = qplan.Agg(qplan.Scan("T"), [("t_key", col("t_key"))],
                         [qplan.AggSpec("sum", col("t_val"), "total"),
                          qplan.AggSpec("count_distinct", col("t_tag"), "tags")])
        assert VectorizedEngine(small_catalog).execute(plan) == \
            volcano_execute(plan, small_catalog)

    def test_outer_join_null_padding_and_is_null(self, small_catalog):
        schema = TableSchema("V", [int_column("v_key"), float_column("v_val")])
        small_catalog.register(ColumnarTable.from_rows(schema, [
            {"v_key": 10, "v_val": 0.5},
        ]))
        joined = qplan.HashJoin(qplan.Scan("T"), qplan.Scan("V"),
                                col("t_key"), col("v_key"), kind="leftouter")
        plan = qplan.Select(joined, is_null(col("v_key")))
        assert VectorizedEngine(small_catalog).execute(plan) == \
            volcano_execute(plan, small_catalog)


class TestOperatorParityOnSmallData:
    """Exact-order parity on the operator kinds the TPC-H plans exercise."""

    CASES = {
        "semi": lambda: qplan.HashJoin(
            qplan.Scan("T"), qplan.Scan("T", fields=("t_key", "t_id")),
            col("t_key"), Col("t_key"), kind="leftsemi",
            residual=Col("t_id", "left") != Col("t_id", "right")),
        "anti": lambda: qplan.HashJoin(
            qplan.Scan("T"), qplan.Scan("T", fields=("t_key", "t_id")),
            col("t_key"), Col("t_key"), kind="leftanti",
            residual=Col("t_id", "left") != Col("t_id", "right")),
        "nested-loop": lambda: qplan.NestedLoopJoin(
            qplan.Scan("T", fields=("t_id", "t_key")),
            qplan.Scan("T", fields=("t_val",)),
            predicate=(Col("t_id", "left") < Col("t_val", "right"))),
        "sort-multi-key": lambda: qplan.Sort(
            qplan.Scan("T"), [(col("t_tag"), "asc"), (col("t_val"), "desc")]),
        "having": lambda: qplan.Agg(
            qplan.Scan("T"), [("t_tag", col("t_tag"))],
            [qplan.AggSpec("count", None, "n"),
             qplan.AggSpec("avg", col("t_val"), "mean"),
             qplan.AggSpec("min", col("t_val"), "lo"),
             qplan.AggSpec("max", col("t_val"), "hi")],
            having=col("n") > 1),
    }

    @pytest.mark.parametrize("name", sorted(CASES))
    @pytest.mark.parametrize("batch_size", [None, 2])
    def test_matches_volcano(self, small_catalog, name, batch_size):
        plan = self.CASES[name]()
        assert VectorizedEngine(small_catalog, batch_size=batch_size).execute(plan) == \
            volcano_execute(plan, small_catalog)
