"""Cross-engine regression tests for the order-contract PR:

* null-aware sorting (NULLS LAST on asc, first on desc) in every engine,
* the bounded-heap ``TopK`` operator versus its ``Limit(Sort(...))`` origin,
* unified ``Limit`` semantics for ``count <= 0``,
* the one-row global fold over an empty input, and
* common-subtree sharing (shared subplans execute once per query).
"""
import pytest

from repro.codegen.compiler import QueryCompiler
from repro.dsl import qplan
from repro.dsl.expr import col, lit
from repro.engine.template_expander import TemplateExpander
from repro.engine.vectorized import VectorizedEngine
from repro.engine.volcano import VolcanoEngine
from repro.engine import sortkeys
from repro.stack.configs import build_config
from repro.storage.catalog import Catalog
from repro.storage.schema import TableSchema, float_column, int_column, string_column


def _nullable_catalog() -> Catalog:
    """A table whose sortable columns contain NULLs, plus an empty table."""
    catalog = Catalog()
    catalog.register_rows(
        TableSchema("N", [int_column("n_id"), int_column("n_num"),
                          string_column("n_str"), float_column("n_val")],
                    primary_key=("n_id",)),
        [{"n_id": 1, "n_num": 30, "n_str": "c", "n_val": 1.5},
         {"n_id": 2, "n_num": None, "n_str": "a", "n_val": 2.5},
         {"n_id": 3, "n_num": 10, "n_str": None, "n_val": None},
         {"n_id": 4, "n_num": 30, "n_str": "b", "n_val": 0.5},
         {"n_id": 5, "n_num": None, "n_str": "a", "n_val": 4.5}])
    catalog.register_rows(
        TableSchema("E", [int_column("e_id"), float_column("e_val")],
                    primary_key=("e_id",)),
        [])
    return catalog


@pytest.fixture()
def catalog() -> Catalog:
    return _nullable_catalog()


def run_everywhere(plan, catalog):
    """Execute a plan on the three direct engines; results must agree exactly."""
    reference = VolcanoEngine(catalog).execute(plan)
    assert VectorizedEngine(catalog).execute(plan) == reference
    assert VectorizedEngine(catalog, batch_size=2).execute(plan) == reference
    expanded = TemplateExpander(catalog).compile(plan).run(catalog)
    assert expanded == reference
    return reference


class TestNullOrdering:
    def test_asc_sort_puts_nulls_last(self, catalog):
        plan = qplan.Sort(qplan.Scan("N", ("n_id", "n_num")),
                          [(col("n_num"), "asc")])
        rows = run_everywhere(plan, catalog)
        assert [r["n_num"] for r in rows] == [10, 30, 30, None, None]
        # stable ties: nulls keep input order (ids 2 then 5)
        assert [r["n_id"] for r in rows] == [3, 1, 4, 2, 5]

    def test_desc_sort_puts_nulls_first(self, catalog):
        plan = qplan.Sort(qplan.Scan("N", ("n_id", "n_num")),
                          [(col("n_num"), "desc")])
        rows = run_everywhere(plan, catalog)
        assert [r["n_num"] for r in rows] == [None, None, 30, 30, 10]

    def test_multi_key_sort_with_null_strings(self, catalog):
        plan = qplan.Sort(qplan.Scan("N", ("n_id", "n_str", "n_num")),
                          [(col("n_str"), "asc"), (col("n_num"), "desc")])
        rows = run_everywhere(plan, catalog)
        assert [r["n_str"] for r in rows] == ["a", "a", "b", "c", None]
        # within the "a" tie, n_num desc with nulls first
        assert [r["n_id"] for r in rows][:2] == [2, 5]

    def test_compiled_stack_agrees_on_null_sort(self, catalog):
        plan = qplan.Sort(qplan.Scan("N", ("n_id", "n_num")),
                          [(col("n_num"), "asc")])
        reference = VolcanoEngine(catalog).execute(plan)
        config = build_config("dblab-3")
        compiled = QueryCompiler(config.stack, config.flags).compile(
            plan, catalog, "null_sort")
        assert compiled.run(catalog) == reference


class TestTopK:
    def sort_limit(self, keys, count):
        return qplan.Limit(qplan.Sort(qplan.Scan("N"), keys), count)

    def topk(self, keys, count):
        return qplan.TopK(qplan.Scan("N"), keys, count)

    @pytest.mark.parametrize("keys,count", [
        ([(col("n_num"), "asc")], 3),
        ([(col("n_num"), "desc")], 3),
        ([(col("n_str"), "desc")], 2),               # non-numeric DESC
        ([(col("n_str"), "asc"), (col("n_num"), "desc")], 4),
        ([(col("n_val"), "desc"), (col("n_id"), "asc")], 10),  # count > rows
    ])
    def test_topk_equals_sort_then_limit(self, catalog, keys, count):
        expected = run_everywhere(self.sort_limit(keys, count), catalog)
        assert run_everywhere(self.topk(keys, count), catalog) == expected

    def test_topk_count_zero_is_empty(self, catalog):
        assert run_everywhere(self.topk([(col("n_id"), "asc")], 0), catalog) == []

    def test_topk_is_stable_on_ties(self, catalog):
        rows = run_everywhere(self.topk([(col("n_num"), "desc")], 5), catalog)
        # n_num desc: nulls first in input order (2, 5), then 30s in input
        # order (1, 4), then 10
        assert [r["n_id"] for r in rows] == [2, 5, 1, 4, 3]

    def test_topk_through_compiled_stack(self, catalog):
        plan = self.topk([(col("n_val"), "desc")], 2)
        reference = VolcanoEngine(catalog).execute(plan)
        config = build_config("dblab-2")
        compiled = QueryCompiler(config.stack, config.flags).compile(
            plan, catalog, "topk")
        assert compiled.run(catalog) == reference

    def test_topk_helper_bounds(self):
        assert sortkeys.topk_indices([[3, 1, 2]], ["asc"], 2, 3) == [1, 2]
        assert sortkeys.topk_indices([[3, 1, 2]], ["desc"], 2, 3) == [0, 2]
        assert sortkeys.topk_indices([], [], 2, 3) == [0, 1]
        assert sortkeys.topk_indices([[1, 2]], ["asc"], 0, 2) == []


class TestLimitEdgeCases:
    @pytest.mark.parametrize("count", [0, 3, 99])
    def test_limit_agrees_across_engines(self, catalog, count):
        plan = qplan.Limit(qplan.Scan("N"), count)
        rows = run_everywhere(plan, catalog)
        assert len(rows) == min(count, 5)

    def test_validate_rejects_negative_limit(self, catalog):
        with pytest.raises(qplan.PlanError, match="negative row count"):
            qplan.validate(qplan.Limit(qplan.Scan("N"), -1), catalog)
        with pytest.raises(qplan.PlanError, match="negative row count"):
            qplan.validate(qplan.TopK(qplan.Scan("N"),
                                      [(col("n_id"), "asc")], -3), catalog)

    def test_negative_limit_yields_nothing_on_direct_engines(self, catalog):
        # The direct engines do not validate; they must still agree that a
        # non-positive count keeps no rows.  The template expander validates
        # up front and rejects the plan outright.
        plan = qplan.Limit(qplan.Scan("N"), -2)
        assert VolcanoEngine(catalog).execute(plan) == []
        assert VectorizedEngine(catalog).execute(plan) == []
        with pytest.raises(qplan.PlanError, match="negative row count"):
            TemplateExpander(catalog).compile(plan)


class TestEmptyGlobalFold:
    AGGS = [qplan.AggSpec("count", None, "n"),
            qplan.AggSpec("count", col("e_val"), "n_vals"),
            qplan.AggSpec("sum", col("e_val"), "total"),
            qplan.AggSpec("avg", col("e_val"), "mean"),
            qplan.AggSpec("min", col("e_val"), "low"),
            qplan.AggSpec("max", col("e_val"), "high"),
            qplan.AggSpec("count_distinct", col("e_val"), "kinds")]

    EXPECTED = [{"n": 0, "n_vals": 0, "total": 0, "mean": None,
                 "low": None, "high": None, "kinds": 0}]

    def test_global_fold_over_empty_table(self, catalog):
        plan = qplan.Agg(qplan.Scan("E"), [], self.AGGS)
        assert run_everywhere(plan, catalog) == self.EXPECTED

    def test_global_fold_over_filtered_out_input(self, catalog):
        plan = qplan.Agg(qplan.Select(qplan.Scan("N"), lit(False)),
                         [], [qplan.AggSpec("sum", col("n_val"), "total"),
                              qplan.AggSpec("count", None, "n")])
        assert run_everywhere(plan, catalog) == [{"total": 0, "n": 0}]

    @pytest.mark.parametrize("config_name", ["dblab-2", "dblab-3", "dblab-5"])
    def test_compiled_stacks_emit_the_neutral_row(self, catalog, config_name):
        plan = qplan.Agg(qplan.Scan("E"), [], self.AGGS)
        config = build_config(config_name)
        compiled = QueryCompiler(config.stack, config.flags).compile(
            plan, catalog, f"empty_fold_{config_name}")
        assert compiled.run(catalog) == self.EXPECTED

    def test_grouped_aggregate_over_empty_input_stays_empty(self, catalog):
        plan = qplan.Agg(qplan.Scan("E"), [("k", col("e_id"))],
                         [qplan.AggSpec("count", None, "n")])
        assert run_everywhere(plan, catalog) == []


def _shared_subplan_query():
    """A Q15-shaped plan: the aggregation subtree feeds both its own max()
    fold and the final join, so it must be evaluated once."""
    revenue = qplan.Agg(qplan.Scan("N", ("n_id", "n_num", "n_val")),
                        [("num", col("n_num"))],
                        [qplan.AggSpec("sum", col("n_val"), "total")])
    top = qplan.Agg(revenue, [], [qplan.AggSpec("max", col("total"), "best")])
    joined = qplan.HashJoin(revenue, top, lit(0), lit(0))
    return qplan.Select(joined, col("total") == col("best"))


class TestCommonSubtreeSharing:
    def test_detection_finds_the_shared_aggregate(self):
        plan = _shared_subplan_query()
        shared = qplan.shared_subplan_fingerprints(plan)
        assert shared  # the revenue subtree occurs twice
        assert all("Agg" in key or "Select" in key for key in shared.values())

    def test_detection_ignores_plain_plans_and_scans(self):
        chain = qplan.HashJoin(qplan.Scan("N"), qplan.Scan("N"),
                               col("n_id"), col("n_id"), kind="leftsemi")
        assert qplan.shared_subplan_fingerprints(chain) == {}

    def test_volcano_executes_shared_subplan_once(self, catalog):
        plan = _shared_subplan_query()
        engine = VolcanoEngine(catalog)
        scans = []
        original = engine._dispatch

        def spy(node):
            if isinstance(node, qplan.Scan):
                scans.append(node.table)
            return original(node)

        engine._dispatch = spy
        rows = engine.execute(plan)
        assert scans.count("N") == 1
        assert len(rows) == 1 and rows[0]["total"] == rows[0]["best"]

    def test_vectorized_executes_shared_subplan_once(self, catalog):
        plan = _shared_subplan_query()
        engine = VectorizedEngine(catalog)
        scans = []
        original = engine._dispatch

        def spy(node):
            if isinstance(node, qplan.Scan):
                scans.append(node.table)
            return original(node)

        engine._dispatch = spy
        rows = engine.execute(plan)
        assert scans.count("N") == 1
        assert rows == VolcanoEngine(catalog).execute(plan)

    def test_template_expander_emits_shared_subplan_once(self, catalog):
        plan = _shared_subplan_query()
        expanded = TemplateExpander(catalog).compile(plan, "shared")
        assert expanded.source.count("db.size('N')") == 1
        assert expanded.run(catalog) == VolcanoEngine(catalog).execute(plan)

    def test_results_identical_with_and_without_sharing(self, catalog):
        plan = _shared_subplan_query()
        engine = VolcanoEngine(catalog)
        shared_rows = engine.execute(plan)
        unshared_rows = list(engine.iterate(plan))  # no cache outside execute()
        assert shared_rows == unshared_rows
