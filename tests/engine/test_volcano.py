"""Unit tests for the Volcano (iterator-model) interpreter."""
import pytest

from repro.dsl import qplan
from repro.dsl.expr import Col, col, is_null, lit
from repro.engine.volcano import VolcanoEngine, execute
from repro.storage.catalog import Catalog
from repro.storage.layouts import ColumnarTable
from repro.storage.schema import TableSchema, float_column, int_column, string_column


@pytest.fixture()
def catalog():
    """The paper's running example: R(name, sid) joined with S(rid)."""
    cat = Catalog()
    r_schema = TableSchema("R", [int_column("r_id"), string_column("r_name"),
                                 int_column("r_sid")], primary_key=("r_id",))
    s_schema = TableSchema("S", [int_column("s_id"), int_column("s_rid"),
                                 float_column("s_val")], primary_key=("s_id",))
    cat.register(ColumnarTable(r_schema, {
        "r_id": [1, 2, 3, 4],
        "r_name": ["R1", "R2", "R1", "R3"],
        "r_sid": [10, 20, 30, 10],
    }))
    cat.register(ColumnarTable(s_schema, {
        "s_id": [100, 101, 102, 103, 104],
        "s_rid": [10, 30, 10, 50, 30],
        "s_val": [1.0, 2.0, 3.0, 4.0, 5.0],
    }))
    return cat


class TestBasicOperators:
    def test_scan_returns_all_rows(self, catalog):
        rows = execute(qplan.Scan("R"), catalog)
        assert len(rows) == 4
        assert rows[0] == {"r_id": 1, "r_name": "R1", "r_sid": 10}

    def test_scan_with_pruned_fields(self, catalog):
        rows = execute(qplan.Scan("R", fields=("r_name",)), catalog)
        assert rows[0] == {"r_name": "R1"}

    def test_select_filters(self, catalog):
        rows = execute(qplan.Select(qplan.Scan("R"), col("r_name") == "R1"), catalog)
        assert [r["r_id"] for r in rows] == [1, 3]

    def test_project_computes_and_renames(self, catalog):
        plan = qplan.Project(qplan.Scan("S"), [("doubled", col("s_val") * 2)])
        rows = execute(plan, catalog)
        assert [r["doubled"] for r in rows] == [2.0, 4.0, 6.0, 8.0, 10.0]

    def test_limit(self, catalog):
        rows = execute(qplan.Limit(qplan.Scan("S"), 2), catalog)
        assert len(rows) == 2

    def test_sort_multi_key(self, catalog):
        plan = qplan.Sort(qplan.Scan("R"),
                          [(col("r_name"), "asc"), (col("r_sid"), "desc")])
        rows = execute(plan, catalog)
        assert [(r["r_name"], r["r_sid"]) for r in rows] == \
            [("R1", 30), ("R1", 10), ("R2", 20), ("R3", 10)]


class TestJoins:
    def test_inner_hash_join_count(self, catalog):
        """The paper's example query: COUNT(*) of R1-rows joined with S."""
        plan = qplan.Agg(
            qplan.HashJoin(
                qplan.Select(qplan.Scan("R"), col("r_name") == "R1"),
                qplan.Scan("S"), col("r_sid"), col("s_rid")),
            [], [qplan.AggSpec("count", None, "n")])
        rows = execute(plan, catalog)
        # R1 rows have sid 10 and 30; S has rid 10 twice and 30 twice -> 4 matches
        assert rows == [{"n": 4}]

    def test_inner_join_combines_columns(self, catalog):
        plan = qplan.HashJoin(qplan.Scan("R"), qplan.Scan("S"), col("r_sid"), col("s_rid"))
        rows = execute(plan, catalog)
        assert all(set(r) == {"r_id", "r_name", "r_sid", "s_id", "s_rid", "s_val"}
                   for r in rows)
        assert len(rows) == 6

    def test_semi_join(self, catalog):
        plan = qplan.HashJoin(qplan.Scan("R"), qplan.Scan("S"), col("r_sid"), col("s_rid"),
                              kind="leftsemi")
        rows = execute(plan, catalog)
        assert sorted(r["r_id"] for r in rows) == [1, 3, 4]

    def test_anti_join(self, catalog):
        plan = qplan.HashJoin(qplan.Scan("R"), qplan.Scan("S"), col("r_sid"), col("s_rid"),
                              kind="leftanti")
        rows = execute(plan, catalog)
        assert [r["r_id"] for r in rows] == [2]

    def test_outer_join_pads_with_none(self, catalog):
        plan = qplan.HashJoin(qplan.Scan("R"), qplan.Scan("S"), col("r_sid"), col("s_rid"),
                              kind="leftouter")
        rows = execute(plan, catalog)
        assert len(rows) == 7  # 6 matches + 1 unmatched (r_id=2)
        unmatched = [r for r in rows if r["s_id"] is None]
        assert len(unmatched) == 1 and unmatched[0]["r_id"] == 2

    def test_outer_join_null_detection(self, catalog):
        plan = qplan.Select(
            qplan.HashJoin(qplan.Scan("R"), qplan.Scan("S"), col("r_sid"), col("s_rid"),
                           kind="leftouter"),
            is_null(col("s_id")))
        rows = execute(plan, catalog)
        assert [r["r_id"] for r in rows] == [2]

    def test_join_residual_condition(self, catalog):
        plan = qplan.HashJoin(qplan.Scan("R"), qplan.Scan("S"), col("r_sid"), col("s_rid"),
                              residual=col("s_val") > 2.0)
        rows = execute(plan, catalog)
        assert all(r["s_val"] > 2.0 for r in rows)
        assert len(rows) == 3

    def test_semi_join_with_sided_residual(self, catalog):
        """EXISTS (... AND inner.id <> outer.id) as used by TPC-H Q21."""
        plan = qplan.HashJoin(qplan.Scan("S"), qplan.Scan("S", fields=("s_rid", "s_id")),
                              col("s_rid"), Col("s_rid"),
                              kind="leftsemi",
                              residual=Col("s_id", "left") != Col("s_id", "right"))
        rows = execute(plan, catalog)
        # rows whose s_rid value appears in another row: rid 10 (x2) and 30 (x2)
        assert sorted(r["s_id"] for r in rows) == [100, 101, 102, 104]

    def test_nested_loop_join_inequality(self, catalog):
        plan = qplan.NestedLoopJoin(
            qplan.Scan("R"), qplan.Scan("S"),
            predicate=(Col("r_sid", "left") < Col("s_rid", "right")))
        rows = execute(plan, catalog)
        assert all(r["r_sid"] < r["s_rid"] for r in rows)

    def test_nested_loop_cross_product(self, catalog):
        plan = qplan.NestedLoopJoin(qplan.Scan("R"), qplan.Scan("S", fields=("s_val",)))
        rows = execute(plan, catalog)
        assert len(rows) == 20

    def test_nested_loop_semi_and_outer(self, catalog):
        semi = qplan.NestedLoopJoin(qplan.Scan("R"), qplan.Scan("S"),
                                    predicate=(Col("r_sid", "left") == Col("s_rid", "right")),
                                    kind="leftsemi")
        assert sorted(r["r_id"] for r in execute(semi, catalog)) == [1, 3, 4]
        outer = qplan.NestedLoopJoin(qplan.Scan("R"), qplan.Scan("S"),
                                     predicate=(Col("r_sid", "left") == Col("s_rid", "right")),
                                     kind="leftouter")
        rows = execute(outer, catalog)
        assert len(rows) == 7


class TestAggregation:
    def test_global_aggregate(self, catalog):
        plan = qplan.Agg(qplan.Scan("S"), [],
                         [qplan.AggSpec("sum", col("s_val"), "total"),
                          qplan.AggSpec("avg", col("s_val"), "mean"),
                          qplan.AggSpec("min", col("s_val"), "lo"),
                          qplan.AggSpec("max", col("s_val"), "hi"),
                          qplan.AggSpec("count", None, "n")])
        rows = execute(plan, catalog)
        assert rows == [{"total": 15.0, "mean": 3.0, "lo": 1.0, "hi": 5.0, "n": 5}]

    def test_group_by(self, catalog):
        plan = qplan.Agg(qplan.Scan("R"), [("r_name", col("r_name"))],
                         [qplan.AggSpec("count", None, "n"),
                          qplan.AggSpec("sum", col("r_sid"), "sids")])
        rows = {r["r_name"]: r for r in execute(plan, catalog)}
        assert rows["R1"] == {"r_name": "R1", "n": 2, "sids": 40}
        assert rows["R2"]["n"] == 1

    def test_count_distinct(self, catalog):
        plan = qplan.Agg(qplan.Scan("S"), [],
                         [qplan.AggSpec("count_distinct", col("s_rid"), "d")])
        assert execute(plan, catalog) == [{"d": 3}]

    def test_count_expression_skips_nulls(self, catalog):
        outer = qplan.HashJoin(qplan.Scan("R"), qplan.Scan("S"), col("r_sid"), col("s_rid"),
                               kind="leftouter")
        plan = qplan.Agg(outer, [], [qplan.AggSpec("count", col("s_id"), "matched"),
                                     qplan.AggSpec("count", None, "all_rows")])
        rows = execute(plan, catalog)
        assert rows == [{"matched": 6, "all_rows": 7}]

    def test_having_filters_groups(self, catalog):
        plan = qplan.Agg(qplan.Scan("R"), [("r_name", col("r_name"))],
                         [qplan.AggSpec("count", None, "n")],
                         having=col("n") > 1)
        rows = execute(plan, catalog)
        assert [r["r_name"] for r in rows] == ["R1"]

    def test_empty_input_group_by_yields_no_rows(self, catalog):
        plan = qplan.Agg(qplan.Select(qplan.Scan("R"), lit(False)),
                         [("r_name", col("r_name"))],
                         [qplan.AggSpec("count", None, "n")])
        assert execute(plan, catalog) == []

    def test_avg_of_empty_group_is_none(self, catalog):
        plan = qplan.Agg(qplan.Select(qplan.Scan("S"), lit(False)), [],
                         [qplan.AggSpec("avg", col("s_val"), "mean")])
        rows = execute(plan, catalog)
        # a global aggregate over an empty input still yields one row
        assert rows == [{"mean": None}]

    def test_unknown_operator_rejected(self, catalog):
        class Strange(qplan.Operator):
            def children(self):
                return ()

        with pytest.raises(Exception):
            VolcanoEngine(catalog).execute(Strange())


class TestDictionaryCodePredicates:
    """String ==/IN/prefix-LIKE predicates over base-table scans evaluate on
    dictionary codes; emitted rows are identical to raw-value filtering."""

    def test_equality_rewrites_to_codes(self, catalog):
        from repro.dsl.expr import wrap
        from repro.storage.access import AccessLayer, rewrite_string_predicates
        layer = AccessLayer.for_catalog(catalog)
        predicate = wrap(col("r_name") == "R1")
        _, code_columns = rewrite_string_predicates(
            predicate, "R", catalog.table("R").schema.columns, layer)
        assert code_columns  # the rewrite applies: r_name has a dictionary

        rows = execute(qplan.Select(qplan.Scan("R"), predicate), catalog)
        assert [r["r_id"] for r in rows] == [1, 3]
        # code columns never leak into emitted rows
        assert all(set(r) == {"r_id", "r_name", "r_sid"} for r in rows)

    def test_in_list_on_codes(self, catalog):
        from repro.dsl.expr import in_list
        plan = qplan.Select(qplan.Scan("R"),
                            in_list(col("r_name"), ["R1", "R3"]))
        rows = execute(plan, catalog)
        assert [r["r_id"] for r in rows] == [1, 3, 4]

    def test_absent_literal_folds(self, catalog):
        assert execute(qplan.Select(qplan.Scan("R"),
                                    col("r_name") == "ZZZ"), catalog) == []
        rows = execute(qplan.Select(qplan.Scan("R"),
                                    col("r_name") != "ZZZ"), catalog)
        assert len(rows) == 4

    def test_parity_with_generic_select_path(self, catalog):
        """The same predicate through the non-scan Select path (no dictionary
        rewriting) must produce identical rows in identical order."""
        predicate = col("r_name") == "R1"
        fast = execute(qplan.Select(qplan.Scan("R"), predicate), catalog)
        slow = execute(qplan.Select(
            qplan.Project(qplan.Scan("R"),
                          [("r_id", col("r_id")), ("r_name", col("r_name")),
                           ("r_sid", col("r_sid"))]),
            predicate), catalog)
        assert fast == slow
