"""Execution tests for the access paths across all three direct engines.

The planner's access rules are order- and value-preserving, so every plan
containing ``PrunedScan`` / ``IndexJoin`` must return exactly — ``==``, not
just multiset-equal — the rows of its raw counterpart on the Volcano
interpreter, the vectorized engine and the template expander.
"""
import pytest

from repro.dsl import qplan as Q
from repro.dsl.expr import col, date
from repro.engine.template_expander import TemplateExpander
from repro.engine.vectorized import VectorizedEngine
from repro.engine.volcano import VolcanoEngine
from repro.planner import Planner, PlannerOptions
from repro.storage.catalog import Catalog
from repro.storage.layouts import ColumnarTable
from repro.storage.schema import TableSchema, int_column, string_column
from repro.tpch.queries import build_query

#: queries whose optimized plans exercise both access ops (and Q4's semi join)
ACCESS_QUERIES = ("Q3", "Q4", "Q6", "Q10", "Q12", "Q14", "Q19")


@pytest.fixture(scope="module")
def planner(tpch_catalog):
    # exact_order keeps the comparison at plain list equality
    return Planner(tpch_catalog, PlannerOptions.exact_order())


class TestExactRowParity:
    @pytest.mark.parametrize("query_name", ACCESS_QUERIES)
    def test_volcano(self, tpch_catalog, planner, query_name):
        raw = build_query(query_name)
        optimized = planner.optimize(build_query(query_name))
        engine = VolcanoEngine(tpch_catalog)
        assert engine.execute(optimized) == engine.execute(raw)

    @pytest.mark.parametrize("query_name", ACCESS_QUERIES)
    def test_vectorized(self, tpch_catalog, planner, query_name):
        raw = build_query(query_name)
        optimized = planner.optimize(build_query(query_name))
        engine = VectorizedEngine(tpch_catalog)
        assert engine.execute(optimized) == engine.execute(raw)

    @pytest.mark.parametrize("query_name", ACCESS_QUERIES)
    def test_vectorized_with_small_batches(self, tpch_catalog, planner, query_name):
        raw = build_query(query_name)
        optimized = planner.optimize(build_query(query_name))
        engine = VectorizedEngine(tpch_catalog, batch_size=17)
        assert engine.execute(optimized) == engine.execute(raw)

    @pytest.mark.parametrize("query_name", ACCESS_QUERIES)
    def test_template_expander(self, tpch_catalog, planner, query_name):
        raw = build_query(query_name)
        optimized = planner.optimize(build_query(query_name))
        expander = TemplateExpander(tpch_catalog)
        assert expander.compile(optimized, query_name).run(tpch_catalog) == \
            expander.compile(raw, query_name).run(tpch_catalog)

    def test_template_source_uses_the_index_and_prune_helpers(self, tpch_catalog,
                                                              planner):
        optimized = planner.optimize(build_query("Q12"))
        source = TemplateExpander(tpch_catalog).compile(optimized, "Q12").source
        assert "_tpl_index(db, 'orders', 'o_orderkey')" in source
        assert "_tpl_prune(db, 'lineitem'" in source


class TestIndexJoinKinds:
    """Hand-built IndexJoins of every supported kind match their HashJoins."""

    def _pair(self, kind, residual=None):
        hash_plan = Q.HashJoin(Q.Scan("customer"), Q.Scan("orders"),
                               col("c_custkey"), col("o_custkey"),
                               kind=kind, residual=residual)
        index_plan = Q.IndexJoin(Q.Scan("customer"), Q.Scan("orders"),
                                 col("c_custkey"), col("o_custkey"),
                                 kind=kind, residual=residual,
                                 index_table="customer",
                                 index_column="c_custkey")
        return hash_plan, index_plan

    @pytest.mark.parametrize("kind", ["inner", "leftsemi", "leftanti"])
    def test_bare_build_kinds(self, tpch_catalog, kind):
        hash_plan, index_plan = self._pair(kind)
        for engine in (VolcanoEngine(tpch_catalog),
                       VectorizedEngine(tpch_catalog)):
            assert engine.execute(index_plan) == engine.execute(hash_plan)
        expander = TemplateExpander(tpch_catalog)
        assert expander.compile(index_plan).run(tpch_catalog) == \
            expander.compile(hash_plan).run(tpch_catalog)

    @pytest.mark.parametrize("kind", ["inner", "leftsemi", "leftanti"])
    def test_filtered_build_kinds(self, tpch_catalog, kind):
        predicate = col("c_custkey") <= 40
        hash_plan = Q.HashJoin(
            Q.Select(Q.Scan("customer"), predicate), Q.Scan("orders"),
            col("c_custkey"), col("o_custkey"), kind=kind)
        index_plan = Q.IndexJoin(
            Q.Select(Q.Scan("customer"), predicate), Q.Scan("orders"),
            col("c_custkey"), col("o_custkey"), kind=kind,
            index_table="customer", index_column="c_custkey")
        for engine in (VolcanoEngine(tpch_catalog),
                       VectorizedEngine(tpch_catalog)):
            assert engine.execute(index_plan) == engine.execute(hash_plan)
        expander = TemplateExpander(tpch_catalog)
        assert expander.compile(index_plan).run(tpch_catalog) == \
            expander.compile(hash_plan).run(tpch_catalog)

    def test_residual_predicate(self, tpch_catalog):
        residual = col("o_orderdate") < date("1995-01-01")
        hash_plan, index_plan = self._pair("inner", residual=residual)
        for engine in (VolcanoEngine(tpch_catalog),
                       VectorizedEngine(tpch_catalog)):
            assert engine.execute(index_plan) == engine.execute(hash_plan)


class TestSparseUniqueKeys:
    """A unique-but-sparse key is served by the dict-backed index."""

    def _catalog(self):
        catalog = Catalog()
        dim = TableSchema("dim", [int_column("d_id"), string_column("d_name")],
                          primary_key=("d_id",))
        fact = TableSchema("fact", [int_column("f_id"), int_column("f_did")],
                           primary_key=("f_id",))
        catalog.register(ColumnarTable(dim, {
            "d_id": [5, 700000, 31],
            "d_name": ["a", "b", "c"],
        }))
        catalog.register(ColumnarTable(fact, {
            "f_id": [1, 2, 3, 4],
            "f_did": [31, 5, 999, 700000],
        }))
        return catalog

    def test_dict_index_join_matches_hash_join(self):
        catalog = self._catalog()
        from repro.storage.access import DictIndex
        assert isinstance(catalog.access_layer().key_index("dim", "d_id"),
                          DictIndex)
        hash_plan = Q.HashJoin(Q.Scan("dim"), Q.Scan("fact"),
                               col("d_id"), col("f_did"))
        index_plan = Q.IndexJoin(Q.Scan("dim"), Q.Scan("fact"),
                                 col("d_id"), col("f_did"),
                                 index_table="dim", index_column="d_id")
        for engine in (VolcanoEngine(catalog), VectorizedEngine(catalog)):
            assert engine.execute(index_plan) == engine.execute(hash_plan)


class TestBuildOnce:
    def test_indices_are_reused_across_engines_and_executions(self, tpch_catalog):
        layer = tpch_catalog.access_layer()
        plan = Planner(tpch_catalog).optimize(build_query("Q12"))
        VolcanoEngine(tpch_catalog).execute(plan)
        counts = dict(layer.build_counts)
        assert counts[("key_index", "orders", "o_orderkey")] == 1
        # more executions, a different engine, a fresh engine instance:
        # nothing is ever rebuilt
        VolcanoEngine(tpch_catalog).execute(plan)
        VectorizedEngine(tpch_catalog).execute(plan)
        VectorizedEngine(tpch_catalog).execute(plan)
        assert layer.build_counts == counts


class TestDictionaryEncodedSelects:
    def test_string_equality_on_vectorized_matches_volcano(self, tpch_catalog):
        plan = Q.Agg(
            Q.Select(Q.Scan("customer"), col("c_mktsegment") == "BUILDING"),
            [("c_mktsegment", col("c_mktsegment"))],
            [Q.AggSpec("count", None, "n")])
        assert VectorizedEngine(tpch_catalog).execute(plan) == \
            VolcanoEngine(tpch_catalog).execute(plan)

    def test_absent_string_selects_nothing(self, tpch_catalog):
        plan = Q.Select(Q.Scan("customer"), col("c_mktsegment") == "NO SUCH")
        assert VectorizedEngine(tpch_catalog).execute(plan) == []

    def test_dictionary_built_once_for_repeated_selects(self, tpch_catalog):
        engine = VectorizedEngine(tpch_catalog)
        plan = Q.Select(Q.Scan("customer"), col("c_mktsegment") == "BUILDING")
        engine.execute(plan)
        layer = tpch_catalog.access_layer()
        count = layer.build_counts[("dictionary", "customer", "c_mktsegment")]
        engine.execute(plan)
        engine.execute(plan)
        assert layer.build_counts[
            ("dictionary", "customer", "c_mktsegment")] == count == 1


class TestLeftOuterIndexJoin:
    """Leftouter joins are index-served with null-padded probe misses.

    Regression for the silent fallback: all three direct engines used to
    drop to a full hash build for ``kind="leftouter"`` even when the build
    side was an indexed PK scan.
    """

    def _pair(self, residual=None):
        hash_plan = Q.HashJoin(Q.Scan("customer"), Q.Scan("orders"),
                               col("c_custkey"), col("o_custkey"),
                               kind="leftouter", residual=residual)
        index_plan = Q.IndexJoin(Q.Scan("customer"), Q.Scan("orders"),
                                 col("c_custkey"), col("o_custkey"),
                                 kind="leftouter", residual=residual,
                                 index_table="customer",
                                 index_column="c_custkey")
        return hash_plan, index_plan

    def test_rows_match_the_hash_join_exactly(self, tpch_catalog):
        hash_plan, index_plan = self._pair()
        for engine in (VolcanoEngine(tpch_catalog),
                       VectorizedEngine(tpch_catalog),
                       VectorizedEngine(tpch_catalog, batch_size=17)):
            assert engine.execute(index_plan) == engine.execute(hash_plan)
        expander = TemplateExpander(tpch_catalog)
        assert expander.compile(index_plan).run(tpch_catalog) == \
            expander.compile(hash_plan).run(tpch_catalog)

    def test_unmatched_rows_are_padded_with_none_in_every_probe_field(
            self, tpch_catalog):
        _, index_plan = self._pair()
        probe_fields = Q.output_fields(Q.Scan("orders"), tpch_catalog)
        build_fields = Q.output_fields(Q.Scan("customer"), tpch_catalog)
        for rows in (
            VolcanoEngine(tpch_catalog).execute(index_plan),
            VectorizedEngine(tpch_catalog).execute(index_plan),
            TemplateExpander(tpch_catalog).compile(index_plan).run(tpch_catalog),
        ):
            padded = [row for row in rows if row["o_orderkey"] is None]
            assert padded, "the 0.001-sf catalog has customers without orders"
            for row in padded:
                # every probe-side field of the padded row is None, every
                # preserved (build-side) field is a real customer value
                assert all(row[name] is None for name in probe_fields)
                assert all(row[name] is not None for name in build_fields)
        customers = tpch_catalog.size("customer")
        with_orders = len({row["o_custkey"]
                           for row in VolcanoEngine(tpch_catalog).execute(
                               Q.Scan("orders"))})
        assert len(padded) == customers - with_orders

    def test_residual_failures_are_padded_too(self, tpch_catalog):
        residual = col("o_totalprice") > 1e12  # no order ever matches
        hash_plan, index_plan = self._pair(residual=residual)
        engine = VolcanoEngine(tpch_catalog)
        rows = engine.execute(index_plan)
        assert rows == engine.execute(hash_plan)
        assert len(rows) == tpch_catalog.size("customer")
        assert all(row["o_orderkey"] is None for row in rows)

    def test_planner_selects_the_leftouter_index_join(self, tpch_catalog):
        plan = Q.Agg(
            Q.HashJoin(Q.Scan("customer"), Q.Scan("orders"),
                       col("c_custkey"), col("o_custkey"), kind="leftouter"),
            [], [Q.AggSpec("count", None, "n")])
        optimized = Planner(tpch_catalog).optimize(plan)
        joins = [node for node in Q.walk(optimized)
                 if isinstance(node, Q.IndexJoin)]
        assert joins and joins[0].kind == "leftouter"
        assert VolcanoEngine(tpch_catalog).execute(optimized) == \
            VolcanoEngine(tpch_catalog).execute(plan)
