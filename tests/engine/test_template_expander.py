"""Unit tests for the single-step template expander baseline."""
import pytest

from repro.dsl import qplan as Q
from repro.dsl.expr import Col, case, col, like, lit
from repro.engine.template_expander import TemplateExpander, TemplateExpansionError
from repro.engine.volcano import execute


def canon(rows):
    return sorted(tuple(sorted((k, repr(v)) for k, v in row.items())) for row in rows)


def expand_and_run(plan, catalog):
    expanded = TemplateExpander(catalog).compile(plan, "t")
    return expanded.run(catalog), expanded


class TestTemplateExpander:
    def test_simple_scan_select(self, tiny_catalog):
        plan = Q.Select(Q.Scan("R"), col("r_name") == "R1")
        rows, expanded = expand_and_run(plan, tiny_catalog)
        assert canon(rows) == canon(execute(plan, tiny_catalog))
        assert expanded.compile_seconds > 0

    def test_intermediate_results_are_materialised(self, tiny_catalog):
        """The defining property of template expansion: one list per operator."""
        plan = Q.Select(Q.Select(Q.Scan("R"), col("r_id") > 1), col("r_sid") > 5)
        _, expanded = expand_and_run(plan, tiny_catalog)
        assert expanded.source.count("= []") >= 3   # scan + two filters

    @pytest.mark.parametrize("kind", ["inner", "leftsemi", "leftanti", "leftouter"])
    def test_hash_join_kinds(self, tiny_catalog, kind):
        plan = Q.HashJoin(Q.Scan("R"), Q.Scan("S"), col("r_sid"), col("s_rid"), kind=kind)
        rows, _ = expand_and_run(plan, tiny_catalog)
        assert canon(rows) == canon(execute(plan, tiny_catalog))

    def test_join_with_residual(self, tiny_catalog):
        plan = Q.HashJoin(Q.Scan("R"), Q.Scan("S"), col("r_sid"), col("s_rid"),
                          residual=col("s_val") > 2.0)
        rows, _ = expand_and_run(plan, tiny_catalog)
        assert canon(rows) == canon(execute(plan, tiny_catalog))

    def test_nested_loop_join(self, tiny_catalog):
        plan = Q.NestedLoopJoin(Q.Scan("R"), Q.Scan("S"),
                                predicate=Col("r_sid", "left") < Col("s_rid", "right"))
        rows, _ = expand_and_run(plan, tiny_catalog)
        assert canon(rows) == canon(execute(plan, tiny_catalog))

    def test_aggregation_with_all_kinds(self, tiny_catalog):
        plan = Q.Agg(Q.Scan("S"), [("s_rid", col("s_rid"))],
                     [Q.AggSpec("sum", col("s_val"), "total"),
                      Q.AggSpec("avg", col("s_val"), "mean"),
                      Q.AggSpec("min", col("s_val"), "lo"),
                      Q.AggSpec("max", col("s_val"), "hi"),
                      Q.AggSpec("count", None, "n"),
                      Q.AggSpec("count_distinct", col("s_val"), "d")])
        rows, _ = expand_and_run(plan, tiny_catalog)
        assert canon(rows) == canon(execute(plan, tiny_catalog))

    def test_having_sort_limit(self, tiny_catalog):
        plan = Q.Limit(
            Q.Sort(
                Q.Agg(Q.Scan("S"), [("s_rid", col("s_rid"))],
                      [Q.AggSpec("count", None, "n")], having=col("n") >= 1),
                [(col("n"), "desc"), (col("s_rid"), "asc")]),
            3)
        rows, _ = expand_and_run(plan, tiny_catalog)
        assert rows == execute(plan, tiny_catalog)

    def test_scalar_expression_templates(self, tiny_catalog):
        plan = Q.Project(Q.Scan("R"), [
            ("flag", case([(like(col("r_name"), "R1%"), lit(1))], lit(0))),
            ("neg", 0 - col("r_sid")),
        ])
        rows, _ = expand_and_run(plan, tiny_catalog)
        assert canon(rows) == canon(execute(plan, tiny_catalog))

    def test_unknown_operator_rejected(self, tiny_catalog):
        class Strange(Q.Operator):
            def children(self):
                return ()

        with pytest.raises(TemplateExpansionError):
            TemplateExpander(tiny_catalog)._expand(Strange(), [], 1)
