"""Overload chaos: the front door under injected storms.

This is the serving layer's acceptance suite.  Under seeded fault storms
(engine failures, slow executors, dispatcher stalls, deadline skew) with
ramped concurrency, the invariants checked throughout are:

* every admitted query that answers does so with contract-correct rows
  (multiset parity against the clean Volcano reference under the query's
  order contract, via :func:`repro.bench.harness.rows_equivalent`);
* every shed or downgraded request yields a *typed* response AND a matching
  incident record — response counts and incident counters reconcile exactly,
  no silent drop;
* no admitted query's end-to-end wall time exceeds its deadline by more than
  the governor's checkpoint slack;
* graceful drain terminates with zero orphaned futures and zero in-flight
  queries.

``CHAOS_SEED`` (environment) feeds the probabilistic storms so CI can sweep
a fixed seed matrix; the default is seed 0.
"""
import asyncio
import itertools
import os
import time

import pytest

from repro.bench.harness import assert_rows_equivalent
from repro.engine.volcano import execute
from repro.planner import sort_contract
from repro.robustness.faults import (DataCorruptionFault, EngineFault,
                                     FaultPlan, FaultSpec, inject)
from repro.robustness.governor import QueryBudget
from repro.server import STATUSES, QueryServer
from repro.tpch.queries import build_query

CHAOS_SEED = int(os.environ.get("CHAOS_SEED", "0"))
QUERIES = ("Q1", "Q6", "Q12", "Q14")
#: wall-time slack on the deadline invariant: the governor only consults the
#: clock every ``check_interval`` rows, plus generous CI scheduling headroom
DEADLINE_SLACK_SECONDS = 1.0


@pytest.fixture(scope="module")
def reference_results(tpch_catalog):
    return {name: execute(build_query(name), tpch_catalog)
            for name in QUERIES}


@pytest.fixture(scope="module")
def query_registry():
    return {name: build_query(name) for name in QUERIES}


def _check_parity(reference_results, response):
    assert_rows_equivalent(
        reference_results[response.query], response.rows,
        sort_keys=sort_contract(build_query(response.query)),
        context=f"{response.query} on {response.tier}/{response.plan_mode} "
                f"(policy {response.tier_policy})")


async def _timed_submit(server, name, **kwargs):
    started = time.monotonic()
    response = await server.submit(name, **kwargs)
    return response, time.monotonic() - started


def _reconcile(server, responses):
    """Shed/downgrade accounting: responses and incidents must agree."""
    overloaded = [r for r in responses if r.status == "overloaded"]
    expired = [r for r in responses if r.status == "deadline_exceeded"
               and r.reason != "budget_timeout"]
    budget_timeouts = [r for r in responses if r.reason == "budget_timeout"]
    downgraded = [r for r in responses if r.tier_policy != "full"]
    incidents = server.incidents
    assert incidents.count("admission_reject") == len(overloaded)
    assert incidents.count("deadline_expired") == len(expired)
    assert incidents.count("budget_trip") >= len(budget_timeouts)
    assert incidents.count("admission_downgrade") == len(downgraded)
    # shed requests never carry rows; typed reason always present on non-ok
    for response in responses:
        assert response.status in STATUSES
        if response.shed:
            assert response.rows is None
            assert response.reason
    counted = server.stats()["responses_by_status"]
    assert sum(counted.values()) == len(responses)


def _assert_drained(server):
    stats = server.stats()
    assert server.state == "stopped"
    assert stats["in_flight"] == 0
    assert stats["pending"] == 0
    assert stats["queue"]["depth"] == 0


@pytest.mark.timeout(300)
class TestRampedOverloadStorm:
    """The headline scenario: concurrency ramps past the queue bound while a
    probabilistic storm hits engines, workers and the dispatcher at once."""

    TIMEOUT = 10.0

    def _storm(self):
        return FaultPlan([
            FaultSpec(site="engine.compiled.run", error=EngineFault,
                      probability=0.25),
            FaultSpec(site="engine.vectorized.batch", error=EngineFault,
                      probability=0.10),
            FaultSpec(site="access.zone_map", error=DataCorruptionFault,
                      probability=0.10),
            FaultSpec(site="server.executor_slow", value=0.01,
                      probability=0.30),
            FaultSpec(site="server.queue_stall", value=0.005,
                      probability=0.30),
            FaultSpec(site="server.deadline_skew", value=0.002,
                      probability=0.30),
        ], seed=CHAOS_SEED)

    def test_storm_invariants(self, tpch_catalog, query_registry,
                              reference_results):
        async def scenario():
            server = QueryServer(
                tpch_catalog, queries=query_registry,
                max_queue_depth=16, initial_concurrency=2, max_concurrency=8,
                base_budget=QueryBudget(check_interval=16),
                default_timeout_seconds=self.TIMEOUT)
            await server.start()
            results = []
            with inject(self._storm()):
                for level in (2, 4, 8):
                    names = list(itertools.islice(
                        itertools.cycle(QUERIES), level * len(QUERIES)))
                    results.extend(await asyncio.gather(
                        *[_timed_submit(server, name) for name in names]))
                await server.drain()
            return server, results

        server, results = asyncio.run(scenario())
        responses = [response for response, _ in results]
        assert len(responses) == (2 + 4 + 8) * len(QUERIES)
        # the ramp must actually exercise both the happy and the shed path
        assert any(response.ok for response in responses)
        assert any(response.status == "overloaded" for response in responses)
        assert any(response.tier_policy != "full" for response in responses)
        for response, wall_seconds in results:
            if response.ok:
                _check_parity(reference_results, response)
            # the deadline invariant, end to end: no admitted query may hold
            # its caller past the deadline by more than the checkpoint slack
            assert wall_seconds <= self.TIMEOUT + DEADLINE_SLACK_SECONDS
        _reconcile(server, responses)
        _assert_drained(server)


@pytest.mark.timeout(120)
class TestDispatcherStallBurnsDeadlines:
    """A wedged dispatcher: queued requests' deadlines expire before
    dispatch and are dropped with typed responses — never executed late."""

    def test_expired_in_queue(self, tpch_catalog, query_registry,
                              reference_results):
        faults = FaultPlan([FaultSpec(site="server.queue_stall", value=0.05,
                                      fires_on=None)], seed=CHAOS_SEED)

        async def scenario():
            server = QueryServer(
                tpch_catalog, queries=query_registry,
                max_queue_depth=16, initial_concurrency=1, max_concurrency=1,
                base_budget=QueryBudget(check_interval=16),
                default_timeout_seconds=0.12)
            await server.start()
            with inject(faults):
                results = await asyncio.gather(
                    *[_timed_submit(server, "Q6") for _ in range(6)])
                await server.drain()
            return server, results

        server, results = asyncio.run(scenario())
        responses = [response for response, _ in results]
        # with a 50ms stall per dispatch and a 120ms deadline, the tail of
        # the queue cannot survive; expiry must be typed and pre-execution
        expired = [r for r in responses if r.status == "deadline_exceeded"]
        assert expired, "the stall must burn at least one deadline"
        assert any(r.reason == "expired_in_queue" for r in expired)
        for response, wall_seconds in results:
            if response.ok:
                _check_parity(reference_results, response)
            assert wall_seconds <= 0.12 + DEADLINE_SLACK_SECONDS
        # deadline misses push the AIMD window down
        assert server.stats()["limiter"]["overloads"] >= len(expired)
        _reconcile(server, responses)
        _assert_drained(server)


@pytest.mark.timeout(120)
class TestDeadlineSkew:
    """A skewed clock tightens the translated budget; with overwhelming skew
    every request is dropped at the execution boundary, none run hopeless."""

    def test_skew_drops_before_execution(self, tpch_catalog, query_registry):
        faults = FaultPlan([FaultSpec(site="server.deadline_skew",
                                      value=100.0, fires_on=None)],
                           seed=CHAOS_SEED)

        async def scenario():
            server = QueryServer(tpch_catalog, queries=query_registry,
                                 default_timeout_seconds=5.0)
            await server.start()
            with inject(faults):
                responses = await asyncio.gather(
                    *[server.submit(name) for name in QUERIES])
                await server.drain()
            return server, responses

        server, responses = asyncio.run(scenario())
        for response in responses:
            assert response.status == "deadline_exceeded"
            assert response.reason == "expired_before_execute"
            assert response.rows is None
            assert response.tier == ""  # no engine ever ran
        _reconcile(server, responses)
        _assert_drained(server)


@pytest.mark.timeout(300)
class TestDegradedPathParity:
    """Every fast tier dies on every request: the served answers come from
    the interpreter and still match the reference exactly."""

    def test_interpreter_answers_match(self, tpch_catalog, query_registry,
                                       reference_results):
        faults = FaultPlan([
            FaultSpec(site="engine.compiled.run", error=EngineFault,
                      fires_on=None),
            FaultSpec(site="engine.vectorized.batch", error=EngineFault,
                      fires_on=None),
        ], seed=CHAOS_SEED)

        async def scenario():
            server = QueryServer(tpch_catalog, queries=query_registry,
                                 max_queue_depth=64)
            await server.start()
            with inject(faults):
                responses = await asyncio.gather(
                    *[server.submit(name) for name in QUERIES for _ in range(2)])
                await server.drain()
            return server, responses

        server, responses = asyncio.run(scenario())
        for response in responses:
            assert response.ok
            assert response.tier == "interpreter"
            assert response.attempts == 2  # compiled + vectorized both fell
            _check_parity(reference_results, response)
        assert server.incidents.count("tier_failure") == 2 * len(responses)
        _reconcile(server, responses)
        _assert_drained(server)


@pytest.mark.timeout(120)
class TestDrainUnderStorm:
    """Drain mid-storm: every outstanding future resolves (typed), nothing
    is orphaned, and the server lands in ``stopped`` with zero in-flight."""

    def test_zero_orphans(self, tpch_catalog, query_registry,
                          reference_results):
        faults = FaultPlan([
            FaultSpec(site="server.executor_slow", value=0.1,
                      probability=0.5),
            FaultSpec(site="engine.compiled.run", error=EngineFault,
                      probability=0.3),
        ], seed=CHAOS_SEED)

        async def scenario():
            server = QueryServer(tpch_catalog, queries=query_registry,
                                 max_queue_depth=32, initial_concurrency=2,
                                 max_concurrency=2)
            await server.start()
            with inject(faults):
                tasks = [asyncio.create_task(server.submit(name))
                         for name in QUERIES for _ in range(3)]
                await asyncio.sleep(0.02)  # a few dispatch, the rest queue
                await server.drain(timeout_seconds=0.05)
                responses = await asyncio.gather(*tasks)
            return server, responses

        server, responses = asyncio.run(scenario())
        assert len(responses) == 12  # every future resolved: zero orphans
        for response in responses:
            assert response.status in STATUSES
            if response.ok:
                _check_parity(reference_results, response)
            elif response.status == "overloaded":
                assert response.reason in ("shutdown", "draining",
                                           "not_serving", "queue_full")
        _reconcile(server, responses)
        _assert_drained(server)
