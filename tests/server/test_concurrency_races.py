"""Regression tests for the races the concurrency analyzer polices.

The warm-fingerprint set is written by executor worker threads
(``_note_warm`` after each successful run) while ``stats()`` reads its size
from whatever thread the monitoring caller lives on — the exact
reader/writer pair the analyzer's ``guarded-by(_warm_lock)`` discipline
covers.  These tests drive that overlap for real: a burst of concurrent
submissions warming plans while monitor threads hammer ``stats()`` and the
loop drains mid-storm.  No pytest-asyncio in the image, so each test runs
its own loop via ``asyncio.run``.
"""
import asyncio
import threading

from repro.dsl import qplan as Q
from repro.dsl.expr import col
from repro.server import QueryServer


def _plan(threshold):
    return Q.Select(Q.Scan("S"), col("s_val") > threshold)


class TestWarmVersusDrain:
    def test_stats_reads_race_warming_writes(self, tiny_catalog):
        """Monitor threads call ``stats()`` throughout a submission storm
        and the drain; every snapshot must be internally consistent and
        every submission must resolve to a typed response."""
        server = QueryServer(tiny_catalog, worker_threads=4)
        stop = threading.Event()
        snapshots = []
        errors = []

        def monitor():
            while not stop.is_set():
                try:
                    snapshots.append(server.stats())
                except Exception as error:  # noqa: BLE001 - the regression
                    errors.append(error)

        monitors = [threading.Thread(target=monitor) for _ in range(3)]

        async def scenario():
            await server.start()
            for thread in monitors:
                thread.start()
            # distinct thresholds → distinct fingerprints → every request
            # warms a new plan while the monitors read the warm set
            responses = await asyncio.gather(
                *(server.submit(_plan(i / 100.0), f"q{i}")
                  for i in range(24)))
            await server.drain()
            return responses

        try:
            responses = asyncio.run(scenario())
        finally:
            stop.set()
            for thread in monitors:
                thread.join()

        assert not errors
        assert server.state == "stopped"
        assert len(responses) == 24
        assert all(r.status in ("ok", "overloaded", "deadline_exceeded",
                                "failed") for r in responses)
        completed = sum(1 for r in responses if r.ok)
        final = server.stats()
        # every completed request warmed its (distinct) fingerprint, and the
        # final warm count reflects all of them — no lost updates
        assert final["warm_plans"] >= completed > 0
        assert all(s["warm_plans"] <= 24 for s in snapshots)

    def test_drain_after_storm_leaves_no_orphans(self, tiny_catalog):
        """Submissions racing ``drain()`` either execute or get a typed
        rejection; nothing hangs and the pool shuts down."""
        server = QueryServer(tiny_catalog, worker_threads=2)

        async def scenario():
            await server.start()
            submitted = [
                asyncio.ensure_future(server.submit(_plan(i / 10.0), f"s{i}"))
                for i in range(12)
            ]
            await asyncio.sleep(0)  # let offers land before draining
            await server.drain()
            return await asyncio.gather(*submitted)

        responses = asyncio.run(scenario())
        assert len(responses) == 12
        assert all(r.status in ("ok", "overloaded", "deadline_exceeded",
                                "failed") for r in responses)
        assert server.state == "stopped"
        stats = server.stats()
        assert stats["in_flight"] == 0
        assert stats["pending"] == 0
