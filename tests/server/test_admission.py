"""Unit tests for the admission-control pieces: the AIMD limiter, the
occupancy-driven shedding policy, and the bounded priority queue with its
typed rejections.  Everything here is synchronous — these are the parts of
the front door that must be reasoned about without an event loop."""
import pytest

from repro.server.admission import (POLICY_TIERS, TIER_POLICIES,
                                    AdaptiveLimiter, AdmissionController,
                                    AdmittedRequest, SheddingPolicy)
from repro.server.responses import DeadlineExceeded, Overloaded


class FakeClock:
    def __init__(self, now=100.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class TestAdaptiveLimiter:
    def test_initial_limit(self):
        assert AdaptiveLimiter(initial=8).limit == 8

    @pytest.mark.parametrize("kwargs", [
        {"initial": 0},
        {"initial": 4, "min_limit": 5},
        {"initial": 100, "max_limit": 64},
        {"initial": 8, "increase": 0.0},
        {"initial": 8, "decrease": 1.0},
        {"initial": 8, "decrease": 0.0},
    ])
    def test_rejects_bad_parameters(self, kwargs):
        with pytest.raises(ValueError):
            AdaptiveLimiter(**kwargs)

    def test_additive_increase_one_slot_per_window(self):
        limiter = AdaptiveLimiter(initial=4, max_limit=64)
        # ~`limit` successes buy one extra slot (congestion avoidance)
        for _ in range(5):
            limiter.on_success()
        assert limiter.limit == 5
        assert limiter.snapshot()["successes"] == 5

    def test_multiplicative_decrease_halves(self):
        limiter = AdaptiveLimiter(initial=16)
        limiter.on_overload()
        assert limiter.limit == 8
        limiter.on_overload()
        assert limiter.limit == 4

    def test_floor_and_ceiling(self):
        limiter = AdaptiveLimiter(initial=2, min_limit=1, max_limit=4)
        for _ in range(20):
            limiter.on_overload()
        assert limiter.limit == 1
        for _ in range(200):
            limiter.on_success()
        assert limiter.limit == 4

    def test_recovers_after_backoff(self):
        limiter = AdaptiveLimiter(initial=8)
        limiter.on_overload()  # -> 4
        for _ in range(5):
            limiter.on_success()
        assert limiter.limit == 5


class TestSheddingPolicy:
    def test_thresholds(self):
        policy = SheddingPolicy()
        assert policy.tier_policy(0.0) == "full"
        assert policy.tier_policy(0.49) == "full"
        assert policy.tier_policy(0.5) == "cached_only"
        assert policy.tier_policy(0.84) == "cached_only"
        assert policy.tier_policy(0.85) == "interpreter_only"
        assert policy.tier_policy(1.0) == "interpreter_only"

    def test_every_policy_is_known(self):
        policy = SheddingPolicy()
        for occupancy in (0.0, 0.5, 0.9):
            assert policy.tier_policy(occupancy) in TIER_POLICIES

    def test_rejects_inverted_thresholds(self):
        with pytest.raises(ValueError):
            SheddingPolicy(elevated_fraction=0.9, severe_fraction=0.5)
        with pytest.raises(ValueError):
            SheddingPolicy(elevated_fraction=0.0)

    def test_policy_ladders_are_subsets_of_the_engine_ladder(self):
        from repro.robustness.fallback import ENGINE_TIERS
        for tiers in POLICY_TIERS.values():
            assert set(tiers) <= set(ENGINE_TIERS)
        assert POLICY_TIERS["interpreter_only"] == ("interpreter",)
        # the cold variant never compiles
        assert "compiled" not in POLICY_TIERS["cached_only_cold"]


class TestAdmittedRequest:
    def test_remaining_and_expiry(self):
        request = AdmittedRequest(name="q", plan=None, priority=0,
                                  deadline=110.0, enqueued_at=100.0,
                                  tier_policy="full")
        assert request.remaining(104.0) == pytest.approx(6.0)
        assert not request.expired(109.9)
        assert request.expired(110.0)

    def test_no_deadline_never_expires(self):
        request = AdmittedRequest(name="q", plan=None, priority=0,
                                  deadline=None, enqueued_at=100.0,
                                  tier_policy="full")
        assert request.remaining(1e9) is None
        assert not request.expired(1e9)


class TestAdmissionController:
    def test_fifo_within_priority(self):
        controller = AdmissionController(max_depth=8, clock=FakeClock())
        for name in ("a", "b", "c"):
            controller.offer(name, plan=None)
        assert [controller.pop().name for _ in range(3)] == ["a", "b", "c"]
        assert controller.pop() is None

    def test_lower_priority_value_dispatches_first(self):
        controller = AdmissionController(max_depth=8, clock=FakeClock())
        controller.offer("bulk", plan=None, priority=10)
        controller.offer("interactive", plan=None, priority=0)
        controller.offer("batch", plan=None, priority=5)
        assert [controller.pop().name for _ in range(3)] == \
            ["interactive", "batch", "bulk"]

    def test_queue_full_is_a_typed_overloaded(self):
        controller = AdmissionController(max_depth=2, clock=FakeClock())
        controller.offer("a", plan=None)
        controller.offer("b", plan=None)
        with pytest.raises(Overloaded) as info:
            controller.offer("c", plan=None)
        assert info.value.reason == "queue_full"
        snapshot = controller.snapshot()
        assert snapshot["accepted"] == 2
        assert snapshot["rejected_queue_full"] == 1

    def test_zero_remaining_deadline_is_dead_on_arrival(self):
        clock = FakeClock()
        controller = AdmissionController(max_depth=8, clock=clock)
        with pytest.raises(DeadlineExceeded) as info:
            controller.offer("q", plan=None, deadline=clock.now)
        assert info.value.reason == "dead_on_arrival"
        assert controller.snapshot()["rejected_dead_on_arrival"] == 1

    def test_near_zero_remaining_deadline_is_admitted(self):
        clock = FakeClock()
        controller = AdmissionController(max_depth=8, clock=clock)
        request = controller.offer("q", plan=None, deadline=clock.now + 1e-9)
        assert request.remaining(clock.now) == pytest.approx(1e-9)
        clock.advance(0.001)
        assert request.expired(clock())

    def test_stop_accepting_rejects_new_but_keeps_queued(self):
        controller = AdmissionController(max_depth=8, clock=FakeClock())
        controller.offer("queued", plan=None)
        controller.stop_accepting("draining")
        with pytest.raises(Overloaded) as info:
            controller.offer("late", plan=None)
        assert info.value.reason == "draining"
        assert not controller.accepting
        assert len(controller) == 1
        assert controller.pop().name == "queued"

    def test_drain_queue_empties_everything(self):
        controller = AdmissionController(max_depth=8, clock=FakeClock())
        for name in ("a", "b"):
            controller.offer(name, plan=None)
        drained = controller.drain_queue()
        assert sorted(request.name for request in drained) == ["a", "b"]
        assert len(controller) == 0

    def test_occupancy_drives_tier_policy(self):
        controller = AdmissionController(max_depth=4, clock=FakeClock())
        policies = [controller.offer(f"q{n}", plan=None).tier_policy
                    for n in range(4)]
        # occupancy seen at arrival: 0/4, 1/4, 2/4 (elevated), 3/4
        assert policies == ["full", "full", "cached_only", "cached_only"]
        assert controller.snapshot()["downgraded"] == 2

    def test_severe_occupancy_forces_interpreter(self):
        controller = AdmissionController(max_depth=8, clock=FakeClock())
        policies = [controller.offer(f"q{n}", plan=None).tier_policy
                    for n in range(8)]
        assert policies[-1] == "interpreter_only"  # arrived at 7/8 = 0.875
        assert policies[4] == "cached_only"

    def test_rejects_bad_depth(self):
        with pytest.raises(ValueError):
            AdmissionController(max_depth=0)
