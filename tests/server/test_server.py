"""QueryServer lifecycle, deadline propagation and load-shedding tests.

No pytest-asyncio in the image: each test drives its own event loop with
``asyncio.run``.  Determinism notes: coroutines submitted together via
``gather`` run their synchronous prefix (including ``offer``) in creation
order before the dispatcher task resumes, so queue occupancy at each offer
— and therefore which requests get downgraded — is exact.
"""
import asyncio

import pytest

from repro.dsl import qplan as Q
from repro.dsl.expr import col
from repro.engine.volcano import VolcanoEngine
from repro.robustness.faults import FaultPlan, FaultSpec, inject
from repro.robustness.governor import QueryBudget
from repro.server import QueryServer, serve_one_shot
from repro.server.admission import AdmittedRequest


def _scan_plan():
    return Q.Select(Q.Scan("S"), col("s_val") > 0.0)


def _run(coro):
    return asyncio.run(coro)


class TestLifecycle:
    def test_initial_state(self, tiny_catalog):
        server = QueryServer(tiny_catalog)
        assert server.state == "new"
        assert server.health()["state"] == "new"
        assert not server.readiness()["ready"]

    def test_start_serve_drain(self, tiny_catalog):
        async def scenario():
            server = QueryServer(tiny_catalog)
            await server.start()
            assert server.state == "serving"
            assert server.readiness()["ready"]
            assert server.health()["status"] == "ok"
            response = await server.submit(_scan_plan(), "tq")
            assert response.ok
            await server.drain()
            assert server.state == "stopped"
            assert not server.readiness()["ready"]
            return server

        server = _run(scenario())
        stats = server.stats()
        assert stats["in_flight"] == 0
        assert stats["pending"] == 0

    def test_submit_before_start_is_typed_overloaded(self, tiny_catalog):
        async def scenario():
            server = QueryServer(tiny_catalog)
            return server, await server.submit(_scan_plan(), "early")

        server, response = _run(scenario())
        assert response.status == "overloaded"
        assert response.reason == "not_serving"
        assert server.incidents.count("admission_reject") == 1

    def test_submit_after_drain_is_typed_overloaded(self, tiny_catalog):
        async def scenario():
            server = QueryServer(tiny_catalog)
            await server.start()
            await server.drain()
            return await server.submit(_scan_plan(), "late")

        response = _run(scenario())
        assert response.status == "overloaded"
        assert response.reason == "not_serving"

    def test_start_twice_raises(self, tiny_catalog):
        async def scenario():
            server = QueryServer(tiny_catalog)
            await server.start()
            with pytest.raises(RuntimeError):
                await server.start()
            await server.drain()

        _run(scenario())

    def test_drain_before_start_is_a_noop_stop(self, tiny_catalog):
        async def scenario():
            server = QueryServer(tiny_catalog)
            await server.drain()
            assert server.state == "stopped"
            await server.drain()  # idempotent
            assert server.state == "stopped"

        _run(scenario())

    def test_unknown_query_name_is_typed_failed(self, tiny_catalog):
        async def scenario():
            server = QueryServer(tiny_catalog)
            await server.start()
            try:
                return await server.submit("no-such-query")
            finally:
                await server.drain()

        response = _run(scenario())
        assert response.status == "failed"
        assert response.reason == "unknown_query"

    def test_drain_completes_in_flight_work(self, tiny_catalog):
        """drain() waits for the dispatched query; its caller still gets ok."""
        async def scenario():
            server = QueryServer(tiny_catalog)
            await server.start()
            faults = FaultPlan([FaultSpec(site="server.executor_slow",
                                          value=0.2, fires_on=(1,))])
            with inject(faults):
                task = asyncio.create_task(server.submit(_scan_plan(), "slow"))
                await asyncio.sleep(0.05)  # let it dispatch
                await server.drain()
            return server, await task

        server, response = _run(scenario())
        assert response.ok
        assert server.state == "stopped"

    def test_timed_drain_sheds_queued_requests_with_no_orphans(
            self, tiny_catalog):
        async def scenario():
            server = QueryServer(tiny_catalog, initial_concurrency=1,
                                 max_concurrency=1)
            await server.start()
            faults = FaultPlan([FaultSpec(site="server.executor_slow",
                                          value=0.3, fires_on=(1,))])
            with inject(faults):
                tasks = [asyncio.create_task(
                    server.submit(_scan_plan(), f"q{n}")) for n in range(3)]
                await asyncio.sleep(0.05)  # q0 dispatched, q1/q2 queued
                await server.drain(timeout_seconds=0.01)
                responses = await asyncio.gather(*tasks)
            return server, responses

        server, responses = _run(scenario())
        assert server.state == "stopped"
        assert responses[0].ok  # in-flight work is always completed
        for response in responses[1:]:
            assert response.status == "overloaded"
            assert response.reason == "shutdown"
        assert server.incidents.count("admission_reject") == 2
        stats = server.stats()
        assert stats["in_flight"] == 0 and stats["pending"] == 0


class TestWarmUp:
    def test_warmup_precompiles_and_marks_warm(self, tpch_catalog):
        from repro.tpch.queries import build_query

        async def scenario():
            server = QueryServer(tpch_catalog,
                                 queries={"Q6": build_query("Q6")},
                                 warmup=("Q6",))
            await server.start()
            assert server.readiness()["warmed_queries"] == 1
            assert server.stats()["warm_plans"] >= 1
            response = await server.submit("Q6")
            await server.drain()
            return response

        response = _run(scenario())
        assert response.ok
        assert response.tier == "compiled"

    def test_warmup_requires_registered_queries(self, tiny_catalog):
        with pytest.raises(ValueError):
            QueryServer(tiny_catalog, warmup=("Q6",))


class TestDeadlinePropagation:
    def test_zero_timeout_is_dead_on_arrival(self, tiny_catalog):
        async def scenario():
            server = QueryServer(tiny_catalog)
            await server.start()
            try:
                return server, await server.submit(_scan_plan(), "dz",
                                                   timeout_seconds=0.0)
            finally:
                await server.drain()

        server, response = _run(scenario())
        assert response.status == "deadline_exceeded"
        assert response.reason == "dead_on_arrival"
        assert response.rows is None  # never executed
        assert server.incidents.count("deadline_expired") == 1

    def test_near_zero_timeout_never_returns_late_rows(self, tiny_catalog):
        async def scenario():
            server = QueryServer(tiny_catalog)
            await server.start()
            try:
                return await server.submit(_scan_plan(), "nz",
                                           timeout_seconds=1e-9)
            finally:
                await server.drain()

        response = _run(scenario())
        assert response.status == "deadline_exceeded"
        assert response.reason in ("dead_on_arrival", "expired_in_queue",
                                   "expired_before_execute", "budget_timeout")
        assert response.rows is None

    def test_base_budget_timeout_becomes_typed_deadline_response(
            self, tiny_catalog):
        """No request deadline, but a server-wide budget of zero seconds:
        the governed run trips and the caller sees deadline_exceeded with
        the partial-progress stats attached."""
        async def scenario():
            server = QueryServer(
                tiny_catalog,
                base_budget=QueryBudget(timeout_seconds=0.0, check_interval=1))
            await server.start()
            try:
                return server, await server.submit(_scan_plan(), "bt")
            finally:
                await server.drain()

        server, response = _run(scenario())
        assert response.status == "deadline_exceeded"
        assert response.reason == "budget_timeout"
        assert response.detail["stats"]["rows_processed"] >= 1
        assert server.incidents.count("budget_trip") >= 1
        assert server.stats()["limiter"]["overloads"] >= 1

    def test_request_deadline_tightens_the_base_budget(self, tiny_catalog):
        server = QueryServer(tiny_catalog,
                             base_budget=QueryBudget(timeout_seconds=30.0))
        budget = server._budget_for(2.5)
        assert budget.timeout_seconds == pytest.approx(2.5)
        # and the base wins when it is tighter than the remaining deadline
        assert server._budget_for(60.0).timeout_seconds == pytest.approx(30.0)
        assert server._budget_for(None).timeout_seconds == pytest.approx(30.0)
        # unlimited base + no deadline: no governor at all
        assert QueryServer(tiny_catalog)._budget_for(None) is None

    def test_default_timeout_applies_when_submit_gives_none(self, tiny_catalog):
        async def scenario():
            server = QueryServer(tiny_catalog, default_timeout_seconds=0.0)
            await server.start()
            try:
                return await server.submit(_scan_plan(), "dd")
            finally:
                await server.drain()

        response = _run(scenario())
        assert response.status == "deadline_exceeded"
        assert response.reason == "dead_on_arrival"


class TestLoadShedding:
    def test_tiers_for_cached_only_depends_on_warmth(self, tiny_catalog):
        server = QueryServer(tiny_catalog)
        plan = _scan_plan()
        request = AdmittedRequest(name="w", plan=plan, priority=0,
                                  deadline=None, enqueued_at=0.0,
                                  tier_policy="cached_only")
        assert server._tiers_for(request) == ("vectorized", "interpreter")
        server._note_warm(Q.plan_fingerprint(plan))
        assert server._tiers_for(request) == \
            ("compiled", "vectorized", "interpreter")

    def test_occupancy_downgrades_then_rejects(self, tiny_catalog):
        """Ten concurrent submissions against a depth-8 queue: the offers
        all land before the dispatcher runs, so occupancy ramps 0/8..7/8 and
        the tail sees cached_only, then interpreter_only, then queue_full."""
        plan_s = _scan_plan()
        plan_r = Q.Scan("R")  # cold plan: never compiled during the test
        reference_r = VolcanoEngine(tiny_catalog).execute(plan_r)

        async def scenario():
            server = QueryServer(tiny_catalog, max_queue_depth=8,
                                 initial_concurrency=1, max_concurrency=1)
            await server.start()
            submits = [server.submit(plan_s, f"s{n}") for n in range(4)] + \
                      [server.submit(plan_r, f"r{n}") for n in range(3)] + \
                      [server.submit(plan_s, "tail-interp"),
                       server.submit(plan_s, "shed-1"),
                       server.submit(plan_s, "shed-2")]
            responses = await asyncio.gather(*submits)
            await server.drain()
            return server, responses

        server, responses = _run(scenario())
        # offers 0-3 at occupancy < 0.5: full ladder
        assert [r.tier_policy for r in responses[:4]] == ["full"] * 4
        # offers 4-6 at occupancy 0.5-0.75: cached_only; the plan is cold,
        # so the compiled tier is withheld and the vectorized engine answers
        for response in responses[4:7]:
            assert response.tier_policy == "cached_only"
            assert response.ok
            assert response.tier == "vectorized"
            assert response.rows == reference_r
        # offer 7 at occupancy 7/8: interpreter only
        assert responses[7].tier_policy == "interpreter_only"
        assert responses[7].ok
        assert responses[7].tier == "interpreter"
        # offers 8-9: bounded queue full — typed rejection, never executed
        for response in responses[8:]:
            assert response.status == "overloaded"
            assert response.reason == "queue_full"
            assert response.rows is None
        queue = server.stats()["queue"]
        assert queue["accepted"] == 8
        assert queue["downgraded"] == 4
        assert queue["rejected_queue_full"] == 2
        assert server.incidents.count("admission_downgrade") == 4
        assert server.incidents.count("admission_reject") == 2


class TestServeOneShot:
    def test_runs_and_drains(self, tiny_catalog):
        plan = _scan_plan()
        responses, server = _run(serve_one_shot(
            tiny_catalog, [(plan, f"q{n}", {}) for n in range(4)]))
        assert all(response.ok for response in responses)
        assert server.state == "stopped"
        assert sum(server.stats()["responses_by_status"].values()) == 4
