"""Edge-case coverage for the effect algebra and the ANF traversals.

These are the primitives every optimization *and* the static verifier lean
on; the cases here pin down the behaviours the verifier's legality argument
depends on (union monotonicity, reorderability, hoisted-first iteration
order, substitution not touching binders).
"""
from repro.ir import IRBuilder, make_program
from repro.ir.effects import (ALLOC, CONTROL, Effect, GLOBAL, IO, PURE, READ,
                              READ_WRITE, WRITE)
from repro.ir.nodes import Block, Const, Expr, Stmt, Sym
from repro.ir.traversal import (block_effect, bound_syms, free_syms,
                                iter_program_stmts, iter_stmts,
                                substitute_block, used_syms)
from repro.ir.types import INT


class TestEffectAlgebra:
    def test_union_is_commutative_and_idempotent(self):
        for left in (PURE, READ, WRITE, ALLOC, IO, CONTROL, GLOBAL):
            for right in (PURE, READ, WRITE, ALLOC, IO, CONTROL):
                assert left.union(right) == right.union(left)
            assert left.union(left) == left

    def test_union_with_pure_is_identity(self):
        for effect in (READ, WRITE, ALLOC, IO, CONTROL, GLOBAL):
            assert effect.union(PURE) == effect

    def test_union_never_loses_flags(self):
        combined = READ.union(WRITE).union(IO).union(ALLOC)
        assert combined.reads and combined.writes and combined.io \
            and combined.allocates

    def test_reorderability_of_each_summary(self):
        assert PURE.can_reorder_with_reads
        assert READ.can_reorder_with_reads
        assert ALLOC.can_reorder_with_reads
        assert not WRITE.can_reorder_with_reads
        assert not IO.can_reorder_with_reads
        assert not READ_WRITE.can_reorder_with_reads
        assert not CONTROL.can_reorder_with_reads

    def test_removability_matches_reorderability(self):
        """The two legality predicates agree: both forbid writes/io/control."""
        for effect in (PURE, READ, WRITE, ALLOC, IO, CONTROL, READ_WRITE,
                       GLOBAL, Effect(reads=True, allocates=True)):
            assert effect.removable_if_unused == effect.can_reorder_with_reads

    def test_alloc_removable_but_not_pure(self):
        assert ALLOC.removable_if_unused and not ALLOC.pure


class TestTraversalEdgeCases:
    def test_iter_stmts_on_empty_block(self):
        assert list(iter_stmts(Block())) == []

    def test_iter_program_stmts_hoisted_first(self):
        db = Sym("db")
        hoisted_stmt = Stmt(Sym("h", INT), Expr("table_size", (db,),
                                                {"table": "R"}))
        body_stmt = Stmt(Sym("b", INT), Expr("add", (hoisted_stmt.sym,
                                                     Const(1))))
        program = make_program(Block([body_stmt], body_stmt.sym), [db],
                               "scalite", hoisted=Block([hoisted_stmt]))
        order = [stmt.sym.hint for stmt, _ in iter_program_stmts(program)]
        assert order == ["h", "b"]

    def test_deeply_nested_blocks_are_walked_in_order(self):
        b = IRBuilder()
        db = Sym("db")
        n = b.emit("table_size", [db], attrs={"table": "R"})

        def outer(i):
            def inner(j):
                b.emit("add", [i, j], hint="deep")

            b.for_range(0, n, inner, hint="j")

        b.for_range(0, n, outer, hint="i")
        program = make_program(b.finish(), [db], "scalite")
        ops = [stmt.expr.op for stmt, _ in iter_program_stmts(program)]
        assert ops == ["table_size", "for_range", "for_range", "add"]

    def test_used_and_bound_on_block_with_only_result(self):
        x = Sym("x", INT)
        block = Block([], x)
        assert used_syms(block) == {x}
        assert bound_syms(block) == set()
        assert free_syms(block) == {x}

    def test_block_params_count_as_bound(self):
        i = Sym("i", INT)
        block = Block([], i, params=(i,))
        assert free_syms(block) == set()

    def test_substitute_block_rewrites_uses_not_binders(self):
        x, y = Sym("x", INT), Sym("y", INT)
        stmt = Stmt(y, Expr("add", (x, x)))
        block = Block([stmt], y)
        replaced = substitute_block(block, {x: Const(7)})
        assert replaced.stmts[0].sym is y  # binder untouched
        assert all(isinstance(arg, Const) for arg in
                   replaced.stmts[0].expr.args)

    def test_substitute_block_reaches_nested_blocks(self):
        x = Sym("x", INT)
        inner = Block([Stmt(Sym("u", INT), Expr("add", (x, Const(1))))])
        outer_stmt = Stmt(Sym("loop"), Expr(
            "for_range", (Const(0), Const(2)), blocks=(inner,)))
        outer = Block([outer_stmt])
        replaced = substitute_block(outer, {x: Const(9)})
        nested_args = replaced.stmts[0].expr.blocks[0].stmts[0].expr.args
        assert nested_args[0] == Const(9)

    def test_block_effect_unions_nested_blocks(self):
        lst = Sym("lst")
        inner = Block([Stmt(Sym("w"), Expr("list_append", (lst, Const(1))))])
        loop = Stmt(Sym("loop"), Expr("for_range", (Const(0), Const(2)),
                                      blocks=(inner,)))
        effect = block_effect(Block([loop]))
        assert effect.writes and effect.control

    def test_block_effect_of_empty_block_is_pure(self):
        assert block_effect(Block()).pure
