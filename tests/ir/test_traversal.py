"""Unit tests for IR traversal, symbol analysis and block rewriting."""
from repro.ir import IRBuilder, Const, make_program
from repro.ir.traversal import (block_effect, bound_syms, count_ops, free_syms,
                                iter_program_stmts, iter_stmts, ops_used, rewrite_program,
                                substitute_block, used_syms)
from repro.ir.nodes import Sym


def build_loop_program():
    """for i in range(0, n): acc += arr[i]"""
    b = IRBuilder()
    db = Sym("db")
    n = b.emit("table_size", [db], attrs={"table": "t"})
    arr = b.emit("table_column", [db], attrs={"table": "t", "column": "c"})
    acc = b.emit("var_new", [0])

    def body(i):
        v = b.emit("array_get", [arr, i])
        cur = b.emit("var_read", [acc])
        b.emit("var_write", [acc, b.emit("add", [cur, v])])

    b.for_range(0, n, body)
    result = b.emit("var_read", [acc])
    return make_program(b.finish(result), [db], "scalite"), db


class TestSymbolAnalysis:
    def test_iter_stmts_recursive_covers_loop_body(self):
        program, _ = build_loop_program()
        ops = [s.expr.op for s, _ in iter_stmts(program.body)]
        assert "array_get" in ops
        assert "for_range" in ops

    def test_iter_stmts_non_recursive_skips_body(self):
        program, _ = build_loop_program()
        ops = [s.expr.op for s, _ in iter_stmts(program.body, recursive=False)]
        assert "array_get" not in ops

    def test_free_syms_of_body_is_db_param(self):
        program, db = build_loop_program()
        assert free_syms(program.body) == {db}

    def test_bound_syms_include_loop_index(self):
        program, _ = build_loop_program()
        hints = {s.hint for s in bound_syms(program.body)}
        assert "i" in hints

    def test_used_syms_includes_result(self):
        b = IRBuilder()
        x = b.emit("add", [1, 2])
        block = b.finish(x)
        assert x in used_syms(block)

    def test_count_ops_histogram(self):
        program, _ = build_loop_program()
        counts = count_ops(program)
        assert counts["var_write"] == 1
        assert counts["for_range"] == 1
        assert "add" in ops_used(program)

    def test_block_effect_summarises_nested_writes(self):
        program, _ = build_loop_program()
        eff = block_effect(program.body)
        assert eff.writes and eff.reads

    def test_iter_program_stmts_covers_hoisted(self):
        program, _ = build_loop_program()
        b = IRBuilder()
        sym = b.emit("list_new", [])
        program.hoisted = b.finish(sym)
        ops = [s.expr.op for s, _ in iter_program_stmts(program)]
        assert "list_new" in ops


class TestSubstitution:
    def test_substitute_block_replaces_uses_not_bindings(self):
        b = IRBuilder()
        x = b.emit("add", [1, 2])
        y = b.emit("mul", [x, 3])
        block = b.finish(y)
        replacement = Const(42)
        new_block = substitute_block(block, {x: replacement})
        mul_stmt = [s for s in new_block.stmts if s.expr.op == "mul"][0]
        assert mul_stmt.expr.args[0] == replacement
        # the binding of x itself is untouched
        assert new_block.stmts[0].sym is x

    def test_substitute_descends_into_nested_blocks(self):
        program, db = build_loop_program()
        new_body = substitute_block(program.body, {db: Const("DB")})
        ops = [s for s, _ in iter_stmts(new_body) if s.expr.op == "table_size"]
        assert ops[0].expr.args[0] == Const("DB")


class TestBlockRewriter:
    def test_identity_rewrite_preserves_structure(self):
        program, _ = build_loop_program()
        rewritten = rewrite_program(program, lambda stmt, rw: None)
        assert count_ops(rewritten) == count_ops(program)

    def test_rewrite_replaces_statement_and_updates_uses(self):
        b = IRBuilder()
        x = b.emit("add", [1, 2])
        y = b.emit("mul", [x, 3])
        program = make_program(b.finish(y), [], "scalite")

        def fold_add(stmt, rw):
            if stmt.expr.op == "add" and all(isinstance(a, Const) for a in stmt.expr.args):
                return Const(stmt.expr.args[0].value + stmt.expr.args[1].value)
            return None

        rewritten = rewrite_program(program, fold_add)
        assert "add" not in count_ops(rewritten)
        mul_stmt = rewritten.body.stmts[0]
        assert mul_stmt.expr.args[0] == Const(3)

    def test_rewrite_descends_into_loop_bodies(self):
        program, _ = build_loop_program()

        def replace_add_with_max(stmt, rw):
            if stmt.expr.op == "add":
                return rw.emit("max2", list(stmt.expr.args), hint="m")
            return None

        rewritten = rewrite_program(program, replace_add_with_max)
        counts = count_ops(rewritten)
        assert "add" not in counts
        assert counts["max2"] == 1

    def test_rewrite_program_sets_language(self):
        program, _ = build_loop_program()
        rewritten = rewrite_program(program, lambda s, r: None, language="c.py")
        assert rewritten.language == "c.py"
