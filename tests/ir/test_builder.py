"""Unit tests for the ANF builder and its hash-consing behaviour."""
import pytest

from repro.ir import IRBuilder, Sym, make_program, program_to_str
from repro.ir.types import BOOL, FLOAT, INT, STRING, UNIT


class TestConstants:
    def test_const_type_inference_int(self):
        b = IRBuilder()
        assert b.const(3).type is INT

    def test_const_type_inference_float(self):
        b = IRBuilder()
        assert b.const(3.5).type is FLOAT

    def test_const_type_inference_bool(self):
        b = IRBuilder()
        assert b.const(True).type is BOOL

    def test_const_type_inference_string(self):
        b = IRBuilder()
        assert b.const("abc").type is STRING

    def test_const_type_inference_none(self):
        b = IRBuilder()
        assert b.const(None).type is UNIT

    def test_as_atom_passes_through_existing_atoms(self):
        b = IRBuilder()
        c = b.const(1)
        assert b.as_atom(c) is c
        sym = b.emit("add", [1, 2])
        assert b.as_atom(sym) is sym


class TestCse:
    def test_pure_expressions_are_shared(self):
        """The paper's ANF example: R_A * R_B is computed once, used twice."""
        b = IRBuilder()
        ra, rb = b.emit("var_new", [0.0]), b.emit("var_new", [0.0])
        a1 = b.emit("mul", [ra, rb])
        a2 = b.emit("mul", [ra, rb])
        assert a1 is a2

    def test_different_args_not_shared(self):
        b = IRBuilder()
        x = b.emit("add", [1, 2])
        y = b.emit("add", [1, 3])
        assert x is not y

    def test_different_attrs_not_shared(self):
        b = IRBuilder()
        r = b.emit("var_new", [0])
        x = b.emit("record_get", [r], attrs={"field": "a"})
        y = b.emit("record_get", [r], attrs={"field": "b"})
        # record_get has a read effect, so it is never CSE'd anyway
        assert x is not y

    def test_effectful_ops_never_shared(self):
        b = IRBuilder()
        l1 = b.emit("list_new", [])
        l2 = b.emit("list_new", [])
        assert l1 is not l2

    def test_reads_never_shared(self):
        b = IRBuilder()
        arr = b.emit("array_new", [10])
        g1 = b.emit("array_get", [arr, 0])
        g2 = b.emit("array_get", [arr, 0])
        assert g1 is not g2

    def test_sharing_across_nested_scopes_from_outer(self):
        b = IRBuilder()
        x = b.emit("add", [1, 2])
        captured = {}

        def body(i):
            captured["inner"] = b.emit("add", [1, 2])

        b.for_range(0, 10, body)
        assert captured["inner"] is x

    def test_no_sharing_between_sibling_scopes(self):
        b = IRBuilder()
        inner_syms = []

        def then_branch():
            inner_syms.append(b.emit("add", [40, 2]))

        def else_branch():
            inner_syms.append(b.emit("add", [40, 2]))

        b.if_(b.const(True), then_branch, else_branch)
        assert inner_syms[0] is not inner_syms[1]

    def test_paper_aggregation_example_sharing(self):
        """agg1 += A*B; agg2 += A*B*(1-C); agg3 += D*(1-C): shares A*B and 1-C."""
        b = IRBuilder()
        a = b.emit("var_read", [b.emit("var_new", [1.0])], hint="A")
        bb = b.emit("var_read", [b.emit("var_new", [2.0])], hint="B")
        c = b.emit("var_read", [b.emit("var_new", [3.0])], hint="C")
        d = b.emit("var_read", [b.emit("var_new", [4.0])], hint="D")
        x1 = b.emit("mul", [a, bb])
        x2 = b.emit("sub", [1, c])
        x3 = b.emit("mul", [b.emit("mul", [a, bb]), b.emit("sub", [1, c])])
        x4 = b.emit("mul", [d, b.emit("sub", [1, c])])
        block = b.finish(x4)
        # only 4 var_new + 4 var_read + 4 distinct pure multiplications/subtractions
        pure_ops = [s for s in block.stmts if s.expr.op in ("mul", "sub")]
        assert len(pure_ops) == 4


class TestBlockStructure:
    def test_emit_validates_block_count(self):
        b = IRBuilder()
        with pytest.raises(ValueError):
            b.emit("if_", [b.const(True)], blocks=[])

    def test_unknown_op_rejected(self):
        b = IRBuilder()
        with pytest.raises(KeyError):
            b.emit("definitely_not_an_op", [])

    def test_finish_with_open_scope_raises(self):
        b = IRBuilder()
        cm = b.new_block()
        cm.__enter__()
        with pytest.raises(RuntimeError):
            b.finish()

    def test_for_range_creates_body_with_param(self):
        b = IRBuilder()
        seen = []

        def body(i):
            seen.append(i)
            b.emit("array_set", [b.emit("array_new", [10]), i, i])

        b.for_range(0, 10, body)
        block = b.finish()
        loop_stmt = [s for s in block.stmts if s.expr.op == "for_range"][0]
        assert loop_stmt.expr.blocks[0].params == (seen[0],)

    def test_if_returns_value(self):
        b = IRBuilder()
        cond = b.emit("lt", [1, 2])
        result = b.if_(cond, lambda: b.const(10), lambda: b.const(20), tpe=INT)
        block = b.finish(result)
        if_stmt = block.stmts[-1]
        assert if_stmt.expr.op == "if_"
        assert if_stmt.expr.blocks[0].result.value == 10
        assert if_stmt.expr.blocks[1].result.value == 20

    def test_while_has_cond_and_body_blocks(self):
        b = IRBuilder()
        v = b.emit("var_new", [0])

        b.while_(lambda: b.emit("lt", [b.emit("var_read", [v]), 10]),
                 lambda: b.emit("var_write", [v, b.emit("add", [b.emit("var_read", [v]), 1])]))
        block = b.finish()
        while_stmt = [s for s in block.stmts if s.expr.op == "while_"][0]
        assert len(while_stmt.expr.blocks) == 2


class TestProgram:
    def test_program_printing_mentions_language_and_hoisted(self):
        b = IRBuilder()
        res = b.emit("add", [1, 2])
        p = make_program(b.finish(res), [], "scalite")
        text = program_to_str(p)
        assert "scalite" in text
        assert "body:" in text

    def test_program_repr(self):
        b = IRBuilder()
        p = make_program(b.finish(b.const(0)), [Sym("db")], "c.py")
        assert "c.py" in repr(p)
