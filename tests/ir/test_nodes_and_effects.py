"""Unit tests for IR node structures, effects and the op registry."""
import pytest

from repro.ir import Const, Expr, Sym, effect_of, is_registered
from repro.ir.effects import ALLOC, CONTROL, IO, PURE, READ, WRITE
from repro.ir.ops import REGISTRY


class TestEffects:
    def test_pure_is_pure(self):
        assert PURE.pure
        assert PURE.removable_if_unused

    def test_write_is_not_removable(self):
        assert not WRITE.pure
        assert not WRITE.removable_if_unused

    def test_io_is_not_removable(self):
        assert not IO.removable_if_unused

    def test_read_is_removable_but_not_pure(self):
        assert not READ.pure
        assert READ.removable_if_unused

    def test_alloc_is_removable_but_not_pure(self):
        assert not ALLOC.pure
        assert ALLOC.removable_if_unused

    def test_union_combines_flags(self):
        e = READ.union(WRITE)
        assert e.reads and e.writes and not e.io

    def test_control_blocks_reordering(self):
        assert not CONTROL.can_reorder_with_reads


class TestRegistry:
    def test_core_ops_registered(self):
        for op in ("add", "mul", "eq", "if_", "for_range", "list_append",
                   "mmap_add", "hashmap_agg_update", "table_column",
                   "index_get_unique", "strdict_code", "pool_next"):
            assert is_registered(op), op

    def test_effects_of_key_ops(self):
        assert effect_of("add").pure
        assert effect_of("list_append").writes
        assert effect_of("array_get").reads
        assert effect_of("list_new").allocates
        assert effect_of("print_").io
        assert effect_of("for_range").control

    def test_unknown_op_raises(self):
        with pytest.raises(KeyError):
            effect_of("not_an_op")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError):
            REGISTRY.register("add")

    def test_block_arity_recorded(self):
        assert REGISTRY.get("if_").n_blocks == 2
        assert REGISTRY.get("for_range").n_blocks == 1
        assert REGISTRY.get("add").n_blocks == 0


class TestNodes:
    def test_sym_identity_semantics(self):
        a, b = Sym("x"), Sym("x")
        assert a != b
        assert a == a
        assert len({a, b}) == 2

    def test_sym_names_are_unique_and_readable(self):
        a, b = Sym("x"), Sym("y")
        assert a.name.startswith("x")
        assert b.name.startswith("y")
        assert a.name != b.name

    def test_const_equality_is_structural(self):
        assert Const(1) == Const(1)
        assert Const(1) != Const(2)

    def test_expr_cse_key_ignores_attr_order(self):
        s = Sym("x")
        e1 = Expr("record_get", (s,), {"field": "a", "layout": "row"})
        e2 = Expr("record_get", (s,), {"layout": "row", "field": "a"})
        assert e1.cse_key() == e2.cse_key()

    def test_expr_with_blocks_has_no_cse_key(self):
        from repro.ir.nodes import Block
        e = Expr("if_", (Const(True),), blocks=(Block(), Block()))
        assert e.cse_key() is None

    def test_expr_with_unhashable_attr_has_no_cse_key(self):
        class Weird:
            __hash__ = None

        e = Expr("add", (Const(1),), {"weird": Weird()})
        assert e.cse_key() is None

    def test_expr_attr_lists_are_normalised_for_keys(self):
        e1 = Expr("record_new", (Const(1),), {"fields": ["a", "b"]})
        e2 = Expr("record_new", (Const(1),), {"fields": ("a", "b")})
        assert e1.cse_key() == e2.cse_key()
