"""Unit tests for the .tbl loader and the integer date encoding."""

import pytest

from repro import dates
from repro.storage.loader import (LoaderError, dump_table_file, load_directory,
                                  load_table_file)
from repro.storage.schema import (Schema, TableSchema, date_column, float_column,
                                  int_column, string_column)


class TestDates:
    def test_round_trip(self):
        assert dates.date_to_int("1998-09-02") == 19980902
        assert dates.int_to_str(19980902) == "1998-09-02"

    def test_year_extraction(self):
        assert dates.year_of(19950704) == 1995

    def test_add_days_crosses_month_and_year(self):
        assert dates.add_days(19981230, 5) == 19990104

    def test_add_months(self):
        assert dates.add_months(19950101, 3) == 19950401
        assert dates.add_months(19951115, 3) == 19960215

    def test_add_months_clamps_day(self):
        assert dates.add_months(19950131, 1) in (19950228, 19950227)

    def test_add_years(self):
        assert dates.add_years(19940101, 1) == 19950101

    def test_ordering_matches_chronology(self):
        assert dates.date_to_int("1995-03-15") < dates.date_to_int("1995-03-16")
        assert dates.date_to_int("1994-12-31") < dates.date_to_int("1995-01-01")

    def test_int_passthrough(self):
        assert dates.date_to_int(19940101) == 19940101


def sales_schema() -> TableSchema:
    return TableSchema("sales", [int_column("id"), string_column("item"),
                                 float_column("price"), date_column("day")],
                       primary_key=("id",))


class TestLoader:
    def test_load_and_dump_round_trip(self, tmp_path):
        path = tmp_path / "sales.tbl"
        path.write_text("1|apple|2.5|1995-01-01|\n2|pear|3.0|1996-06-15|\n")
        table = load_table_file(sales_schema(), str(path))
        assert table.num_rows == 2
        assert table.column("day") == [19950101, 19960615]
        out = tmp_path / "out.tbl"
        dump_table_file(table, str(out))
        reloaded = load_table_file(sales_schema(), str(out))
        assert reloaded.columns == table.columns

    def test_wrong_field_count_raises(self, tmp_path):
        path = tmp_path / "sales.tbl"
        path.write_text("1|apple|\n")
        with pytest.raises(LoaderError):
            load_table_file(sales_schema(), str(path))

    def test_load_directory(self, tmp_path):
        (tmp_path / "sales.tbl").write_text("1|apple|2.5|1995-01-01|\n")
        schema = Schema().add(sales_schema())
        catalog = load_directory(schema, str(tmp_path))
        assert catalog.size("sales") == 1

    def test_load_directory_missing_file(self, tmp_path):
        schema = Schema().add(sales_schema())
        with pytest.raises(LoaderError):
            load_directory(schema, str(tmp_path))

    def test_empty_lines_are_skipped(self, tmp_path):
        path = tmp_path / "sales.tbl"
        path.write_text("1|apple|2.5|1995-01-01|\n\n2|pear|3.0|1996-06-15|\n")
        table = load_table_file(sales_schema(), str(path))
        assert table.num_rows == 2
