"""Unit tests for schema definitions, layouts, statistics and the catalog."""
import pytest

from repro.ir.types import FLOAT, STRING
from repro.storage.catalog import Catalog, CatalogError
from repro.storage.layouts import (BoxedTable, ColumnarTable, LayoutError, RowTable,
                                   to_layout)
from repro.storage.schema import (ForeignKey, Schema, SchemaError, TableSchema,
                                  float_column, int_column, string_column)
from repro.storage.statistics import compute_table_statistics


def sample_schema() -> TableSchema:
    return TableSchema(
        name="employee",
        columns=[int_column("id"), string_column("name"), float_column("salary"),
                 int_column("dept_id", references=("department", "id"))],
        primary_key=("id",),
    )


def sample_table() -> ColumnarTable:
    return ColumnarTable(sample_schema(), {
        "id": [1, 2, 3],
        "name": ["ann", "bob", "cat"],
        "salary": [10.0, 20.0, 30.0],
        "dept_id": [7, 7, 9],
    })


class TestSchema:
    def test_column_lookup(self):
        schema = sample_schema()
        assert schema.column("salary").type is FLOAT
        assert schema.column_type("name") is STRING

    def test_unknown_column_raises(self):
        with pytest.raises(SchemaError):
            sample_schema().column("missing")

    def test_duplicate_columns_rejected(self):
        with pytest.raises(SchemaError):
            TableSchema("t", [int_column("a"), int_column("a")])

    def test_primary_key_must_exist(self):
        with pytest.raises(SchemaError):
            TableSchema("t", [int_column("a")], primary_key=("b",))

    def test_single_column_primary_key(self):
        assert sample_schema().single_column_primary_key == "id"
        composite = TableSchema("t", [int_column("a"), int_column("b")],
                                primary_key=("a", "b"))
        assert composite.single_column_primary_key is None

    def test_foreign_keys_collected(self):
        fkeys = sample_schema().foreign_keys()
        assert fkeys == {"dept_id": ForeignKey("department", "id")}

    def test_schema_table_registry(self):
        schema = Schema().add(sample_schema())
        assert schema.has_table("employee")
        assert schema.table_of_column("salary") == "employee"
        with pytest.raises(SchemaError):
            schema.add(sample_schema())
        with pytest.raises(SchemaError):
            schema.table("missing")

    def test_foreign_key_validation(self):
        schema = Schema().add(sample_schema())
        with pytest.raises(SchemaError):
            schema.validate_foreign_keys()
        schema.add(TableSchema("department", [int_column("id"), string_column("name")],
                               primary_key=("id",)))
        schema.validate_foreign_keys()


class TestLayouts:
    def test_columnar_row_access(self):
        table = sample_table()
        assert table.num_rows == 3
        assert table.row_dict(1) == {"id": 2, "name": "bob", "salary": 20.0, "dept_id": 7}
        assert table.row_tuple(0, ["name", "salary"]) == ("ann", 10.0)

    def test_columnar_rejects_ragged_columns(self):
        with pytest.raises(LayoutError):
            ColumnarTable(sample_schema(), {
                "id": [1], "name": ["a", "b"], "salary": [1.0], "dept_id": [1]})

    def test_columnar_rejects_wrong_columns(self):
        with pytest.raises(LayoutError):
            ColumnarTable(sample_schema(), {"id": [1]})

    def test_from_rows_round_trip(self):
        table = sample_table()
        rebuilt = ColumnarTable.from_rows(sample_schema(), list(table.iter_rows()))
        assert rebuilt.columns == table.columns

    def test_row_layout_conversion(self):
        row_table = RowTable.from_columnar(sample_table(), ["id", "salary"])
        assert row_table.rows[2] == (3, 30.0)
        assert row_table.field_index("salary") == 1

    def test_boxed_layout_conversion(self):
        boxed = BoxedTable.from_columnar(sample_table())
        assert boxed.num_rows == 3
        assert boxed.rows[0]["name"] == "ann"

    def test_to_layout_dispatch(self):
        table = sample_table()
        assert to_layout(table, "columnar") is table
        assert isinstance(to_layout(table, "row"), RowTable)
        assert isinstance(to_layout(table, "boxed"), BoxedTable)
        with pytest.raises(LayoutError):
            to_layout(table, "holographic")


class TestStatistics:
    def test_table_statistics(self):
        stats = compute_table_statistics(sample_table())
        assert stats.num_rows == 3
        assert stats.column("dept_id").num_distinct == 2
        assert stats.column("id").min_value == 1
        assert stats.column("id").max_value == 3

    def test_dense_key_detection(self):
        stats = compute_table_statistics(sample_table())
        assert stats.column("id").is_dense_key()
        assert stats.column("name").value_range is None

    def test_sparse_key_rejected(self):
        schema = TableSchema("t", [int_column("k")])
        table = ColumnarTable(schema, {"k": [1, 10_000_000]})
        stats = compute_table_statistics(table)
        assert not stats.column("k").is_dense_key()


class TestCatalog:
    def test_register_and_access(self):
        catalog = Catalog()
        catalog.register(sample_table())
        assert catalog.size("employee") == 3
        assert catalog.column("employee", "name") == ["ann", "bob", "cat"]
        assert catalog.statistics.cardinality("employee") == 3
        assert catalog.primary_key_of("employee") == "id"
        assert catalog.is_primary_key("employee", "id")
        assert catalog.is_foreign_key("employee", "dept_id")
        assert not catalog.is_foreign_key("employee", "salary")

    def test_missing_table_raises(self):
        with pytest.raises(CatalogError):
            Catalog().table("nope")

    def test_register_rows(self):
        catalog = Catalog()
        catalog.register_rows(sample_schema(), list(sample_table().iter_rows()))
        assert catalog.size("employee") == 3

    def test_memory_footprint_positive(self):
        catalog = Catalog()
        catalog.register(sample_table())
        assert catalog.memory_footprint() > 0
