"""Unit tests for the physical access layer (repro.storage.access)."""
import threading

import pytest

from repro.dsl.expr import col, date, in_list, like, lit
from repro.dsl.expr_compile import compile_columnar_predicate, compile_row
from repro.storage.access import (AccessLayer, DictIndex, DirectArray,
                                  extract_zone_filters,
                                  rewrite_string_predicates,
                                  template_key_index, template_pruned_indices)
from repro.storage.access import AccessError
from repro.storage.catalog import Catalog
from repro.storage.layouts import ColumnarTable
from repro.storage.schema import (TableSchema, float_column, int_column,
                                  string_column)


def _catalog(rows=None):
    """R: dense PK; S: sparse unique id; values cover strings and floats."""
    catalog = Catalog()
    r_schema = TableSchema("R", [int_column("r_id"), string_column("r_tag"),
                                 float_column("r_val")], primary_key=("r_id",))
    s_schema = TableSchema("S", [int_column("s_id"), int_column("s_rid")],
                           primary_key=("s_id",))
    catalog.register(ColumnarTable(r_schema, {
        "r_id": [10, 11, 12, 13, 14],
        "r_tag": ["beta", "alpha", "beta", "gamma", "alpha"],
        "r_val": [5.0, 1.0, 3.0, 2.0, 4.0],
    }))
    catalog.register(ColumnarTable(s_schema, {
        "s_id": [7, 900000, 12],          # unique but far from dense
        "s_rid": [10, 12, 99],
    }))
    return catalog


class TestKeyIndex:
    def test_dense_key_gets_a_direct_array(self):
        layer = _catalog().access_layer()
        index = layer.key_index("R", "r_id")
        assert isinstance(index, DirectArray)
        assert index.lookup(10) == 0
        assert index.lookup(14) == 4
        assert index.lookup(15) is None
        assert index.lookup(9) is None

    def test_direct_array_matches_hash_key_semantics(self):
        index = _catalog().access_layer().key_index("R", "r_id")
        # a float that equals an int key must match, like a dict lookup would
        assert index.lookup(12.0) == 2
        assert index.lookup(12.5) is None
        assert index.lookup("12") is None

    def test_sparse_unique_key_gets_a_dict_index(self):
        index = _catalog().access_layer().key_index("S", "s_id")
        assert isinstance(index, DictIndex)
        assert index.lookup(900000) == 1
        assert index.lookup(8) is None

    def test_non_unique_column_has_no_index(self):
        assert _catalog().access_layer().key_index("R", "r_tag") is None

    def test_built_once_and_memoized(self):
        catalog = _catalog()
        layer = catalog.access_layer()
        first = layer.key_index("R", "r_id")
        for _ in range(3):
            assert layer.key_index("R", "r_id") is first
        assert layer.build_counts[("key_index", "R", "r_id")] == 1
        # the layer itself is memoized on the catalog
        assert AccessLayer.for_catalog(catalog) is layer
        assert catalog.access_layer() is layer


class TestStringDictionary:
    def test_codes_follow_sorted_value_order(self):
        dictionary = _catalog().access_layer().dictionary("R", "r_tag")
        assert dictionary.values == ["alpha", "beta", "gamma"]
        assert dictionary.codes == [1, 0, 1, 2, 0]
        assert dictionary.code("gamma") == 2
        assert dictionary.code("delta") is None

    def test_prefix_code_range(self):
        dictionary = _catalog().access_layer().dictionary("R", "r_tag")
        lo, hi = dictionary.prefix_code_range("a")
        assert (lo, hi) == (0, 1)
        assert dictionary.prefix_code_range("x") == (3, 3)

    def test_almost_unique_column_is_not_encoded(self):
        catalog = Catalog()
        schema = TableSchema("T", [int_column("t_id"), string_column("t_s")],
                             primary_key=("t_id",))
        catalog.register(ColumnarTable(schema, {
            "t_id": [1, 2, 3],
            "t_s": ["a", "b", "c"],    # every value distinct
        }))
        assert catalog.access_layer().dictionary("T", "t_s") is None

    def test_non_string_column_is_not_encoded(self):
        assert _catalog().access_layer().dictionary("R", "r_val") is None


class TestSortedColumn:
    def test_unsorted_column_gets_a_permutation(self):
        index = _catalog().access_layer().sorted_column("R", "r_val")
        assert index.values == [1.0, 2.0, 3.0, 4.0, 5.0]
        assert list(index.permutation) == [1, 3, 2, 4, 0]
        assert not index.identity

    def test_sorted_column_is_identity(self):
        index = _catalog().access_layer().sorted_column("R", "r_id")
        assert index.identity
        assert list(index.permutation) == [0, 1, 2, 3, 4]


class TestZoneFilterExtraction:
    def test_range_equality_and_prefix_conjuncts(self):
        predicate = ((col("r_val") > 2.0) & (col("r_tag") == "beta")
                     & like(col("r_tag"), "be%") & (lit(3.0) >= col("r_val")))
        filters = extract_zone_filters(predicate, ["r_val", "r_tag"])
        assert ("r_val", ">", 2.0) in filters
        assert ("r_tag", "==", "beta") in filters
        assert ("r_tag", "prefix", "be") in filters
        # literal-on-the-left comparisons are flipped onto the column
        assert ("r_val", "<=", 3.0) in filters

    def test_unprunable_conjuncts_are_ignored(self):
        predicate = ((col("a") < col("b"))               # column/column
                     & ((col("a") > 1) | (col("b") > 2))  # disjunction
                     & in_list(col("a"), [1, 2])          # IN list
                     & (col("c") > 5))                    # unknown column
        assert extract_zone_filters(predicate, ["a", "b"]) == ()


class TestPruning:
    def test_candidates_are_ascending_and_cover_all_matches(self):
        layer = _catalog().access_layer()
        candidates = layer.prune_candidates("R", [("r_val", ">", 3.5)])
        assert list(candidates) == sorted(candidates)
        assert set(candidates) == {0, 4}      # 5.0 and 4.0

    def test_equality_on_strings_prunes(self):
        layer = _catalog().access_layer()
        candidates = layer.prune_candidates("R", [("r_tag", "==", "gamma")])
        assert list(candidates) == [3]

    def test_unselective_range_returns_none(self):
        layer = _catalog().access_layer()
        assert layer.prune_candidates("R", [("r_val", ">", 0.0)]) is None

    def test_combined_bounds_on_one_column(self):
        layer = _catalog().access_layer()
        candidates = layer.prune_candidates(
            "R", [("r_val", ">=", 2.0), ("r_val", "<", 4.0)])
        assert set(candidates) == {2, 3}      # 3.0 and 2.0

    def test_chunk_ranges_skip_on_sorted_columns(self):
        catalog = Catalog()
        schema = TableSchema("T", [int_column("t_id")], primary_key=("t_id",))
        catalog.register(ColumnarTable(schema, {"t_id": list(range(5000))}))
        ranges = catalog.access_layer().chunk_ranges("T", [("t_id", ">=", 4096)])
        assert ranges == [(4096, 5000)]
        # and an impossible filter admits no chunk at all
        assert catalog.access_layer().chunk_ranges("T", [("t_id", ">", 9999)]) == []

    def test_pruned_indices_is_memoized(self):
        layer = _catalog().access_layer()
        first = layer.pruned_indices("R", (("r_val", ">", 3.5),))
        assert layer.pruned_indices("R", (("r_val", ">", 3.5),)) is first

    def test_template_helper_falls_back_to_every_row(self):
        catalog = _catalog()
        rows = template_pruned_indices(catalog, "R", ())
        assert list(rows) == [0, 1, 2, 3, 4]

    def test_template_key_index_raises_without_an_index(self):
        with pytest.raises(AccessError):
            template_key_index(_catalog(), "R", "r_tag")


class TestDictionaryRewrite:
    def _rewrite(self, predicate):
        catalog = _catalog()
        layer = catalog.access_layer()
        schema = catalog.schema.table("R")
        rewritten, extra = rewrite_string_predicates(
            predicate, "R", schema.columns, layer)
        return catalog, rewritten, extra

    def _equivalent(self, predicate):
        """The rewritten predicate selects exactly the same rows."""
        catalog, rewritten, extra = self._rewrite(predicate)
        table = catalog.table("R")
        columns = {name: table.column(name) for name in table.columns}
        columns.update(extra)
        reference = compile_row(predicate)
        expected = [i for i in range(table.num_rows)
                    if reference(table.row_dict(i))]
        actual = compile_columnar_predicate(rewritten)(
            columns, range(table.num_rows))
        assert list(actual) == expected
        return rewritten, extra

    def test_equality_becomes_code_comparison(self):
        rewritten, extra = self._equivalent(col("r_tag") == "beta")
        assert "r_tag#dict" in extra
        assert repr(rewritten) != repr(col("r_tag") == "beta")

    def test_absent_value_folds_to_false(self):
        _, rewritten, extra = self._rewrite(col("r_tag") == "nope")
        assert not extra
        assert repr(rewritten) == "Lit(False)"

    def test_inequality_in_list_and_prefix(self):
        self._equivalent(col("r_tag") != "alpha")
        self._equivalent(in_list(col("r_tag"), ["alpha", "gamma", "nope"]))
        self._equivalent(like(col("r_tag"), "be%"))
        self._equivalent((col("r_tag") == "alpha") & (col("r_val") > 2.0))

    def test_non_string_predicates_pass_through(self):
        _, rewritten, extra = self._rewrite(col("r_val") > 2.0)
        assert not extra
        assert rewritten is not None


class TestWarmLoading:
    def test_warm_access_paths_builds_pk_indices_and_dictionaries(self):
        from repro.storage.loader import warm_access_paths
        catalog = _catalog()
        warm_access_paths(catalog)
        layer = catalog.access_layer()
        assert layer.build_counts[("key_index", "R", "r_id")] == 1
        assert layer.build_counts[("key_index", "S", "s_id")] == 1
        assert layer.build_counts[("dictionary", "R", "r_tag")] == 1
        # warming twice never rebuilds
        warm_access_paths(catalog)
        assert layer.build_counts[("key_index", "R", "r_id")] == 1


class TestReloadInvalidation:
    def test_reregistering_a_table_invalidates_its_structures(self):
        catalog = _catalog()
        layer = catalog.access_layer()
        stale_index = layer.key_index("R", "r_id")
        stale_candidates = layer.pruned_indices("R", (("r_val", ">", 3.5),))
        assert stale_index.lookup(10) == 0
        assert set(stale_candidates) == {0, 4}
        # reload R with shifted keys and different values
        schema = catalog.schema.table("R")
        catalog.register(ColumnarTable(schema, {
            "r_id": [20, 21, 22],
            "r_tag": ["x", "x", "y"],
            "r_val": [9.0, 1.0, 1.0],
        }))
        index = layer.key_index("R", "r_id")
        assert index is not stale_index
        assert index.lookup(10) is None
        assert index.lookup(20) == 0
        assert set(layer.pruned_indices("R", (("r_val", ">", 3.5),))) == {0}
        # untouched tables keep their memoized structures
        assert layer.key_index("S", "s_id") is layer.key_index("S", "s_id")

    def test_index_join_sees_reloaded_data(self):
        from repro.dsl.qplan import HashJoin, IndexJoin, Scan
        catalog = _catalog()
        volcano = __import__("repro.engine.volcano", fromlist=["VolcanoEngine"])
        engine = volcano.VolcanoEngine(catalog)
        index_plan = IndexJoin(Scan("R"), Scan("S"), col("r_id"), col("s_rid"),
                               index_table="R", index_column="r_id")
        hash_plan = HashJoin(Scan("R"), Scan("S"), col("r_id"), col("s_rid"))
        assert engine.execute(index_plan) == engine.execute(hash_plan)
        schema = catalog.schema.table("R")
        catalog.register(ColumnarTable(schema, {
            "r_id": [12, 10, 99],
            "r_tag": ["n1", "n2", "n3"],
            "r_val": [1.0, 2.0, 3.0],
        }))
        assert engine.execute(index_plan) == engine.execute(hash_plan)


class TestStatisticsZoneMaps:
    def test_zone_map_and_sortedness_are_collected_at_load(self):
        catalog = _catalog()
        stats = catalog.statistics.column("R", "r_id")
        assert stats.sorted_ascending
        assert stats.is_unique
        assert stats.zone_map is not None
        assert stats.zone_map.mins == [10]
        assert stats.zone_map.maxs == [14]
        val = catalog.statistics.column("R", "r_val")
        assert not val.sorted_ascending
        assert (val.min_value, val.max_value) == (1.0, 5.0)

    def test_chunked_zone_maps(self):
        from repro.storage.statistics import compute_column_statistics
        stats = compute_column_statistics("c", list(range(5000)), chunk_rows=2048)
        assert stats.zone_map.num_chunks == 3
        assert stats.zone_map.mins == [0, 2048, 4096]
        assert stats.zone_map.maxs == [2047, 4095, 4999]
        assert stats.sorted_ascending

    def test_columns_by_name_merges_tables(self):
        catalog = _catalog()
        merged = catalog.statistics.columns_by_name()
        assert merged["r_id"].num_distinct == 5
        assert merged["s_id"].num_distinct == 3

    def test_date_range_still_interpolates_in_the_estimator(self):
        # the estimator consumes the same load-time min/max the zone maps use
        from repro.planner.cardinality import CardinalityEstimator
        from repro.dsl.qplan import Scan, Select
        catalog = _catalog()
        estimator = CardinalityEstimator(catalog)
        selective = estimator.estimate_rows(
            Select(Scan("R"), col("r_val") > 4.5))
        broad = estimator.estimate_rows(Select(Scan("R"), col("r_val") > 1.5))
        assert selective < broad


def test_date_literals_prune_like_integers():
    """Date columns are stored as ints; date() literals prune directly."""
    catalog = Catalog()
    schema = TableSchema("T", [int_column("t_id"), int_column("t_date")],
                         primary_key=("t_id",))
    catalog.register(ColumnarTable(schema, {
        "t_id": [1, 2, 3, 4],
        "t_date": [19940105, 19950215, 19930301, 19940620],
    }))
    filters = extract_zone_filters(
        (col("t_date") >= date("1994-01-01")) & (col("t_date") < date("1995-01-01")),
        ["t_date"])
    candidates = catalog.access_layer().prune_candidates("T", filters)
    assert set(candidates) == {0, 3}


class TestMultiColumnIntersection:
    """Conjunctive filters on several zoned/sorted columns intersect their
    surviving row sets — regression for the single-best-column pruning that
    ignored every other conjunct."""

    def _two_column_catalog(self):
        catalog = Catalog()
        schema = TableSchema("M", [int_column("m_id"), int_column("m_a"),
                                   int_column("m_b")], primary_key=("m_id",))
        n = 4000
        catalog.register(ColumnarTable(schema, {
            "m_id": list(range(n)),
            # two interleaved sawtooth columns: each range filter alone keeps
            # a big scattered slice, their conjunction keeps a small one
            "m_a": [i % 100 for i in range(n)],
            "m_b": [(i * 7) % 100 for i in range(n)],
        }))
        return catalog

    def test_conjunction_keeps_fewer_candidates_than_either_filter(self):
        layer = self._two_column_catalog().access_layer()
        only_a = [("m_a", "<", 30)]
        only_b = [("m_b", "<", 30)]
        both = only_a + only_b
        a_rows = set(layer.prune_candidates("M", only_a))
        b_rows = set(layer.prune_candidates("M", only_b))
        both_rows = layer.prune_candidates("M", both)
        assert set(both_rows) == a_rows & b_rows
        assert len(both_rows) < len(a_rows) and len(both_rows) < len(b_rows)
        assert list(both_rows) == sorted(both_rows)

    def test_pruned_indices_intersects_too(self):
        layer = self._two_column_catalog().access_layer()
        both = (("m_a", "<", 30), ("m_b", "<", 30))
        survivors = list(layer.pruned_indices("M", both))
        # every candidate satisfies both bounds and nothing satisfying both
        # was dropped (superset check against a full scan)
        catalog = self._two_column_catalog()
        a, b = catalog.column("M", "m_a"), catalog.column("M", "m_b")
        expected = [i for i in range(len(a)) if a[i] < 30 and b[i] < 30]
        assert [i for i in survivors if a[i] < 30 and b[i] < 30] == expected
        assert set(expected) <= set(survivors)

    def test_sorted_slice_intersects_with_other_columns_zone_maps(self):
        """A sorted column's candidate slice is further cut by the zone maps
        of a second, unsorted-but-zoned filter column."""
        catalog = Catalog()
        schema = TableSchema("Z", [int_column("z_sorted"), int_column("z_zoned")],
                             primary_key=("z_sorted",))
        n = 8192
        catalog.register(ColumnarTable(schema, {
            "z_sorted": list(range(n)),          # stored sorted: identity index
            "z_zoned": [i // 2048 for i in range(n)],  # constant per chunk
        }))
        layer = catalog.access_layer()
        filters = (("z_sorted", "<", 3000), ("z_zoned", "==", 0))
        survivors = list(layer.pruned_indices("Z", filters))
        # the sorted slice alone keeps [0, 3000); chunk 2 (z_zoned == 1)
        # is rejected by the second column's zone map
        assert survivors == list(range(2048))

    def test_chunk_ranges_intersect_across_columns(self):
        catalog = Catalog()
        schema = TableSchema("C", [int_column("c_up"), int_column("c_down")],
                             primary_key=("c_up",))
        n = 8192
        catalog.register(ColumnarTable(schema, {
            "c_up": list(range(n)),
            "c_down": list(range(n, 0, -1)),
        }))
        layer = catalog.access_layer()
        up = [("c_up", ">=", 2048)]           # chunks 1..3
        down = [("c_down", ">", n - 4096)]    # rows 0..4095: chunks 0..1
        up_chunks = layer.chunk_ranges("C", up)
        down_chunks = layer.chunk_ranges("C", down)
        both = layer.chunk_ranges("C", up + down)
        assert both == [(2048, 4096)]
        assert both[0][1] - both[0][0] < sum(b - a for a, b in up_chunks)
        assert both[0][1] - both[0][0] < sum(b - a for a, b in down_chunks)


class TestThunderingHerd:
    """The build-once claim must hold under real thread contention: the
    memo locks added for the concurrency contract (``_CREATE_LOCK`` for the
    layer itself, the instance ``_lock`` for each structure memo) are
    exactly what these barriers hammer."""

    THREADS = 16

    def _herd(self, work):
        barrier = threading.Barrier(self.THREADS)
        results = [None] * self.THREADS
        errors = []

        def run(slot):
            try:
                barrier.wait()
                results[slot] = work()
            except Exception as error:  # noqa: BLE001 - surfaced below
                errors.append(error)

        threads = [threading.Thread(target=run, args=(slot,))
                   for slot in range(self.THREADS)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        return results

    def test_for_catalog_builds_exactly_one_layer(self):
        catalog = _catalog()
        layers = self._herd(lambda: AccessLayer.for_catalog(catalog))
        assert all(layer is layers[0] for layer in layers)
        assert AccessLayer.for_catalog(catalog) is layers[0]

    def test_each_structure_builds_exactly_once_under_contention(self):
        layer = AccessLayer.for_catalog(_catalog())
        results = self._herd(lambda: (layer.key_index("R", "r_id"),
                                      layer.dictionary("R", "r_tag")))
        indices = {id(index) for index, _ in results}
        dictionaries = {id(dictionary) for _, dictionary in results}
        assert len(indices) == 1 and len(dictionaries) == 1
        assert layer.build_counts[("key_index", "R", "r_id")] == 1
        assert layer.build_counts[("dictionary", "R", "r_tag")] == 1
