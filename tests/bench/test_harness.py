"""Tests for the benchmark harness and the lines-of-code accounting."""
import pytest

from repro.bench.harness import BenchmarkHarness, ENGINE_NAMES, Measurement
from repro.bench.loc import count_loc, format_table4, loc_by_package, table4
from repro.tpch.dbgen import generate_catalog


@pytest.fixture(scope="module")
def harness():
    catalog = generate_catalog(scale_factor=0.0005, seed=3)
    return BenchmarkHarness(catalog, repetitions=1)


class TestHarness:
    def test_measure_interpreter(self, harness):
        measurement = harness.measure("Q6", "interpreter")
        assert isinstance(measurement, Measurement)
        assert measurement.run_seconds > 0
        assert measurement.engine == "interpreter"

    def test_measure_template_expander_and_compiled(self, harness):
        te = harness.measure("Q6", "template-expander")
        compiled = harness.measure("Q6", "dblab-5")
        assert te.compile_seconds > 0
        assert compiled.compile_seconds > 0
        assert compiled.rows == te.rows

    def test_measure_vectorized_matches_interpreter(self, harness):
        interp = harness.measure("Q6", "interpreter")
        vectorized = harness.measure("Q6", "vectorized")
        assert vectorized.engine == "vectorized"
        assert vectorized.rows == interp.rows

    def test_unknown_engine_rejected(self, harness):
        with pytest.raises(KeyError):
            harness.measure("Q6", "quantum-engine")

    def test_table3_rows_consistent_across_engines(self, harness):
        results = harness.table3(queries=["Q6", "Q14"],
                                 engines=["interpreter", "dblab-3", "dblab-5"])
        for per_engine in results.values():
            row_counts = {m.rows for m in per_engine.values()}
            assert len(row_counts) == 1

    def test_format_table3(self, harness):
        results = harness.table3(queries=["Q6"], engines=["interpreter", "dblab-5"])
        text = BenchmarkHarness.format_table3(results)
        assert "Q6" in text and "interpreter" in text and "dblab-5" in text

    def test_figure8_memory(self, harness):
        memory = harness.figure8_memory(queries=["Q6"])
        assert memory["Q6"].peak_memory_bytes > 0

    def test_figure9_compilation_split(self, harness):
        split = harness.figure9_compilation(queries=["Q6", "Q3"])
        for data in split.values():
            assert data["total"] == pytest.approx(data["generation"] + data["target_compile"])
            assert data["source_lines"] > 10

    def test_speedups_and_geometric_mean(self, harness):
        results = harness.table3(queries=["Q6"], engines=["interpreter", "dblab-5"])
        speedups = BenchmarkHarness.speedups(results, "interpreter", "dblab-5")
        assert "Q6" in speedups and speedups["Q6"] > 0
        assert BenchmarkHarness.geometric_mean([2.0, 8.0]) == pytest.approx(4.0)
        assert BenchmarkHarness.geometric_mean([]) == 0.0

    def test_compiled_queries_are_cached(self, harness):
        harness.measure("Q6", "dblab-5")
        key = next(k for k in harness._compiled_cache if k[:2] == ("Q6", "dblab-5"))
        cached = harness._compiled_cache[key]
        harness.measure("Q6", "dblab-5")
        assert harness._compiled_cache[key] is cached

    def test_raw_and_planned_compile_separately(self, harness):
        harness.measure("Q6", "dblab-3", optimize=False)
        harness.measure("Q6", "dblab-3", optimize=True)
        keys = [k for k in harness._compiled_cache if k[:2] == ("Q6", "dblab-3")]
        assert len(keys) == 2, "raw and planned plans must not share a cache slot"

    def test_engine_names_cover_all_configs(self):
        assert ENGINE_NAMES[0] == "interpreter"
        assert "dblab-5" in ENGINE_NAMES and "tpch-compliant" in ENGINE_NAMES


class TestPlannerMode:
    def test_measure_with_optimize_tags_the_plan_mode(self, harness):
        raw = harness.measure("Q6", "interpreter", optimize=False)
        planned = harness.measure("Q6", "interpreter", optimize=True)
        assert raw.plan_mode == "raw" and planned.plan_mode == "planned"
        assert planned.rows == raw.rows

    def test_use_planner_harness_defaults_every_measurement(self):
        catalog = generate_catalog(scale_factor=0.0005, seed=3)
        planning = BenchmarkHarness(catalog, repetitions=1, use_planner=True)
        assert planning.measure("Q6", "vectorized").plan_mode == "planned"

    def test_table3_planner_grid(self, harness):
        results = harness.table3_planner(queries=["Q6"],
                                         engines=["interpreter", "vectorized"])
        pair = results["Q6"]["interpreter"]
        assert pair["raw"].rows == pair["planned"].rows
        assert pair["planned"].plan_mode == "planned"
        text = BenchmarkHarness.format_planner_table(results)
        assert "Q6" in text and "x)" in text

    def test_planner_json_report(self, harness, tmp_path):
        results = harness.table3_planner(queries=["Q6"], engines=["vectorized"])
        path = tmp_path / "BENCH_planner.json"
        BenchmarkHarness.write_planner_json(results, str(path), scale_factor=0.0005)
        import json
        payload = json.loads(path.read_text())
        assert payload["meta"]["scale_factor"] == 0.0005
        cell = payload["queries"]["Q6"]["vectorized"]
        assert cell["raw"]["rows"] == cell["planned"]["rows"]
        assert cell["speedup"] > 0


class TestLocAccounting:
    def test_count_loc_skips_comments_and_docstrings(self, tmp_path):
        path = tmp_path / "module.py"
        path.write_text('"""Docstring\nspanning lines\n"""\n# comment\nx = 1\n\ny = 2\n')
        assert count_loc(str(path)) == 2

    def test_count_loc_missing_file(self):
        assert count_loc("/nonexistent/file.py") == 0

    def test_table4_entries_are_nonempty(self):
        entries = table4()
        by_name = {e.name: e.lines for e in entries}
        assert by_name["Pipelining (push engine) for QPlan"] > 100
        assert by_name["String dictionaries"] > 50
        assert by_name["Dead code elimination"] > 10

    def test_individual_transformations_stay_small(self):
        """The productivity claim: each transformation is a few hundred lines."""
        for entry in table4():
            assert entry.lines < 800, f"{entry.name} has grown too large"

    def test_format_table4_mentions_total(self):
        text = format_table4()
        assert "Total" in text and "Transformation" in text

    def test_loc_by_package_covers_core_packages(self):
        totals = loc_by_package()
        for package in ("ir", "stack", "transforms", "codegen", "engine", "tpch"):
            assert totals.get(package, 0) > 100
