"""Shared fixtures: a tiny two-table catalog and a small TPC-H catalog.

Also provides a ``timeout`` marker so hung cancellation paths fail fast: the
real ``pytest-timeout`` plugin is used when installed (CI installs it); when
it is absent a SIGALRM-based shim enforces the marked limits locally.
"""
import signal

import pytest

from repro.storage.catalog import Catalog
from repro.storage.layouts import ColumnarTable
from repro.storage.schema import TableSchema, float_column, int_column, string_column
from repro.tpch.dbgen import generate_catalog

try:
    import pytest_timeout  # noqa: F401
    _HAVE_PYTEST_TIMEOUT = True
except ImportError:
    _HAVE_PYTEST_TIMEOUT = False


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "timeout(seconds): fail the test if it runs longer than the limit")


if not _HAVE_PYTEST_TIMEOUT and hasattr(signal, "SIGALRM"):
    @pytest.hookimpl(hookwrapper=True)
    def pytest_runtest_call(item):
        marker = item.get_closest_marker("timeout")
        if marker is None or not marker.args:
            yield
            return
        seconds = float(marker.args[0])

        def _trip(signum, frame):
            raise TimeoutError(f"test exceeded its {seconds}s timeout")

        previous = signal.signal(signal.SIGALRM, _trip)
        signal.setitimer(signal.ITIMER_REAL, seconds)
        try:
            yield
        finally:
            signal.setitimer(signal.ITIMER_REAL, 0)
            signal.signal(signal.SIGALRM, previous)


def build_tiny_catalog() -> Catalog:
    """The paper's running example: R(name, sid) and S(rid, val)."""
    catalog = Catalog()
    r_schema = TableSchema("R", [int_column("r_id"), string_column("r_name"),
                                 int_column("r_sid")], primary_key=("r_id",))
    # note: s_rid deliberately carries *no* foreign-key annotation — the data
    # contains a dangling rid (50), so compiled plans must keep bounds guards.
    s_schema = TableSchema("S", [int_column("s_id"), int_column("s_rid"),
                                 float_column("s_val")], primary_key=("s_id",))
    catalog.register(ColumnarTable(r_schema, {
        "r_id": [1, 2, 3, 4, 5],
        "r_name": ["R1", "R2", "R1", "R3", "R1"],
        "r_sid": [10, 20, 30, 10, 40],
    }))
    catalog.register(ColumnarTable(s_schema, {
        "s_id": [100, 101, 102, 103, 104, 105],
        "s_rid": [10, 30, 10, 50, 30, 40],
        "s_val": [1.0, 2.0, 3.0, 4.0, 5.0, 6.0],
    }))
    return catalog


@pytest.fixture()
def tiny_catalog() -> Catalog:
    return build_tiny_catalog()


@pytest.fixture(scope="session")
def tpch_catalog() -> Catalog:
    """A small deterministic TPC-H catalog shared by integration tests."""
    return generate_catalog(scale_factor=0.001, seed=20160626)
