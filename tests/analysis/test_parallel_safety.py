"""Unit tests for the loop-dependence race detector and its annotator."""
import pytest

from repro.analysis import VerificationError
from repro.analysis.dataflow import (annotate_parallel_safety,
                                     classification_map, classify_loops,
                                     top_level_loops)
from repro.analysis.dataflow.checks import check_stamps
from repro.analysis.dataflow.dependence import SAFETY_ATTR
from repro.ir import IRBuilder, make_program


def _only(classifications):
    assert len(classifications) == 1
    return classifications[0]


class TestClassifyLoops:
    def test_merge_backed_append_is_parallelizable(self):
        b = IRBuilder()
        out = b.emit("list_new", [], hint="out")
        b.for_range(0, 100, lambda i: b.emit("list_append", [out, i]))
        program = make_program(b.finish(out), [], "ScaLite")
        verdict = _only(classify_loops(program))
        assert verdict.parallelizable
        assert verdict.merges == (("out", "concat"),)
        assert "merges" in verdict.reason

    def test_iteration_local_effects_are_parallelizable(self):
        b = IRBuilder()

        def body(i):
            local = b.emit("list_new", [], hint="local")
            b.emit("list_append", [local, i])

        b.for_range(0, 100, body)
        program = make_program(b.finish(None), [], "ScaLite")
        verdict = _only(classify_loops(program))
        assert verdict.parallelizable
        assert verdict.reason == "iteration-local effects only"

    def test_order_dependent_write_is_sequential(self):
        b = IRBuilder()
        slot = b.emit("var_new", [0], hint="slot")
        b.for_range(0, 100, lambda i: b.emit("var_write", [slot, i]))
        program = make_program(b.finish(None), [], "ScaLite")
        verdict = _only(classify_loops(program))
        assert not verdict.parallelizable
        assert "order-dependent write to slot" in verdict.reason

    def test_while_loop_is_sequential(self):
        b = IRBuilder()
        flag = b.emit("var_new", [True], hint="flag")
        b.while_(lambda: b.emit("var_read", [flag]),
                 lambda: b.emit("var_write", [flag, False]))
        program = make_program(b.finish(None), [], "ScaLite")
        verdict = _only(classify_loops(program))
        assert not verdict.parallelizable
        assert verdict.reason == "loop-carried control dependence"

    def test_io_pins_loop_sequential(self):
        b = IRBuilder()
        b.for_range(0, 10, lambda i: b.emit("print_", [i]))
        program = make_program(b.finish(None), [], "ScaLite")
        verdict = _only(classify_loops(program))
        assert not verdict.parallelizable
        assert "performs I/O" in verdict.reason

    def test_observing_partial_output_is_sequential(self):
        b = IRBuilder()
        out = b.emit("list_new", [], hint="out")

        def body(i):
            b.emit("list_append", [out, i])
            b.emit("list_len", [out])

        b.for_range(0, 10, body)
        program = make_program(b.finish(out), [], "ScaLite")
        verdict = _only(classify_loops(program))
        assert not verdict.parallelizable
        assert "partial output" in verdict.reason

    def test_reading_outer_state_stays_parallelizable(self):
        """Reads of outer objects (including via control-op arguments) are
        safe — only unmerged writes pin a loop."""
        b = IRBuilder()
        out = b.emit("list_new", [], hint="out")
        threshold = b.emit("add", [10, 20])

        def body(i):
            cond = b.emit("lt", [i, threshold])
            b.if_(cond, lambda: b.emit("list_append", [out, i]))

        b.for_range(0, 100, body)
        program = make_program(b.finish(out), [], "ScaLite")
        verdict = _only(classify_loops(program))
        assert verdict.parallelizable

    def test_top_level_loops_descend_if_arms_only(self):
        b = IRBuilder()
        cond = b.emit("lt", [1, 2])

        def then_arm():
            b.for_range(0, 10, lambda i:
                        b.for_range(0, 10, lambda j: b.emit("add", [i, j]),
                                    hint="inner"),
                        hint="outer")

        b.if_(cond, then_arm)
        program = make_program(b.finish(None), [], "ScaLite")
        loops = list(top_level_loops(program))
        # only the outer loop (inside the if_ arm) is depth-0; the nested
        # loop lives in its body and is not yielded
        assert len(loops) == 1
        outer = loops[0]
        assert outer.expr.op == "for_range"
        assert any(s.expr.op == "for_range"
                   for s in outer.expr.blocks[0].stmts)
        assert len(classify_loops(program)) == 1

    def test_classification_is_memoized(self):
        b = IRBuilder()
        b.for_range(0, 10, lambda i: b.emit("add", [i, 1]))
        program = make_program(b.finish(None), [], "ScaLite")
        assert classify_loops(program) is classify_loops(program)


class TestAnnotatorAndStampChecks:
    def _program(self):
        b = IRBuilder()
        out = b.emit("list_new", [], hint="out")
        b.for_range(0, 100, lambda i: b.emit("list_append", [out, i]))
        slot = b.emit("var_new", [0], hint="slot")
        b.for_range(0, 100, lambda i: b.emit("var_write", [slot, i]))
        return make_program(b.finish(out), [], "ScaLite")

    def test_annotator_stamps_match_verdicts(self):
        program = self._program()
        verdicts = annotate_parallel_safety(program)
        assert len(verdicts) == 2
        by_id = classification_map(program)
        for stmt in top_level_loops(program):
            assert stmt.expr.attrs[SAFETY_ATTR] == by_id[stmt.sym.id].stamp
        check_stamps(program)  # the annotator's own stamps always verify

    def test_tampered_stamp_is_rejected(self):
        program = self._program()
        annotate_parallel_safety(program)
        for stmt in top_level_loops(program):
            if stmt.expr.attrs[SAFETY_ATTR].startswith("sequential"):
                stmt.expr.attrs[SAFETY_ATTR] = "parallelizable"
        with pytest.raises(VerificationError) as exc:
            check_stamps(program, phase="tamper-test")
        assert exc.value.check == "parallel-safety"
        assert exc.value.phase == "tamper-test"


class TestReport:
    def test_report_classifies_every_loop(self):
        from repro.analysis.dataflow.report import build_report
        report = build_report(scale_factor=0.001, seed=20160626,
                              config_names=["dblab-5"], query_names=["Q6"])
        summary = report["summary"]
        assert summary["failures"] == 0
        assert summary["total_loops"] >= 1
        assert summary["parallelizable"] >= 1
        loops = report["configs"]["dblab-5"]["Q6"]["loops"]
        assert all(loop["verdict"] in ("parallelizable", "sequential")
                   for loop in loops)
