"""Seeded dataflow miscompiles: the analysis cross-checks must reject them.

Companion to ``test_mutation_suite.py`` for the dataflow layer: each test
injects one deliberately-broken pass into a real dblab-5 compilation and
asserts the verifier rejects it with the *right* check name
(``parallel-safety`` / ``interval`` / ``nullability`` / ``dataflow``) and
the offending phase.  These are the seeded violations proving the
loop-dependence race detector and the interval/nullability audits detect
miscompiles rather than merely blessing healthy programs.
"""
import pytest

from repro.analysis import VerificationError
from repro.analysis.dataflow import classify_loops
from repro.analysis.dataflow.dependence import SAFETY_ATTR
from repro.analysis.dataflow.framework import use_def
from repro.analysis.dataflow.lattices import Nullability
from repro.analysis.dataflow.values import value_facts
from repro.codegen.compiler import QueryCompiler
from repro.ir import make_program
from repro.ir.nodes import Block, Const, Expr, Stmt, Sym
from repro.ir.traversal import iter_program_stmts
from repro.stack.configs import build_config
from repro.stack.language import language_by_name
from repro.stack.pipeline import DslStack
from repro.stack.transformation import FunctionOptimization

CONFIG = "dblab-5"
LEVEL = "ScaLite"


def _rebuild(program, body=None, hoisted=None):
    return make_program(body if body is not None else program.body,
                        program.params, program.language,
                        hoisted if hoisted is not None else program.hoisted)


def compile_mutated(catalog, mutation, name, query):
    config = build_config(CONFIG)
    broken = FunctionOptimization(language_by_name(LEVEL), name, mutation)
    stack = DslStack(config.stack.name + "+mutation",
                     config.stack.languages, config.stack.lowerings,
                     list(config.stack.optimizations) + [broken])
    compiler = QueryCompiler(stack, config.flags, verify=True)
    compiler.compile(build_query_cached(query), catalog, query_name=query)


def build_query_cached(name):
    from repro.tpch.queries import build_query
    return build_query(name)


class TestDataflowMutations:
    def test_parallelizable_stamp_on_loop_carried_write_rejected(self, tpch_catalog):
        """A loop the dependence analysis proves sequential (order-dependent
        array_set into a shared slots array) stamped ``parallelizable``."""

        def stamp(program, context):
            for verdict in classify_loops(program):
                if verdict.parallelizable:
                    continue
                for stmt, _ in iter_program_stmts(program):
                    if stmt.sym.id == verdict.sym_id:
                        stmt.expr.attrs[SAFETY_ATTR] = "parallelizable"
                        return _rebuild(program)
            return program

        with pytest.raises(VerificationError) as exc:
            compile_mutated(tpch_catalog, stamp, "broken-annotator", "Q16")
        assert exc.value.check == "parallel-safety"
        assert exc.value.phase == f"broken-annotator[{LEVEL}]"
        assert "sequential" in str(exc.value)

    def test_interval_widening_rejected(self, tpch_catalog):
        """Folding variant that rewrites a constant operand so the binding's
        inferred interval grows — the transition audit forbids widening."""

        def widen(program, context):
            facts = value_facts(program, context.catalog)

            def rewrite(block):
                for i, stmt in enumerate(block.stmts):
                    expr = stmt.expr
                    if expr.op in ("add", "sub", "mul") and not expr.blocks \
                            and not facts.fact_of(stmt.sym.id).interval.is_top \
                            and any(isinstance(a, Const)
                                    and isinstance(a.value, (int, float))
                                    and not isinstance(a.value, bool)
                                    for a in expr.args):
                        args = tuple(
                            Const(10 ** 9) if isinstance(a, Const) else a
                            for a in expr.args)
                        stmts = list(block.stmts)
                        stmts[i] = Stmt(stmt.sym, Expr(
                            expr.op, args, dict(expr.attrs), (), expr.type))
                        return Block(stmts, block.result, block.params), True
                    for k, nested in enumerate(expr.blocks):
                        new_nested, done = rewrite(nested)
                        if done:
                            blocks = list(expr.blocks)
                            blocks[k] = new_nested
                            stmts = list(block.stmts)
                            stmts[i] = Stmt(stmt.sym, Expr(
                                expr.op, expr.args, dict(expr.attrs),
                                tuple(blocks), expr.type))
                            return Block(stmts, block.result,
                                         block.params), True
                return block, False

            body, done = rewrite(program.body)
            return _rebuild(program, body=body) if done else program

        with pytest.raises(VerificationError) as exc:
            compile_mutated(tpch_catalog, widen, "broken-folding", "Q1")
        assert exc.value.check == "interval"
        assert exc.value.phase == f"broken-folding[{LEVEL}]"
        assert "widened" in str(exc.value)

    def test_nullability_stamp_rejected(self, tpch_catalog):
        """A binding the analysis cannot prove non-null stamped ``non_null``."""

        def stamp(program, context):
            facts = value_facts(program, context.catalog)
            for stmt, _ in iter_program_stmts(program):
                if stmt.expr.blocks:
                    continue
                fact = facts.fact_of(stmt.sym.id)
                if fact.nullability is not Nullability.NON_NULL:
                    stmt.expr.attrs["non_null"] = True
                    return _rebuild(program)
            return program

        with pytest.raises(VerificationError) as exc:
            compile_mutated(tpch_catalog, stamp, "broken-nullability", "Q1")
        assert exc.value.check == "nullability"
        assert exc.value.phase == f"broken-nullability[{LEVEL}]"

    def test_sequential_to_parallel_flip_rejected(self, tpch_catalog):
        """Retargeting a loop-carried write to a fresh loop-local array flips
        the classification to parallelizable without removing anything — the
        loop no longer builds the shared structure it was meant to build."""

        def flip(program, context):
            sequential = {
                v.sym_id for v in classify_loops(program)
                if not v.parallelizable and "order-dependent" in v.reason}

            def rewrite(block, inside_target):
                for i, stmt in enumerate(block.stmts):
                    expr = stmt.expr
                    if inside_target and expr.op == "array_set":
                        target = expr.args[0]
                        if isinstance(target, Sym):
                            local = Sym("mutlocal")
                            alloc = Stmt(local, Expr("array_new",
                                                     (Const(1),), {}, (), None))
                            retargeted = Stmt(stmt.sym, Expr(
                                expr.op, (local,) + tuple(expr.args[1:]),
                                dict(expr.attrs), (), expr.type))
                            stmts = list(block.stmts)
                            stmts[i:i + 1] = [alloc, retargeted]
                            return Block(stmts, block.result,
                                         block.params), True
                    for k, nested in enumerate(expr.blocks):
                        new_nested, done = rewrite(
                            nested, inside_target or stmt.sym.id in sequential)
                        if done:
                            blocks = list(expr.blocks)
                            blocks[k] = new_nested
                            stmts = list(block.stmts)
                            stmts[i] = Stmt(stmt.sym, Expr(
                                expr.op, expr.args, dict(expr.attrs),
                                tuple(blocks), expr.type))
                            return Block(stmts, block.result,
                                         block.params), True
                return block, False

            body, done = rewrite(program.body, False)
            if done:
                return _rebuild(program, body=body)
            hoisted, done = rewrite(program.hoisted, False)
            return _rebuild(program, hoisted=hoisted) if done else program

        with pytest.raises(VerificationError) as exc:
            compile_mutated(tpch_catalog, flip, "broken-retarget", "Q16")
        assert exc.value.check == "parallel-safety"
        assert exc.value.phase == f"broken-retarget[{LEVEL}]"
        assert "flipped" in str(exc.value)

    def test_narrow_range_stamp_rejected(self, tpch_catalog):
        """A range stamp the interval analysis does not contain."""
        from repro.analysis.dataflow.lattices import Interval

        def stamp(program, context):
            facts = value_facts(program, context.catalog)
            claimed = Interval(0, 0)
            for stmt, _ in iter_program_stmts(program):
                if stmt.expr.blocks:
                    continue
                if not facts.fact_of(stmt.sym.id).interval.leq(claimed):
                    stmt.expr.attrs["range"] = (0, 0)
                    return _rebuild(program)
            return program

        with pytest.raises(VerificationError) as exc:
            compile_mutated(tpch_catalog, stamp, "broken-range", "Q1")
        assert exc.value.check == "interval"
        assert exc.value.phase == f"broken-range[{LEVEL}]"
        assert "does not contain" in str(exc.value)

    def test_unjustified_branch_unwrap_rejected(self, tpch_catalog):
        """Splicing an if_ arm into the parent without recording the
        justification the audit re-verifies."""

        def unwrap(program, context):
            uses = use_def(program).uses

            def rewrite(block):
                for i, stmt in enumerate(block.stmts):
                    expr = stmt.expr
                    if expr.op == "if_" and len(expr.blocks) == 2 \
                            and expr.blocks[0].stmts \
                            and not expr.blocks[1].stmts \
                            and uses.get(stmt.sym.id, 0) == 0:
                        stmts = list(block.stmts[:i]) \
                            + list(expr.blocks[0].stmts) \
                            + list(block.stmts[i + 1:])
                        return Block(stmts, block.result, block.params), True
                    for k, nested in enumerate(expr.blocks):
                        new_nested, done = rewrite(nested)
                        if done:
                            blocks = list(expr.blocks)
                            blocks[k] = new_nested
                            stmts = list(block.stmts)
                            stmts[i] = Stmt(stmt.sym, Expr(
                                expr.op, expr.args, dict(expr.attrs),
                                tuple(blocks), expr.type))
                            return Block(stmts, block.result,
                                         block.params), True
                return block, False

            body, done = rewrite(program.body)
            return _rebuild(program, body=body) if done else program

        with pytest.raises(VerificationError) as exc:
            # Q6 (not Q1): Q1's only if_ is legitimately folded away by the
            # dataflow-folding pass before the mutation can target it.
            compile_mutated(tpch_catalog, unwrap, "broken-unwrap", "Q6")
        assert exc.value.check == "dataflow"
        assert exc.value.phase == f"broken-unwrap[{LEVEL}]"
        assert "justification" in str(exc.value)
