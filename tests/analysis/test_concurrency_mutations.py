"""Seeded discipline breaks the concurrency analyzer must catch.

Each test takes the real runtime source, applies one surgical mutation —
the kinds of regressions a refactor actually introduces (a dedented
``with``, a blocking call moved under a lock, a dropped governor install, a
deleted confinement directive) — and re-analyzes the tree via the
``overrides`` hook, asserting the analyzer reports the *expected* rule.
The working copy is never touched.  Together with the clean-tree test this
proves the analyzer detects breaks rather than merely blessing healthy
code.
"""
from repro.analysis.concurrency import analyze_tree, load_sources

INCIDENTS = "src/repro/robustness/incidents.py"
ACCESS = "src/repro/storage/access.py"
FAULTS = "src/repro/robustness/faults.py"
FALLBACK = "src/repro/robustness/fallback.py"
SERVER = "src/repro/server/server.py"
ADMISSION = "src/repro/server/admission.py"
COMPILER = "src/repro/codegen/compiler.py"


def mutate(path, old, new):
    """Re-analyze the tree with ``old`` replaced by ``new`` in ``path``."""
    sources = load_sources()
    assert old in sources[path], f"mutation anchor missing from {path}"
    mutated = sources[path].replace(old, new)
    assert mutated != sources[path]
    return analyze_tree(overrides={path: mutated})


def matching(report, rule, fragment=""):
    return [v for v in report.violations
            if v.rule == rule and fragment in (v.where + v.message)]


class TestSeededMutations:
    def test_clean_baseline(self):
        assert analyze_tree().ok

    def test_removed_with_guard_in_incident_log(self):
        """Dedenting IncidentLog.report's lock block → unguarded-access."""
        report = mutate(
            INCIDENTS,
            """        with self._lock:
            self._records.append(incident)
            self._counters[category] = self._counters.get(category, 0) + 1
            self._total += 1
""",
            """        self._records.append(incident)
        self._counters[category] = self._counters.get(category, 0) + 1
        self._total += 1
""")
        assert matching(report, "unguarded-access", "IncidentLog.report")

    def test_reordered_acquisition_creates_a_cycle(self):
        """Touching the compiler cache inside ``_CREATE_LOCK`` reverses the
        one legitimate acquired-before edge → lock-order-cycle."""
        report = mutate(
            ACCESS,
            """            with cls._CREATE_LOCK:
                layer = getattr(catalog, "_access_layer", None)""",
            """            with cls._CREATE_LOCK:
                from ..codegen.compiler import QueryCompiler
                QueryCompiler.cache_len()
                layer = getattr(catalog, "_access_layer", None)""")
        assert matching(report, "lock-order-cycle")

    def test_blocking_fault_action_moved_under_the_plan_lock(self):
        """FaultPlan.hit firing inside ``with self._lock`` →
        blocking-under-lock (chaos actions park threads by design)."""
        report = mutate(
            FAULTS,
            """                firing.append(spec)
        for spec in firing:
            if spec.action is not None:
                spec.action(context)
            if spec.error is not None:
                raise spec.error()""",
            """                firing.append(spec)
            for spec in firing:
                if spec.action is not None:
                    spec.action(context)
                if spec.error is not None:
                    raise spec.error()""")
        assert matching(report, "blocking-under-lock", "FaultPlan.hit")

    def test_dropped_governor_install(self):
        """Removing ``governed(budget)`` from the ladder attempt leaves
        worker threads unbudgeted → governor-install."""
        report = mutate(
            FALLBACK,
            "scope = governed(budget) if budget is not None else nullcontext()",
            "scope = nullcontext()")
        assert matching(report, "governor-install", "HardenedExecutor")

    def test_sync_sleep_in_the_dispatch_loop(self):
        """``await asyncio.sleep`` downgraded to ``time.sleep`` inside the
        dispatcher coroutine → async-blocking."""
        report = mutate(
            SERVER,
            "await asyncio.sleep(stall)",
            "time.sleep(stall)")
        assert matching(report, "async-blocking", "QueryServer._dispatch_loop")

    def test_deleted_confinement_directive(self):
        """Stripping the ``confined(event-loop)`` declaration from
        ``_in_flight`` reverts it to the inferred lock guard, which no
        counter update holds → unguarded-access."""
        report = mutate(
            SERVER,
            """        # concurrency: confined(event-loop): counters touched only by loop tasks
        self._in_flight = 0
""",
            """        self._in_flight = 0
""")
        assert matching(report, "unguarded-access", "_in_flight")

    def test_executor_work_run_inline_on_the_loop(self):
        """Calling ``self._execute`` directly from the coroutine instead of
        through the thread pool → async-blocking (transitive: the ladder
        bottoms out in retry backoff sleeps)."""
        report = mutate(
            SERVER,
            """            response = await loop.run_in_executor(
                pool, self._execute, request, queue_seconds)""",
            """            response = self._execute(request, queue_seconds)""")
        assert matching(report, "async-blocking", "QueryServer._run_request")

    def test_limiter_counter_moved_outside_the_lock(self):
        """``successes`` bumped before acquiring the limiter lock →
        unguarded-access."""
        report = mutate(
            ADMISSION,
            """        with self._lock:
            self.successes += 1
            self._limit = min(""",
            """        self.successes += 1
        with self._lock:
            self._limit = min(""")
        assert matching(report, "unguarded-access", "successes")

    def test_stripped_guarded_by_decorator_on_cache_pruning(self):
        """Deleting ``@guarded_by("_cache_lock")`` from ``_prune_cache``
        analyzes its cache sweeps without the lock → unguarded-access."""
        report = mutate(
            COMPILER,
            """    @classmethod
    @guarded_by("_cache_lock")
    def _prune_cache(cls) -> None:""",
            """    @classmethod
    def _prune_cache(cls) -> None:""")
        assert matching(report, "unguarded-access", "QueryCompiler._prune_cache")
