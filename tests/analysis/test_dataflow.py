"""Unit tests for the dataflow analysis framework and its lattices."""
from repro.analysis.dataflow.framework import use_def, walk_backward, walk_forward
from repro.analysis.dataflow.lattices import Interval, Nullability, ValueFact
from repro.analysis.dataflow.liveness import liveness
from repro.analysis.dataflow.purity import purity
from repro.analysis.dataflow.values import value_facts
from repro.ir import IRBuilder, make_program
from repro.ir.nodes import Sym
from repro.storage.catalog import Catalog
from repro.storage.layouts import ColumnarTable
from repro.storage.schema import TableSchema, int_column, string_column


class TestIntervalLattice:
    def test_join_is_hull(self):
        assert Interval(1, 3).join(Interval(5, 9)) == Interval(1, 9)
        assert Interval(None, 3).join(Interval(5, 9)) == Interval(None, 9)

    def test_leq_is_containment(self):
        assert Interval(2, 3).leq(Interval(1, 9))
        assert not Interval(0, 3).leq(Interval(1, 9))
        assert Interval(1, 2).leq(Interval.top())

    def test_widen_drops_moving_bounds(self):
        widened = Interval(1, 5).widen(Interval(1, 9))
        assert widened == Interval(1, None)
        assert Interval(1, 5).widen(Interval(1, 5)) == Interval(1, 5)

    def test_arithmetic(self):
        assert Interval(1, 3).add(Interval(10, 20)) == Interval(11, 23)
        assert Interval(1, 3).sub(Interval(1, 2)) == Interval(-1, 2)
        assert Interval(-2, 3).mul(Interval(4, 5)) == Interval(-10, 15)
        assert Interval(1, 3).neg() == Interval(-3, -1)

    def test_compare_verdicts(self):
        assert Interval(1, 3).compare(Interval(5, 9), "lt").known_true
        assert Interval(5, 9).compare(Interval(1, 3), "lt").known_false
        assert Interval(1, 9).compare(Interval(5, 6), "lt") == Interval.boolean()
        assert Interval(2, 2).compare(Interval(2, 2), "eq").known_true
        assert Interval(1, 3).compare(Interval(5, 9), "ne").known_true

    def test_one_sided_bounds_still_compare(self):
        assert Interval(None, 3).compare(Interval(5, None), "lt").known_true


class TestNullability:
    def test_join(self):
        assert Nullability.NON_NULL.join(Nullability.NON_NULL) is Nullability.NON_NULL
        assert Nullability.NON_NULL.join(Nullability.NULL) is Nullability.MAYBE_NULL
        assert Nullability.NULL.join(Nullability.NULL) is Nullability.NULL

    def test_of_const(self):
        assert ValueFact.of_const(None).nullability is Nullability.NULL
        assert ValueFact.of_const(7).interval == Interval(7, 7)
        assert ValueFact.of_const(True).interval == Interval(1, 1)


class TestFrameworkWalkersAndUseDef:
    def test_forward_and_backward_visit_all_stmts(self):
        b = IRBuilder()
        x = b.emit("add", [1, 2])
        b.for_range(0, 10, lambda i: b.emit("mul", [i, x]))
        program = make_program(b.finish(x), [], "ScaLite")
        forward = [stmt.expr.op for stmt, _, _ in walk_forward(program)]
        backward = [stmt.expr.op for stmt, _, _ in walk_backward(program)]
        assert sorted(forward) == sorted(backward)
        assert "mul" in forward and "for_range" in forward

    def test_loop_bodies_count_depth(self):
        b = IRBuilder()
        b.for_range(0, 10, lambda i: b.emit("mul", [i, 2]))
        program = make_program(b.finish(None), [], "ScaLite")
        depths = {stmt.expr.op: depth for stmt, _, depth in walk_forward(program)}
        assert depths["for_range"] == 0
        assert depths["mul"] == 1

    def test_use_def_is_memoized_per_program_object(self):
        b = IRBuilder()
        x = b.emit("add", [1, 2])
        program = make_program(b.finish(x), [], "ScaLite")
        assert use_def(program) is use_def(program)
        rebuilt = make_program(program.body, program.params, program.language,
                               program.hoisted)
        assert use_def(rebuilt) is not use_def(program)

    def test_use_counts_include_block_results(self):
        b = IRBuilder()
        x = b.emit("add", [1, 2])
        program = make_program(b.finish(x), [], "ScaLite")
        assert use_def(program).uses[x.id] == 1


class TestLiveness:
    def test_dead_chain_is_dead_in_one_pass(self):
        b = IRBuilder()
        keep = b.emit("add", [1, 2])
        mid = b.emit("mul", [keep, 3], hint="mid")
        top = b.emit("add", [mid, 4], hint="top")
        program = make_program(b.finish(keep), [], "ScaLite")
        live = liveness(program)
        assert keep.id in live.live
        assert mid.id not in live.live
        assert top.id not in live.live

    def test_effectful_statement_roots_its_args(self):
        b = IRBuilder()
        x = b.emit("add", [1, 2])
        b.emit("print_", [x])
        program = make_program(b.finish(None), [], "ScaLite")
        assert x.id in liveness(program).live


class TestPurity:
    def test_write_only_allocation_is_removable(self):
        b = IRBuilder()
        lst = b.emit("list_new", [])
        append = b.emit("list_append", [lst, 1])
        program = make_program(b.finish(None), [], "ScaLite")
        facts = purity(program)
        assert lst.id in facts.removable_objects
        assert append.id in facts.dead_writes

    def test_escaping_allocation_is_kept(self):
        b = IRBuilder()
        lst = b.emit("list_new", [])
        b.emit("list_append", [lst, 1])
        program = make_program(b.finish(lst), [], "ScaLite")
        facts = purity(program)
        assert lst.id in facts.escaping
        assert lst.id not in facts.removable_objects

    def test_read_use_makes_object_escape(self):
        b = IRBuilder()
        lst = b.emit("list_new", [])
        b.emit("list_append", [lst, 1])
        n = b.emit("list_len", [lst])
        program = make_program(b.finish(n), [], "ScaLite")
        assert lst.id in purity(program).escaping


def _stats_catalog():
    catalog = Catalog()
    schema = TableSchema("T", [int_column("t_id"), int_column("t_nullable"),
                               string_column("t_name")], primary_key=("t_id",))
    catalog.register(ColumnarTable(schema, {
        "t_id": [100, 101, 102, 103],
        "t_nullable": [1, None, 3, 4],
        "t_name": ["a", "b", "a", "c"],
    }))
    return catalog


class TestValueFacts:
    def test_column_reads_seed_from_statistics(self):
        catalog = _stats_catalog()
        b = IRBuilder()
        db = Sym("db")
        column = b.emit("table_column", [db], {"table": "T", "column": "t_id"})
        n = b.emit("table_size", [db], {"table": "T"})

        got = {}

        def body(i):
            got["value"] = b.emit("array_get", [column, i])
            got["cmp"] = b.emit("lt", [got["value"], 1000])

        b.for_range(0, n, body)
        program = make_program(b.finish(None), [db], "ScaLite")
        facts = value_facts(program, catalog)
        value = facts.fact_of(got["value"].id)
        assert value.interval == Interval(100, 103)
        assert value.nullability is Nullability.NON_NULL
        assert facts.fact_of(got["cmp"].id).interval.known_true

    def test_nullable_column_stays_maybe_null(self):
        catalog = _stats_catalog()
        b = IRBuilder()
        db = Sym("db")
        column = b.emit("table_column", [db],
                        {"table": "T", "column": "t_nullable"})
        got = {}
        b.for_range(0, 4, lambda i: got.setdefault(
            "value", b.emit("array_get", [column, i])))
        program = make_program(b.finish(None), [db], "ScaLite")
        facts = value_facts(program, catalog)
        assert facts.fact_of(got["value"].id).nullability is Nullability.MAYBE_NULL

    def test_loop_index_bounded_by_range(self):
        b = IRBuilder()
        got = {}
        b.for_range(2, 10, lambda i: got.setdefault(
            "shifted", b.emit("add", [i, 5])))
        program = make_program(b.finish(None), [], "ScaLite")
        facts = value_facts(program, None)
        assert facts.fact_of(got["shifted"].id).interval == Interval(7, 14)

    def test_null_literal_comparison_folds(self):
        b = IRBuilder()
        x = b.emit("add", [1, 2])
        is_null = b.emit("eq", [x, None])
        not_null = b.emit("ne", [x, None])
        program = make_program(b.finish(None), [], "ScaLite")
        facts = value_facts(program, None)
        assert facts.fact_of(is_null.id).interval.known_false
        assert facts.fact_of(not_null.id).interval.known_true

    def test_branch_results_join(self):
        b = IRBuilder()
        cond = b.emit("lt", [1, 2])
        result = b.if_(cond, lambda: b.const(5), lambda: b.const(9))
        program = make_program(b.finish(result), [], "ScaLite")
        facts = value_facts(program, None)
        assert facts.fact_of(result.id).interval == Interval(5, 9)

    def test_facts_are_memoized_per_catalog(self):
        catalog = _stats_catalog()
        b = IRBuilder()
        x = b.emit("add", [1, 2])
        program = make_program(b.finish(x), [], "ScaLite")
        assert value_facts(program, catalog) is value_facts(program, catalog)
        assert value_facts(program, None) is not value_facts(program, catalog)
