"""Unit and clean-tree tests for the concurrency analyzer.

Unit tests feed synthetic modules straight into ``collect``/``run_checks``
and assert each rule family fires (or stays quiet) on minimal programs; the
clean-tree tests prove the real runtime source carries zero unannotated
violations and that the lock-order relation contains exactly the known
acquired-before edge.  The seeded discipline breaks live in
``test_concurrency_mutations.py``.
"""
import json

from repro.analysis.concurrency import (DEFAULT_TARGETS, analyze_tree,
                                        load_sources)
from repro.analysis.concurrency.annotations import parse_directives
from repro.analysis.concurrency.checks import run_checks
from repro.analysis.concurrency.collect import collect


def analyze_source(source, path="synthetic.py"):
    program = collect({path: source})
    order = run_checks(program)
    return program, order


def rules(program):
    return sorted(violation.rule for violation in program.violations)


def violations_of(program, rule):
    return [v for v in program.violations if v.rule == rule]


class TestDirectiveParsing:
    def test_inline_directive_parses(self):
        found = []
        directives = parse_directives(
            "x = 1  # concurrency: init-only\n", "t.py", found)
        assert not found
        assert len(directives) == 1
        assert directives[0].verb == "init-only"
        assert directives[0].inline

    def test_guarded_by_carries_its_argument(self):
        found = []
        directives = parse_directives(
            "# concurrency: guarded-by(_lock)\n", "t.py", found)
        assert not found
        assert directives[0].verb == "guarded-by"
        assert directives[0].arg == "_lock"
        assert not directives[0].inline

    def test_unknown_verb_is_a_violation(self):
        found = []
        parse_directives("# concurrency: frobnicate(_x)\n", "t.py", found)
        assert [v.rule for v in found] == ["bad-annotation"]

    def test_confined_requires_a_reason(self):
        found = []
        parse_directives("# concurrency: confined(event-loop)\n", "t.py",
                         found)
        assert [v.rule for v in found] == ["bad-annotation"]

    def test_confined_with_reason_parses(self):
        found = []
        directives = parse_directives(
            "# concurrency: confined(event-loop): loop-only counters\n",
            "t.py", found)
        assert not found
        assert directives[0].arg == "event-loop"
        assert directives[0].reason == "loop-only counters"


class TestGuardChecking:
    SOURCE = '''
import threading

class Box:
    def __init__(self):
        self._lock = threading.Lock()
        self.value = 0

    def good(self):
        with self._lock:
            self.value += 1

    def bad(self):
        self.value += 1
'''

    def test_guarded_write_is_clean_unguarded_is_flagged(self):
        program, _ = analyze_source(self.SOURCE)
        assert rules(program) == ["unguarded-access"]
        violation = program.violations[0]
        assert violation.where == "Box.bad"
        assert "_lock" in violation.message

    def test_lock_released_after_with_block(self):
        program, _ = analyze_source('''
import threading

class Box:
    def __init__(self):
        self._lock = threading.Lock()
        self.value = 0

    def partial(self):
        with self._lock:
            self.value = 1
        self.value = 2
''')
        flagged = violations_of(program, "unguarded-access")
        assert [v.line for v in flagged] == [12]

    def test_must_analysis_rejects_one_armed_branch(self):
        program, _ = analyze_source('''
import threading

class Box:
    def __init__(self):
        self._lock = threading.Lock()
        self.value = 0

    def branchy(self, flag):
        if flag:
            with self._lock:
                self.value = 1
        self.value = 2
''')
        flagged = violations_of(program, "unguarded-access")
        assert [v.line for v in flagged] == [13]

    def test_init_only_rewrite_is_flagged(self):
        program, _ = analyze_source('''
import threading

class Frozen:
    def __init__(self):
        self._lock = threading.Lock()
        self.limit = 1  # concurrency: init-only

    def poke(self):
        self.limit = 2
''')
        assert rules(program) == ["init-only-write"]

    def test_synchronized_allows_mutation_but_not_rebinding(self):
        program, _ = analyze_source('''
import threading

class Holder:
    def __init__(self):
        self._lock = threading.Lock()
        # concurrency: synchronized
        self.inner = []

    def fill(self):
        self.inner.append(1)

    def swap(self):
        self.inner = []
''')
        assert rules(program) == ["synchronized-rebind"]
        assert program.violations[0].where == "Holder.swap"

    def test_two_locks_without_declaration_is_ambiguous(self):
        program, _ = analyze_source('''
import threading

class Two:
    def __init__(self):
        self._a = threading.Lock()
        self._b = threading.Lock()
        self.n = 0

    def bump(self):
        with self._a:
            self.n += 1
''')
        assert rules(program) == ["ambiguous-guard"]

    def test_guarded_by_method_contract(self):
        program, _ = analyze_source('''
import threading

class G:
    def __init__(self):
        self._lock = threading.Lock()

    # concurrency: guarded-by(_lock)
    def _unsafe(self):
        pass

    def good(self):
        with self._lock:
            self._unsafe()

    def bad(self):
        self._unsafe()
''')
        assert rules(program) == ["guarded-call"]
        assert program.violations[0].where == "G.bad"


class TestBlockingAndOrdering:
    def test_blocking_call_under_lock(self):
        program, _ = analyze_source('''
import threading
import time

class Sleepy:
    def __init__(self):
        self._lock = threading.Lock()

    def nap(self):
        with self._lock:
            time.sleep(1)
''')
        assert rules(program) == ["blocking-under-lock"]

    def test_lock_order_cycle_detected(self):
        program, order = analyze_source('''
import threading

class A:
    _la = threading.Lock()

    def one(self):
        with A._la:
            with B._lb:
                pass

class B:
    _lb = threading.Lock()

    def two(self):
        with B._lb:
            with A._la:
                pass
''')
        assert rules(program) == ["lock-order-cycle"]
        assert (("A", "_la"), ("B", "_lb")) in order.edges
        assert (("B", "_lb"), ("A", "_la")) in order.edges
        assert order.cycles

    def test_non_reentrant_reacquire(self):
        program, _ = analyze_source('''
import threading

class R:
    def __init__(self):
        self._lock = threading.Lock()

    def again(self):
        with self._lock:
            with self._lock:
                pass
''')
        assert rules(program) == ["non-reentrant-reacquire"]

    def test_reentrant_reacquire_is_allowed(self):
        program, _ = analyze_source('''
import threading

class R:
    def __init__(self):
        self._lock = threading.RLock()

    def again(self):
        with self._lock:
            with self._lock:
                pass
''')
        assert rules(program) == []


class TestAffinity:
    def test_async_blocking_and_async_lock(self):
        program, _ = analyze_source('''
import asyncio
import threading
import time

class S:
    def __init__(self):
        self._lock = threading.Lock()

    async def naps(self):
        time.sleep(1)

    async def grabs(self):
        with self._lock:
            pass

    async def fine(self):
        await asyncio.sleep(1)
''')
        assert rules(program) == ["async-blocking", "async-lock"]

    def test_runs_on_callee_needs_matching_context(self):
        program, _ = analyze_source('''
import threading

class S:
    def __init__(self):
        self._lock = threading.Lock()

    # concurrency: runs-on(event-loop)
    def _resolve(self):
        pass

    async def ok(self):
        self._resolve()

    def wrong(self):
        self._resolve()
''')
        assert rules(program) == ["affinity-call"]
        assert program.violations[0].where == "S.wrong"


class TestCleanTree:
    def test_runtime_source_has_zero_violations(self):
        report = analyze_tree()
        assert report.ok, "\n".join(v.render() for v in report.violations)

    def test_inventory_covers_the_locked_runtime_classes(self):
        report = analyze_tree()
        owning = {name for name, cls in report.program.classes.items()
                  if cls.owns_lock}
        assert {"QueryServer", "HardenedExecutor", "QueryCompiler",
                "AccessLayer", "FaultPlan", "AdmissionController",
                "AdaptiveLimiter", "CircuitBreaker",
                "IncidentLog"} <= owning

    def test_known_acquired_before_edge(self):
        report = analyze_tree()
        edge = (("QueryCompiler", "_cache_lock"),
                ("AccessLayer", "_CREATE_LOCK"))
        assert edge in report.lock_order.edges
        assert edge[::-1] not in report.lock_order.edges
        assert report.lock_order.cycles == []

    def test_json_report_shape(self):
        report = analyze_tree()
        payload = json.loads(report.to_json())
        assert payload["tool"] == "repro.analysis.concurrency"
        assert payload["targets"] == list(DEFAULT_TARGETS)
        summary = payload["summary"]
        assert summary["violations"] == 0
        assert summary["lock_order_cycles"] == 0
        assert summary["lock_owning_classes"] >= 9
        assert {"edges", "cycles"} <= set(payload["lock_order"])
        for entry in payload["lock_order"]["edges"]:
            assert {"acquired", "then", "sites"} <= set(entry)

    def test_load_sources_rejects_unknown_override(self):
        try:
            load_sources(overrides={"src/repro/nope.py": ""})
        except KeyError:
            pass
        else:
            raise AssertionError("expected KeyError for unknown override")


class TestCommandLine:
    def test_concurrency_cli_exits_clean(self, capsys):
        from repro.analysis.concurrency.__main__ import main
        assert main([]) == 0
        out = capsys.readouterr().out
        assert "0 violations" in out

    def test_umbrella_dispatches_and_rejects_unknown_tools(self, capsys):
        from repro.analysis.__main__ import main
        assert main(["concurrency"]) == 0
        assert main(["--help"]) == 0
        assert main([]) == 2
        assert main(["no-such-tool"]) == 2
        err = capsys.readouterr().err
        assert "unknown analysis tool" in err

    def test_cli_writes_the_json_artifact(self, tmp_path, capsys):
        from repro.analysis.concurrency.__main__ import main
        out_file = tmp_path / "report.json"
        assert main(["--out", str(out_file)]) == 0
        capsys.readouterr()
        payload = json.loads(out_file.read_text())
        assert payload["summary"]["violations"] == 0
