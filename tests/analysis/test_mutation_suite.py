"""Mutation suite: deliberately broken transformations must be rejected.

Each test injects one seeded miscompile into a real compilation pipeline —
a broken optimization variant into the dblab-5 stack, a broken rewrite rule
into the planner, a tampering unparser — and asserts the verifier rejects it
with a :class:`VerificationError` attributed to the offending phase.  This
is the evidence that the static-analysis layer detects miscompiles instead
of merely blessing healthy programs.
"""
import pytest

from repro.analysis import VerificationError
from repro.analysis.effects_audit import effective_effect
from repro.codegen.compiler import QueryCompiler
from repro.codegen.unparser import PythonUnparser
from repro.ir import make_program
from repro.ir.nodes import Block, Const, Expr, Stmt, Sym
from repro.ir.traversal import used_syms
from repro.stack.configs import build_config
from repro.stack.language import language_by_name
from repro.stack.pipeline import DslStack
from repro.stack.transformation import FunctionOptimization
from repro.tpch.queries import build_query

QUERY = "Q1"
CONFIG = "dblab-5"
LEVEL = "ScaLite"


def _rebuild(program, body):
    return make_program(body, program.params, program.language,
                        program.hoisted)


def compile_mutated(catalog, mutation, name, level=LEVEL, query=QUERY):
    """Compile ``query`` with ``mutation`` injected as an optimization."""
    config = build_config(CONFIG)
    broken = FunctionOptimization(language_by_name(level), name, mutation)
    stack = DslStack(config.stack.name + "+mutation",
                     config.stack.languages, config.stack.lowerings,
                     list(config.stack.optimizations) + [broken])
    compiler = QueryCompiler(stack, config.flags, verify=True)
    compiler.compile(build_query(query), catalog, query_name=query)


class TestMutationSuite:
    def test_dropped_live_binding_rejected(self, tpch_catalog):
        """DCE variant that drops a binding whose symbol is still used."""

        def drop_live(program, context):
            body = program.body
            used = {s.id for s in used_syms(body)}
            for i, stmt in enumerate(body.stmts):
                if stmt.sym.id in used and not stmt.expr.blocks:
                    stmts = list(body.stmts[:i]) + list(body.stmts[i + 1:])
                    return _rebuild(program, Block(stmts, body.result,
                                                   body.params))
            return program

        with pytest.raises(VerificationError) as exc:
            compile_mutated(tpch_catalog, drop_live, "broken-dce")
        assert exc.value.check == "scope"
        assert exc.value.phase == f"broken-dce[{LEVEL}]"

    def test_duplicate_binding_rejected(self, tpch_catalog):
        """CSE variant that binds the same symbol twice."""

        def duplicate(program, context):
            body = program.body
            for stmt in body.stmts:
                if not stmt.expr.blocks:
                    stmts = list(body.stmts) + [stmt]
                    return _rebuild(program, Block(stmts, body.result,
                                                   body.params))
            return program

        with pytest.raises(VerificationError) as exc:
            compile_mutated(tpch_catalog, duplicate, "broken-cse")
        assert exc.value.check == "scope"
        assert "single-assignment" in str(exc.value)

    def test_effectful_dce_rejected(self, tpch_catalog):
        """DCE variant that removes a *writing* statement (output/agg update).

        The dangling-use checks cannot see this — a write's result is
        usually unused — so only the effect-legality audit catches it.
        """

        def drop_write(block):
            for i, stmt in enumerate(block.stmts):
                if stmt.expr.op in ("emit_row", "hashmap_agg_update",
                                    "dense_agg_update", "list_append"):
                    return Block(block.stmts[:i] + block.stmts[i + 1:],
                                 block.result, block.params), True
                for k, nested in enumerate(stmt.expr.blocks):
                    new_nested, done = drop_write(nested)
                    if done:
                        blocks = list(stmt.expr.blocks)
                        blocks[k] = new_nested
                        expr = Expr(stmt.expr.op, stmt.expr.args,
                                    dict(stmt.expr.attrs), tuple(blocks),
                                    stmt.expr.type)
                        stmts = list(block.stmts)
                        stmts[i] = Stmt(stmt.sym, expr)
                        return Block(stmts, block.result,
                                     block.params), True
            return block, False

        def mutate(program, context):
            body, done = drop_write(program.body)
            return _rebuild(program, body) if done else program

        with pytest.raises(VerificationError) as exc:
            compile_mutated(tpch_catalog, mutate, "effectful-dce")
        assert exc.value.check == "effects"
        assert "removable" in str(exc.value)
        assert exc.value.phase == f"effectful-dce[{LEVEL}]"

    def test_reordered_writes_rejected(self, tpch_catalog):
        """Hoisting variant that swaps two effect-pinned statements."""

        def swap_writes(block):
            pinned = [i for i, stmt in enumerate(block.stmts)
                      if not effective_effect(stmt.expr)
                      .can_reorder_with_reads]
            if len(pinned) >= 2:
                stmts = list(block.stmts)
                i, j = pinned[0], pinned[1]
                stmts[i], stmts[j] = stmts[j], stmts[i]
                return Block(stmts, block.result, block.params), True
            for i, stmt in enumerate(block.stmts):
                for k, nested in enumerate(stmt.expr.blocks):
                    new_nested, done = swap_writes(nested)
                    if done:
                        blocks = list(stmt.expr.blocks)
                        blocks[k] = new_nested
                        expr = Expr(stmt.expr.op, stmt.expr.args,
                                    dict(stmt.expr.attrs), tuple(blocks),
                                    stmt.expr.type)
                        stmts = list(block.stmts)
                        stmts[i] = Stmt(stmt.sym, expr)
                        return Block(stmts, block.result,
                                     block.params), True
            return block, False

        def mutate(program, context):
            body, done = swap_writes(program.body)
            return _rebuild(program, body) if done else program

        with pytest.raises(VerificationError) as exc:
            compile_mutated(tpch_catalog, mutate, "broken-hoisting")
        assert exc.value.check in ("effects", "scope")
        assert exc.value.phase == f"broken-hoisting[{LEVEL}]"

    def test_type_confusion_rejected(self, tpch_catalog):
        """Folding variant that rewrites an arithmetic operand to a string."""

        def confuse(block):
            for i, stmt in enumerate(block.stmts):
                if stmt.expr.op in ("add", "sub", "mul") \
                        and len(stmt.expr.args) == 2:
                    expr = Expr(stmt.expr.op,
                                (stmt.expr.args[0], Const("broken")),
                                dict(stmt.expr.attrs), (), stmt.expr.type)
                    stmts = list(block.stmts)
                    stmts[i] = Stmt(stmt.sym, expr)
                    return Block(stmts, block.result, block.params), True
                for k, nested in enumerate(stmt.expr.blocks):
                    new_nested, done = confuse(nested)
                    if done:
                        blocks = list(stmt.expr.blocks)
                        blocks[k] = new_nested
                        expr = Expr(stmt.expr.op, stmt.expr.args,
                                    dict(stmt.expr.attrs), tuple(blocks),
                                    stmt.expr.type)
                        stmts = list(block.stmts)
                        stmts[i] = Stmt(stmt.sym, expr)
                        return Block(stmts, block.result,
                                     block.params), True
            return block, False

        def mutate(program, context):
            body, done = confuse(program.body)
            return _rebuild(program, body) if done else program

        with pytest.raises(VerificationError) as exc:
            compile_mutated(tpch_catalog, mutate, "broken-folding")
        # The interval audit catches the widening (a string operand drives
        # the inferred interval to top) before the type checker runs; both
        # verdicts correctly reject the mutation at the faulty phase.
        assert exc.value.check in ("interval", "types")
        assert exc.value.phase == f"broken-folding[{LEVEL}]"

    def test_vocabulary_violation_rejected(self, tpch_catalog):
        """Lowering-ahead-of-time variant: C.Py memory ops at ScaLite."""

        def emit_malloc(program, context):
            body = program.body
            if any(stmt.expr.op == "malloc" for stmt in body.stmts):
                return program
            stmt = Stmt(Sym("chunk"), Expr("malloc", ()))
            return _rebuild(program, Block([stmt] + list(body.stmts),
                                           body.result, body.params))

        with pytest.raises(VerificationError) as exc:
            compile_mutated(tpch_catalog, emit_malloc, "eager-lowering")
        assert exc.value.check == "language"
        assert "malloc" in str(exc.value)
        assert exc.value.phase == f"eager-lowering[{LEVEL}]"

    def test_unparser_tampering_rejected(self, tpch_catalog, monkeypatch):
        """Generated-code lint: a module-level statement smuggled into the
        unparser output is rejected before ``exec`` ever sees it."""
        original = PythonUnparser.unparse

        def tampered(self, program):
            return original(self, program) + "\nleak = []\n"

        monkeypatch.setattr(PythonUnparser, "unparse", tampered)
        config = build_config(CONFIG)
        compiler = QueryCompiler(config.stack, config.flags, verify=True)
        with pytest.raises(VerificationError) as exc:
            compiler.compile(build_query(QUERY), tpch_catalog,
                             query_name=QUERY)
        assert exc.value.check == "codelint"
        assert exc.value.phase == f"unparse[{QUERY}]"

    def test_broken_plan_rule_rejected(self, tpch_catalog):
        """Planner rule producing an invalid plan is named the moment it
        fires (per-rule re-validation, ``validate_rewrites``)."""
        from repro.dsl import qplan as Q
        from repro.dsl.expr import Col
        from repro.planner.planner import PlannerOptions
        from repro.planner.rewrite import (PlannerContext, PlanRule,
                                           apply_rules_fixpoint)

        class GhostProjection(PlanRule):
            name = "ghost-projection"

            def apply(self, node, context):
                if isinstance(node, Q.Project):
                    return None
                return Q.Project(node, [("ghost", Col("no_such_column"))])

        plan = build_query(QUERY)
        context = PlannerContext(
            catalog=tpch_catalog,
            options=PlannerOptions(validate_rewrites=True))
        with pytest.raises(VerificationError) as exc:
            apply_rules_fixpoint(plan, [GhostProjection()], context)
        assert exc.value.check == "plan"
        assert exc.value.phase == "ghost-projection"
