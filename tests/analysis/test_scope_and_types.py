"""Unit tests for the scope checker and the type/signature checker."""
import pytest

from repro.analysis import VerificationError, verify_program
from repro.analysis.scope import check_scopes
from repro.analysis.signatures import signature_of, undeclared_ops
from repro.analysis.typecheck import check_types
from repro.ir import IRBuilder, make_program
from repro.ir.nodes import Block, Const, Expr, Stmt, Sym
from repro.ir.types import INT, STRING


def simple_program():
    b = IRBuilder()
    db = Sym("db")
    n = b.emit("table_size", [db], attrs={"table": "R"})
    total = b.emit("add", [n, 1])
    return make_program(b.finish(total), [db], "scalite"), db


class TestSignatureTable:
    def test_every_registered_op_has_a_signature(self):
        """Adding an op without declaring its shape is itself a failure."""
        assert undeclared_ops() == ()

    def test_signatures_record_unparser_requirements(self):
        assert signature_of("str_like").required_attrs == ("pattern",)
        assert signature_of("record_new").required_attrs == ("fields",)
        assert signature_of("for_range").block_params == (1,)
        assert signature_of("hashmap_agg_foreach").block_params == (2,)
        assert signature_of("var_write").mutated_arg == 0

    def test_unknown_op_raises(self):
        with pytest.raises(KeyError):
            signature_of("not_an_op")


class TestScopeChecker:
    def test_clean_program_passes(self):
        program, _ = simple_program()
        check_scopes(program)

    def test_use_before_definition_rejected(self):
        dangling = Sym("ghost", INT)
        db = Sym("db")
        use = Stmt(Sym("y", INT), Expr("add", (dangling, Const(1))))
        program = make_program(Block([use], use.sym), [db], "scalite")
        with pytest.raises(VerificationError) as exc:
            check_scopes(program)
        assert exc.value.check == "scope"
        assert "ghost" in str(exc.value)

    def test_double_binding_rejected(self):
        db = Sym("db")
        x = Sym("x", INT)
        stmts = [Stmt(x, Expr("add", (Const(1), Const(2)))),
                 Stmt(x, Expr("add", (Const(3), Const(4))))]
        program = make_program(Block(stmts, x), [db], "scalite")
        with pytest.raises(VerificationError, match="single-assignment"):
            check_scopes(program)

    def test_nested_binding_does_not_escape_its_block(self):
        """A symbol bound inside a loop body must not be used after it."""
        b = IRBuilder()
        db = Sym("db")
        n = b.emit("table_size", [db], attrs={"table": "R"})
        leaked = {}

        def body(i):
            leaked["sym"] = b.emit("add", [i, 1])

        b.for_range(0, n, body)
        escape = b.emit("add", [leaked["sym"], 1])
        program = make_program(b.finish(escape), [db], "scalite")
        with pytest.raises(VerificationError) as exc:
            check_scopes(program)
        assert exc.value.check == "scope"

    def test_hoisted_bindings_visible_to_body(self):
        db = Sym("db")
        col = Sym("col")
        hoisted = Block([Stmt(col, Expr("table_column", (db,),
                                        {"table": "R", "column": "r_id"}))])
        use = Stmt(Sym("v", INT), Expr("array_get", (col, Const(0))))
        program = make_program(Block([use], use.sym), [db], "scalite",
                               hoisted=hoisted)
        check_scopes(program)

    def test_phase_attribution_via_verify_program(self):
        dangling = Sym("ghost", INT)
        db = Sym("db")
        use = Stmt(Sym("y", INT), Expr("add", (dangling, Const(1))))
        program = make_program(Block([use], use.sym), [db], "scalite")
        with pytest.raises(VerificationError) as exc:
            verify_program(program, phase="dce[ScaLite]")
        assert exc.value.phase == "dce[ScaLite]"
        assert "after dce[ScaLite]" in str(exc.value)


def _one_stmt_program(expr, extra_stmts=()):
    db = Sym("db")
    sym = Sym("out")
    stmts = list(extra_stmts) + [Stmt(sym, expr)]
    return make_program(Block(stmts, sym), [db], "scalite")


class TestTypeChecker:
    def test_clean_program_passes(self):
        program, _ = simple_program()
        check_types(program)

    def test_wrong_arity_rejected(self):
        program = _one_stmt_program(Expr("add", (Const(1),)))
        with pytest.raises(VerificationError, match="2 argument"):
            check_types(program)

    def test_missing_required_attr_rejected(self):
        program = _one_stmt_program(Expr("str_like", (Const("abc"),)))
        with pytest.raises(VerificationError, match="pattern"):
            check_types(program)

    def test_string_in_arithmetic_rejected(self):
        program = _one_stmt_program(Expr("add", (Const("oops"), Const(1))))
        with pytest.raises(VerificationError, match="arithmetic"):
            check_types(program)

    def test_string_numeric_comparison_rejected(self):
        program = _one_stmt_program(Expr("lt", (Const("abc"), Const(3))))
        with pytest.raises(VerificationError, match="mixes a string"):
            check_types(program)

    def test_eq_against_none_allowed(self):
        """The unparser special-cases eq/ne against None (is None)."""
        program = _one_stmt_program(Expr("eq", (Const(1), Const(None))))
        check_types(program)

    def test_record_get_of_missing_field_rejected(self):
        rec = Sym("rec")
        build = Stmt(rec, Expr("record_new", (Const(1), Const(2)),
                               {"fields": ("a", "b")}))
        program = _one_stmt_program(
            Expr("record_get", (rec,), {"field": "c"}), [build])
        with pytest.raises(VerificationError, match="record_new only"):
            check_types(program)

    def test_record_new_field_count_mismatch_rejected(self):
        program = _one_stmt_program(
            Expr("record_new", (Const(1),), {"fields": ("a", "b")}))
        with pytest.raises(VerificationError, match="record_new declares"):
            check_types(program)

    def test_row_layout_record_get_checks_field_list(self):
        rec = Sym("rec")
        build = Stmt(rec, Expr("record_new", (Const(1), Const(2)),
                               {"fields": ("a", "b"), "layout": "row"}))
        program = _one_stmt_program(
            Expr("record_get", (rec,),
                 {"field": "z", "layout": "row", "fields": ("a", "b")}),
            [build])
        with pytest.raises(VerificationError, match="row-layout"):
            check_types(program)

    def test_tuple_get_out_of_range_rejected(self):
        tup = Sym("tup")
        build = Stmt(tup, Expr("tuple_new", (Const(1), Const(2))))
        program = _one_stmt_program(
            Expr("tuple_get", (tup,), {"index": 5}), [build])
        with pytest.raises(VerificationError, match="out of range"):
            check_types(program)

    def test_wrong_block_count_rejected(self):
        program = _one_stmt_program(Expr("if_", (Const(True),), blocks=()))
        with pytest.raises(VerificationError, match="nested block"):
            check_types(program)

    def test_block_param_count_rejected(self):
        body = Block([], Const(None), params=())  # for_range needs 1 param
        program = _one_stmt_program(
            Expr("for_range", (Const(0), Const(3)), blocks=(body,)))
        with pytest.raises(VerificationError, match="block\\[0\\]"):
            check_types(program)

    def test_schema_resolution_catches_unknown_column(self, tiny_catalog):
        program = _one_stmt_program(
            Expr("table_column", (Sym("db"),),
                 {"table": "R", "column": "nope"}))
        # without a catalog the reference is not resolvable -> accepted
        check_types(program)
        with pytest.raises(VerificationError, match="unknown column"):
            check_types(program, tiny_catalog)

    def test_schema_resolution_catches_unknown_table(self, tiny_catalog):
        program = _one_stmt_program(
            Expr("table_size", (Sym("db"),), {"table": "NOPE"}))
        with pytest.raises(VerificationError, match="unknown table"):
            check_types(program, tiny_catalog)

    def test_inference_ignores_stale_annotations(self):
        """Transforms may leave stale types; only *derived* types fire rules."""
        x = Sym("x", STRING)  # annotation says string...
        build = Stmt(x, Expr("to_int", (Const("7"),)))  # ...but it is an int
        program = _one_stmt_program(Expr("add", (x, Const(1))), [build])
        check_types(program)

    def test_non_atom_argument_rejected(self):
        program = _one_stmt_program(
            Expr("add", (Expr("add", (Const(1), Const(2))), Const(3))))
        with pytest.raises(VerificationError, match="non-atom"):
            check_types(program)
