"""Integration: the verifier is clean on the real pipeline, and verification
is strictly opt-in (the default path installs no hooks and pays nothing)."""
import pytest

import repro.analysis
from repro.analysis.verify import main as verify_main
from repro.codegen.compiler import QueryCompiler
from repro.stack.configs import build_config
from repro.tpch.queries import build_query

QUERIES = ("Q1", "Q3", "Q6", "Q10", "Q14", "Q19")


@pytest.fixture(autouse=True)
def _fresh_cache():
    QueryCompiler.clear_cache()
    yield
    QueryCompiler.clear_cache()


class TestVerifiedCompilation:
    @pytest.mark.parametrize("config_name", ["dblab-5", "tpch-compliant"])
    def test_queries_verify_clean_and_match_unverified(self, tpch_catalog,
                                                       config_name):
        config = build_config(config_name)
        plain = QueryCompiler(config.stack, config.flags)
        checked = QueryCompiler(config.stack, config.flags, verify=True)
        for query_name in QUERIES:
            expected = plain.compile(build_query(query_name), tpch_catalog,
                                     query_name=query_name).run(tpch_catalog)
            verified = checked.compile(build_query(query_name), tpch_catalog,
                                       query_name=query_name).run(tpch_catalog)
            assert verified == expected, query_name

    def test_verify_mode_bypasses_the_query_cache(self, tpch_catalog):
        config = build_config("dblab-5")
        plain = QueryCompiler(config.stack, config.flags)
        checked = QueryCompiler(config.stack, config.flags, verify=True)
        plan = build_query("Q6")
        plain.compile(plan, tpch_catalog, query_name="Q6")
        # a cached unverified compilation must not satisfy a verifying one
        assert not checked.compile(plan, tpch_catalog,
                                   query_name="Q6").cache_hit
        # and verified compilations are not inserted either
        before = QueryCompiler.cache_len()
        checked.compile(plan, tpch_catalog, query_name="Q6")
        assert QueryCompiler.cache_len() == before

    def test_default_path_installs_no_verification_hooks(self, tpch_catalog,
                                                         monkeypatch):
        """verify=False must never call into the analysis package."""

        def explode(*args, **kwargs):
            raise AssertionError("verifier invoked on the default path")

        monkeypatch.setattr(repro.analysis, "verify_program", explode)
        monkeypatch.setattr(repro.analysis, "audit_optimization", explode)
        monkeypatch.setattr(repro.analysis, "verify_source", explode)
        config = build_config("dblab-5")
        compiler = QueryCompiler(config.stack, config.flags)
        rows = compiler.compile(build_query("Q6"), tpch_catalog,
                                query_name="Q6").run(tpch_catalog)
        assert rows

    def test_verify_mode_does_use_the_hooks(self, tpch_catalog, monkeypatch):
        def explode(*args, **kwargs):
            raise AssertionError("hook ran")

        monkeypatch.setattr(repro.analysis, "audit_optimization", explode)
        config = build_config("dblab-5")
        compiler = QueryCompiler(config.stack, config.flags, verify=True)
        with pytest.raises(AssertionError, match="hook ran"):
            compiler.compile(build_query("Q6"), tpch_catalog,
                             query_name="Q6")


class TestVerifyDriver:
    def test_cli_driver_green_on_subset(self, capsys):
        exit_code = verify_main(["--queries", "Q1,Q6",
                                 "--configs", "dblab-5,tpch-compliant"])
        out = capsys.readouterr().out
        assert exit_code == 0
        assert "4/4 verified clean" in out

    def test_cli_driver_rejects_unknown_query(self):
        with pytest.raises(SystemExit):
            verify_main(["--queries", "Q99"])
