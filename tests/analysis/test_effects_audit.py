"""Unit tests for the effect auditor: declarations and pass legality."""
import pytest

from repro.analysis import VerificationError
from repro.analysis.effects_audit import (audit_effects, audit_transition,
                                          effective_effect)
from repro.ir import IRBuilder, make_program
from repro.ir.nodes import Block, Const, Expr, Stmt, Sym
from repro.ir.types import INT


def program_of(stmts, result, params=None):
    params = params if params is not None else [Sym("db")]
    return make_program(Block(list(stmts), result), params, "scalite")


def writer_program():
    """list_new; loop { list_append }; return the list."""
    b = IRBuilder()
    db = Sym("db")
    out = b.emit("list_new", [])
    n = b.emit("table_size", [db], attrs={"table": "R"})

    def body(i):
        b.emit("list_append", [out, i])

    b.for_range(0, n, body)
    return make_program(b.finish(out), [db], "scalite"), out


class TestEffectiveEffect:
    def test_plain_op_uses_registered_effect(self):
        assert effective_effect(Expr("add", (Const(1), Const(2)))).pure
        assert effective_effect(Expr("list_append", ())).writes

    def test_control_with_pure_arms_is_effectively_pure(self):
        then = Block([Stmt(Sym("a", INT), Expr("add", (Const(1), Const(2))))])
        other = Block([])
        expr = Expr("if_", (Const(True),), blocks=(then, other))
        assert effective_effect(expr).removable_if_unused

    def test_control_with_writing_arm_is_not_removable(self):
        lst = Sym("lst")
        then = Block([Stmt(Sym("a"), Expr("list_append", (lst, Const(1))))])
        expr = Expr("if_", (Const(True),), blocks=(then, Block([])))
        assert not effective_effect(expr).removable_if_unused

    def test_nested_control_effects_propagate(self):
        lst = Sym("lst")
        inner = Expr("if_", (Const(True),), blocks=(
            Block([Stmt(Sym("a"), Expr("list_append", (lst, Const(1))))]),
            Block([])))
        outer = Expr("for_range", (Const(0), Const(3)), blocks=(
            Block([Stmt(Sym("b"), inner)], params=(Sym("i", INT),)),))
        assert effective_effect(outer).writes


class TestDeclarationAudit:
    def test_clean_program_passes(self):
        program, _ = writer_program()
        audit_effects(program)

    def test_write_to_constant_rejected(self):
        stmt = Stmt(Sym("w"), Expr("list_append", (Const(3), Const(1))))
        with pytest.raises(VerificationError, match="mutates the constant"):
            audit_effects(program_of([stmt], stmt.sym))

    def test_var_write_without_var_new_rejected(self):
        ghost = Sym("ghost")
        stmt = Stmt(Sym("w"), Expr("var_write", (ghost, Const(1))))
        with pytest.raises(VerificationError, match="no preceding var_new"):
            audit_effects(program_of([stmt], stmt.sym))

    def test_control_op_without_blocks_rejected(self):
        stmt = Stmt(Sym("c"), Expr("for_range", (Const(0), Const(3))))
        with pytest.raises(VerificationError, match="no nested blocks"):
            audit_effects(program_of([stmt], stmt.sym))


class TestTransitionAudit:
    def test_identity_passes(self):
        program, _ = writer_program()
        audit_transition(program, program, phase="noop")

    def test_removing_pure_binding_is_legal(self):
        db = Sym("db")
        dead = Stmt(Sym("dead", INT), Expr("add", (Const(1), Const(2))))
        keep = Stmt(Sym("keep", INT), Expr("add", (Const(3), Const(4))))
        before = program_of([dead, keep], keep.sym, [db])
        after = program_of([keep], keep.sym, [db])
        audit_transition(before, after, phase="dce")

    def test_removing_write_rejected_with_phase(self):
        db = Sym("db")
        lst = Stmt(Sym("lst"), Expr("list_new", ()))
        write = Stmt(Sym("w"), Expr("list_append", (lst.sym, Const(1))))
        before = program_of([lst, write], lst.sym, [db])
        after = program_of([lst], lst.sym, [db])
        with pytest.raises(VerificationError) as exc:
            audit_transition(before, after, phase="dce[ScaLite]")
        assert exc.value.phase == "dce[ScaLite]"
        assert "only removable_if_unused" in str(exc.value)

    def test_removing_if_with_writing_arm_rejected(self):
        db = Sym("db")
        lst = Stmt(Sym("lst"), Expr("list_new", ()))
        arm = Block([Stmt(Sym("a"), Expr("list_append", (lst.sym, Const(1))))])
        branch = Stmt(Sym("br"), Expr("if_", (Const(True),),
                                      blocks=(arm, Block([]))))
        before = program_of([lst, branch], lst.sym, [db])
        after = program_of([lst], lst.sym, [db])
        with pytest.raises(VerificationError, match="removable"):
            audit_transition(before, after, phase="branchless-booleans")

    def test_removing_if_with_pure_arms_is_legal(self):
        db = Sym("db")
        keep = Stmt(Sym("keep", INT), Expr("add", (Const(1), Const(2))))
        arm = Block([Stmt(Sym("a", INT), Expr("add", (Const(5), Const(6))))])
        branch = Stmt(Sym("br"), Expr("if_", (Const(True),),
                                      blocks=(arm, Block([]))))
        before = program_of([keep, branch], keep.sym, [db])
        after = program_of([keep], keep.sym, [db])
        audit_transition(before, after, phase="branchless-booleans")

    def test_reordering_writes_rejected(self):
        db = Sym("db")
        lst = Stmt(Sym("lst"), Expr("list_new", ()))
        first = Stmt(Sym("w1"), Expr("list_append", (lst.sym, Const(1))))
        second = Stmt(Sym("w2"), Expr("list_append", (lst.sym, Const(2))))
        before = program_of([lst, first, second], lst.sym, [db])
        after = program_of([lst, second, first], lst.sym, [db])
        with pytest.raises(VerificationError, match="reordered"):
            audit_transition(before, after, phase="hoisting")

    def test_moving_pure_code_across_writes_is_legal(self):
        db = Sym("db")
        lst = Stmt(Sym("lst"), Expr("list_new", ()))
        write = Stmt(Sym("w"), Expr("list_append", (lst.sym, Const(1))))
        pure = Stmt(Sym("p", INT), Expr("add", (Const(1), Const(2))))
        before = program_of([lst, pure, write], lst.sym, [db])
        after = program_of([lst, write, pure], lst.sym, [db])
        audit_transition(before, after, phase="hoisting")

    def test_inserting_new_statements_is_legal(self):
        db = Sym("db")
        keep = Stmt(Sym("keep", INT), Expr("add", (Const(1), Const(2))))
        fresh = Stmt(Sym("v"), Expr("var_new", (Const(0),)))
        before = program_of([keep], keep.sym, [db])
        after = program_of([fresh, keep], keep.sym, [db])
        audit_transition(before, after, phase="scalar-replacement")
