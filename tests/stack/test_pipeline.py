"""Unit tests for the DSL stack pipeline and its principle checks."""
import pytest

from repro.ir import IRBuilder, make_program
from repro.ir.nodes import Const, Program
from repro.ir.traversal import count_ops, rewrite_program
from repro.stack import (C_PY, CompilationContext, DslStack, FunctionOptimization,
                         Lowering, Optimization, OptimizationFlags, QPLAN, SCALITE,
                         SCALITE_LIST, SCALITE_MAP_LIST, StackValidationError,
                         TransformationError, apply_fixpoint)


def simple_program(language="ScaLite"):
    builder = IRBuilder()
    x = builder.emit("add", [1, 2])
    y = builder.emit("mul", [x, 3])
    return make_program(builder.finish(y), [], language)


class RenamingLowering(Lowering):
    """A trivial lowering used by the tests: relabels the program's language."""

    def __init__(self, source, target, name=None):
        self.name = name or f"lower-{source.name}-to-{target.name}"
        super().__init__(source, target)

    def run(self, program, context):
        return Program(body=program.body, params=program.params,
                       language=self.target.name, hoisted=program.hoisted)


class ConstantFolding(Optimization):
    name = "constant-folding"
    flag = None

    def run(self, program, context):
        def fold(stmt, rw):
            if stmt.expr.op in ("add", "mul") and all(isinstance(a, Const) for a in stmt.expr.args):
                left, right = (a.value for a in stmt.expr.args)
                value = left + right if stmt.expr.op == "add" else left * right
                return Const(value)
            return None
        return rewrite_program(program, fold, language=program.language)


class TestTransformationDeclarations:
    def test_lowering_must_decrease_level(self):
        with pytest.raises(TransformationError):
            RenamingLowering(SCALITE, SCALITE_MAP_LIST)

    def test_lowering_same_level_rejected(self):
        with pytest.raises(TransformationError):
            RenamingLowering(SCALITE, SCALITE)

    def test_optimization_flag_gating(self):
        opt = ConstantFolding(SCALITE)
        opt.flag = "partial_evaluation"
        ctx_on = CompilationContext(flags=OptimizationFlags())
        ctx_off = CompilationContext(flags=OptimizationFlags.all_disabled())
        assert opt.applies(ctx_on)
        assert not opt.applies(ctx_off)


class TestFixpoint:
    def test_constant_folding_reaches_fixpoint(self):
        program = simple_program()
        opt = ConstantFolding(SCALITE)
        folded, report = apply_fixpoint([opt], program, CompilationContext())
        assert report.reached_fixpoint
        # add(1,2) -> 3 then mul(3,3) -> 9: no arithmetic remains
        counts = count_ops(folded)
        assert "add" not in counts and "mul" not in counts

    def test_fixpoint_terminates_on_oscillation(self):
        """An optimization that always produces new structure hits the bound."""
        flip = {"n": 0}

        def oscillate(program, context):
            flip["n"] += 1
            builder = IRBuilder()
            builder.emit("add", [flip["n"], 1])
            return make_program(builder.finish(), [], program.language)

        opt = FunctionOptimization(SCALITE, "oscillate", oscillate)
        _, report = apply_fixpoint([opt], simple_program(), CompilationContext(),
                                   max_iterations=4)
        assert report.iterations == 4
        assert not report.reached_fixpoint

    def test_empty_optimization_list_is_trivial_fixpoint(self):
        program = simple_program()
        result, report = apply_fixpoint([], program, CompilationContext())
        assert result is program
        assert report.reached_fixpoint


class TestStackValidation:
    def test_unique_sink_required(self):
        with pytest.raises(StackValidationError):
            DslStack("broken", [SCALITE_MAP_LIST, SCALITE, C_PY],
                     [RenamingLowering(SCALITE_MAP_LIST, SCALITE)])

    def test_cohesion_violated_by_two_lowerings_from_same_language(self):
        with pytest.raises(StackValidationError) as err:
            DslStack("broken", [SCALITE_MAP_LIST, SCALITE, C_PY],
                     [RenamingLowering(SCALITE_MAP_LIST, SCALITE),
                      RenamingLowering(SCALITE_MAP_LIST, C_PY),
                      RenamingLowering(SCALITE, C_PY)])
        assert "cohesion" in str(err.value)

    def test_transform_with_foreign_language_rejected(self):
        with pytest.raises(StackValidationError):
            DslStack("broken", [SCALITE, C_PY], [RenamingLowering(SCALITE_LIST, SCALITE)])

    def test_valid_chain_accepted(self):
        stack = DslStack("ok", [SCALITE_MAP_LIST, SCALITE_LIST, SCALITE, C_PY],
                         [RenamingLowering(SCALITE_MAP_LIST, SCALITE_LIST),
                          RenamingLowering(SCALITE_LIST, SCALITE),
                          RenamingLowering(SCALITE, C_PY)])
        assert stack.target_language is C_PY
        assert stack.level_count(SCALITE_MAP_LIST) == 4

    def test_lowering_path_is_the_unique_chain(self):
        stack = DslStack("ok", [SCALITE_LIST, SCALITE, C_PY],
                         [RenamingLowering(SCALITE_LIST, SCALITE),
                          RenamingLowering(SCALITE, C_PY)])
        path = stack.lowering_path(SCALITE_LIST)
        assert [low.target.name for low in path] == ["ScaLite", "C.Py"]

    def test_describe_mentions_every_level(self):
        stack = DslStack("ok", [SCALITE, C_PY], [RenamingLowering(SCALITE, C_PY)])
        text = stack.describe()
        assert "ScaLite" in text and "C.Py" in text


class TestStackCompilation:
    def _two_level_stack(self):
        return DslStack("two", [SCALITE, C_PY],
                        [RenamingLowering(SCALITE, C_PY)],
                        [ConstantFolding(SCALITE)])

    def test_compile_runs_optimizations_then_lowering(self):
        stack = self._two_level_stack()
        result = stack.compile(simple_program(), SCALITE)
        assert result.language is C_PY
        kinds = [p.kind for p in result.phases]
        assert kinds == ["optimization-fixpoint", "lowering"]
        assert "add" not in count_ops(result.program)

    def test_compile_rejects_language_outside_stack(self):
        stack = self._two_level_stack()
        with pytest.raises(StackValidationError):
            stack.compile(simple_program(), QPLAN)

    def test_phase_timings_are_recorded(self):
        stack = self._two_level_stack()
        result = stack.compile(simple_program(), SCALITE)
        assert result.total_seconds >= 0
        assert all(p.seconds >= 0 for p in result.phases)

    def test_level_validation_catches_bad_lowering_output(self):
        class BadLowering(Lowering):
            name = "bad"

            def run(self, program, context):
                builder = IRBuilder()
                builder.emit("malloc", [8])   # malloc is not allowed in ScaLite
                return make_program(builder.finish(), [], self.target.name)

        stack = DslStack("bad-stack", [SCALITE_LIST, SCALITE, C_PY],
                         [BadLowering(SCALITE_LIST, SCALITE),
                          RenamingLowering(SCALITE, C_PY)])
        with pytest.raises(StackValidationError):
            stack.compile(simple_program("ScaLite[List]"), SCALITE_LIST)
