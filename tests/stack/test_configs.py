"""Tests for the evaluated stack configurations (Section 7 of the paper)."""
import pytest

from repro.stack.configs import CONFIG_NAMES, all_configs, build_config, config_flags
from repro.stack.language import C_PY, QPLAN


class TestConfigs:
    def test_all_five_configurations_build(self):
        configs = all_configs()
        assert [c.name for c in configs] == list(CONFIG_NAMES)

    def test_level_counts_match_names(self):
        assert build_config("dblab-2").stack.level_count(QPLAN) == 2
        assert build_config("dblab-3").stack.level_count(QPLAN) == 3
        assert build_config("dblab-4").stack.level_count(QPLAN) == 4
        assert build_config("dblab-5").stack.level_count(QPLAN) == 5
        assert build_config("tpch-compliant").stack.level_count(QPLAN) == 5

    def test_every_stack_targets_cpy(self):
        for config in all_configs():
            assert config.stack.target_language is C_PY

    def test_unknown_configuration_rejected(self):
        with pytest.raises(KeyError):
            build_config("dblab-42")

    def test_flags_grow_monotonically_with_levels(self):
        """Each additional level only ever enables more optimizations."""
        previous = set(config_flags("dblab-2").enabled())
        for name in ("dblab-3", "dblab-4", "dblab-5"):
            current = set(config_flags(name).enabled())
            assert previous <= current, f"{name} disabled something from the level below"
            assert previous != current
            previous = current

    def test_tpch_compliant_disables_the_non_compliant_optimizations(self):
        """Footnote 11: string dictionaries, partitioning, index inference,
        field removal — plus the catalog access layer, which amortises the
        same load-time work across queries."""
        compliant = config_flags("tpch-compliant")
        full = config_flags("dblab-5")
        assert full.string_dictionaries and not compliant.string_dictionaries
        assert full.data_structure_partitioning and not compliant.data_structure_partitioning
        assert full.automatic_index_inference and not compliant.automatic_index_inference
        assert full.unused_field_removal and not compliant.unused_field_removal
        assert full.catalog_access_layer and not compliant.catalog_access_layer
        # everything else stays identical
        differing = {name for name in vars(full)
                     if getattr(full, name) != getattr(compliant, name)}
        assert differing == {"string_dictionaries", "data_structure_partitioning",
                             "automatic_index_inference", "unused_field_removal",
                             "catalog_access_layer"}

    def test_level2_only_pipelines(self):
        flags = config_flags("dblab-2")
        assert flags.pipelining
        assert not flags.hash_table_specialization
        assert not flags.data_layout

    def test_describe_mentions_levels_and_flags(self):
        config = build_config("dblab-4")
        text = config.describe()
        assert "dblab-4" in text and "hash_table_specialization" in text

    def test_stacks_respect_cohesion_by_construction(self):
        """Every configuration has exactly one lowering out of each non-target level."""
        for config in all_configs():
            sources = [lowering.source.name for lowering in config.stack.lowerings]
            assert len(sources) == len(set(sources))
