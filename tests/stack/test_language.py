"""Unit tests for DSL level definitions and language validation."""
import pytest

from repro.ir import IRBuilder, make_program
from repro.stack import (ALL_LANGUAGES, C_PY, Language, LanguageError, QMONAD, QPLAN,
                         SCALITE, SCALITE_LIST, SCALITE_MAP_LIST, language_by_name,
                         ordered_levels)


class TestLanguageDefinitions:
    def test_stack_levels_are_strictly_ordered(self):
        """QPlan/QMonad > ScaLite[Map,List] > ScaLite[List] > ScaLite > C.Py."""
        assert QPLAN.level == QMONAD.level
        assert QPLAN.level > SCALITE_MAP_LIST.level > SCALITE_LIST.level
        assert SCALITE_LIST.level > SCALITE.level > C_PY.level

    def test_front_ends_are_tree_dsls(self):
        assert QPLAN.kind == "tree"
        assert QMONAD.kind == "tree"

    def test_imperative_levels_are_anf_dsls(self):
        for lang in (SCALITE_MAP_LIST, SCALITE_LIST, SCALITE, C_PY):
            assert lang.kind == "anf"

    def test_expressibility_ops_grow_downwards(self):
        """Lower levels only ever add expressive power (expressibility principle)."""
        assert SCALITE_MAP_LIST.ops <= C_PY.ops
        assert SCALITE_LIST.ops <= C_PY.ops
        assert SCALITE.ops <= C_PY.ops

    def test_memory_ops_only_at_cpy(self):
        for op in ("malloc", "pool_new", "ptr_field_get"):
            assert C_PY.allows_op(op)
            assert not SCALITE.allows_op(op)
            assert not SCALITE_MAP_LIST.allows_op(op)

    def test_specialized_structures_not_in_map_list_level(self):
        """Index/dense structures only appear below ScaLite[Map, List]."""
        for op in ("index_build_unique", "dense_agg_update"):
            assert not SCALITE_MAP_LIST.allows_op(op)
            assert SCALITE_LIST.allows_op(op)

    def test_strdict_ops_available_where_the_optimization_runs(self):
        """StringDictionaries is declared at ScaLite[Map, List]; cohesion says
        an optimization stays within its language, so the strdict vocabulary
        must start there (the static verifier caught the earlier mismatch)."""
        for op in ("strdict_build", "strdict_code", "strdict_prefix_range"):
            assert SCALITE_MAP_LIST.allows_op(op)
            assert SCALITE_LIST.allows_op(op)

    def test_language_by_name(self):
        assert language_by_name("C.Py") is C_PY
        with pytest.raises(KeyError):
            language_by_name("Fortran")

    def test_ordered_levels_most_abstract_first(self):
        levels = [lang.level for lang in ordered_levels()]
        assert levels == sorted(levels, reverse=True)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            Language(name="Weird", level=5, kind="graph")

    def test_unregistered_ops_rejected(self):
        with pytest.raises(ValueError):
            Language(name="Weird", level=5, kind="anf", ops=frozenset({"quantum_sort"}))


class TestValidation:
    def _program_with(self, ops):
        b = IRBuilder()
        syms = []
        for op, args in ops:
            syms.append(b.emit(op, args))
        return make_program(b.finish(syms[-1] if syms else None), [], "test")

    def test_valid_scalite_program_passes(self):
        program = self._program_with([("add", [1, 2]), ("mul", [3, 4])])
        SCALITE.validate(program)

    def test_map_ops_rejected_above_their_level(self):
        program = self._program_with([("malloc", [8])])
        with pytest.raises(LanguageError):
            SCALITE.validate(program)

    def test_anf_language_rejects_tree_program(self):
        with pytest.raises(LanguageError):
            SCALITE.validate(object())

    def test_tree_language_rejects_anf_program(self):
        program = self._program_with([("add", [1, 2])])
        with pytest.raises(LanguageError):
            QPLAN.validate(program)

    def test_all_languages_unique_names(self):
        names = [lang.name for lang in ALL_LANGUAGES]
        assert len(names) == len(set(names))
