"""Setuptools entry point.

The pyproject.toml [project] table carries the metadata; this file exists so
that ``pip install -e .`` works on environments without the ``wheel`` package
(legacy editable install path).
"""
from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "DBLAB/LB-style multi-level DSL-stack query compiler "
        "(reproduction of 'How to Architect a Query Compiler', SIGMOD 2016)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy"],
)
