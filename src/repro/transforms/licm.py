"""Loop-invariant code motion justified by the dataflow analyses.

A binding at the top level of a loop body hoists out in front of the loop
when the analyses prove the move unobservable *and* safe against
zero-iteration loops:

* **purity**: the op is pure, block-free and — because a hoisted statement
  runs even when the loop body would not — drawn from a whitelist of
  exception-free scalar ops (no ``div``/``mod``, no container reads);
* **operands**: every argument is defined outside the loop body, and every
  operand is provably non-null (``lt(None, k)`` raises in Python, so
  nullability is part of the safety proof, seeded from column statistics);
* **liveness**: the binding is live — dead bindings are DCE's job, not worth
  moving.

The binding keeps its symbol, so uses inside the loop are untouched; chains
of invariant bindings hoist together (the eligibility loop iterates until no
statement moves).  ``while_`` loops are left alone: their condition block
runs before the body, and the paper's stack never produces invariant work
inside them worth the extra reasoning.
"""
from __future__ import annotations

from typing import List, Set, Tuple

from ..analysis.dataflow.framework import LOOP_OPS
from ..analysis.dataflow.lattices import Nullability
from ..analysis.dataflow.liveness import liveness
from ..analysis.dataflow.values import ValueFacts, value_facts
from ..ir.nodes import Block, Const, Expr, Program, Stmt, Sym
from ..stack.context import CompilationContext
from ..stack.language import Language
from ..stack.transformation import Optimization

#: pure scalar ops that cannot raise on non-null operands
_HOISTABLE_OPS = frozenset({
    "add", "sub", "mul", "neg", "min2", "max2",
    "eq", "ne", "lt", "le", "gt", "ge",
    "and_", "or_", "not_",
    "year_of_date",
})

_HOISTED_LOOPS = LOOP_OPS - {"while_"}


class LoopInvariantHoisting(Optimization):
    """Hoist provably-safe invariant bindings out of loop bodies."""

    flag = "loop_invariant_code_motion"

    def __init__(self, language: Language) -> None:
        super().__init__(language)
        self.name = f"loop-invariant-hoisting[{language.name}]"

    def run(self, program: Program, context: CompilationContext) -> Program:
        facts = value_facts(program, context.catalog)
        live = liveness(program).live
        changed = [False]

        def process(block: Block) -> Block:
            new_stmts: List[Stmt] = []
            for stmt in block.stmts:
                if stmt.expr.blocks:
                    blocks = tuple(process(nested) for nested in stmt.expr.blocks)
                    if stmt.expr.op in _HOISTED_LOOPS:
                        hoisted, body = _split_invariants(blocks[-1], facts, live)
                        if hoisted:
                            changed[0] = True
                            new_stmts.extend(hoisted)
                            blocks = blocks[:-1] + (body,)
                    stmt = Stmt(stmt.sym, Expr(stmt.expr.op, stmt.expr.args,
                                               dict(stmt.expr.attrs), blocks,
                                               stmt.expr.type))
                new_stmts.append(stmt)
            return Block(new_stmts, block.result, block.params)

        body = process(program.body)
        hoisted = process(program.hoisted)
        if not changed[0]:
            return program
        return Program(body=body, params=program.params,
                       language=program.language, hoisted=hoisted)


def _bound_in_body(body: Block) -> Set[int]:
    bound: Set[int] = {param.id for param in body.params}

    def visit(block: Block) -> None:
        for stmt in block.stmts:
            bound.add(stmt.sym.id)
            for nested in stmt.expr.blocks:
                bound.update(param.id for param in nested.params)
                visit(nested)

    visit(body)
    return bound


def _split_invariants(body: Block, facts: ValueFacts,
                      live: frozenset) -> Tuple[List[Stmt], Block]:
    bound = _bound_in_body(body)
    hoisted: List[Stmt] = []
    remaining = list(body.stmts)
    moved = True
    while moved:
        moved = False
        still: List[Stmt] = []
        for stmt in remaining:
            if _invariant(stmt, bound, facts, live):
                hoisted.append(stmt)
                bound.discard(stmt.sym.id)
                moved = True
            else:
                still.append(stmt)
        remaining = still
    if not hoisted:
        return [], body
    return hoisted, Block(remaining, body.result, body.params)


def _invariant(stmt: Stmt, bound: Set[int], facts: ValueFacts,
               live: frozenset) -> bool:
    expr = stmt.expr
    if expr.op not in _HOISTABLE_OPS or expr.blocks:
        return False
    if stmt.sym.id not in live:
        return False  # dead bindings are DCE's job
    for arg in expr.args:
        if isinstance(arg, Sym):
            if arg.id in bound:
                return False
            if facts.fact_of(arg.id).nullability is not Nullability.NON_NULL:
                return False
        elif isinstance(arg, Const):
            if arg.value is None:
                return False
        else:
            return False
    return True
