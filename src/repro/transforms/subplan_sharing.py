"""IR-level common-subplan sharing across pipeline breakers.

PR 3 taught the direct engines to execute repeated subplans once per query
(:mod:`repro.engine.sharing`): Q11 builds its partsupp pipeline twice, Q15
joins against the revenue view it also aggregates, Q22 re-filters the same
customer subset.  The compiled DSL stacks could not share those, because the
push-engine lowering *fuses* a subplan into each of its consumers — the two
copies of the code differ in their consume continuations, so no generic CSE
over the finished program can merge them (the duplicated statements allocate
and mutate their own hash tables and buffers, and :meth:`Expr.cse_key
<repro.ir.nodes.Expr.cse_key>` rightly refuses to share anything that is not
pure).

The fix is to share *while the IR is being constructed*, the same hash-consing
move the :class:`~repro.ir.builder.IRBuilder` makes for pure expressions —
lifted from single expressions to whole pipeline-breaking regions:

* repeated subtrees are detected on the plan with
  :func:`repro.dsl.qplan.shared_subplan_fingerprints` (structural keys, the
  plan-level analogue of ``cse_key``);
* the first occurrence is **materialised once behind a binding**: its rows are
  produced into one list bound at the top level of the program body, breaking
  the producer/consumer fusion exactly at the shared boundary;
* every occurrence (including the first) then replays the binding with a
  ``list_foreach`` feeding its own consume continuation.  The duplicate
  production code is simply never emitted, so there is nothing left for DCE
  to sweep — and what DCE *does* still clean up afterwards are the
  per-duplicate column reads and key computations that became unused.

Sharing is sound for the same reason the runtime caches of the direct engines
are: QPlan operators are deterministic functions of the loaded catalog, the
materialised list is written only by its production loop, and every statement
the region emits either is pure, reads the catalog, or writes objects
allocated inside the region (verifiable from the :mod:`repro.ir.effects`
summaries) — afterwards the binding is only ever read.
"""
from __future__ import annotations

from typing import Dict, List, Tuple

from ..dsl import qplan as Q
from ..ir.nodes import Sym


class SharedSubplanMaterializer:
    """Materialise-once/replay bindings for a push-engine compilation run.

    One instance serves one :class:`~repro.transforms.pipelining._PushCompiler`
    run.  ``try_produce`` intercepts the produce/consume dispatch: for a node
    that is not shared it declines (the compiler inlines as usual); for a
    shared node it materialises the subplan into a list binding on first
    sight and replays that binding for this and every later occurrence.
    """

    def __init__(self, plan, flags) -> None:
        shared: Dict[int, str] = {}
        if flags.subplan_sharing and isinstance(plan, Q.Operator):
            shared = _maximal_shared(plan, Q.shared_subplan_fingerprints(plan))
        self._shared = shared
        #: structural key -> (list binding, output fields)
        self._bindings: Dict[str, Tuple[Sym, List[str]]] = {}

    @property
    def active(self) -> bool:
        return bool(self._shared)

    def try_produce(self, compiler, node, consume) -> bool:
        """Serve ``node`` from a shared binding; ``False`` when not shared."""
        key = self._shared.get(id(node))
        if key is None:
            return False
        binding = self._bindings.get(key)
        if binding is None:
            binding = self._materialize(compiler, node, key)
            self._bindings[key] = binding
        buffer, fields = binding
        compiler.b.foreach(
            buffer, lambda element: consume(compiler._bucket_rows(element, fields)),
            hint="sh")
        return True

    def _materialize(self, compiler, node, key: str) -> Tuple[Sym, List[str]]:
        """Produce ``node`` once into a fresh list binding (the shared value)."""
        fields = Q.output_fields(node, compiler.catalog)
        buffer = compiler.b.emit(
            "list_new", [], attrs={"shared_subplan": _short_key(key)},
            hint="shared")

        def collect(row) -> None:
            record, _ = row.materialize(compiler.b, compiler.record_layout, fields)
            compiler.b.emit("list_append", [buffer, record])

        compiler.dispatch_produce(node, collect)
        return buffer, fields


def _maximal_shared(plan, shared: Dict[int, str]) -> Dict[int, str]:
    """Restrict a shared-subplan map to the subtrees worth a binding.

    A fingerprint nested inside another shared subtree is only *produced*
    once — during that subtree's single materialisation — so giving it a
    binding of its own would break pipeline fusion without saving any work.
    The pruned walk below descends into each shared fingerprint's subtree
    exactly once (mirroring how often it will be produced) and keeps only
    the fingerprints still encountered more than once.
    """
    if not shared:
        return shared
    counts: Dict[str, int] = {}
    descended = set()

    def visit(node) -> None:
        key = shared.get(id(node))
        if key is not None:
            counts[key] = counts.get(key, 0) + 1
            if key in descended:
                return
            descended.add(key)
        for child in node.children():
            visit(child)

    visit(plan)
    useful = {key for key, count in counts.items() if count > 1}
    return {node_id: key for node_id, key in shared.items() if key in useful}


def _short_key(canonical: str) -> str:
    """A compact stable digest of a plan-canonical key (kept as a statement
    attribute so tests and debuggers can count shared bindings)."""
    import hashlib

    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:12]


def shared_binding_count(program) -> int:
    """Number of shared-subplan bindings in a compiled program (test probe)."""
    from ..ir.traversal import iter_program_stmts

    return sum(1 for stmt, _ in iter_program_stmts(program)
               if "shared_subplan" in stmt.expr.attrs)
