"""Dead-code elimination over ANF programs, driven by the dataflow analyses.

Two analyses from :mod:`repro.analysis.dataflow` decide what dies:

* **liveness** (backward): a binding whose value is never needed — not a
  block result, not an argument of an effectful statement, not feeding any
  live binding — may be dropped when its effect allows it
  (``removable_if_unused``).  Because liveness propagates through chains of
  dead pure bindings in one pass, the former iterate-until-no-change use
  counting is gone: one sweep removes a whole dead dependency chain.

* **purity/escape**: a write-only allocation that never escapes (every use
  is a mutating write whose own result is unused) dies *together with all of
  its writes* — something use counting could never see, because each write
  kept the object's use count above zero.

The outer fixed-point driver still re-runs the pass: dropping a dead write
can strand the bindings that produced the written value, which the fresh
liveness facts of the next iteration then pick up.
"""
from __future__ import annotations

from typing import Callable, List

from ..analysis.dataflow.liveness import liveness
from ..analysis.dataflow.purity import purity
from ..ir.nodes import Block, Expr, Program, Stmt
from ..ir.ops import effect_of
from ..stack.context import CompilationContext
from ..stack.language import Language
from ..stack.transformation import Optimization


class DeadCodeElimination(Optimization):
    """Remove statements whose results are unused and whose effects allow it."""

    flag = "dce"

    def __init__(self, language: Language) -> None:
        super().__init__(language)
        self.name = f"dce[{language.name}]"

    def run(self, program: Program, context: CompilationContext) -> Program:
        live = liveness(program)
        objects = purity(program)

        def dead(stmt: Stmt) -> bool:
            sym_id = stmt.sym.id
            if sym_id in objects.dead_writes or sym_id in objects.removable_objects:
                return True
            if stmt.expr.blocks:
                return False
            if not effect_of(stmt.expr.op).removable_if_unused:
                return False
            return sym_id not in live.live

        body = _sweep(program.body, dead)
        hoisted = _sweep(program.hoisted, dead)
        return Program(body=body, params=program.params,
                       language=program.language, hoisted=hoisted)


def _sweep(block: Block, dead: Callable[[Stmt], bool]) -> Block:
    new_stmts: List[Stmt] = []
    for stmt in block.stmts:
        if dead(stmt):
            continue
        if stmt.expr.blocks:
            new_blocks = tuple(_sweep(nested, dead) for nested in stmt.expr.blocks)
            stmt = Stmt(stmt.sym, Expr(stmt.expr.op, stmt.expr.args,
                                       dict(stmt.expr.attrs), new_blocks,
                                       stmt.expr.type))
        new_stmts.append(stmt)
    return Block(new_stmts, block.result, block.params)
