"""Dead-code elimination over ANF programs.

The effect system (:mod:`repro.ir.effects`) tells the pass which statements
may be removed when their result is never used: pure computations, reads and
allocations.  Writes, I/O and control-flow statements always stay.  Removing a
statement can make further statements dead, so the pass iterates to a local
fixed point (the outer fixed-point driver of the stack would converge anyway,
but doing it here keeps each invocation cheap).
"""
from __future__ import annotations

from typing import Set

from ..ir.nodes import Block, Program, Sym
from ..ir.ops import effect_of
from ..stack.context import CompilationContext
from ..stack.language import Language
from ..stack.transformation import Optimization


class DeadCodeElimination(Optimization):
    """Remove statements whose results are unused and whose effects allow it."""

    flag = "dce"

    def __init__(self, language: Language) -> None:
        super().__init__(language)
        self.name = f"dce[{language.name}]"

    def run(self, program: Program, context: CompilationContext) -> Program:
        body = program.body
        hoisted = program.hoisted
        for _ in range(20):
            used = _used_syms(hoisted) | _used_syms(body)
            new_hoisted, removed_hoisted = _sweep(hoisted, used)
            new_body, removed_body = _sweep(body, used)
            hoisted, body = new_hoisted, new_body
            if not (removed_hoisted or removed_body):
                break
        return Program(body=body, params=program.params, language=program.language,
                       hoisted=hoisted)


def _used_syms(block: Block) -> Set[int]:
    used: Set[int] = set()

    def visit(blk: Block) -> None:
        for stmt in blk.stmts:
            for arg in stmt.expr.args:
                if isinstance(arg, Sym):
                    used.add(arg.id)
            for nested in stmt.expr.blocks:
                visit(nested)
        if isinstance(blk.result, Sym):
            used.add(blk.result.id)

    visit(block)
    return used


def _sweep(block: Block, used: Set[int]) -> tuple:
    removed = 0
    new_stmts = []
    for stmt in block.stmts:
        effect = effect_of(stmt.expr.op)
        if stmt.sym.id not in used and effect.removable_if_unused and not stmt.expr.blocks:
            removed += 1
            continue
        if stmt.expr.blocks:
            new_blocks = []
            for nested in stmt.expr.blocks:
                swept, nested_removed = _sweep(nested, used)
                removed += nested_removed
                new_blocks.append(swept)
            stmt = type(stmt)(stmt.sym, type(stmt.expr)(
                stmt.expr.op, stmt.expr.args, dict(stmt.expr.attrs),
                tuple(new_blocks), stmt.expr.type))
        new_stmts.append(stmt)
    return Block(new_stmts, block.result, block.params), removed
