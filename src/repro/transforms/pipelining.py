"""Pipelining: the push-engine lowering from QPlan into imperative ANF.

Section 5.1 of the paper shows that short-cut (build/foreach) fusion over a
producer/consumer encoding of the operators yields exactly the push engines of
data-centric query compilation: every operator *produces* rows by invoking the
*consume* continuation of its parent, so no intermediate collections are ever
materialised between pipeline-breaking operators.

This module implements that lowering for QPlan.  Each operator method receives
a ``consume`` callback and emits, into the current ANF block, the code that
feeds rows to it.  Pipeline breakers (hash-join builds, aggregations, sorts)
are the only places where records are materialised into data structures.

The same lowering serves every stack configuration; the target language is a
constructor parameter (C.Py for the naive two-level stack, ScaLite for the
three-level one, ScaLite[Map, List] for the four- and five-level stacks), and
the optimization flags of the compilation context decide:

* whether rows travel as boxed records (naive) or as per-field locals
  (scalar replacement by construction),
* whether hash-table builds over base relations are *partitioned at loading
  time*, i.e. emitted into the hoisted block (automatic index inference +
  data-structure partitioning, Section B.1), and
* which record layout (boxed dictionaries vs row tuples) materialised rows
  use (Section 4.2 / Figure 3).

Key-range and uniqueness facts about hash-table keys are attached to the
``mmap_new`` / ``hashmap_agg_new`` statements as attributes — the annotation
mechanism of Section 3.3 — and consumed later by the hash-table
specialization lowering.
"""
from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..dsl import expr as E
from ..dsl import qplan as Q
from ..ir.builder import IRBuilder
from ..ir.nodes import Atom, Const, Program, Sym
from ..stack.context import CompilationContext
from ..stack.language import Language, QPLAN
from ..stack.transformation import Lowering
from .rowvals import RowVals
from .scalar_compiler import ScalarCompiler
from .subplan_sharing import SharedSubplanMaterializer

Consumer = Callable[[RowVals], None]


class PipeliningError(Exception):
    pass


class PushPipelineLowering(Lowering):
    """Lower a QPlan operator tree into an imperative ANF program."""

    def __init__(self, target: Language, name: str = "pipelining") -> None:
        self.name = name
        super().__init__(QPLAN, target)

    def run(self, plan: Q.Operator, context: CompilationContext) -> Program:
        if context.catalog is None:
            raise PipeliningError("pipelining requires a catalog in the compilation context")
        compiler = _PushCompiler(context, self.target)
        return compiler.compile(plan)


class _PushCompiler:
    """One compilation run of the push engine."""

    def __init__(self, context: CompilationContext, target: Language) -> None:
        self.context = context
        self.catalog = context.catalog
        self.flags = context.flags
        self.target = target
        self.db = Sym("db")
        self.body = IRBuilder()
        self.hoisted = IRBuilder()
        self._builders = [self.body]
        self.scalars = ScalarCompiler(self.body)
        #: record layout used for materialised intermediate rows
        self.record_layout = "row" if self.flags.data_layout else "boxed"
        #: whether pipelines consume the catalog-resident access layer
        self.catalog_access = bool(self.flags.catalog_access_layer
                                   and getattr(self.catalog, "statistics", None)
                                   is not None)
        #: shared-subplan bindings (armed per plan in :meth:`compile`)
        self.sharing: Optional[SharedSubplanMaterializer] = None

    # ------------------------------------------------------------------
    # Builder management
    # ------------------------------------------------------------------
    @property
    def b(self) -> IRBuilder:
        return self._builders[-1]

    def _use_builder(self, builder: IRBuilder):
        self._builders.append(builder)
        self.scalars = ScalarCompiler(builder)

    def _pop_builder(self) -> None:
        self._builders.pop()
        self.scalars = ScalarCompiler(self.b)

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------
    def compile(self, plan: Q.Operator) -> Program:
        self.sharing = SharedSubplanMaterializer(plan, self.flags)
        result_fields = Q.output_fields(plan, self.catalog)
        result = self.b.emit("list_new", [], hint="result")

        def emit_output(row: RowVals) -> None:
            record, _ = row.materialize(self.b, "boxed", result_fields)
            self.b.emit("list_append", [result, record])

        self.produce(plan, emit_output)
        body_block = self.b.finish(result)
        hoisted_block = self.hoisted.finish()
        return Program(body=body_block, params=(self.db,), language=self.target.name,
                       hoisted=hoisted_block)

    # ------------------------------------------------------------------
    # Produce/consume dispatch
    # ------------------------------------------------------------------
    def produce(self, node: Q.Operator, consume: Consumer) -> None:
        if self.sharing is not None and self.sharing.try_produce(self, node, consume):
            return
        self.dispatch_produce(node, consume)

    def dispatch_produce(self, node: Q.Operator, consume: Consumer) -> None:
        """Emit a node's pipeline without consulting the shared-subplan cache
        (the materializer itself routes through here to avoid recursing)."""
        if isinstance(node, Q.Scan):
            self._scan(node, consume)
        elif isinstance(node, Q.PrunedScan):
            self._pruned_scan(node, consume)
        elif isinstance(node, Q.Select):
            self._select(node, consume)
        elif isinstance(node, Q.Project):
            self._project(node, consume)
        elif isinstance(node, Q.IndexJoin):
            self._index_join(node, consume)
        elif isinstance(node, Q.HashJoin):
            self._hash_join(node, consume)
        elif isinstance(node, Q.NestedLoopJoin):
            self._nested_loop_join(node, consume)
        elif isinstance(node, Q.Agg):
            self._aggregate(node, consume)
        elif isinstance(node, Q.Sort):
            self._sort(node, consume)
        elif isinstance(node, Q.TopK):
            self._topk(node, consume)
        elif isinstance(node, Q.Limit):
            self._limit(node, consume)
        else:
            raise PipeliningError(f"unknown QPlan operator {type(node).__name__}")

    # ------------------------------------------------------------------
    # Leaf and tuple-at-a-time operators
    # ------------------------------------------------------------------
    def _scan(self, node: Q.Scan, consume: Consumer) -> None:
        b = self.b
        fields = list(node.fields) if node.fields is not None else \
            self.catalog.schema.table(node.table).column_names()
        size = b.emit("table_size", [self.db], attrs={"table": node.table}, hint="n")
        columns = {name: b.emit("table_column", [self.db],
                                attrs={"table": node.table, "column": name}, hint="col")
                   for name in fields}

        def body(index: Sym) -> None:
            if self.flags.scalar_replacement:
                row = RowVals.scalars({name: b.emit("array_get", [columns[name], index],
                                                    hint=name[:10])
                                       for name in fields})
            else:
                # Naive (two-level) behaviour: build one boxed record per row
                # and pass it down the pipeline.
                values = [b.emit("array_get", [columns[name], index]) for name in fields]
                record = b.emit("record_new", values,
                                attrs={"fields": tuple(fields), "layout": "boxed"}, hint="rec")
                row = RowVals.record_backed(b, record, fields, layout="boxed")
            consume(row)

        b.for_range(0, size, body, hint="i")

    def _select(self, node: Q.Select, consume: Consumer) -> None:
        def filtered(row: RowVals) -> None:
            cond = self.scalars.compile(node.predicate, row)
            self.b.if_(cond, lambda: consume(row))

        self.produce(node.child, filtered)

    # ------------------------------------------------------------------
    # Catalog-access-layer scans and joins
    # ------------------------------------------------------------------
    def _scan_columns(self, scan: Q.Scan) -> Tuple[List[str], Dict[str, Sym]]:
        """Column arrays of a base-table scan, bound in the current block."""
        b = self.b
        fields = list(scan.fields) if scan.fields is not None else \
            self.catalog.schema.table(scan.table).column_names()
        columns = {name: b.emit("table_column", [self.db],
                                attrs={"table": scan.table, "column": name},
                                hint="col")
                   for name in fields}
        return fields, columns

    def _fetch_row(self, columns: Dict[str, Sym], fields: Sequence[str],
                   index: Atom) -> RowVals:
        """The row at ``index``, in the active row representation."""
        b = self.b
        if self.flags.scalar_replacement:
            return RowVals.scalars({name: b.emit("array_get",
                                                 [columns[name], index],
                                                 hint=name[:10])
                                    for name in fields})
        values = [b.emit("array_get", [columns[name], index]) for name in fields]
        record = b.emit("record_new", values,
                        attrs={"fields": tuple(fields), "layout": "boxed"},
                        hint="rec")
        return RowVals.record_backed(b, record, fields, layout="boxed")

    def _pruned_scan(self, node: Q.PrunedScan, consume: Consumer) -> None:
        """``Select(Scan)`` served by the catalog's partition pruning.

        The candidate row positions — a sorted-column slice or the
        zone-map-surviving chunks, memoized on the catalog's access layer —
        are fetched once at data-loading time (the hoisted block); the query
        body loops over candidates only and still evaluates the full
        predicate on each, so rows and emission order are exactly those of
        the unpruned scan-then-filter.
        """
        if not (self.catalog_access and node.zone_filters):
            self._select(node, consume)
            return
        b = self.b
        scan = node.child
        self._use_builder(self.hoisted)
        try:
            candidates = self.b.emit(
                "access_pruned_indices", [self.db],
                attrs={"table": scan.table, "filters": tuple(node.zone_filters)},
                hint="cand")
        finally:
            self._pop_builder()
        fields, columns = self._scan_columns(scan)

        def body(index: Sym) -> None:
            row = self._fetch_row(columns, fields, index)
            cond = self.scalars.compile(node.predicate, row)
            self.b.if_(cond, lambda: consume(row))

        b.foreach(candidates, body, hint="ri")

    def _index_join(self, node: Q.IndexJoin, consume: Consumer) -> None:
        """Hash join served by the catalog's load-time unique-key index.

        No per-query build: the index (a PK direct array or dict) is fetched
        from the access layer at data-loading time and each probe key is
        looked up directly; the (at most one) matching build row is read from
        the base columns on demand, with the build filter and residual
        applied per candidate.  Unique keys make every bucket of the replaced
        hash join at most one row, so each emission order below reproduces
        the plain lowering's order exactly: probe-major for inner joins, base
        (= bucket) order for the semi/anti emission pass.

        ``leftouter`` falls back: the plain lowering hashes the *right* side
        for outer joins, which the left-table index cannot serve.
        """
        parts = node.build_parts()
        usable = (self.catalog_access
                  and parts is not None
                  and node.kind in ("inner", "leftsemi", "leftanti"))
        if usable:
            from ..storage.access import AccessLayer
            usable = AccessLayer.for_catalog(self.catalog).key_index(
                node.index_table, node.index_column) is not None
        if not usable:
            if self.catalog_access and parts is not None \
                    and node.kind == "leftouter":
                # The plain lowering hashes the *right* side for outer joins,
                # which the left-table index cannot serve — a real downgrade
                # the planner asked for, so record it instead of degrading
                # silently (ROADMAP carry-over).
                from ..robustness.incidents import DEFAULT_INCIDENTS
                DEFAULT_INCIDENTS.report(
                    "lowering_fallback",
                    query=self.context.query_name or "",
                    tier="compiled",
                    cause="leftouter_index_join",
                    message=(f"IndexJoin on {node.index_table}."
                             f"{node.index_column} lowered to hash join: "
                             "leftouter kind is not index-servable"),
                    table=node.index_table, column=node.index_column)
            self._hash_join(node, consume)
            return
        scan, build_filter = parts
        b = self.b
        self._use_builder(self.hoisted)
        try:
            index = self.b.emit(
                "access_key_index", [self.db],
                attrs={"table": node.index_table, "column": node.index_column},
                hint="kidx")
        finally:
            self._pop_builder()
        fields, columns = self._scan_columns(scan)

        def lookup(right_row: RowVals) -> Tuple[Sym, Sym]:
            key = self.scalars.compile(node.right_key, right_row)
            position = self.b.emit("access_index_lookup", [index, key],
                                   hint="pos")
            hit = self.b.emit("ne", [position, Const(None)], hint="hit")
            return position, hit

        if node.kind == "inner":
            def probe(right_row: RowVals) -> None:
                position, hit = lookup(right_row)

                def on_hit() -> None:
                    left_row = self._fetch_row(columns, fields, position)

                    def emit_match() -> None:
                        combined = left_row.merge(right_row, self.b)
                        if node.residual is not None:
                            cond = self.scalars.compile(node.residual, combined,
                                                        left=left_row,
                                                        right=right_row)
                            self.b.if_(cond, lambda: consume(combined))
                        else:
                            consume(combined)

                    if build_filter is not None:
                        cond = self.scalars.compile(build_filter, left_row)
                        self.b.if_(cond, emit_match)
                    else:
                        emit_match()

                self.b.if_(hit, on_hit)

            self.produce(node.right, probe)
            return

        # leftsemi / leftanti: probe pass marks matched build positions, then
        # the emission pass walks the base table in row (= bucket) order.
        matched = b.emit("set_new", [], hint="matched")

        def probe(right_row: RowVals) -> None:
            position, hit = lookup(right_row)

            def on_hit() -> None:
                conds = []
                if build_filter is not None or node.residual is not None:
                    left_row = self._fetch_row(columns, fields, position)
                    if build_filter is not None:
                        conds.append(self.scalars.compile(build_filter, left_row))
                    if node.residual is not None:
                        combined = left_row.merge(right_row, self.b)
                        conds.append(self.scalars.compile(
                            node.residual, combined,
                            left=left_row, right=right_row))

                def mark() -> None:
                    self.b.emit("set_add", [matched, position])

                if conds:
                    cond = conds[0]
                    for extra in conds[1:]:
                        cond = self.b.emit("and_", [cond, extra])
                    self.b.if_(cond, mark)
                else:
                    mark()

            self.b.if_(hit, on_hit)

        self.produce(node.right, probe)

        size = b.emit("table_size", [self.db], attrs={"table": scan.table},
                      hint="n")
        want_match = node.kind == "leftsemi"

        def emit_pass(position: Sym) -> None:
            left_row = self._fetch_row(columns, fields, position)
            member = self.b.emit("set_contains", [matched, position],
                                 hint="inset")
            cond = member if want_match else self.b.emit("not_", [member])
            if build_filter is not None:
                # rows the build filter rejects never entered the replaced
                # hash table, so they are emitted by neither join kind
                passes = self.scalars.compile(build_filter, left_row)
                cond = self.b.emit("and_", [passes, cond])
            self.b.if_(cond, lambda: consume(left_row))

        b.for_range(0, size, emit_pass, hint="bi")

    def _project(self, node: Q.Project, consume: Consumer) -> None:
        def projected(row: RowVals) -> None:
            values = {name: self.scalars.compile(expr, row) for name, expr in node.projections}
            consume(RowVals.scalars(values))

        self.produce(node.child, projected)

    # ------------------------------------------------------------------
    # Hash joins
    # ------------------------------------------------------------------
    def _hash_join(self, node: Q.HashJoin, consume: Consumer) -> None:
        if node.kind == "inner":
            self._hash_join_inner(node, consume)
        else:
            self._hash_join_left(node, consume)

    def _key_domain(self, key_expr: E.Expr, source_table: Optional[str] = None
                    ) -> Optional[Tuple[str, str]]:
        """The key *domain* of a join/grouping key: the primary-key column it draws from.

        A foreign key draws its values from the primary key it references, so
        two columns share a domain exactly when they resolve (through at most
        one foreign-key hop) to the same ``(table, column)``.  Shared domains
        are what make unguarded direct-array indexing safe (Section B.1's
        "aggressive memory trade-off" arrays are sized by the key domain).
        """
        if not isinstance(key_expr, E.Col):
            return None
        table = source_table or self.catalog.schema.table_of_column(key_expr.name)
        if table is None or not self.catalog.schema.has_table(table):
            return None
        if not self.catalog.schema.table(table).has_column(key_expr.name):
            return None
        column = self.catalog.schema.table(table).column(key_expr.name)
        if column.foreign_key is not None:
            return (column.foreign_key.table, column.foreign_key.column)
        return (table, key_expr.name)

    def _mmap_attrs(self, key_expr: E.Expr, build_table: Optional[str]) -> Dict:
        """Key-range / uniqueness annotations for a hash-table build (Section 3.3)."""
        attrs: Dict = {}
        domain = self._key_domain(key_expr, build_table)
        if domain is None:
            return attrs
        domain_table, domain_column = domain
        if not self.catalog.statistics.has_table(domain_table):
            return attrs
        stats = self.catalog.statistics.column(domain_table, domain_column)
        if stats.is_dense_key():
            attrs["key_lo"] = int(stats.min_value)
            attrs["key_hi"] = int(stats.max_value)
            attrs["key_column"] = key_expr.name
            attrs["key_domain"] = domain
            attrs["unique"] = (build_table is not None
                               and isinstance(key_expr, E.Col)
                               and self.catalog.is_primary_key(build_table, key_expr.name))
        return attrs

    def _partition_info(self, side: Q.Operator, key_expr: E.Expr):
        """Decide whether a hash build over ``side`` can move to loading time.

        Returns ``(scan, probe_filter)`` when the side is a base relation
        (possibly filtered) whose key column has a dense integer range, or
        ``None`` otherwise.  The filter, if any, is re-applied in the probe
        loop (Figure 7c of the paper).
        """
        if not (self.flags.data_structure_partitioning
                and self.flags.automatic_index_inference
                and self.flags.hash_table_specialization):
            return None
        probe_filter = None
        candidate = side
        if isinstance(candidate, Q.Select) and isinstance(candidate.child, Q.Scan):
            probe_filter = candidate.predicate
            candidate = candidate.child
        if not isinstance(candidate, Q.Scan) or not isinstance(key_expr, E.Col):
            return None
        table = candidate.table
        if not self.catalog.schema.table(table).has_column(key_expr.name):
            return None
        stats = self.catalog.statistics.column(table, key_expr.name)
        if not stats.is_dense_key():
            return None
        return candidate, probe_filter

    def _build_hash_table(self, side: Q.Operator, key_expr: E.Expr,
                          probe_key_expr: Optional[E.Expr] = None,
                          probe_side: Optional[Q.Operator] = None
                          ) -> Tuple[Sym, List[str], Optional[E.Expr]]:
        """Build (possibly at loading time) a MultiMap over ``side`` keyed by ``key_expr``.

        Returns ``(mmap_sym, stored_fields, probe_filter)``.
        """
        fields = Q.output_fields(side, self.catalog)
        partition = self._partition_info(side, key_expr)
        build_table = None
        if isinstance(side, Q.Scan):
            build_table = side.table
        elif isinstance(side, Q.Select) and isinstance(side.child, Q.Scan):
            build_table = side.child.table
        attrs = self._mmap_attrs(key_expr, build_table)
        if attrs:
            # Dense-array specialization pre-allocates one bucket per key of
            # the domain; that is only worthwhile when the build side is a
            # base relation (or the build happens at loading time), which is
            # also the condition Section 5.2 imposes for materialisation.
            attrs["build_is_base"] = build_table is not None
        if attrs and probe_key_expr is not None:
            probe_table = None
            if isinstance(probe_side, Q.Scan):
                probe_table = probe_side.table
            elif isinstance(probe_side, Q.Select) and isinstance(probe_side.child, Q.Scan):
                probe_table = probe_side.child.table
            probe_domain = self._key_domain(probe_key_expr, probe_table)
            # When both keys draw their values from the same primary-key
            # domain, foreign-key integrity guarantees that every probe key
            # falls inside the array's index range, so the bounds check can
            # be elided in the specialised code.
            attrs["probe_in_range"] = probe_domain == attrs.get("key_domain")

        if partition is not None:
            scan, probe_filter = partition
            attrs["partitioned"] = True
            self._use_builder(self.hoisted)
            try:
                hash_table = self.b.emit("mmap_new", [], attrs=attrs, hint="part")
                self._emit_build_loop(scan, key_expr, hash_table, fields)
            finally:
                self._pop_builder()
            return hash_table, fields, probe_filter

        hash_table = self.b.emit("mmap_new", [], attrs=attrs, hint="hm")
        self._emit_build_loop(side, key_expr, hash_table, fields)
        return hash_table, fields, None

    def _emit_build_loop(self, side: Q.Operator, key_expr: E.Expr, hash_table: Sym,
                         fields: List[str]) -> None:
        def build(row: RowVals) -> None:
            key = self.scalars.compile(key_expr, row)
            record, _ = row.materialize(self.b, self.record_layout, fields)
            self.b.emit("mmap_add", [hash_table, key, record])

        self.produce(side, build)

    def _bucket_rows(self, element: Sym, fields: Sequence[str]) -> RowVals:
        return RowVals.record_backed(self.b, element, fields, layout=self.record_layout)

    def _hash_join_inner(self, node: Q.HashJoin, consume: Consumer) -> None:
        hash_table, build_fields, probe_filter = self._build_hash_table(
            node.left, node.left_key, node.right_key, node.right)

        def probe(right_row: RowVals) -> None:
            b = self.b
            key = self.scalars.compile(node.right_key, right_row)
            bucket = b.emit("mmap_get", [hash_table, key], hint="bucket")

            def per_match(element: Sym) -> None:
                left_row = self._bucket_rows(element, build_fields)

                def emit_match() -> None:
                    combined = left_row.merge(right_row, b)
                    if node.residual is not None:
                        cond = self.scalars.compile(node.residual, combined,
                                                    left=left_row, right=right_row)
                        b.if_(cond, lambda: consume(combined))
                    else:
                        consume(combined)

                if probe_filter is not None:
                    cond = self.scalars.compile(probe_filter, left_row)
                    b.if_(cond, emit_match)
                else:
                    emit_match()

            b.foreach(bucket, per_match, hint="e")

        self.produce(node.right, probe)

    def _hash_join_left(self, node: Q.HashJoin, consume: Consumer) -> None:
        """Semi, anti and outer joins: hash the right side, stream the left side."""
        hash_table, build_fields, probe_filter = self._build_hash_table(
            node.right, node.right_key, node.left_key, node.left)

        def probe(left_row: RowVals) -> None:
            b = self.b
            key = self.scalars.compile(node.left_key, left_row)
            bucket = b.emit("mmap_get", [hash_table, key], hint="bucket")

            if node.kind in ("leftsemi", "leftanti"):
                found = b.emit("var_new", [Const(False)], hint="found")

                def per_match(element: Sym) -> None:
                    right_row = self._bucket_rows(element, build_fields)
                    conds = []
                    if probe_filter is not None:
                        conds.append(self.scalars.compile(probe_filter, right_row))
                    if node.residual is not None:
                        combined = left_row.merge(right_row, b)
                        conds.append(self.scalars.compile(node.residual, combined,
                                                          left=left_row, right=right_row))
                    def mark() -> None:
                        b.emit("var_write", [found, Const(True)])
                    if conds:
                        cond = conds[0]
                        for extra in conds[1:]:
                            cond = b.emit("and_", [cond, extra])
                        b.if_(cond, mark)
                    else:
                        mark()

                b.foreach(bucket, per_match, hint="e")
                matched = b.emit("var_read", [found])
                condition = matched if node.kind == "leftsemi" else b.emit("not_", [matched])
                b.if_(condition, lambda: consume(left_row))
                return

            # left outer join
            matched = b.emit("var_new", [Const(False)], hint="matched")

            def per_match(element: Sym) -> None:
                right_row = self._bucket_rows(element, build_fields)

                def emit_match() -> None:
                    b.emit("var_write", [matched, Const(True)])
                    consume(left_row.merge(right_row, b))

                conds = []
                if probe_filter is not None:
                    conds.append(self.scalars.compile(probe_filter, right_row))
                if node.residual is not None:
                    combined = left_row.merge(right_row, b)
                    conds.append(self.scalars.compile(node.residual, combined,
                                                      left=left_row, right=right_row))
                if conds:
                    cond = conds[0]
                    for extra in conds[1:]:
                        cond = b.emit("and_", [cond, extra])
                    b.if_(cond, emit_match)
                else:
                    emit_match()

            b.foreach(bucket, per_match, hint="e")
            was_matched = b.emit("var_read", [matched])
            b.if_(b.emit("not_", [was_matched]),
                  lambda: consume(left_row.merge(RowVals.nulls(build_fields), b)))

        self.produce(node.left, probe)

    # ------------------------------------------------------------------
    # Nested-loop joins (non-equi predicates, cross products)
    # ------------------------------------------------------------------
    def _nested_loop_join(self, node: Q.NestedLoopJoin, consume: Consumer) -> None:
        b = self.b
        right_fields = Q.output_fields(node.right, self.catalog)
        # Materialise the right side once (block nested loop), then stream the left.
        right_list = b.emit("list_new", [], hint="inner")

        def collect(row: RowVals) -> None:
            record, _ = row.materialize(self.b, self.record_layout, right_fields)
            self.b.emit("list_append", [right_list, record])

        self.produce(node.right, collect)

        def probe(left_row: RowVals) -> None:
            if node.kind == "inner":
                def per_right(element: Sym) -> None:
                    right_row = self._bucket_rows(element, right_fields)
                    combined = left_row.merge(right_row, self.b)
                    if node.predicate is not None:
                        cond = self.scalars.compile(node.predicate, combined,
                                                    left=left_row, right=right_row)
                        self.b.if_(cond, lambda: consume(combined))
                    else:
                        consume(combined)
                self.b.foreach(right_list, per_right, hint="e")
                return

            if node.kind in ("leftsemi", "leftanti"):
                found = self.b.emit("var_new", [Const(False)], hint="found")

                def per_right(element: Sym) -> None:
                    right_row = self._bucket_rows(element, right_fields)
                    if node.predicate is not None:
                        combined = left_row.merge(right_row, self.b)
                        cond = self.scalars.compile(node.predicate, combined,
                                                    left=left_row, right=right_row)
                        self.b.if_(cond, lambda: self.b.emit("var_write", [found, Const(True)]))
                    else:
                        self.b.emit("var_write", [found, Const(True)])

                self.b.foreach(right_list, per_right, hint="e")
                matched = self.b.emit("var_read", [found])
                condition = matched if node.kind == "leftsemi" else self.b.emit("not_", [matched])
                self.b.if_(condition, lambda: consume(left_row))
                return

            # left outer nested-loop join
            matched = self.b.emit("var_new", [Const(False)], hint="matched")

            def per_right(element: Sym) -> None:
                right_row = self._bucket_rows(element, right_fields)
                combined = left_row.merge(right_row, self.b)

                def emit_match() -> None:
                    self.b.emit("var_write", [matched, Const(True)])
                    consume(combined)

                if node.predicate is not None:
                    cond = self.scalars.compile(node.predicate, combined,
                                                left=left_row, right=right_row)
                    self.b.if_(cond, emit_match)
                else:
                    emit_match()

            self.b.foreach(right_list, per_right, hint="e")
            was_matched = self.b.emit("var_read", [matched])
            self.b.if_(self.b.emit("not_", [was_matched]),
                       lambda: consume(left_row.merge(RowVals.nulls(right_fields), self.b)))

        self.produce(node.left, probe)

    # ------------------------------------------------------------------
    # Aggregation
    # ------------------------------------------------------------------
    def _aggregate(self, node: Q.Agg, consume: Consumer) -> None:
        b = self.b
        agg_kinds = tuple(spec.kind for spec in node.aggregates)
        attrs: Dict = {"aggs": agg_kinds}
        if len(node.group_keys) == 1:
            attrs.update(self._mmap_attrs(node.group_keys[0][1], None))
        table = b.emit("hashmap_agg_new", [], attrs=attrs, hint="agg")

        if not node.group_keys:
            # Seed the single group of a global fold before any input row is
            # consumed: an all-``None`` update creates the group's neutral
            # accumulators without contributing to any aggregate, so an empty
            # input still finalises to one row (count=0, sum=0, others None).
            seed = [Const(None) for _ in node.aggregates]
            b.emit("hashmap_agg_update", [table, Const(0)] + seed,
                   attrs={"aggs": agg_kinds})

        def update(row: RowVals) -> None:
            if not node.group_keys:
                key: Atom = Const(0)
            elif len(node.group_keys) == 1:
                key = self.scalars.compile(node.group_keys[0][1], row)
            else:
                key_atoms = [self.scalars.compile(expr, row) for _, expr in node.group_keys]
                key = self.b.emit("tuple_new", key_atoms, hint="key")
            values = []
            for spec in node.aggregates:
                if spec.expr is None:
                    values.append(Const(1))
                else:
                    values.append(self.scalars.compile(spec.expr, row))
            self.b.emit("hashmap_agg_update", [table, key] + values, attrs={"aggs": agg_kinds})

        self.produce(node.child, update)

        with b.new_block(params=2, hints=["gk", "gv"]) as (group_block, (key_sym, values_sym)):
            row_values: Dict[str, Atom] = {}
            if len(node.group_keys) == 1:
                row_values[node.group_keys[0][0]] = key_sym
            else:
                for index, (name, _) in enumerate(node.group_keys):
                    row_values[name] = b.emit("tuple_get", [key_sym], attrs={"index": index},
                                              hint=name[:10])
            for index, spec in enumerate(node.aggregates):
                row_values[spec.name] = b.emit("tuple_get", [values_sym],
                                               attrs={"index": index}, hint=spec.name[:10])
            out_row = RowVals.scalars(row_values)
            if node.having is not None:
                cond = self.scalars.compile(node.having, out_row)
                b.if_(cond, lambda: consume(out_row))
            else:
                consume(out_row)
        b.emit("hashmap_agg_foreach", [table], attrs={"aggs": agg_kinds}, blocks=[group_block])

    # ------------------------------------------------------------------
    # Sort and limit (pipeline breakers over materialised lists)
    # ------------------------------------------------------------------
    def _sort(self, node: Q.Sort, consume: Consumer) -> None:
        b = self.b
        fields = Q.output_fields(node.child, self.catalog)
        keys = []
        for expr, order in node.keys:
            if not isinstance(expr, E.Col):
                raise PipeliningError(
                    "sort keys must be plain output columns; project the key first")
            keys.append((expr.name, order))
        buffer = b.emit("list_new", [], hint="sortbuf")

        def collect(row: RowVals) -> None:
            record, _ = row.materialize(self.b, self.record_layout, fields)
            self.b.emit("list_append", [buffer, record])

        self.produce(node.child, collect)
        sorted_list = b.emit("list_sort_by_fields", [buffer],
                             attrs={"keys": tuple(keys), "layout": self.record_layout,
                                    "fields": tuple(fields)},
                             hint="sorted")

        def emit(element: Sym) -> None:
            consume(self._bucket_rows(element, fields))

        b.foreach(sorted_list, emit, hint="e")

    def _topk(self, node: Q.TopK, consume: Consumer) -> None:
        """Fused Sort+Limit.  The compiled stacks lower it back to its
        unfused form — an ordinary sort followed by a bounded take — by
        delegating to the Limit/Sort emission: the runtime sort shares the
        null contract of :mod:`repro.engine.sortkeys`, so rows and order are
        identical to the direct engines' heap-based execution."""
        self._limit(Q.Limit(Q.Sort(node.child, node.keys), max(0, node.count)),
                    consume)

    def _limit(self, node: Q.Limit, consume: Consumer) -> None:
        b = self.b
        fields = Q.output_fields(node.child, self.catalog)
        buffer = b.emit("list_new", [], hint="limitbuf")

        def collect(row: RowVals) -> None:
            record, _ = row.materialize(self.b, self.record_layout, fields)
            self.b.emit("list_append", [buffer, record])

        self.produce(node.child, collect)
        taken = b.emit("list_take", [buffer, Const(max(0, node.count))], hint="taken")

        def emit(element: Sym) -> None:
            consume(self._bucket_rows(element, fields))

        b.foreach(taken, emit, hint="e")
