"""Hash-table specialization: lowering ScaLite[Map, List] data structures.

Section 5.2 / Appendix B.2 of the paper: the generic MultiMap and HashMap
abstractions are specialised according to how they are used.  The key facts
needed for the decision — is the key an integer with a known dense range, is
it a primary key, was the build partitioned to loading time — were attached to
the ``mmap_new`` / ``hashmap_agg_new`` statements as annotations by the
pipelining lowering (the Section 3.3 annotation mechanism).

Specialisations applied here:

* **MultiMap with a dense integer key** → an array of buckets indexed by
  ``key - lo`` (Figure 4e: ``Array[List[R]]``), removing the hashing of keys.
* **HashMap aggregation with a dense integer key** → a dense accumulator
  array (``DenseAggTable``), removing key hashing on the aggregation path.
* everything else stays on the generic (GLib-substitute) containers, which
  remain legal at every lower level.

MultiMaps whose key is additionally a *primary key* can be specialised
further (one slot per key instead of a bucket list, Figure 7d); that final
step belongs to the list-specialization lowering of the five-level stack
(:mod:`repro.transforms.list_specialization`), so when the five-level
configuration is active such maps are only marked here and left intact.
"""
from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..ir.nodes import Atom, Block, Const, Expr, Program, Stmt, Sym
from ..ir.traversal import BlockRewriter, rewrite_program, substitute_block
from ..ir.types import BOOL, INT
from ..stack.context import CompilationContext
from ..stack.language import Language, SCALITE_MAP_LIST
from ..stack.transformation import Lowering


class HashTableSpecialization(Lowering):
    """Lower MultiMap/HashMap abstractions into arrays where annotations allow."""

    def __init__(self, target: Language, defer_unique_to_list_level: bool = False) -> None:
        self.name = "hash-table-specialization"
        self.defer_unique = defer_unique_to_list_level
        super().__init__(SCALITE_MAP_LIST, target)

    def run(self, program: Program, context: CompilationContext) -> Program:
        if not context.flags.hash_table_specialization:
            return Program(body=program.body, params=program.params,
                           language=self.target.name, hoisted=program.hoisted)
        specializer = _Specializer(context, self.defer_unique)
        rewritten = rewrite_program(program, specializer.rewrite,
                                    language=self.target.name)
        return rewritten


class _Specializer:
    """Statement rewriter shared by the hash-table specialization lowering."""

    def __init__(self, context: CompilationContext, defer_unique: bool) -> None:
        self.context = context
        self.flags = context.flags
        self.defer_unique = defer_unique
        #: array sym id -> (array, lo, hi, empty_list, needs_bounds_guard)
        self.arrays: Dict[int, Tuple[Sym, int, int, Sym, bool]] = {}
        #: dense aggregation table sym id -> lo offset
        self.dense_aggs: Dict[int, int] = {}

    # ------------------------------------------------------------------
    def rewrite(self, stmt: Stmt, rw: BlockRewriter) -> Optional[Atom]:
        op = stmt.expr.op
        if op == "mmap_new":
            return self._mmap_new(stmt, rw)
        if op == "mmap_add":
            return self._mmap_add(stmt, rw)
        if op == "mmap_get":
            return self._mmap_get(stmt, rw)
        if op == "hashmap_agg_new":
            return self._agg_new(stmt, rw)
        if op == "hashmap_agg_update":
            return self._agg_update(stmt, rw)
        if op == "hashmap_agg_foreach":
            return self._agg_foreach(stmt, rw)
        return None

    # ------------------------------------------------------------------
    # MultiMaps
    # ------------------------------------------------------------------
    def _dense_range(self, attrs: Dict) -> Optional[Tuple[int, int]]:
        if "key_lo" not in attrs or "key_hi" not in attrs:
            return None
        return int(attrs["key_lo"]), int(attrs["key_hi"])

    def _mmap_new(self, stmt: Stmt, rw: BlockRewriter) -> Optional[Atom]:
        key_range = self._dense_range(stmt.expr.attrs)
        if key_range is None:
            return None
        if not (stmt.expr.attrs.get("build_is_base") or stmt.expr.attrs.get("partitioned")):
            # Intermediate relations keep the generic container: pre-allocating
            # one bucket per key of the whole domain only pays off when the
            # build covers (a filtered subset of) a base relation.
            return None
        if stmt.expr.attrs.get("unique") and self.defer_unique and self.flags.list_specialization:
            # Leave primary-key maps for the list-specialization lowering.
            return None
        lo, hi = key_range
        size = hi - lo + 1
        # One (initially empty) bucket per possible key: probing never needs a
        # presence check, mirroring the pre-allocated partitions of Section B.1.
        array = rw.emit("array_new", [Const(size)], attrs={"init_kind": "empty_lists"},
                        hint="buckets")
        empty = rw.emit("list_new", [], hint="nobucket")
        guarded = not stmt.expr.attrs.get("probe_in_range", False)
        self.arrays[array.id] = (array, lo, hi, empty, guarded)
        return array

    def _mmap_add(self, stmt: Stmt, rw: BlockRewriter) -> Optional[Atom]:
        target = stmt.expr.args[0]
        if not isinstance(target, Sym) or target.id not in self.arrays:
            return None
        array, lo, _, _, _ = self.arrays[target.id]
        _, key, value = stmt.expr.args
        index = self._offset(rw, key, lo)
        bucket = rw.emit("array_get", [array, index], hint="slot")
        rw.emit("list_append", [bucket, value])
        return Const(None)

    def _mmap_get(self, stmt: Stmt, rw: BlockRewriter) -> Optional[Atom]:
        target = stmt.expr.args[0]
        if not isinstance(target, Sym) or target.id not in self.arrays:
            return None
        array, lo, hi, empty, guarded = self.arrays[target.id]
        key = stmt.expr.args[1]
        index = self._offset(rw, key, lo)
        if not guarded:
            # Build and probe keys share a key domain: the index is always valid.
            return rw.emit("array_get", [array, index], hint="bucket")
        above = rw.emit("ge", [key, Const(lo)], tpe=BOOL)
        below = rw.emit("le", [key, Const(hi)], tpe=BOOL)
        in_range = rw.emit("and_", [above, below], tpe=BOOL, hint="inrange")
        hit_block = Block()
        raw = Sym("slot")
        hit_block.stmts.append(Stmt(raw, Expr("array_get", (array, index))))
        hit_block.result = raw
        miss_block = Block(result=empty)
        return rw.emit("if_", [in_range], blocks=(hit_block, miss_block), hint="bucket")

    # ------------------------------------------------------------------
    # Aggregation hash maps
    # ------------------------------------------------------------------
    def _agg_new(self, stmt: Stmt, rw: BlockRewriter) -> Optional[Atom]:
        key_range = self._dense_range(stmt.expr.attrs)
        if key_range is None:
            return None
        lo, hi = key_range
        size = hi - lo + 1
        dense = rw.emit("dense_agg_new", [Const(size)],
                        attrs={"aggs": tuple(stmt.expr.attrs["aggs"])}, hint="dense")
        self.dense_aggs[dense.id] = lo
        return dense

    def _agg_update(self, stmt: Stmt, rw: BlockRewriter) -> Optional[Atom]:
        target = stmt.expr.args[0]
        if not isinstance(target, Sym) or target.id not in self.dense_aggs:
            return None
        lo = self.dense_aggs[target.id]
        key = stmt.expr.args[1]
        values = list(stmt.expr.args[2:])
        index = self._offset(rw, key, lo)
        rw.emit("dense_agg_update", [target, index] + values,
                attrs=dict(stmt.expr.attrs))
        return Const(None)

    def _agg_foreach(self, stmt: Stmt, rw: BlockRewriter) -> Optional[Atom]:
        target = stmt.expr.args[0]
        if not isinstance(target, Sym) or target.id not in self.dense_aggs:
            return None
        lo = self.dense_aggs[target.id]
        body = stmt.expr.blocks[0]
        old_key, old_values = body.params
        new_index = Sym("gidx", INT)
        new_values = Sym("gvals")
        real_key = Sym("gkey", INT)
        substituted = substitute_block(body, {old_key: real_key, old_values: new_values})
        rewritten_inner = rw.rewrite_nested(substituted)
        stmts = [Stmt(real_key, Expr("add", (new_index, Const(lo)), {}, (), INT))]
        stmts.extend(rewritten_inner.stmts)
        new_body = Block(stmts, rewritten_inner.result, (new_index, new_values))
        rw.emit("dense_agg_foreach", [target], attrs=dict(stmt.expr.attrs),
                blocks=(new_body,))
        return Const(None)

    # ------------------------------------------------------------------
    @staticmethod
    def _offset(rw: BlockRewriter, key: Atom, lo: int) -> Atom:
        if lo == 0:
            return key
        return rw.emit("sub", [key, Const(lo)], tpe=INT, hint="idx")
