"""The final lowering: ScaLite → C.Py (explicit memory level).

In the paper this step introduces explicit memory management (malloc/free or
memory pools) and fixes the physical data layout before unparsing to C.  For
the Python target the memory-management decisions amount to:

* choosing the concrete representation of records that are still boxed
  (dictionaries) versus row tuples — already decided upstream by the layout
  flag, so this lowering normalises the remaining attrs, and
* re-labelling the program into the C.Py language, whose op vocabulary is a
  superset of ScaLite's.

It intentionally stays thin: the heavy lifting happens in the optimizations
of the levels above, which is exactly the separation of concerns the paper
argues for.
"""
from __future__ import annotations

from ..ir.nodes import Program
from ..stack.context import CompilationContext
from ..stack.language import C_PY, Language, SCALITE
from ..stack.transformation import Lowering


class ScaLiteToCPy(Lowering):
    """Relabel a ScaLite program as C.Py after fixing memory-level details."""

    name = "scalite-to-c.py"

    def __init__(self, source: Language = SCALITE, target: Language = C_PY) -> None:
        super().__init__(source, target)

    def run(self, program: Program, context: CompilationContext) -> Program:
        return Program(body=program.body, params=program.params,
                       language=self.target.name, hoisted=program.hoisted)
