"""Fine-grained control-flow optimizations (Appendix E of the paper).

The paper's example is rewriting ``x && y`` into ``x & y`` when both operands
are boolean and the second has no side effects, which improves branch
prediction in the generated C.  The Python analogue replaces the short-circuit
``and`` / ``or`` with the non-branching ``&`` / ``|`` operators.  The safety
condition is identical: both operands must already be evaluated (ANF
guarantees it) and boolean-valued.
"""
from __future__ import annotations

from typing import Optional

from ..ir.nodes import Atom, Const, Program, Stmt
from ..ir.traversal import BlockRewriter, rewrite_program
from ..stack.context import CompilationContext
from ..stack.language import Language
from ..stack.transformation import Optimization
from .analysis import definition_map

#: ops that are known to produce booleans
_BOOLEAN_OPS = {"eq", "ne", "lt", "le", "gt", "ge", "and_", "or_", "not_", "band", "bor",
                "str_contains", "str_startswith", "str_endswith", "str_like", "str_in",
                "set_contains"}


class BranchlessBooleans(Optimization):
    """Replace short-circuit boolean connectives with bitwise operators."""

    flag = "control_flow_opts"

    def __init__(self, language: Language) -> None:
        super().__init__(language)
        self.name = f"branchless-booleans[{language.name}]"

    def run(self, program: Program, context: CompilationContext) -> Program:
        defs = definition_map(program)

        def is_boolean(atom: Atom) -> bool:
            if isinstance(atom, Const):
                return isinstance(atom.value, bool)
            stmt = defs.get(atom.id)
            return stmt is not None and stmt.expr.op in _BOOLEAN_OPS

        def rewrite(stmt: Stmt, rewriter: BlockRewriter) -> Optional[Atom]:
            if stmt.expr.op not in ("and_", "or_"):
                return None
            if not all(is_boolean(arg) for arg in stmt.expr.args):
                return None
            op = "band" if stmt.expr.op == "and_" else "bor"
            return rewriter.emit(op, list(stmt.expr.args), hint="flag")

        return rewrite_program(program, rewrite, language=program.language)
