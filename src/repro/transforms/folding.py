"""Analysis-driven predicate folding and dead-branch elimination.

Where :mod:`repro.transforms.partial_eval` folds operations whose arguments
are literal constants, this pass folds predicates whose *value facts* are
provable from the interval + nullability analysis
(:mod:`repro.analysis.dataflow.values`), which is seeded from the catalog's
load-time statistics:

* a comparison whose operand intervals do not overlap folds to its constant
  verdict (``lt(year, 2050)`` with ``year`` inside the column's [min, max]);
* a null check against a column with zero nulls — or against an
  ``access_index_lookup`` probe whose key carries a declared foreign key —
  folds the same way: the ``ne(position, None)`` hit checks of inner index
  joins over FK-backed keys are provably always true;
* an ``if_`` whose condition folded becomes its taken arm, spliced into the
  enclosing block — provided the dropped arm is effect-free, so removing it
  is unobservable.

Every eliminated branch records a justification in
``context.info["dataflow_justifications"]`` under the ``if_`` binding's sym
id; the verifier's transition audit refuses the unwrap without it and
re-proves the condition on the input program.
"""
from __future__ import annotations

from typing import Dict, List, Optional

from ..analysis.dataflow.framework import use_def
from ..analysis.dataflow.values import ValueFacts, value_facts
from ..ir.nodes import Atom, Block, Const, Expr, Program, Stmt, Sym
from ..ir.traversal import block_effect
from ..stack.context import CompilationContext
from ..stack.language import Language
from ..stack.transformation import Optimization

#: pure boolean-valued ops eligible for verdict folding
_PREDICATE_OPS = frozenset({"eq", "ne", "lt", "le", "gt", "ge",
                            "and_", "or_", "not_"})


class DataflowFolding(Optimization):
    """Fold provably-constant predicates and eliminate decided branches."""

    flag = "dataflow_folding"

    def __init__(self, language: Language) -> None:
        super().__init__(language)
        self.name = f"dataflow-folding[{language.name}]"

    def run(self, program: Program, context: CompilationContext) -> Program:
        facts = value_facts(program, context.catalog)
        folder = _Folder(facts, use_def(program).uses)
        hoisted = folder.rewrite_block(program.hoisted)
        body = folder.rewrite_block(program.body)
        if not folder.changed:
            return program
        if folder.justifications:
            context.info.setdefault("dataflow_justifications", {}).update(
                folder.justifications)
        return Program(body=body, params=program.params,
                       language=program.language, hoisted=hoisted)


class _Folder:
    def __init__(self, facts: ValueFacts, uses: Dict[int, int]) -> None:
        self.facts = facts
        self.uses = uses
        self.mapping: Dict[int, Atom] = {}
        self.justifications: Dict[int, str] = {}
        self.changed = False

    # ------------------------------------------------------------------
    def subst(self, atom: Atom) -> Atom:
        if isinstance(atom, Sym):
            return self.mapping.get(atom.id, atom)
        return atom

    def rewrite_block(self, block: Block) -> Block:
        new_stmts: List[Stmt] = []
        for stmt in block.stmts:
            expr = stmt.expr
            args = tuple(self.subst(arg) for arg in expr.args)

            if expr.op == "if_":
                verdict = self._branch_verdict(args[0] if args else None)
                if verdict is not None:
                    taken = expr.blocks[0] if verdict else expr.blocks[1]
                    dropped = expr.blocks[1] if verdict else expr.blocks[0]
                    result_is_none = isinstance(taken.result, Const) \
                        and taken.result.value is None
                    # Unwrapping a branch whose taken arm yields None would
                    # substitute a None literal into every consumer —
                    # unreachable code, but it unparses as ``None[...]`` for
                    # subscripting consumers.  Keep the branch instead.
                    if block_effect(dropped).removable_if_unused and not (
                            result_is_none and self.uses.get(stmt.sym.id, 0) > 0):
                        spliced = self.rewrite_block(taken)
                        new_stmts.extend(spliced.stmts)
                        self.mapping[stmt.sym.id] = self.subst(spliced.result)
                        self.justifications[stmt.sym.id] = (
                            f"if_ condition provably "
                            f"{'true' if verdict else 'false'} "
                            "(interval/nullability analysis)")
                        self.changed = True
                        continue

            folded = self._fold_predicate(stmt, args)
            if folded is not None:
                self.mapping[stmt.sym.id] = folded
                self.changed = True
                continue

            blocks = expr.blocks
            if blocks:
                outer_changed = self.changed
                self.changed = False
                rewritten = tuple(self.rewrite_block(nested) for nested in blocks)
                if self.changed:
                    blocks = rewritten
                self.changed = self.changed or outer_changed
            if args != expr.args or blocks is not expr.blocks:
                expr = Expr(expr.op, args, dict(expr.attrs), blocks, expr.type)
                stmt = Stmt(stmt.sym, expr)
                self.changed = True
            new_stmts.append(stmt)
        return Block(new_stmts, self.subst(block.result), block.params)

    # ------------------------------------------------------------------
    def _branch_verdict(self, cond: Optional[Atom]) -> Optional[bool]:
        if isinstance(cond, Const):
            return bool(cond.value)
        if isinstance(cond, Sym):
            interval = self.facts.fact_of(cond.id).interval
            if interval.known_true:
                return True
            if interval.known_false:
                return False
        return None

    def _fold_predicate(self, stmt: Stmt, args: tuple) -> Optional[Const]:
        if stmt.expr.op not in _PREDICATE_OPS or stmt.expr.blocks:
            return None
        if all(isinstance(arg, Const) for arg in args):
            return None  # literal folding is partial evaluation's job
        fact = self.facts.fact_of(stmt.sym.id)
        if fact.interval.known_true:
            return Const(True)
        if fact.interval.known_false:
            return Const(False)
        return None
