"""Scalar replacement and struct flattening (Appendix C of the paper).

``record_get`` of a record that was just constructed with ``record_new`` in an
enclosing scope is replaced by the original field value, removing a memory
access from the critical path.  Records whose every use disappears this way
are then removed by dead-code elimination, which flattens the struct into
local variables.
"""
from __future__ import annotations

from typing import Optional, Tuple

from ..ir.nodes import Atom, Program, Stmt, Sym
from ..ir.traversal import BlockRewriter, rewrite_program
from ..stack.context import CompilationContext
from ..stack.language import Language
from ..stack.transformation import Optimization
from .analysis import definition_map


class ScalarReplacement(Optimization):
    """Forward record fields read back out of freshly constructed records."""

    flag = "scalar_replacement"

    def __init__(self, language: Language) -> None:
        super().__init__(language)
        self.name = f"scalar-replacement[{language.name}]"

    def run(self, program: Program, context: CompilationContext) -> Program:
        defs = definition_map(program)

        def forward(stmt: Stmt, rewriter: BlockRewriter) -> Optional[Atom]:
            if stmt.expr.op != "record_get":
                return None
            record = stmt.expr.args[0]
            if not isinstance(record, Sym):
                return None
            definition = defs.get(record.id)
            if definition is None or definition.expr.op != "record_new":
                return None
            fields: Tuple[str, ...] = tuple(definition.expr.attrs["fields"])
            field = stmt.expr.attrs["field"]
            if field not in fields:
                return None
            return definition.expr.args[fields.index(field)]

        return rewrite_program(program, forward, language=program.language)
