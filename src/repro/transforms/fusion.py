"""Shortcut fusion for the QMonad front end (Section 5.1 of the paper).

Two pieces live here:

* :class:`MonadFusionRules` — the algebraic rewrite rules of the Monad
  Calculus applied *within* QMonad (Figure 5's ``R.map(f).map(g) ->
  R.map(f o g)`` together with filter fusion).  They are an optimization: the
  source and target language are both QMonad.
* :class:`QMonadShortcutFusionLowering` — the lowering from QMonad into the
  imperative ScaLite levels.  Every operator is expressed in the
  producer/consumer (build/foreach) encoding; inlining that encoding is what
  turns the chain of collection operators into a single pipelined loop nest.
  As the paper notes, the result coincides with the push engine used for
  QPlan, so the lowering reuses the same machinery
  (:class:`repro.transforms.pipelining._PushCompiler`).
"""
from __future__ import annotations

from typing import Dict

from ..dsl import expr as E
from ..dsl import qmonad as M
from ..dsl import qplan as Q
from ..stack.context import CompilationContext
from ..stack.language import Language, QMONAD
from ..stack.transformation import Lowering, Optimization
from .pipelining import _PushCompiler


class MonadFusionRules(Optimization):
    """Algebraic fusion rules applied inside QMonad (map/map and filter/filter)."""

    flag = "horizontal_fusion"
    name = "monad-fusion[QMonad]"

    def __init__(self) -> None:
        super().__init__(QMONAD)

    def run(self, query: M.QueryMonad, context: CompilationContext) -> M.QueryMonad:
        return _fuse(query)


def _fuse(query: M.QueryMonad) -> M.QueryMonad:
    children = tuple(_fuse(child) for child in query.children)
    query = M.QueryMonad(query.op, dict(query.args), children)

    # filter(p2) . filter(p1)  ->  filter(p1 and p2): one traversal, one test.
    if query.op == "filter" and children and children[0].op == "filter":
        inner = children[0]
        combined = E.BinOp("and", inner.args["predicate"], query.args["predicate"])
        return M.QueryMonad("filter", {"predicate": combined}, inner.children)

    # map(g) . map(f)  ->  map(g o f): Figure 5 of the paper.
    if query.op == "map" and children and children[0].op == "map":
        inner = children[0]
        inner_by_name: Dict[str, E.Expr] = dict(inner.args["projections"])
        composed = tuple((name, _substitute(expr, inner_by_name))
                         for name, expr in query.args["projections"])
        return M.QueryMonad("map", {"projections": composed}, inner.children)

    return query


def _substitute(expression: E.Expr, bindings: Dict[str, E.Expr]) -> E.Expr:
    """Replace column references by the expressions of an inner projection."""
    if isinstance(expression, E.Col) and expression.side is None:
        return bindings.get(expression.name, expression)
    if isinstance(expression, E.Lit):
        return expression
    if isinstance(expression, E.BinOp):
        return E.BinOp(expression.op, _substitute(expression.left, bindings),
                       _substitute(expression.right, bindings))
    if isinstance(expression, E.UnaryOp):
        return E.UnaryOp(expression.op, _substitute(expression.operand, bindings))
    if isinstance(expression, E.Like):
        return E.Like(_substitute(expression.operand, bindings), expression.pattern)
    if isinstance(expression, E.InList):
        return E.InList(_substitute(expression.operand, bindings), expression.values)
    if isinstance(expression, E.Case):
        return E.Case(tuple((_substitute(c, bindings), _substitute(v, bindings))
                            for c, v in expression.whens),
                      _substitute(expression.otherwise, bindings))
    if isinstance(expression, E.Substr):
        return E.Substr(_substitute(expression.operand, bindings), expression.start,
                        expression.length)
    if isinstance(expression, E.YearOf):
        return E.YearOf(_substitute(expression.operand, bindings))
    if isinstance(expression, E.IsNull):
        return E.IsNull(_substitute(expression.operand, bindings))
    return expression


class QMonadShortcutFusionLowering(Lowering):
    """Lower a QMonad chain to imperative code through the build/foreach encoding."""

    def __init__(self, target: Language, name: str = "qmonad-shortcut-fusion") -> None:
        self.name = name
        super().__init__(QMONAD, target)

    def run(self, query: M.QueryMonad, context: CompilationContext):
        if context.catalog is None:
            raise M.QMonadError("shortcut fusion requires a catalog in the context")
        plan = M.to_qplan(query)
        Q.validate(plan, context.catalog)
        compiler = _PushCompiler(context, self.target)
        return compiler.compile(plan)
