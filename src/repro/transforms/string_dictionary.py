"""String dictionaries (Section 5.3, Table 2 of the paper).

String comparisons are among the most expensive per-tuple operations of a
query.  This optimization, applied at the ScaLite[Map, List] level, detects
comparisons between a base-table string column and constant strings, builds a
dictionary for that column at data-loading time, integer-encodes the column
once, and rewrites the comparisons into integer comparisons:

==============  ===========================  =========================
operation       before                       after
==============  ===========================  =========================
equals          ``strcmp(x, y) == 0``        ``x == y`` (codes)
notEquals       ``strcmp(x, y) != 0``        ``x != y`` (codes)
startsWith      ``strncmp(x, y, len(y))==0`` ``start <= x <= end``
IN (v1, .. vn)  n string comparisons          n integer comparisons
==============  ===========================  =========================

``startsWith`` requires an *order-preserving* dictionary so that the strings
with a given prefix form a contiguous code range.  Dictionary building and
column encoding are charged to data loading (the hoisted block), which is why
this optimization is not TPC-H compliant.

With the ``catalog_access_layer`` flag the hoisted section does not build and
encode anything per query: it fetches the **catalog-resident** sorted
dictionary and its shared per-row code column from the physical access layer
(:meth:`repro.storage.access.AccessLayer.dictionary`) — the same structures
the vectorized engine's predicate rewrite uses — so a whole workload of
compiled queries encodes each column exactly once per loaded database.
Catalog dictionaries are always sorted, hence always order-preserving; the
per-query path remains the fallback for columns the access layer declines
(near-unique or non-string data).
"""
from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from ..ir.nodes import Atom, Block, Const, Expr, Program, Stmt, Sym
from ..ir.traversal import BlockRewriter, iter_stmts, rewrite_program
from ..ir.types import BOOL, INT
from ..stack.context import CompilationContext
from ..stack.language import Language, SCALITE_MAP_LIST
from ..stack.transformation import Optimization
from .analysis import definition_map, trace_to_table_column

#: comparison ops that can be retargeted onto dictionary codes
_REWRITABLE = {"eq", "ne", "str_startswith", "str_in"}


class StringDictionaries(Optimization):
    """Rewrite constant string comparisons into integer comparisons."""

    flag = "string_dictionaries"

    def __init__(self, language: Language = SCALITE_MAP_LIST) -> None:
        super().__init__(language)
        self.name = f"string-dictionaries[{language.name}]"

    # ------------------------------------------------------------------
    def run(self, program: Program, context: CompilationContext) -> Program:
        defs = definition_map(program)
        candidates = self._find_candidates(program, defs, context)
        if not candidates:
            return program

        # Which columns need an order-preserving dictionary?
        ordered_columns: Set[Tuple[str, str]] = {
            column for column, stmt in candidates if stmt.expr.op == "str_startswith"}
        columns = {column for column, _ in candidates}

        # Build (or, with the catalog access layer, fetch) dictionaries and
        # encoded columns in the hoisted block.
        catalog_backed = self._catalog_backed_columns(columns, context)
        hoisted_stmts = list(program.hoisted.stmts)
        dictionaries: Dict[Tuple[str, str], Tuple[Sym, Sym]] = {}
        db = program.params[0]
        for table, column in sorted(columns):
            dictionary = Sym("sdict")
            encoded = Sym("enccol")
            if (table, column) in catalog_backed:
                # The catalog's sorted dictionary and its shared code column:
                # nothing is re-encoded per query, and every compiled query
                # (and the vectorized engine) reads the same structures.
                hoisted_stmts.append(Stmt(dictionary, Expr(
                    "access_strdict", (db,),
                    {"table": table, "column": column})))
                hoisted_stmts.append(Stmt(encoded, Expr(
                    "access_strdict_codes", (db,),
                    {"table": table, "column": column})))
            else:
                raw = Sym("sdcol", type=INT)
                hoisted_stmts.append(Stmt(raw, Expr("table_column", (db,),
                                                    {"table": table, "column": column})))
                hoisted_stmts.append(Stmt(dictionary, Expr(
                    "strdict_build", (raw,),
                    {"table": table, "column": column,
                     "ordered": (table, column) in ordered_columns})))
                hoisted_stmts.append(Stmt(encoded, Expr("strdict_encode_column",
                                                        (dictionary, raw), {})))
            dictionaries[(table, column)] = (dictionary, encoded)

        # Pre-compute constant codes / prefix ranges in the hoisted block.
        codes: Dict[Tuple[str, str, str, str], Sym] = {}
        for (table, column), stmt in candidates:
            dictionary, _ = dictionaries[(table, column)]
            for kind, text in self._constants_of(stmt):
                key = (table, column, kind, text)
                if key in codes:
                    continue
                if kind == "prefix":
                    rng = Sym("sdrange")
                    # both range ops share the inclusive [lo, hi] contract of
                    # the ge/le comparisons emitted below
                    range_op = ("access_prefix_range"
                                if (table, column) in catalog_backed
                                else "strdict_prefix_range")
                    hoisted_stmts.append(Stmt(rng, Expr(range_op,
                                                        (dictionary, Const(text)), {})))
                    lo = Sym("sdlo", type=INT)
                    hoisted_stmts.append(Stmt(lo, Expr("tuple_get", (rng,), {"index": 0})))
                    hi = Sym("sdhi", type=INT)
                    hoisted_stmts.append(Stmt(hi, Expr("tuple_get", (rng,), {"index": 1})))
                    codes[key] = (lo, hi)  # type: ignore[assignment]
                else:
                    code = Sym("sdcode", type=INT)
                    hoisted_stmts.append(Stmt(code, Expr("strdict_code",
                                                         (dictionary, Const(text)), {})))
                    codes[key] = code

        columns_by_sym = {stmt.sym.id: column for column, stmt in candidates}

        def rewrite(stmt: Stmt, rewriter: BlockRewriter) -> Optional[Atom]:
            if stmt.sym.id not in columns_by_sym:
                return None
            table_column_pair = columns_by_sym[stmt.sym.id]
            _, encoded = dictionaries[table_column_pair]
            value_sym = self._string_operand(stmt)
            definition = defs[value_sym.id]
            index_atom = definition.expr.args[1]
            code_value = rewriter.emit("array_get", [encoded, index_atom],
                                       tpe=INT, hint="scode")
            table, column = table_column_pair
            if stmt.expr.op in ("eq", "ne"):
                text = self._other_operand(stmt).value
                code_const = codes[(table, column, "value", text)]
                return rewriter.emit(stmt.expr.op, [code_value, code_const],
                                     tpe=BOOL, hint="cmp")
            if stmt.expr.op == "str_startswith":
                text = stmt.expr.args[1].value
                lo, hi = codes[(table, column, "prefix", text)]
                above = rewriter.emit("ge", [code_value, lo], tpe=BOOL)
                below = rewriter.emit("le", [code_value, hi], tpe=BOOL)
                return rewriter.emit("and_", [above, below], tpe=BOOL, hint="inrange")
            if stmt.expr.op == "str_in":
                values = tuple(stmt.expr.attrs["values"])
                result: Optional[Sym] = None
                for text in values:
                    code_const = codes[(table, column, "value", text)]
                    comparison = rewriter.emit("eq", [code_value, code_const], tpe=BOOL)
                    result = comparison if result is None else \
                        rewriter.emit("or_", [result, comparison], tpe=BOOL)
                return result
            return None

        rewritten = rewrite_program(program, rewrite, language=program.language)
        rewritten.hoisted = Block(hoisted_stmts, program.hoisted.result,
                                  program.hoisted.params)
        context.info.setdefault("string_dictionary_columns", set()).update(columns)
        return rewritten

    # ------------------------------------------------------------------
    # Catalog-backed dictionaries
    # ------------------------------------------------------------------
    @staticmethod
    def _catalog_backed_columns(columns: Set[Tuple[str, str]],
                                context: CompilationContext
                                ) -> Set[Tuple[str, str]]:
        """The columns whose dictionary the catalog's access layer serves.

        Consulted at compile time against the compilation catalog: the access
        layer builds lazily and memoizes on the catalog, so asking here *is*
        the load-time construction — every later query (compiled or direct)
        reuses the same object.  Columns the layer declines (near-unique,
        non-string values) keep the per-query hoisted build.
        """
        if not getattr(context.flags, "catalog_access_layer", False):
            return set()
        catalog = context.catalog
        if catalog is None or not hasattr(catalog, "access_layer"):
            return set()
        layer = catalog.access_layer()
        return {(table, column) for table, column in columns
                if layer.dictionary(table, column) is not None}

    # ------------------------------------------------------------------
    # Candidate discovery
    # ------------------------------------------------------------------
    def _find_candidates(self, program: Program, defs, context
                         ) -> List[Tuple[Tuple[str, str], Stmt]]:
        catalog = context.catalog
        candidates: List[Tuple[Tuple[str, str], Stmt]] = []
        for stmt, _ in iter_stmts(program.body):
            if stmt.expr.op not in _REWRITABLE:
                continue
            operand = self._string_operand(stmt)
            if operand is None:
                continue
            if not self._constants_of(stmt):
                continue
            definition = defs.get(operand.id)
            if definition is None or definition.expr.op != "array_get":
                continue
            traced = trace_to_table_column(operand, defs)
            if traced is None:
                continue
            table, column = traced
            if catalog is not None:
                column_type = catalog.schema.table(table).column_type(column)
                from ..ir.types import STRING
                if column_type is not STRING:
                    continue
                # String dictionaries hurt for near-unique attributes (Section
                # 5.3): skip columns whose values are (almost) all distinct.
                stats = catalog.statistics.column(table, column)
                if stats.num_rows > 0 and stats.num_distinct > 0.8 * stats.num_rows:
                    continue
            candidates.append(((table, column), stmt))
        return candidates

    @staticmethod
    def _string_operand(stmt: Stmt) -> Optional[Sym]:
        args = stmt.expr.args
        if stmt.expr.op in ("eq", "ne"):
            if len(args) == 2 and isinstance(args[0], Sym) and isinstance(args[1], Const) \
                    and isinstance(args[1].value, str):
                return args[0]
            return None
        if stmt.expr.op == "str_startswith":
            if isinstance(args[0], Sym) and isinstance(args[1], Const):
                return args[0]
            return None
        if stmt.expr.op == "str_in":
            values = stmt.expr.attrs.get("values", ())
            if isinstance(args[0], Sym) and values and all(isinstance(v, str) for v in values):
                return args[0]
            return None
        return None

    @staticmethod
    def _constants_of(stmt: Stmt) -> List[Tuple[str, str]]:
        if stmt.expr.op in ("eq", "ne"):
            constant = stmt.expr.args[1]
            if isinstance(constant, Const) and isinstance(constant.value, str):
                return [("value", constant.value)]
            return []
        if stmt.expr.op == "str_startswith":
            return [("prefix", stmt.expr.args[1].value)]
        if stmt.expr.op == "str_in":
            return [("value", text) for text in stmt.expr.attrs.get("values", ())]
        return []

    @staticmethod
    def _other_operand(stmt: Stmt) -> Const:
        return stmt.expr.args[1]
