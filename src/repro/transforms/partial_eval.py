"""Partial evaluation (constant folding) of pure scalar operations.

One of the "standard compiler optimizations" the paper lists in Section 6.
Pure arithmetic, comparisons and logic over constants are folded at compile
time; the statement disappears and its uses are replaced by the folded value.
"""
from __future__ import annotations

import operator
from typing import Optional

from ..ir.nodes import Const, Program, Stmt
from ..ir.traversal import BlockRewriter, rewrite_program
from ..stack.context import CompilationContext
from ..stack.language import Language
from ..stack.transformation import Optimization

_FOLDABLE = {
    "add": operator.add,
    "sub": operator.sub,
    "mul": operator.mul,
    "mod": operator.mod,
    "eq": operator.eq,
    "ne": operator.ne,
    "lt": operator.lt,
    "le": operator.le,
    "gt": operator.gt,
    "ge": operator.ge,
    "min2": min,
    "max2": max,
}


class PartialEvaluation(Optimization):
    """Fold pure operations whose arguments are all compile-time constants."""

    flag = "partial_evaluation"

    def __init__(self, language: Language) -> None:
        super().__init__(language)
        self.name = f"partial-evaluation[{language.name}]"

    def run(self, program: Program, context: CompilationContext) -> Program:
        def fold(stmt: Stmt, rewriter: BlockRewriter) -> Optional[Const]:
            expr = stmt.expr
            if not all(isinstance(arg, Const) for arg in expr.args):
                return None
            values = [arg.value for arg in expr.args]
            # ZeroDivisionError covers `mod` with a constant zero divisor and
            # OverflowError covers e.g. huge float exponents: a fold that
            # cannot be computed at compile time is skipped, never raised —
            # the runtime expression keeps its own failure behaviour.
            if expr.op in _FOLDABLE and len(values) == 2:
                try:
                    return Const(_FOLDABLE[expr.op](values[0], values[1]))
                except (TypeError, ZeroDivisionError, OverflowError):
                    return None
            if expr.op == "div" and len(values) == 2 and values[1] not in (0, 0.0):
                try:
                    return Const(values[0] / values[1])
                except (TypeError, ZeroDivisionError, OverflowError):
                    return None
            if expr.op == "neg" and len(values) == 1:
                try:
                    return Const(-values[0])
                except TypeError:
                    return None
            if expr.op == "not_" and len(values) == 1:
                return Const(not values[0])
            if expr.op == "and_" and len(values) == 2:
                return Const(bool(values[0]) and bool(values[1]))
            if expr.op == "or_" and len(values) == 2:
                return Const(bool(values[0]) or bool(values[1]))
            if expr.op == "year_of_date" and len(values) == 1 and isinstance(values[0], int):
                return Const(values[0] // 10000)
            return None

        return rewrite_program(program, fold, language=program.language)
