"""Shared program-analysis helpers for the IR-level transformations."""
from __future__ import annotations

from typing import Dict, Optional

from ..ir.nodes import Atom, Block, Program, Stmt, Sym
from ..ir.traversal import iter_program_stmts


def definition_map(program: Program) -> Dict[int, Stmt]:
    """Map every symbol id to the statement defining it."""
    defs: Dict[int, Stmt] = {}
    for stmt, _ in iter_program_stmts(program):
        defs[stmt.sym.id] = stmt
    return defs


def use_counts(program: Program) -> Dict[int, int]:
    """Count how many times each symbol is referenced as an argument or result."""
    counts: Dict[int, int] = {}

    def visit_block(block: Block) -> None:
        for stmt in block.stmts:
            for arg in stmt.expr.args:
                if isinstance(arg, Sym):
                    counts[arg.id] = counts.get(arg.id, 0) + 1
            for nested in stmt.expr.blocks:
                visit_block(nested)
        if isinstance(block.result, Sym):
            counts[block.result.id] = counts.get(block.result.id, 0) + 1

    visit_block(program.hoisted)
    visit_block(program.body)
    return counts


def trace_to_table_column(atom: Atom, defs: Dict[int, Stmt]) -> Optional[tuple]:
    """If ``atom`` is (a read of) a base-table column value, return ``(table, column)``.

    Recognises the pattern ``x = array_get(col, i)`` with
    ``col = table_column(db)[table, column]`` produced by the scan lowering.
    """
    if not isinstance(atom, Sym):
        return None
    stmt = defs.get(atom.id)
    if stmt is None:
        return None
    expr = stmt.expr
    if expr.op == "array_get":
        return trace_to_table_column(expr.args[0], defs)
    if expr.op == "table_column":
        return (expr.attrs["table"], expr.attrs["column"])
    return None
