"""Shared program-analysis helpers for the IR-level transformations.

``definition_map`` and ``use_counts`` used to rebuild their maps on every
call, once per pass per fixpoint iteration.  They now delegate to the
memoized use-def facts of the dataflow framework
(:func:`repro.analysis.dataflow.use_def`): the maps are computed once per
program object and invalidated automatically on rewrite, because every
transformation builds a *new* :class:`~repro.ir.nodes.Program`.  Treat the
returned maps as read-only — they are shared between all passes that ask
about the same program.
"""
from __future__ import annotations

from typing import Dict, Optional

from ..analysis.dataflow.framework import use_def
from ..ir.nodes import Atom, Program, Stmt, Sym


def definition_map(program: Program) -> Dict[int, Stmt]:
    """Map every symbol id to the statement defining it (memoized; read-only)."""
    return use_def(program).defs


def use_counts(program: Program) -> Dict[int, int]:
    """How often each symbol is referenced as argument or result (memoized)."""
    return use_def(program).uses


def trace_to_table_column(atom: Atom, defs: Dict[int, Stmt]) -> Optional[tuple]:
    """If ``atom`` is (a read of) a base-table column value, return ``(table, column)``.

    Recognises the pattern ``x = array_get(col, i)`` with
    ``col = table_column(db)[table, column]`` produced by the scan lowering.
    """
    if not isinstance(atom, Sym):
        return None
    stmt = defs.get(atom.id)
    if stmt is None:
        return None
    expr = stmt.expr
    if expr.op == "array_get":
        return trace_to_table_column(expr.args[0], defs)
    if expr.op == "table_column":
        return (expr.attrs["table"], expr.attrs["column"])
    return None
