"""Compilation of scalar expressions into ANF operations.

This is the counterpart of :func:`repro.dsl.expr.evaluate`: instead of
interpreting the expression tree per row, it emits the equivalent ANF
statements once, operating on the atoms of the current :class:`RowVals`.
"""
from __future__ import annotations

from typing import Optional

from ..dsl import expr as E
from ..ir.builder import IRBuilder
from ..ir.nodes import Atom, Const
from ..ir.types import BOOL, FLOAT, INT, STRING
from .rowvals import RowVals


class ScalarCompileError(Exception):
    pass


_BINOP_TO_IR = {
    "+": "add", "-": "sub", "*": "mul", "/": "div",
    "==": "eq", "!=": "ne", "<": "lt", "<=": "le", ">": "gt", ">=": "ge",
    "and": "and_", "or": "or_",
}


class ScalarCompiler:
    """Compiles :mod:`repro.dsl.expr` trees into ANF atoms."""

    def __init__(self, builder: IRBuilder) -> None:
        self.builder = builder

    def compile(self, node: E.Expr, row: RowVals,
                left: Optional[RowVals] = None,
                right: Optional[RowVals] = None) -> Atom:
        b = self.builder
        if isinstance(node, E.Lit):
            return b.const(node.value)
        if isinstance(node, E.Col):
            if node.side == "left" and left is not None:
                return left.get(node.name)
            if node.side == "right" and right is not None:
                return right.get(node.name)
            return row.get(node.name)
        if isinstance(node, E.BinOp):
            lhs = self.compile(node.left, row, left, right)
            rhs = self.compile(node.right, row, left, right)
            return b.emit(_BINOP_TO_IR[node.op], [lhs, rhs])
        if isinstance(node, E.UnaryOp):
            operand = self.compile(node.operand, row, left, right)
            return b.emit("not_" if node.op == "not" else "neg", [operand])
        if isinstance(node, E.Like):
            return self._compile_like(node, row, left, right)
        if isinstance(node, E.InList):
            operand = self.compile(node.operand, row, left, right)
            return b.emit("str_in", [operand], attrs={"values": tuple(node.values)}, tpe=BOOL)
        if isinstance(node, E.Case):
            return self._compile_case(node, row, left, right)
        if isinstance(node, E.Substr):
            operand = self.compile(node.operand, row, left, right)
            return b.emit("str_substr", [operand],
                          attrs={"start": node.start, "length": node.length}, tpe=STRING)
        if isinstance(node, E.YearOf):
            operand = self.compile(node.operand, row, left, right)
            return b.emit("year_of_date", [operand], tpe=INT)
        if isinstance(node, E.IsNull):
            operand = self.compile(node.operand, row, left, right)
            return b.emit("eq", [operand, Const(None)], tpe=BOOL)
        raise ScalarCompileError(f"cannot compile expression node {type(node).__name__}")

    # ------------------------------------------------------------------
    # Specific constructs
    # ------------------------------------------------------------------
    def _compile_like(self, node: E.Like, row, left, right) -> Atom:
        b = self.builder
        operand = self.compile(node.operand, row, left, right)
        kind, needle = node.kind()
        if "%" in needle:
            return b.emit("str_like", [operand], attrs={"pattern": node.pattern}, tpe=BOOL)
        if kind == "prefix":
            return b.emit("str_startswith", [operand, b.const(needle)], tpe=BOOL)
        if kind == "suffix":
            return b.emit("str_endswith", [operand, b.const(needle)], tpe=BOOL)
        if kind == "contains":
            return b.emit("str_contains", [operand, b.const(needle)], tpe=BOOL)
        return b.emit("eq", [operand, b.const(needle)], tpe=BOOL)

    def _compile_case(self, node: E.Case, row, left, right) -> Atom:
        b = self.builder

        def build(index: int) -> Atom:
            if index >= len(node.whens):
                return self.compile(node.otherwise, row, left, right)
            cond_expr, value_expr = node.whens[index]
            cond = self.compile(cond_expr, row, left, right)
            return b.if_(cond,
                         lambda: self.compile(value_expr, row, left, right),
                         lambda: build(index + 1),
                         tpe=FLOAT)

        return build(0)
