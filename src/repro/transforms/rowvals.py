"""Row abstractions used by the push-engine lowering.

A :class:`RowVals` is the compile-time stand-in for "the current row" while
operators are being lowered: it maps column names to the IR atoms holding
their values.  Rows come in two flavours:

* **scalar rows** hold one atom per column (the fields of the row live in
  local variables — scalar replacement by construction), and
* **record-backed rows** hold a single record atom and read fields through
  ``record_get`` on demand (the boxed representation the naive two-level
  stack uses).

Materialising a row produces a record value that can be stored in data
structures (hash-table buckets, sort buffers, the result list); the layout of
that record ("boxed" dictionaries vs "row" tuples) is the data-layout choice
of Section 4.2.
"""
from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..ir.builder import IRBuilder
from ..ir.nodes import Atom, Const


class RowVals:
    """Compile-time mapping from column names to the atoms holding their values."""

    def __init__(self, values: Dict[str, Atom],
                 record: Optional[Atom] = None,
                 record_fields: Tuple[str, ...] = (),
                 layout: str = "boxed",
                 builder: Optional[IRBuilder] = None) -> None:
        self._values = dict(values)
        self._record = record
        self._record_fields = tuple(record_fields)
        self._layout = layout
        self._builder = builder

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def scalars(cls, values: Dict[str, Atom]) -> "RowVals":
        return cls(values)

    @classmethod
    def record_backed(cls, builder: IRBuilder, record: Atom, fields: Sequence[str],
                      layout: str = "boxed") -> "RowVals":
        return cls({}, record=record, record_fields=tuple(fields), layout=layout,
                   builder=builder)

    @classmethod
    def nulls(cls, fields: Sequence[str]) -> "RowVals":
        """A row whose every column is NULL (the padded side of outer joins)."""
        return cls({name: Const(None) for name in fields})

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def fields(self) -> List[str]:
        if self._record is not None:
            return list(self._record_fields)
        return list(self._values)

    def has(self, name: str) -> bool:
        return name in self._values or name in self._record_fields

    def get(self, name: str) -> Atom:
        """The atom holding column ``name`` (reads through the record if needed)."""
        if name in self._values:
            return self._values[name]
        if self._record is not None and name in self._record_fields:
            # Note: the read is re-emitted at every access (record_get has a
            # read effect, so it is never shared); caching the atom here would
            # risk referencing a value bound in a sibling scope.
            return self._builder.emit(
                "record_get", [self._record],
                attrs={"field": name, "layout": self._layout,
                       "fields": self._record_fields},
                hint=name.split("_")[-1][:8] or "f")
        raise KeyError(f"row has no column {name!r}; available: {self.fields()}")

    def merge(self, other: "RowVals", builder: IRBuilder) -> "RowVals":
        """Concatenate the columns of two rows (the output of an inner join)."""
        values = {name: self.get(name) for name in self.fields()}
        for name in other.fields():
            values[name] = other.get(name)
        return RowVals(values, builder=builder)

    def restricted(self, fields: Sequence[str]) -> "RowVals":
        return RowVals({name: self.get(name) for name in fields}, builder=self._builder)

    # ------------------------------------------------------------------
    # Materialisation
    # ------------------------------------------------------------------
    def materialize(self, builder: IRBuilder, layout: str,
                    fields: Optional[Sequence[str]] = None) -> Tuple[Atom, Tuple[str, ...]]:
        """Build a record holding this row's columns; returns ``(record, fields)``.

        When the row is already backed by a record with the same layout and
        field set, the backing record is reused (the naive stack stores the
        scanned record directly in its hash tables).
        """
        fields = tuple(fields) if fields is not None else tuple(self.fields())
        if (self._record is not None and self._layout == layout
                and fields == self._record_fields and not self._values):
            return self._record, fields
        values = [self.get(name) for name in fields]
        record = builder.emit("record_new", values,
                              attrs={"fields": fields, "layout": layout}, hint="rec")
        return record, fields
