"""Domain-specific code motion: hoisting work to data-loading time (Section D).

Statements at the top level of the query body that only depend on the database
parameter (and on other already-hoisted values) and that do not mutate state
visible to the rest of the body can be executed once at loading time instead
of on the query's critical path: column lookups, table sizes, dictionary code
lookups, worst-case-sized pool allocations.  They are moved into the
program's hoisted block, which the compiled artefact exposes as ``prepare``.
"""
from __future__ import annotations

from typing import List, Set

from ..ir.nodes import Block, Program, Stmt, Sym
from ..ir.ops import effect_of
from ..stack.context import CompilationContext
from ..stack.language import Language
from ..stack.transformation import Optimization

#: ops that are always safe to evaluate at loading time when their inputs are
HOISTABLE_OPS = {
    "table_size", "table_column",
    "strdict_build", "strdict_encode_column", "strdict_code", "strdict_prefix_range",
    "index_build_multi", "index_build_unique",
    "pool_new",
}


class MemoryAllocationHoisting(Optimization):
    """Move loading-time-evaluable statements from the body to the hoisted block."""

    flag = "memory_hoisting"

    def __init__(self, language: Language) -> None:
        super().__init__(language)
        self.name = f"allocation-hoisting[{language.name}]"

    def run(self, program: Program, context: CompilationContext) -> Program:
        available: Set[int] = {param.id for param in program.params}
        available |= {stmt.sym.id for stmt in program.hoisted.stmts}

        hoisted_stmts: List[Stmt] = list(program.hoisted.stmts)
        remaining: List[Stmt] = []
        for stmt in program.body.stmts:
            if self._can_hoist(stmt, available):
                hoisted_stmts.append(stmt)
                available.add(stmt.sym.id)
            else:
                remaining.append(stmt)

        return Program(
            body=Block(remaining, program.body.result, program.body.params),
            params=program.params,
            language=program.language,
            hoisted=Block(hoisted_stmts, program.hoisted.result, program.hoisted.params))

    @staticmethod
    def _can_hoist(stmt: Stmt, available: Set[int]) -> bool:
        expr = stmt.expr
        if expr.blocks:
            return False
        effect = effect_of(expr.op)
        hoistable = expr.op in HOISTABLE_OPS or effect.pure
        if not hoistable:
            return False
        for arg in expr.args:
            if isinstance(arg, Sym) and arg.id not in available:
                return False
        return True
