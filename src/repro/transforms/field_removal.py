"""Unused-struct-field removal, applied at the QPlan level.

Appendix C of the paper: attributes that a query never references are removed
from the record definitions and never loaded, which reduces memory pressure
and improves cache locality.  At the QPlan level this amounts to pruning the
field list of every ``Scan`` down to the columns actually referenced above it.
This optimization is one of the four disabled in the TPC-H-compliant
configuration of Section 7.
"""
from __future__ import annotations

from typing import List, Sequence, Set

from ..dsl import expr as E
from ..dsl import qplan as Q
from ..stack.context import CompilationContext
from ..stack.language import QPLAN
from ..stack.transformation import Optimization


class UnusedFieldRemoval(Optimization):
    """Prune scan field lists down to the columns the query references."""

    flag = "unused_field_removal"
    name = "unused-field-removal[QPlan]"

    def __init__(self) -> None:
        super().__init__(QPLAN)

    def run(self, plan: Q.Operator, context: CompilationContext) -> Q.Operator:
        catalog = context.catalog
        needed = set(Q.output_fields(plan, catalog))
        return _prune(plan, needed, catalog)


def _expr_columns(expr) -> Set[str]:
    if expr is None:
        return set()
    return set(E.columns_used(expr))


def _prune(node: Q.Operator, needed: Set[str], catalog) -> Q.Operator:
    if isinstance(node, Q.Scan):
        table_columns = catalog.schema.table(node.table).column_names()
        current = list(node.fields) if node.fields is not None else table_columns
        kept = tuple(name for name in current if name in needed)
        if not kept:
            # keep at least one column so the scan still drives its loop
            kept = (current[0],)
        return Q.Scan(node.table, kept)

    if isinstance(node, Q.Select):
        child_needed = needed | _expr_columns(node.predicate)
        return Q.Select(_prune(node.child, child_needed, catalog), node.predicate)

    if isinstance(node, Q.Project):
        child_needed: Set[str] = set()
        for _, expr in node.projections:
            child_needed |= _expr_columns(expr)
        return Q.Project(_prune(node.child, child_needed, catalog), node.projections)

    if isinstance(node, (Q.HashJoin, Q.NestedLoopJoin)):
        left_fields = set(Q.output_fields(node.left, catalog))
        right_fields = set(Q.output_fields(node.right, catalog))
        if isinstance(node, Q.HashJoin):
            extra_left = _expr_columns(node.left_key) | _expr_columns(node.residual)
            extra_right = _expr_columns(node.right_key) | _expr_columns(node.residual)
        else:
            extra_left = _expr_columns(node.predicate)
            extra_right = _expr_columns(node.predicate)
        left_needed = (needed | extra_left) & left_fields
        right_needed = (needed | extra_right) & right_fields
        new_left = _prune(node.left, left_needed, catalog)
        new_right = _prune(node.right, right_needed, catalog)
        return node.with_children([new_left, new_right])

    if isinstance(node, Q.Agg):
        child_needed: Set[str] = set()
        for _, expr in node.group_keys:
            child_needed |= _expr_columns(expr)
        for spec in node.aggregates:
            child_needed |= _expr_columns(spec.expr)
        return Q.Agg(_prune(node.child, child_needed, catalog), node.group_keys,
                     node.aggregates, node.having)

    if isinstance(node, Q.Sort):
        child_needed = set(needed)
        for expr, _ in node.keys:
            child_needed |= _expr_columns(expr)
        return Q.Sort(_prune(node.child, child_needed, catalog), node.keys)

    if isinstance(node, Q.Limit):
        return Q.Limit(_prune(node.child, needed, catalog), node.count)

    raise Q.PlanError(f"unknown operator {type(node).__name__}")
