"""Unused-struct-field removal, applied at the QPlan level.

Appendix C of the paper: attributes that a query never references are removed
from the record definitions and never loaded, which reduces memory pressure
and improves cache locality.  At the QPlan level this amounts to pruning the
field list of every ``Scan`` down to the columns actually referenced above it.
This optimization is one of the four disabled in the TPC-H-compliant
configuration of Section 7.

The pruning walk itself lives in :mod:`repro.planner.pruning` and is shared
with the logical plan optimizer; this stack optimization runs it in its
historical scan-only mode (the planner additionally prunes projections and
aggregates).
"""
from __future__ import annotations

from ..dsl import qplan as Q
from ..planner.pruning import prune_plan
from ..stack.context import CompilationContext
from ..stack.language import QPLAN
from ..stack.transformation import Optimization


class UnusedFieldRemoval(Optimization):
    """Prune scan field lists down to the columns the query references."""

    flag = "unused_field_removal"
    name = "unused-field-removal[QPlan]"

    def __init__(self) -> None:
        super().__init__(QPLAN)

    def run(self, plan: Q.Operator, context: CompilationContext) -> Q.Operator:
        return prune_plan(plan, context.catalog)
