"""The transformations of the DSL stack: one small module per optimization or lowering."""
