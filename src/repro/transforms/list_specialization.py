"""List specialization: lowering ScaLite[List] to ScaLite (Section 4.4).

Two specialisations are applied on the way down:

* **Primary-key MultiMaps → direct arrays** (Figure 7d of the paper): when the
  hash-table key is a primary key there is at most one row per key, so the
  bucket list disappears entirely — the probe reads a single slot and the
  bucket iteration becomes a null check around the inlined loop body.  (The
  hash-table specialization lowering of the five-level stack leaves such maps
  untouched so that this lowering can claim them.)
* **Worst-case-sized buffers**: lists whose cardinality is statically bounded
  (annotated by earlier phases) could be lowered to pre-sized arrays; on the
  Python target the representation is the same object, so only the annotation
  bookkeeping is performed.

Everything else is relabelled into ScaLite unchanged — lists are still
available there as dynamic arrays.
"""
from __future__ import annotations

from typing import Dict, Optional, Set, Tuple

from ..ir.nodes import Atom, Block, Const, Expr, Program, Stmt, Sym
from ..ir.traversal import BlockRewriter, rewrite_program, substitute_block
from ..ir.types import BOOL, INT
from ..stack.context import CompilationContext
from ..stack.language import Language, SCALITE, SCALITE_LIST
from ..stack.transformation import Lowering


class ListSpecialization(Lowering):
    """Lower ScaLite[List] programs to ScaLite, specialising unique-key maps."""

    def __init__(self, source: Language = SCALITE_LIST, target: Language = SCALITE) -> None:
        self.name = "list-specialization"
        super().__init__(source, target)

    def run(self, program: Program, context: CompilationContext) -> Program:
        if not context.flags.list_specialization:
            return Program(body=program.body, params=program.params,
                           language=self.target.name, hoisted=program.hoisted)
        specializer = _UniqueKeySpecializer(context)
        return rewrite_program(program, specializer.rewrite, language=self.target.name)


class _UniqueKeySpecializer:
    """Rewrites primary-key MultiMaps into single-slot arrays (Figure 7d)."""

    def __init__(self, context: CompilationContext) -> None:
        self.context = context
        #: array sym id -> (array, lo, hi, needs_bounds_guard)
        self.arrays: Dict[int, Tuple[Sym, int, int, bool]] = {}
        #: sym ids holding a single looked-up row (possibly None)
        self.single_rows: Set[int] = set()

    def rewrite(self, stmt: Stmt, rw: BlockRewriter) -> Optional[Atom]:
        op = stmt.expr.op
        if op == "mmap_new":
            return self._mmap_new(stmt, rw)
        if op == "mmap_add":
            return self._mmap_add(stmt, rw)
        if op == "mmap_get":
            return self._mmap_get(stmt, rw)
        if op == "list_foreach":
            return self._foreach(stmt, rw)
        return None

    def _mmap_new(self, stmt: Stmt, rw: BlockRewriter) -> Optional[Atom]:
        attrs = stmt.expr.attrs
        if not attrs.get("unique") or "key_lo" not in attrs:
            return None
        if not (attrs.get("build_is_base") or attrs.get("partitioned")):
            return None
        lo, hi = int(attrs["key_lo"]), int(attrs["key_hi"])
        array = rw.emit("array_new", [Const(hi - lo + 1)], attrs={"init": None},
                        hint="slots")
        guarded = not attrs.get("probe_in_range", False)
        self.arrays[array.id] = (array, lo, hi, guarded)
        return array

    def _mmap_add(self, stmt: Stmt, rw: BlockRewriter) -> Optional[Atom]:
        target = stmt.expr.args[0]
        if not isinstance(target, Sym) or target.id not in self.arrays:
            return None
        array, lo, _, _ = self.arrays[target.id]
        _, key, value = stmt.expr.args
        index = key if lo == 0 else rw.emit("sub", [key, Const(lo)], tpe=INT, hint="idx")
        rw.emit("array_set", [array, index, value])
        return Const(None)

    def _mmap_get(self, stmt: Stmt, rw: BlockRewriter) -> Optional[Atom]:
        target = stmt.expr.args[0]
        if not isinstance(target, Sym) or target.id not in self.arrays:
            return None
        array, lo, hi, guarded = self.arrays[target.id]
        key = stmt.expr.args[1]
        index = key if lo == 0 else rw.emit("sub", [key, Const(lo)], tpe=INT, hint="idx")
        if not guarded:
            row = rw.emit("array_get", [array, index], hint="row")
            self.single_rows.add(row.id)
            return row
        above = rw.emit("ge", [key, Const(lo)], tpe=BOOL)
        below = rw.emit("le", [key, Const(hi)], tpe=BOOL)
        in_range = rw.emit("and_", [above, below], tpe=BOOL, hint="inrange")
        hit = Block()
        slot = Sym("slot")
        hit.stmts.append(Stmt(slot, Expr("array_get", (array, index))))
        hit.result = slot
        miss = Block(result=Const(None))
        row = rw.emit("if_", [in_range], blocks=(hit, miss), hint="row")
        self.single_rows.add(row.id)
        return row

    def _foreach(self, stmt: Stmt, rw: BlockRewriter) -> Optional[Atom]:
        target = stmt.expr.args[0]
        if not isinstance(target, Sym) or target.id not in self.single_rows:
            return None
        body = stmt.expr.blocks[0]
        (element,) = body.params
        substituted = substitute_block(body, {element: target})
        inlined = rw.rewrite_nested(substituted)
        present = rw.emit("ne", [target, Const(None)], tpe=BOOL, hint="present")
        rw.emit("if_", [present], blocks=(Block(inlined.stmts, inlined.result, ()), Block()),
                hint="ifrow")
        return Const(None)
