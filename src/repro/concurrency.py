"""The runtime half of the repo's concurrency contract vocabulary.

The static analyzer in :mod:`repro.analysis.concurrency` checks the lock
discipline of the serving substrate (server, robustness, compiled-query
cache, access layer).  Intent is declared in two ways:

* the :func:`guarded_by` decorator, for *methods* whose whole body runs with
  a lock already held by every caller (the analyzer seeds the method's
  held-lock set with the named lock and then checks every call site actually
  holds it);
* ``# concurrency: ...`` comment directives, for *attributes* and
  *functions* (parsed by :mod:`repro.analysis.concurrency.annotations`):

  ====================================  =====================================
  directive                             meaning
  ====================================  =====================================
  ``guarded-by(_lock)``                 attribute accesses must hold ``_lock``
  ``init-only``                         attribute is never written after
                                        ``__init__``
  ``confined(event-loop): reason``      attribute is written only from the
                                        event loop (async methods or
                                        ``runs-on(event-loop)`` methods)
  ``confined(startup): reason``         attribute is written only during
                                        single-threaded warm-up
                                        (``runs-on(startup)`` methods)
  ``thread-local``                      attribute holds per-thread state
                                        (also inferred from
                                        ``threading.local()``)
  ``synchronized``                      attribute holds an internally-locked
                                        object; calling/mutating it is safe
                                        anywhere, but rebinding the
                                        attribute itself is a violation
  ``runs-on(event-loop)``               sync method that must only be called
                                        from event-loop context
  ``runs-on(startup)``                  method that runs before serving
                                        starts (may write ``confined(startup)``
                                        attributes)
  ``unguarded: reason``                 per-statement escape hatch, recorded
                                        in the analyzer's JSON report
  ``blocking``                          function may block (joins the
                                        blocking-under-lock registry)
  ====================================  =====================================

This module is a dependency-free leaf so every runtime layer can import the
decorator without pulling in the analysis package.
"""
from __future__ import annotations

from typing import Callable, TypeVar

_F = TypeVar("_F", bound=Callable)

#: attribute the decorator stamps onto the function object; the analyzer
#: recognises the decorator syntactically, this is for runtime introspection
GUARDED_BY_ATTR = "__concurrency_guarded_by__"


def guarded_by(lock_name: str) -> Callable[[_F], _F]:
    """Declare that every caller of the decorated method holds ``lock_name``.

    A no-op at runtime (beyond stamping :data:`GUARDED_BY_ATTR`); the static
    analyzer enforces both directions of the contract: the method body is
    analyzed with the lock held, and every call site is checked to actually
    hold it.  Apply *under* ``@classmethod`` so it decorates the plain
    function::

        @classmethod
        @guarded_by("_cache_lock")
        def _prune_cache(cls) -> None: ...
    """
    def decorate(func: _F) -> _F:
        setattr(func, GUARDED_BY_ATTR, lock_name)
        return func
    return decorate
