"""The asyncio query-serving front door.

:class:`QueryServer` accepts concurrent query submissions, runs them through
the PR-6 :class:`~repro.robustness.fallback.HardenedExecutor` on a thread
pool, and refuses to melt down when demand exceeds capacity:

* **Admission control** — a bounded priority queue
  (:class:`~repro.server.admission.AdmissionController`) with an AIMD
  concurrency window (:class:`~repro.server.admission.AdaptiveLimiter`).
  Requests beyond the queue bound get a typed ``overloaded`` response
  immediately; nothing queues without bound.
* **Deadline propagation** — each request carries an absolute deadline.
  Whatever deadline is left when execution starts becomes the
  :class:`~repro.robustness.governor.QueryBudget` timeout handed to the
  governor, so a query admitted late runs with a tighter budget, and
  requests whose deadline expired in the queue are dropped (typed
  ``deadline_exceeded``, never executed).
* **Graceful degradation** — before rejecting outright, the shedding policy
  admits requests at cheaper tiers of the fallback ladder: past the
  elevated-occupancy threshold only queries with an already-cached compiled
  plan may use the compiled tier (no fresh compiles under pressure), and
  past the severe threshold everything runs on the interpreter.  Every
  downgrade and every rejection is recorded in the incident log.
* **Lifecycle** — :meth:`health` / :meth:`readiness` probes, a warm-up that
  pre-builds the catalog's access structures and pre-compiles a configured
  query set, and a draining shutdown (:meth:`drain`) that completes every
  admitted query, rejects new ones, and leaves zero orphaned futures.

Execution runs on a thread pool: compiled code and engines hit governor
checkpoints (GIL yield points) per row/batch, and the executor, incident
log, circuit breaker and compiled-query cache are all thread-safe.  The
``server.*`` fault sites (queue stalls, slow executors, deadline skew) let
the overload chaos suite drive this machinery through injected storms.
"""
from __future__ import annotations

import asyncio
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import replace
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..dsl import qplan as Q
from ..robustness.fallback import HardenedExecutor, LadderExhausted
from ..robustness.faults import fault_value
from ..robustness.governor import BudgetExceeded, QueryBudget
from ..robustness.incidents import IncidentLog
from ..storage.catalog import Catalog
from ..storage.loader import warm_access_paths
from .admission import (POLICY_TIERS, AdaptiveLimiter, AdmissionController,
                        AdmittedRequest, SheddingPolicy)
from .responses import (STATUS_FAILED, STATUS_OK, DeadlineExceeded,
                        Overloaded, QueryResponse, Rejection)

#: lifecycle states, in order
STATES = ("new", "starting", "serving", "draining", "stopped")


class QueryServer:
    """Admission-controlled asyncio front door over one catalog.

    Construct, ``await start()``, ``await submit(...)`` from any number of
    concurrent tasks, ``await drain()`` to shut down.  Every submission
    resolves to exactly one :class:`QueryResponse`.
    """

    def __init__(self, catalog: Catalog, *,
                 executor: Optional[HardenedExecutor] = None,
                 queries: Optional[Mapping[str, Q.Operator]] = None,
                 warmup: Sequence[str] = (),
                 max_queue_depth: int = 64,
                 initial_concurrency: int = 4,
                 min_concurrency: int = 1,
                 max_concurrency: int = 32,
                 default_timeout_seconds: Optional[float] = None,
                 base_budget: Optional[QueryBudget] = None,
                 shedding: Optional[SheddingPolicy] = None,
                 dispatch_margin_seconds: float = 0.0,
                 worker_threads: Optional[int] = None) -> None:
        self.catalog = catalog
        self.executor = executor if executor is not None else \
            HardenedExecutor(catalog, incidents=IncidentLog())
        self.incidents = self.executor.incidents
        self.queries: Dict[str, Q.Operator] = dict(queries or {})
        unknown = [name for name in warmup if name not in self.queries]
        if unknown:
            raise ValueError(f"warmup names not in the query registry: {unknown}")
        self.warmup_names = tuple(warmup)
        self.default_timeout_seconds = default_timeout_seconds
        self.base_budget = base_budget if base_budget is not None \
            else QueryBudget.unlimited()
        #: requests whose remaining deadline at dispatch is below this are
        #: dropped instead of dispatched with a hopeless budget
        self.dispatch_margin_seconds = dispatch_margin_seconds
        self._clock = time.monotonic
        # concurrency: synchronized
        self._admission = AdmissionController(max_queue_depth, shedding,
                                              clock=self._clock)
        # concurrency: synchronized
        self._limiter = AdaptiveLimiter(initial=initial_concurrency,
                                        min_limit=min_concurrency,
                                        max_limit=max_concurrency)
        self._worker_threads = worker_threads if worker_threads is not None \
            else max_concurrency
        # concurrency: confined(event-loop): lifecycle transitions happen on the loop
        self._state = "new"
        # concurrency: confined(event-loop): bound once by start(), on the loop
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        # concurrency: confined(event-loop): bound once by start(), on the loop
        self._pool: Optional[ThreadPoolExecutor] = None
        # concurrency: confined(event-loop): bound once by start(), on the loop
        self._dispatcher: Optional[asyncio.Task] = None
        # concurrency: confined(event-loop): bound once by start(), on the loop
        self._wake: Optional[asyncio.Event] = None
        # concurrency: confined(event-loop): bound once by start(), on the loop
        self._idle: Optional[asyncio.Event] = None
        # concurrency: confined(event-loop): counters touched only by loop tasks
        self._in_flight = 0
        # concurrency: confined(event-loop): counters touched only by loop tasks
        self._pending = 0
        # concurrency: confined(event-loop): written once by start()
        self._started_at: Optional[float] = None
        # concurrency: confined(event-loop): _count runs on the loop; sync reads are snapshots
        self._responses_by_status: Dict[str, int] = {}
        #: plan fingerprints with a warm compiled plan (warm-up + successful
        #: compiled-tier executions); gates the compiled tier under
        #: ``cached_only`` shedding
        # concurrency: guarded-by(_warm_lock)
        self._warm_fingerprints: set = set()
        self._warm_lock = threading.Lock()
        # concurrency: confined(startup): filled by _warm_up before serving starts
        self._warmup_report: Dict[str, float] = {}

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def state(self) -> str:
        return self._state

    async def start(self) -> None:
        """Warm up and begin serving.  Idempotent only from ``new``."""
        if self._state != "new":
            raise RuntimeError(f"cannot start from state {self._state!r}")
        self._state = "starting"
        self._loop = asyncio.get_running_loop()
        self._wake = asyncio.Event()
        self._idle = asyncio.Event()
        self._idle.set()
        self._pool = ThreadPoolExecutor(
            max_workers=self._worker_threads,
            thread_name_prefix="repro-serving")
        await self._loop.run_in_executor(self._pool, self._warm_up)
        self._dispatcher = self._loop.create_task(self._dispatch_loop())
        self._started_at = self._clock()
        self._state = "serving"

    # concurrency: runs-on(startup)
    def _warm_up(self) -> None:
        """Pre-build access structures, pre-compile the configured set."""
        warm_access_paths(self.catalog)
        for name in self.warmup_names:
            plan = self.queries[name]
            seconds = self.executor.warm(plan, name)
            self._note_warm(Q.plan_fingerprint(plan))
            self._warmup_report[name] = seconds

    async def drain(self, timeout_seconds: Optional[float] = None) -> None:
        """Stop admitting, finish every admitted query, then shut down.

        With a ``timeout_seconds`` bound, requests still *queued* when it
        expires are resolved as typed ``overloaded`` responses (reason
        ``"shutdown"``); in-flight executions are always awaited — the
        governor's deadline budget bounds how long that can take.  After
        ``drain`` returns no future is left unresolved.
        """
        if self._state == "stopped":
            return
        if self._state == "new":
            self._state = "stopped"
            return
        wake, idle = self._wake, self._idle
        assert wake is not None and idle is not None
        self._state = "draining"
        self._admission.stop_accepting("draining")
        wake.set()
        try:
            if timeout_seconds is None:
                await idle.wait()
            else:
                try:
                    await asyncio.wait_for(idle.wait(), timeout_seconds)
                except asyncio.TimeoutError:
                    pass
        finally:
            if self._dispatcher is not None:
                self._dispatcher.cancel()
                try:
                    await self._dispatcher
                except asyncio.CancelledError:
                    pass
            # a timed-out drain may leave queued (never-dispatched) requests:
            # resolve each with a typed rejection — no orphaned futures
            for request in self._admission.drain_queue():
                self.incidents.report(
                    "admission_reject", query=request.name,
                    cause="shutdown",
                    message=f"{request.name}: dropped at shutdown")
                self._resolve(request, QueryResponse(
                    query=request.name, status=Overloaded.status,
                    reason="shutdown", error_type="Overloaded",
                    message="server shut down before dispatch",
                    tier_policy=request.tier_policy))
            # in-flight work still resolves its futures on the loop; wait
            # for the pool without blocking the event loop thread
            pool, loop = self._pool, self._loop
            assert pool is not None and loop is not None
            await loop.run_in_executor(
                None, lambda: pool.shutdown(wait=True))
            while self._in_flight > 0:
                await asyncio.sleep(0.001)
            self._state = "stopped"

    def health(self) -> dict:
        """Liveness: the process is up; reports state and uptime."""
        uptime = 0.0 if self._started_at is None \
            else self._clock() - self._started_at
        return {"status": "ok", "state": self._state,
                "uptime_seconds": uptime}

    def readiness(self) -> dict:
        """Readiness: whether new requests will be admitted right now."""
        ready = self._state == "serving"
        reason = "" if ready else f"state is {self._state!r}"
        return {"ready": ready, "state": self._state, "reason": reason,
                "warmed_queries": len(self._warmup_report)}

    def stats(self) -> dict:
        """The stats endpoint: queue, limiter, incident counters (via
        :meth:`IncidentLog.snapshot` — the ring is not drained)."""
        with self._warm_lock:
            warm_plans = len(self._warm_fingerprints)
        return {
            "state": self._state,
            "in_flight": self._in_flight,
            "pending": self._pending,
            "queue": self._admission.snapshot(),
            "limiter": self._limiter.snapshot(),
            "responses_by_status": dict(self._responses_by_status),
            "warm_plans": warm_plans,
            "warmup_compile_seconds": dict(self._warmup_report),
            "incidents": self.incidents.snapshot(),
        }

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    async def submit(self, plan, query_name: Optional[str] = None, *,
                     timeout_seconds: Optional[float] = None,
                     priority: int = 0) -> QueryResponse:
        """Submit one query; resolves to exactly one typed response.

        ``plan`` is a QPlan operator tree, or the name of a registered query
        (the ``queries`` mapping given at construction).  ``timeout_seconds``
        (default: the server's ``default_timeout_seconds``) becomes the
        request deadline; lower ``priority`` values dispatch first.
        """
        if isinstance(plan, str):
            query_name = plan if query_name is None else query_name
            try:
                plan = self.queries[plan]
            except KeyError:
                return self._count(QueryResponse(
                    query=query_name, status=STATUS_FAILED,
                    reason="unknown_query", error_type="KeyError",
                    message=f"no registered query named {query_name!r}"))
        name = query_name if query_name is not None else "query"
        if self._state != "serving":
            self.incidents.report(
                "admission_reject", query=name, cause="not_serving",
                message=f"{name}: rejected in state {self._state!r}")
            return self._count(QueryResponse(
                query=name, status=Overloaded.status, reason="not_serving",
                error_type="Overloaded",
                message=f"server is {self._state}, not serving"))
        timeout = timeout_seconds if timeout_seconds is not None \
            else self.default_timeout_seconds
        deadline = None if timeout is None else self._clock() + timeout
        try:
            request = self._admission.offer(name, plan, priority=priority,
                                            deadline=deadline)
        except Rejection as error:
            category = "deadline_expired" \
                if isinstance(error, DeadlineExceeded) else "admission_reject"
            self.incidents.report(
                category, query=name, cause=error.reason, message=str(error),
                queue_depth=len(self._admission))
            return self._count(QueryResponse(
                query=name, status=error.status, reason=error.reason,
                error_type=type(error).__name__, message=str(error)))
        if request.tier_policy != "full":
            self.incidents.report(
                "admission_downgrade", query=name, cause="queue_pressure",
                message=(f"{name}: admitted at tier policy "
                         f"{request.tier_policy!r}"),
                tier_policy=request.tier_policy,
                occupancy=self._admission.occupancy)
        # submit() and the dispatcher both run on the event loop, so the
        # future is attached before the request can possibly be popped
        loop, wake, idle = self._loop, self._wake, self._idle
        assert loop is not None and wake is not None and idle is not None
        request.future = loop.create_future()
        self._pending += 1
        idle.clear()
        wake.set()
        return await request.future

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    async def _dispatch_loop(self) -> None:
        wake, loop = self._wake, self._loop
        assert wake is not None and loop is not None
        while True:
            await wake.wait()
            wake.clear()
            while self._in_flight < self._limiter.limit:
                request = self._admission.pop()
                if request is None:
                    break
                # injected queue stall: the dispatcher wedges while queued
                # deadlines keep burning
                stall = fault_value("server.queue_stall", 0.0)
                if stall:
                    await asyncio.sleep(stall)
                if request.expired(self._clock()):
                    self.incidents.report(
                        "deadline_expired", query=request.name,
                        cause="expired_in_queue",
                        message=(f"{request.name}: deadline expired after "
                                 "admission, dropped before execution"),
                        queue_seconds=self._clock() - request.enqueued_at)
                    self._resolve(request, QueryResponse(
                        query=request.name,
                        status=DeadlineExceeded.status,
                        reason="expired_in_queue",
                        error_type="DeadlineExceeded",
                        message="deadline expired while queued",
                        tier_policy=request.tier_policy,
                        queue_seconds=self._clock() - request.enqueued_at))
                    self._limiter.on_overload()
                    continue
                self._in_flight += 1
                loop.create_task(self._run_request(request))

    async def _run_request(self, request: AdmittedRequest) -> None:
        queue_seconds = self._clock() - request.enqueued_at
        loop, pool = self._loop, self._pool
        assert loop is not None and pool is not None
        try:
            response = await loop.run_in_executor(
                pool, self._execute, request, queue_seconds)
        except Exception as error:  # noqa: BLE001 - never orphan a future
            response = QueryResponse(
                query=request.name, status=STATUS_FAILED,
                reason="internal_error", error_type=type(error).__name__,
                message=str(error), tier_policy=request.tier_policy,
                queue_seconds=queue_seconds)
        finally:
            self._in_flight -= 1
            if self._wake is not None:
                self._wake.set()
        if response.status == STATUS_OK:
            self._limiter.on_success()
        elif response.status == DeadlineExceeded.status:
            self._limiter.on_overload()
        self._resolve(request, response)

    # concurrency: runs-on(event-loop)
    def _resolve(self, request: AdmittedRequest, response: QueryResponse) -> None:
        self._count(response)
        if request.future is not None and not request.future.done():
            request.future.set_result(response)
        self._pending -= 1
        if self._pending <= 0 and self._idle is not None:
            self._idle.set()

    # concurrency: runs-on(event-loop)
    def _count(self, response: QueryResponse) -> QueryResponse:
        self._responses_by_status[response.status] = \
            self._responses_by_status.get(response.status, 0) + 1
        return response

    # ------------------------------------------------------------------
    # Execution (worker threads)
    # ------------------------------------------------------------------
    def _execute(self, request: AdmittedRequest,
                 queue_seconds: float) -> QueryResponse:
        # injected slow executor: the worker holds its admission slot
        extra = fault_value("server.executor_slow", 0.0)
        if extra:
            time.sleep(extra)
        remaining = request.remaining(self._clock())
        if remaining is not None:
            # injected deadline skew: the translated budget is tighter than
            # the real remaining deadline (a conservatively-skewed clock)
            remaining -= fault_value("server.deadline_skew", 0.0)
            if remaining <= self.dispatch_margin_seconds:
                self.incidents.report(
                    "deadline_expired", query=request.name,
                    cause="expired_before_execute",
                    message=(f"{request.name}: {remaining:.4f}s of deadline "
                             "left at execution, dropped"),
                    queue_seconds=queue_seconds)
                return QueryResponse(
                    query=request.name, status=DeadlineExceeded.status,
                    reason="expired_before_execute",
                    error_type="DeadlineExceeded",
                    message="deadline expired before execution started",
                    tier_policy=request.tier_policy,
                    queue_seconds=queue_seconds)
        budget = self._budget_for(remaining)
        tiers = self._tiers_for(request)
        started = time.perf_counter()
        try:
            report = self.executor.execute(request.plan, request.name,
                                           budget=budget, tiers=tiers)
        except BudgetExceeded as error:
            elapsed = time.perf_counter() - started
            if error.kind == "timeout":
                # the propagated deadline tripped mid-execution; the executor
                # already recorded the budget_trip incident
                return QueryResponse(
                    query=request.name, status=DeadlineExceeded.status,
                    reason="budget_timeout", error_type="BudgetExceeded",
                    message=str(error), tier_policy=request.tier_policy,
                    queue_seconds=queue_seconds, execute_seconds=elapsed,
                    detail={"stats": error.stats.as_dict()})
            return QueryResponse(
                query=request.name, status=STATUS_FAILED,
                reason=f"budget_{error.kind}", error_type="BudgetExceeded",
                message=str(error), tier_policy=request.tier_policy,
                queue_seconds=queue_seconds, execute_seconds=elapsed,
                detail={"stats": error.stats.as_dict()})
        except LadderExhausted as error:
            return QueryResponse(
                query=request.name, status=STATUS_FAILED,
                reason="ladder_exhausted", error_type="LadderExhausted",
                message=str(error), tier_policy=request.tier_policy,
                queue_seconds=queue_seconds,
                execute_seconds=time.perf_counter() - started,
                detail={"attempts": list(error.attempts)})
        except Exception as error:  # noqa: BLE001 - typed response, not a raise
            return QueryResponse(
                query=request.name, status=STATUS_FAILED,
                reason="internal_error", error_type=type(error).__name__,
                message=str(error), tier_policy=request.tier_policy,
                queue_seconds=queue_seconds,
                execute_seconds=time.perf_counter() - started)
        elapsed = time.perf_counter() - started
        if report.tier == "compiled":
            self._note_warm(Q.plan_fingerprint(request.plan))
        return QueryResponse(
            query=request.name, status=STATUS_OK, rows=report.rows,
            tier=report.tier, plan_mode=report.plan_mode,
            tier_policy=request.tier_policy, attempts=len(report.attempts),
            queue_seconds=queue_seconds, execute_seconds=elapsed)

    def _budget_for(self, remaining: Optional[float]) -> Optional[QueryBudget]:
        """Translate the remaining deadline into the governor budget."""
        base = self.base_budget
        if remaining is None:
            if base == QueryBudget.unlimited():
                return None  # nothing to enforce; skip governor overhead
            return base
        remaining = max(0.0, remaining)
        timeout = remaining if base.timeout_seconds is None \
            else min(base.timeout_seconds, remaining)
        return replace(base, timeout_seconds=timeout)

    def _tiers_for(self, request: AdmittedRequest) -> Optional[Sequence[str]]:
        policy = request.tier_policy
        if policy == "full":
            return None  # the executor's configured ladder
        if policy == "interpreter_only":
            return POLICY_TIERS["interpreter_only"]
        # cached_only: the compiled tier is only worth its admission cost if
        # the plan is already compiled (warm-up or a previous execution)
        with self._warm_lock:
            warm = Q.plan_fingerprint(request.plan) in self._warm_fingerprints
        return POLICY_TIERS["cached_only" if warm else "cached_only_cold"]

    def _note_warm(self, fingerprint: str) -> None:
        with self._warm_lock:
            self._warm_fingerprints.add(fingerprint)


async def serve_one_shot(
        catalog: Catalog, requests: Iterable[Any],
        **server_kwargs: Any) -> Tuple[List[QueryResponse], "QueryServer"]:
    """Convenience: start a server, run ``requests``, drain, return responses.

    ``requests`` is an iterable of ``(plan_or_name, query_name, kwargs)``
    triples or bare plans/names; used by the benchmark harness and handy in
    tests.  All requests are submitted concurrently.
    """
    server = QueryServer(catalog, **server_kwargs)
    await server.start()
    tasks = []
    for entry in requests:
        if isinstance(entry, tuple):
            plan, name, kwargs = entry
            tasks.append(server.submit(plan, name, **kwargs))
        else:
            tasks.append(server.submit(entry))
    try:
        responses = await asyncio.gather(*tasks)
    finally:
        await server.drain()
    return responses, server
