"""The admission-controlled async query-serving front door.

This package is the serving layer ROADMAP item 1 calls for: an asyncio
front door (:class:`QueryServer`) over the PR-6 execution-hardening
substrate, with bounded-queue admission control, AIMD adaptive concurrency,
deadline propagation into :class:`~repro.robustness.governor.QueryBudget`,
occupancy-driven load shedding (tier downgrades before rejection), and a
drain-style lifecycle with health/readiness probes.

Everything a caller needs is re-exported here::

    from repro.server import QueryServer, QueryResponse

    server = QueryServer(catalog, queries={"Q6": build_query("Q6")},
                         warmup=("Q6",))
    await server.start()
    response = await server.submit("Q6", timeout_seconds=0.5)
    await server.drain()
"""
from .admission import (AdaptiveLimiter, AdmissionController,  # noqa: F401
                        AdmittedRequest, SheddingPolicy, TIER_POLICIES)
from .responses import (STATUS_DEADLINE_EXCEEDED, STATUS_FAILED,  # noqa: F401
                        STATUS_OK, STATUS_OVERLOADED, STATUSES,
                        DeadlineExceeded, Overloaded, QueryResponse,
                        Rejection)
from .server import QueryServer, serve_one_shot  # noqa: F401

__all__ = [
    "AdaptiveLimiter", "AdmissionController", "AdmittedRequest",
    "SheddingPolicy", "TIER_POLICIES",
    "STATUS_OK", "STATUS_OVERLOADED", "STATUS_DEADLINE_EXCEEDED",
    "STATUS_FAILED", "STATUSES",
    "DeadlineExceeded", "Overloaded", "QueryResponse", "Rejection",
    "QueryServer", "serve_one_shot",
]
