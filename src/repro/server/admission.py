"""Admission control for the serving front door.

Three cooperating pieces, all synchronous and individually testable:

* :class:`AdaptiveLimiter` — an AIMD concurrency limiter.  Successes probe
  capacity *up* additively (classic congestion avoidance: one extra slot per
  ``limit`` successes); timeouts and deadline misses back *off*
  multiplicatively.  The serving loop dispatches at most ``limit`` queries
  concurrently, so sustained overload shrinks the window instead of piling
  work onto an already-saturated executor.
* :class:`SheddingPolicy` — maps queue occupancy to an admission tier
  policy: ``full`` ladder under normal load, ``cached_only`` (compiled tier
  only for queries whose compiled plan is already cached — no fresh
  compiles under pressure) when the queue passes ``elevated_fraction``, and
  ``interpreter_only`` (no compilation, most-predictable tier) past
  ``severe_fraction``.  Downgrading is the step *before* rejection.
* :class:`AdmissionController` — the bounded priority queue.  ``offer``
  either enqueues or raises a typed rejection
  (:class:`~repro.server.responses.Overloaded` /
  :class:`~repro.server.responses.DeadlineExceeded`) — there is no
  unbounded queueing and no silent drop.  Entries pop lowest
  ``(priority, seq)`` first, so equal-priority requests stay FIFO.

All state is lock-guarded; the event loop and stats readers may touch it
concurrently.
"""
from __future__ import annotations

import heapq
import itertools
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from .responses import DeadlineExceeded, Overloaded

#: admission tier policies, cheapest-last; ``cached_only`` is resolved per
#: request at dispatch time (compiled tier only with a warm plan cache)
TIER_POLICIES = ("full", "cached_only", "interpreter_only")

#: the engine-tier ladder each policy admits at (``cached_only`` picks one
#: of its two ladders per request, depending on plan-cache warmth)
POLICY_TIERS: Dict[str, Tuple[str, ...]] = {
    "full": ("compiled", "vectorized", "interpreter"),
    "cached_only": ("compiled", "vectorized", "interpreter"),
    "cached_only_cold": ("vectorized", "interpreter"),
    "interpreter_only": ("interpreter",),
}


class AdaptiveLimiter:
    """AIMD concurrency window: probe up on success, back off on timeout."""

    def __init__(self, initial: int = 8, min_limit: int = 1,
                 max_limit: int = 64, increase: float = 1.0,
                 decrease: float = 0.5) -> None:
        if not (1 <= min_limit <= initial <= max_limit):
            raise ValueError("need 1 <= min_limit <= initial <= max_limit")
        if increase <= 0:
            raise ValueError("increase must be positive")
        if not (0.0 < decrease < 1.0):
            raise ValueError("decrease must be in (0, 1)")
        self.min_limit = min_limit
        self.max_limit = max_limit
        self.increase = increase
        self.decrease = decrease
        self._limit = float(initial)
        self._lock = threading.Lock()
        self.successes = 0
        self.overloads = 0

    @property
    def limit(self) -> int:
        """The current integer concurrency window (>= ``min_limit``)."""
        with self._lock:
            return max(self.min_limit, int(self._limit))

    def on_success(self) -> None:
        """Additive increase: ~one extra slot per ``limit`` successes."""
        with self._lock:
            self.successes += 1
            self._limit = min(float(self.max_limit),
                              self._limit + self.increase / max(1.0, self._limit))

    def on_overload(self) -> None:
        """Multiplicative decrease on a timeout / deadline miss."""
        with self._lock:
            self.overloads += 1
            self._limit = max(float(self.min_limit),
                              self._limit * self.decrease)

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "limit": max(self.min_limit, int(self._limit)),
                "raw_limit": self._limit,
                "min_limit": self.min_limit,
                "max_limit": self.max_limit,
                "successes": self.successes,
                "overloads": self.overloads,
            }


@dataclass(frozen=True)
class SheddingPolicy:
    """Occupancy thresholds → admission tier policy (degrade before reject)."""

    elevated_fraction: float = 0.5
    severe_fraction: float = 0.85

    def __post_init__(self) -> None:
        if not (0.0 < self.elevated_fraction <= self.severe_fraction <= 1.0):
            raise ValueError(
                "need 0 < elevated_fraction <= severe_fraction <= 1")

    def tier_policy(self, occupancy: float) -> str:
        if occupancy >= self.severe_fraction:
            return "interpreter_only"
        if occupancy >= self.elevated_fraction:
            return "cached_only"
        return "full"


_REQUEST_SEQ = itertools.count(1)


@dataclass
class AdmittedRequest:
    """One queued request: plan + deadline + priority + its pending future."""

    name: str
    plan: Any
    priority: int
    #: absolute monotonic deadline, or ``None`` for no deadline
    deadline: Optional[float]
    enqueued_at: float
    tier_policy: str
    #: resolved by the server with exactly one QueryResponse
    future: Any = None
    seq: int = field(default_factory=lambda: next(_REQUEST_SEQ))

    def remaining(self, now: float) -> Optional[float]:
        """Seconds of deadline left at ``now`` (``None`` = unlimited)."""
        if self.deadline is None:
            return None
        return self.deadline - now

    def expired(self, now: float) -> bool:
        remaining = self.remaining(now)
        return remaining is not None and remaining <= 0.0


class AdmissionController:
    """Bounded priority queue with typed rejection.

    ``offer`` never blocks and never queues beyond ``max_depth``; the only
    outcomes are acceptance, :class:`Overloaded` (queue full / not
    accepting) or :class:`DeadlineExceeded` (dead on arrival).
    """

    def __init__(self, max_depth: int = 64,
                 shedding: Optional[SheddingPolicy] = None,
                 clock: Callable[[], float] = time.monotonic) -> None:
        if max_depth < 1:
            raise ValueError("max_depth must be >= 1")
        self.max_depth = max_depth
        self.shedding = shedding if shedding is not None else SheddingPolicy()
        self._clock = clock
        self._lock = threading.Lock()
        self._heap: List[Tuple[int, int, AdmittedRequest]] = []
        self._accepting = True
        self._reject_reason = "draining"
        # counters for the stats endpoint
        self.accepted = 0
        self.rejected_queue_full = 0
        self.rejected_not_accepting = 0
        self.rejected_dead_on_arrival = 0
        self.downgraded = 0

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return len(self._heap)

    @property
    def occupancy(self) -> float:
        with self._lock:
            return len(self._heap) / self.max_depth

    @property
    def accepting(self) -> bool:
        with self._lock:
            return self._accepting

    def stop_accepting(self, reason: str = "draining") -> None:
        """Flip admission off (drain); queued requests stay queued."""
        with self._lock:
            self._accepting = False
            self._reject_reason = reason

    def offer(self, name: str, plan: Any, *, priority: int = 0,
              deadline: Optional[float] = None) -> AdmittedRequest:
        """Admit or reject; returns the queued request on admission.

        The request's tier policy is decided here, from the occupancy the
        request observes on arrival — admission under pressure is admission
        to a cheaper ladder, and the caller records the downgrade incident.
        """
        now = self._clock()
        with self._lock:
            if not self._accepting:
                self.rejected_not_accepting += 1
                raise Overloaded(self._reject_reason,
                                 f"{name}: server is not accepting requests")
            if deadline is not None and deadline - now <= 0.0:
                self.rejected_dead_on_arrival += 1
                raise DeadlineExceeded(
                    "dead_on_arrival",
                    f"{name}: deadline expired before admission")
            if len(self._heap) >= self.max_depth:
                self.rejected_queue_full += 1
                raise Overloaded(
                    "queue_full",
                    f"{name}: admission queue at capacity ({self.max_depth})")
            policy = self.shedding.tier_policy(len(self._heap) / self.max_depth)
            request = AdmittedRequest(name=name, plan=plan, priority=priority,
                                      deadline=deadline, enqueued_at=now,
                                      tier_policy=policy)
            heapq.heappush(self._heap, (priority, request.seq, request))
            self.accepted += 1
            if policy != "full":
                self.downgraded += 1
            return request

    def pop(self) -> Optional[AdmittedRequest]:
        """The highest-priority queued request, or ``None`` when empty."""
        with self._lock:
            if not self._heap:
                return None
            return heapq.heappop(self._heap)[2]

    def drain_queue(self) -> List[AdmittedRequest]:
        """Remove and return everything still queued (shutdown path)."""
        with self._lock:
            requests = [entry[2] for entry in self._heap]
            self._heap.clear()
            return requests

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "depth": len(self._heap),
                "max_depth": self.max_depth,
                "occupancy": len(self._heap) / self.max_depth,
                "accepting": self._accepting,
                "accepted": self.accepted,
                "rejected_queue_full": self.rejected_queue_full,
                "rejected_not_accepting": self.rejected_not_accepting,
                "rejected_dead_on_arrival": self.rejected_dead_on_arrival,
                "downgraded": self.downgraded,
            }
