"""Typed request outcomes for the query-serving front door.

Every submitted request resolves to exactly one :class:`QueryResponse` —
the front door never raises into a caller and never leaves a future
dangling.  The status taxonomy is deliberately small and closed:

``ok``                 rows returned (possibly on a degraded tier/plan)
``overloaded``         shed at admission: queue full, draining, or stopped
``deadline_exceeded``  the deadline expired in the queue, at dispatch, or
                       the propagated budget tripped mid-execution
``failed``             every tier failed, or a non-deadline budget trip

:class:`Overloaded` and :class:`DeadlineExceeded` are the corresponding
typed rejection exceptions used *inside* the server (admission control and
the dispatch path raise them; :meth:`QueryServer.submit` converts them into
responses).  They are exported so tests and embedding applications can
pattern-match on the rejection type rather than on strings.
"""
from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

#: the closed status vocabulary of :class:`QueryResponse.status`
STATUS_OK = "ok"
STATUS_OVERLOADED = "overloaded"
STATUS_DEADLINE_EXCEEDED = "deadline_exceeded"
STATUS_FAILED = "failed"
STATUSES = (STATUS_OK, STATUS_OVERLOADED, STATUS_DEADLINE_EXCEEDED,
            STATUS_FAILED)


class Rejection(RuntimeError):
    """Base class of the front door's typed rejections."""

    status = STATUS_FAILED

    def __init__(self, reason: str, message: str = "") -> None:
        self.reason = reason
        super().__init__(message or reason)


class Overloaded(Rejection):
    """The request was shed: bounded queue full, server draining/stopped."""

    status = STATUS_OVERLOADED


class DeadlineExceeded(Rejection):
    """The request's deadline expired before (or during) execution."""

    status = STATUS_DEADLINE_EXCEEDED


@dataclass(frozen=True)
class QueryResponse:
    """The outcome of one submitted request.

    ``queue_seconds`` is admission→dispatch wait; ``execute_seconds`` covers
    the executor call (all ladder attempts).  ``tier_policy`` records the
    admission tier set the shedding policy chose (``"full"``,
    ``"cached_only"`` or ``"interpreter_only"``); ``attempts`` counts failed
    ladder attempts before the answer, so ``attempts > 0`` or a non-default
    policy marks a degraded-path response.
    """

    query: str
    status: str
    rows: Optional[List[Dict[str, Any]]] = None
    tier: str = ""
    plan_mode: str = ""
    tier_policy: str = "full"
    reason: str = ""
    error_type: str = ""
    message: str = ""
    attempts: int = 0
    queue_seconds: float = 0.0
    execute_seconds: float = 0.0
    detail: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.status not in STATUSES:
            raise ValueError(f"unknown response status: {self.status!r}")

    @property
    def ok(self) -> bool:
        return self.status == STATUS_OK

    @property
    def shed(self) -> bool:
        """True when the front door refused to execute the request."""
        return self.status in (STATUS_OVERLOADED, STATUS_DEADLINE_EXCEEDED)

    def as_dict(self) -> dict:
        return {
            "query": self.query,
            "status": self.status,
            "row_count": None if self.rows is None else len(self.rows),
            "tier": self.tier,
            "plan_mode": self.plan_mode,
            "tier_policy": self.tier_policy,
            "reason": self.reason,
            "error_type": self.error_type,
            "message": self.message,
            "attempts": self.attempts,
            "queue_seconds": self.queue_seconds,
            "execute_seconds": self.execute_seconds,
            "detail": dict(self.detail),
        }
