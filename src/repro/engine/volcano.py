"""Volcano-style (iterator model) query interpreter.

This is the classical pull-based engine the paper contrasts compilation with:
every operator is a generator that pulls rows from its children one at a time,
paying interpretation overhead (virtual dispatch, boxed row dictionaries) for
every tuple.

Scalar expressions are no longer tree-walked per row: each operator compiles
its expressions once into Python closures (:mod:`repro.dsl.expr_compile`) and
calls those per tuple.  The boxed-row shape of the interpreter — the thing the
vectorized and compiled engines remove — is unchanged.

The interpreter plays two roles in this repository:

* it is the **interpreter baseline** of the benchmark harness, and
* it is the **reference implementation**: every compiled configuration must
  produce exactly the same rows on every query (integration tests enforce it).
"""
from __future__ import annotations

from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

from ..dsl import qplan
from ..dsl.expr_compile import compile_pair, compile_row
from ..robustness.faults import fault_point
from ..robustness.governor import current_governor
from ..storage.access import AccessLayer, rewrite_string_predicates
from ..storage.catalog import Catalog
from .sharing import SubplanSharing
from .sortkeys import pass_keys, topk_rows

Row = Dict[str, Any]


class VolcanoError(Exception):
    pass


class VolcanoEngine(SubplanSharing):
    """Pull-based interpreter over QPlan operator trees."""

    def __init__(self, catalog: Catalog) -> None:
        self.catalog = catalog
        self._sharing_init()

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def execute(self, plan: qplan.Operator) -> List[Row]:
        """Run a plan to completion and return the list of output rows."""
        with self._sharing_active(plan):
            rows = list(self.iterate(plan))
        governor = current_governor()
        if governor is not None:
            governor.note_output_rows(len(rows))
        return rows

    def iterate(self, plan: qplan.Operator) -> Iterator[Row]:
        """The iterator-model pipeline for one operator (shared subplans are
        executed once and replayed from the materialised cache).

        This is the interpreter's cooperative cancellation point: with a
        governor installed, every operator's ``next()`` stream ticks the
        budget per pulled row, so a trip cancels within one row of the limit
        on any pipeline shape.  Without a governor the stream is returned
        unwrapped.
        """
        fault_point("engine.volcano.operator", operator=type(plan).__name__)
        cached = self._sharing_replay(plan)
        stream = cached if cached is not None else self._dispatch(plan)
        governor = current_governor()
        if governor is None:
            return stream
        return governor.guard_rows(stream)

    def _dispatch(self, plan: qplan.Operator) -> Iterator[Row]:
        """The ``open/next/close`` pipeline for one operator."""
        if isinstance(plan, qplan.Scan):
            return self._scan(plan)
        if isinstance(plan, qplan.PrunedScan):
            return self._pruned_scan(plan)
        if isinstance(plan, qplan.Select):
            return self._select(plan)
        if isinstance(plan, qplan.Project):
            return self._project(plan)
        if isinstance(plan, qplan.IndexJoin):
            return self._index_join(plan)
        if isinstance(plan, qplan.HashJoin):
            return self._hash_join(plan)
        if isinstance(plan, qplan.NestedLoopJoin):
            return self._nested_loop_join(plan)
        if isinstance(plan, qplan.Agg):
            return self._aggregate(plan)
        if isinstance(plan, qplan.Sort):
            return self._sort(plan)
        if isinstance(plan, qplan.TopK):
            return self._topk(plan)
        if isinstance(plan, qplan.Limit):
            return self._limit(plan)
        raise VolcanoError(f"unknown operator {type(plan).__name__}")

    # ------------------------------------------------------------------
    # Operators
    # ------------------------------------------------------------------
    def _scan(self, plan: qplan.Scan) -> Iterator[Row]:
        table = self.catalog.table(plan.table)
        fields = plan.fields if plan.fields is not None else table.schema.column_names()
        columns = [table.column(name) for name in fields]
        for i in range(table.num_rows):
            yield {name: column[i] for name, column in zip(fields, columns)}

    def _select(self, plan: qplan.Select) -> Iterator[Row]:
        if isinstance(plan.child, qplan.Scan):
            # Filter directly over a base-table scan: string predicates can
            # then compare dictionary codes instead of raw values.
            return self._filtered_scan(plan.child, plan.predicate, None)
        predicate = compile_row(plan.predicate)

        def stream() -> Iterator[Row]:
            for row in self.iterate(plan.child):
                if predicate(row):
                    yield row
        return stream()

    def _pruned_scan(self, plan: qplan.PrunedScan) -> Iterator[Row]:
        """``Select(Scan(...))`` with partition pruning: the access layer
        turns the zone filters into a candidate row iterable (ascending base
        order, so emission matches the unpruned scan-then-filter exactly) and
        only the candidates pay row construction and predicate evaluation."""
        scan = plan.child
        candidates = AccessLayer.for_catalog(self.catalog).pruned_indices(
            scan.table, plan.zone_filters)
        return self._filtered_scan(scan, plan.predicate, candidates)

    def _filtered_scan(self, scan: qplan.Scan, predicate_expr,
                       candidates) -> Iterator[Row]:
        """A scan-then-filter pipeline with dictionary-code predicates.

        String equality/``IN``/prefix-``LIKE`` comparisons over dictionary
        columns are rewritten to integer code comparisons
        (:func:`repro.storage.access.rewrite_string_predicates`); the code
        columns ride along in the boxed row during evaluation and are
        stripped before the row is emitted, so downstream operators see the
        exact scan-then-filter rows."""
        table = self.catalog.table(scan.table)
        fields = scan.fields if scan.fields is not None else table.schema.column_names()
        columns = {name: table.column(name) for name in fields}
        layer = AccessLayer.for_catalog(self.catalog)
        predicate, code_columns = rewrite_string_predicates(
            predicate_expr, scan.table, table.schema.columns, layer)
        compiled = compile_row(predicate)
        if candidates is None:
            candidates = range(table.num_rows)
        if not code_columns:
            for i in candidates:
                row = {name: column[i] for name, column in columns.items()}
                if compiled(row):
                    yield row
            return
        evaluated = {**columns, **code_columns}
        for i in candidates:
            row = {name: column[i] for name, column in evaluated.items()}
            if compiled(row):
                for extra in code_columns:
                    del row[extra]
                yield row

    def _index_join(self, plan: qplan.IndexJoin) -> Iterator[Row]:
        """Hash join served by the catalog's load-time unique-key index.

        No build phase: each probe key is looked up in the memoized index and
        the (at most one) matching build row is constructed on demand from
        the base columns, with the build filter applied per fetched row.
        Unique keys make every hash bucket at most one row, so every emission
        order below replicates :meth:`_hash_join` exactly.
        """
        index = AccessLayer.for_catalog(self.catalog).key_index(
            plan.index_table, plan.index_column)
        parts = plan.build_parts()
        if index is None or parts is None:
            yield from self._hash_join(plan)
            return
        scan, build_predicate = parts
        table = self.catalog.table(scan.table)
        fields = scan.fields if scan.fields is not None else table.schema.column_names()
        columns = [table.column(name) for name in fields]
        predicate = compile_row(build_predicate) if build_predicate is not None else None
        right_key = compile_row(plan.right_key)
        residual = compile_pair(plan.residual) if plan.residual is not None else None
        lookup = index.lookup

        # build rows fetched so far: position -> row dict (None = filtered out)
        fetched: Dict[int, Optional[Row]] = {}

        def build_row(position: int) -> Optional[Row]:
            row = fetched.get(position, False)
            if row is False:
                row = {name: column[position]
                       for name, column in zip(fields, columns)}
                if predicate is not None and not predicate(row):
                    row = None
                fetched[position] = row
            return row

        if plan.kind == "inner":
            for right_row in self.iterate(plan.right):
                position = lookup(right_key(right_row))
                if position is None:
                    continue
                left_row = build_row(position)
                if left_row is None:
                    continue
                if residual is None or residual(left_row, right_row):
                    yield {**left_row, **right_row}
            return

        if plan.kind == "leftouter":
            # Probe misses contribute nothing; matched pairs stream out in
            # probe order, then the filter-surviving build rows that never
            # matched are emitted null-padded in base (= bucket) order —
            # exactly :meth:`_probe_outer`'s matched-pairs-then-padding order.
            right_fields = qplan.output_fields(plan.right, self.catalog)
            null_pad = {name: None for name in right_fields}
            matched_positions: set = set()
            for right_row in self.iterate(plan.right):
                position = lookup(right_key(right_row))
                if position is None:
                    continue
                left_row = build_row(position)
                if left_row is None:
                    continue
                if residual is None or residual(left_row, right_row):
                    matched_positions.add(position)
                    yield {**left_row, **right_row}
            for position in range(table.num_rows):
                if position in matched_positions:
                    continue
                left_row = build_row(position)
                if left_row is not None:
                    yield {**left_row, **null_pad}
            return

        # leftsemi / leftanti: collect matched build positions while probing,
        # then emit the filter-surviving build rows in base (= bucket) order.
        matched: set = set()
        for right_row in self.iterate(plan.right):
            position = lookup(right_key(right_row))
            if position is None or position in matched:
                continue
            left_row = build_row(position)
            if left_row is None:
                continue
            if residual is None or residual(left_row, right_row):
                matched.add(position)
        want_match = plan.kind == "leftsemi"
        for position in range(table.num_rows):
            left_row = build_row(position)
            if left_row is not None and (position in matched) == want_match:
                yield left_row

    def _project(self, plan: qplan.Project) -> Iterator[Row]:
        projections = [(name, compile_row(expr)) for name, expr in plan.projections]
        for row in self.iterate(plan.child):
            yield {name: fn(row) for name, fn in projections}

    def _hash_join(self, plan: qplan.HashJoin) -> Iterator[Row]:
        # Build phase: hash the left input on its key.
        left_key = compile_row(plan.left_key)
        buckets: Dict[Any, List[Row]] = {}
        for row in self.iterate(plan.left):
            buckets.setdefault(left_key(row), []).append(row)

        right_key = compile_row(plan.right_key)
        residual = compile_pair(plan.residual) if plan.residual is not None else None

        if plan.kind == "inner":
            yield from self._probe_inner(plan, buckets, right_key, residual)
        elif plan.kind == "leftouter":
            yield from self._probe_outer(plan, buckets, right_key, residual)
        elif plan.kind in ("leftsemi", "leftanti"):
            yield from self._probe_semi_anti(plan, buckets, right_key, residual)
        else:  # pragma: no cover - guarded by the QPlan constructor
            raise VolcanoError(f"unknown join kind {plan.kind!r}")

    def _probe_inner(self, plan: qplan.HashJoin, buckets: Dict[Any, List[Row]],
                     right_key: Callable[[Row], Any],
                     residual: Optional[Callable[[Row, Row], Any]]) -> Iterator[Row]:
        for right_row in self.iterate(plan.right):
            for left_row in buckets.get(right_key(right_row), ()):
                if residual is None or residual(left_row, right_row):
                    yield {**left_row, **right_row}

    def _probe_outer(self, plan: qplan.HashJoin, buckets: Dict[Any, List[Row]],
                     right_key: Callable[[Row], Any],
                     residual: Optional[Callable[[Row, Row], Any]]) -> Iterator[Row]:
        """Left outer join: every left row appears; unmatched ones are null-padded.

        The probe side is the right input, so matches are gathered per left
        row first, then unmatched left rows are emitted with ``None`` columns.
        """
        right_fields = qplan.output_fields(plan.right, self.catalog)
        matched: Dict[int, bool] = {}
        left_rows: List[Row] = [row for rows in buckets.values() for row in rows]
        matched_pairs: List[Tuple[Row, Row]] = []
        for right_row in self.iterate(plan.right):
            for left_row in buckets.get(right_key(right_row), ()):
                if residual is None or residual(left_row, right_row):
                    matched[id(left_row)] = True
                    matched_pairs.append((left_row, right_row))
        for left_row, right_row in matched_pairs:
            yield {**left_row, **right_row}
        null_pad = {name: None for name in right_fields}
        for left_row in left_rows:
            if id(left_row) not in matched:
                yield {**left_row, **null_pad}

    def _probe_semi_anti(self, plan: qplan.HashJoin, buckets: Dict[Any, List[Row]],
                         right_key: Callable[[Row], Any],
                         residual: Optional[Callable[[Row, Row], Any]]) -> Iterator[Row]:
        """Semi/anti join: emit left rows with (without) at least one match."""
        matched: Dict[int, bool] = {}
        for right_row in self.iterate(plan.right):
            for left_row in buckets.get(right_key(right_row), ()):
                if residual is None or residual(left_row, right_row):
                    matched[id(left_row)] = True
        want_match = plan.kind == "leftsemi"
        for rows in buckets.values():
            for left_row in rows:
                if (id(left_row) in matched) == want_match:
                    yield left_row

    def _nested_loop_join(self, plan: qplan.NestedLoopJoin) -> Iterator[Row]:
        right_rows = list(self.iterate(plan.right))
        predicate = compile_pair(plan.predicate) if plan.predicate is not None else None

        def matches(left_row: Row, right_row: Row) -> bool:
            return predicate is None or bool(predicate(left_row, right_row))

        if plan.kind == "inner":
            for left_row in self.iterate(plan.left):
                for right_row in right_rows:
                    if matches(left_row, right_row):
                        yield {**left_row, **right_row}
        elif plan.kind in ("leftsemi", "leftanti"):
            want_match = plan.kind == "leftsemi"
            for left_row in self.iterate(plan.left):
                has_match = any(matches(left_row, right_row) for right_row in right_rows)
                if has_match == want_match:
                    yield left_row
        elif plan.kind == "leftouter":
            right_fields = qplan.output_fields(plan.right, self.catalog)
            null_pad = {name: None for name in right_fields}
            for left_row in self.iterate(plan.left):
                found = False
                for right_row in right_rows:
                    if matches(left_row, right_row):
                        found = True
                        yield {**left_row, **right_row}
                if not found:
                    yield {**left_row, **null_pad}
        else:  # pragma: no cover
            raise VolcanoError(f"unknown join kind {plan.kind!r}")

    def _aggregate(self, plan: qplan.Agg) -> Iterator[Row]:
        aggs = plan.aggregates
        key_names = [name for name, _ in plan.group_keys]
        key_fns = [compile_row(expr) for _, expr in plan.group_keys]
        agg_fns = [compile_row(agg.expr) if agg.expr is not None else None
                   for agg in aggs]
        having = compile_row(plan.having) if plan.having is not None else None

        groups: Dict[Tuple, List[Any]] = {}
        for row in self.iterate(plan.child):
            key = tuple(fn(row) for fn in key_fns)
            accumulators = groups.get(key)
            if accumulators is None:
                accumulators = groups[key] = [initial_accumulator(a) for a in aggs]
            for i, agg in enumerate(aggs):
                fn = agg_fns[i]
                accumulators[i] = fold_value(agg, accumulators[i],
                                             fn(row) if fn is not None else None)

        # A global fold (no group keys) over an empty input is not an empty
        # result: it is one row of neutral aggregates — count=0, sum=0,
        # avg/min/max None — exactly what finalising untouched accumulators
        # produces.  Seed the single group so that row is emitted.
        if not groups and not plan.group_keys:
            groups[()] = [initial_accumulator(a) for a in aggs]

        for key, accumulators in groups.items():
            out = dict(zip(key_names, key))
            for agg, accumulator in zip(aggs, accumulators):
                out[agg.name] = finalise_accumulator(agg, accumulator)
            if having is None or having(out):
                yield out

    def _sort(self, plan: qplan.Sort) -> Iterator[Row]:
        rows = list(self.iterate(plan.child))
        # Stable sorts applied from the least-significant key to the most
        # significant one implement multi-key ASC/DESC ordering.  Each pass is
        # decorate-sort-undecorate: the key column is computed once per row
        # instead of O(n log n) times inside the comparator; ``pass_keys``
        # applies the shared null contract (nulls last for asc).
        for expr, order in reversed(plan.keys):
            key_fn = compile_row(expr)
            keys = pass_keys([key_fn(row) for row in rows])
            permutation = sorted(range(len(rows)), key=keys.__getitem__,
                                 reverse=(order == "desc"))
            rows = [rows[i] for i in permutation]
        return iter(rows)

    def _topk(self, plan: qplan.TopK) -> Iterator[Row]:
        rows = list(self.iterate(plan.child))
        keys = [(compile_row(expr), order) for expr, order in plan.keys]
        return iter(topk_rows(rows, keys, plan.count))

    def _limit(self, plan: qplan.Limit) -> Iterator[Row]:
        if plan.count <= 0:
            return
        count = 0
        for row in self.iterate(plan.child):
            yield row
            count += 1
            if count >= plan.count:
                break


# ---------------------------------------------------------------------------
# Aggregate accumulators (row-at-a-time folding).
#
# The vectorized engine folds whole gathered value columns instead
# (`repro.engine.vectorized._final_value`); the two must stay value-identical
# — the all-22-query parity tests run both engines against each other, so a
# semantic change here must be mirrored there (and vice versa).
# ---------------------------------------------------------------------------
def initial_accumulator(agg: qplan.AggSpec):
    if agg.kind in ("sum", "count"):
        return 0
    if agg.kind == "avg":
        return (0.0, 0)
    if agg.kind == "count_distinct":
        return set()
    return None  # min / max start undefined


def fold_value(agg: qplan.AggSpec, accumulator, value):
    """Fold one input value into an accumulator (``value`` is the evaluated
    argument expression, or ``None`` for ``count(*)``)."""
    kind = agg.kind
    if kind == "count":
        if agg.expr is None:
            return accumulator + 1
        return accumulator + (0 if value is None else 1)
    if value is None:
        return accumulator
    if kind == "sum":
        return accumulator + value
    if kind == "avg":
        total, count = accumulator
        return (total + value, count + 1)
    if kind == "min":
        return value if accumulator is None or value < accumulator else accumulator
    if kind == "max":
        return value if accumulator is None or value > accumulator else accumulator
    if kind == "count_distinct":
        accumulator.add(value)
        return accumulator
    raise VolcanoError(f"unknown aggregate {kind!r}")


def finalise_accumulator(agg: qplan.AggSpec, accumulator):
    if agg.kind == "avg":
        total, count = accumulator
        return total / count if count else None
    if agg.kind == "count_distinct":
        return len(accumulator)
    return accumulator


def execute(plan: qplan.Operator, catalog: Catalog) -> List[Row]:
    """Convenience wrapper: run ``plan`` against ``catalog`` with a fresh engine."""
    return VolcanoEngine(catalog).execute(plan)
