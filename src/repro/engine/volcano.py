"""Volcano-style (iterator model) query interpreter.

This is the classical pull-based engine the paper contrasts compilation with:
every operator is a generator that pulls rows from its children one at a time,
paying interpretation overhead (virtual dispatch, boxed row dictionaries,
per-row expression-tree walking) for every tuple.

The interpreter plays two roles in this repository:

* it is the **interpreter baseline** of the benchmark harness, and
* it is the **reference implementation**: every compiled configuration must
  produce exactly the same rows on every query (integration tests enforce it).
"""
from __future__ import annotations

from typing import Any, Dict, Iterable, Iterator, List, Optional, Tuple

from ..dsl import qplan
from ..dsl.expr import evaluate
from ..storage.catalog import Catalog

Row = Dict[str, Any]


class VolcanoError(Exception):
    pass


class VolcanoEngine:
    """Pull-based interpreter over QPlan operator trees."""

    def __init__(self, catalog: Catalog) -> None:
        self.catalog = catalog

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def execute(self, plan: qplan.Operator) -> List[Row]:
        """Run a plan to completion and return the list of output rows."""
        return list(self.iterate(plan))

    def iterate(self, plan: qplan.Operator) -> Iterator[Row]:
        """The iterator-model ``open/next/close`` pipeline for one operator."""
        if isinstance(plan, qplan.Scan):
            return self._scan(plan)
        if isinstance(plan, qplan.Select):
            return self._select(plan)
        if isinstance(plan, qplan.Project):
            return self._project(plan)
        if isinstance(plan, qplan.HashJoin):
            return self._hash_join(plan)
        if isinstance(plan, qplan.NestedLoopJoin):
            return self._nested_loop_join(plan)
        if isinstance(plan, qplan.Agg):
            return self._aggregate(plan)
        if isinstance(plan, qplan.Sort):
            return self._sort(plan)
        if isinstance(plan, qplan.Limit):
            return self._limit(plan)
        raise VolcanoError(f"unknown operator {type(plan).__name__}")

    # ------------------------------------------------------------------
    # Operators
    # ------------------------------------------------------------------
    def _scan(self, plan: qplan.Scan) -> Iterator[Row]:
        table = self.catalog.table(plan.table)
        fields = plan.fields if plan.fields is not None else table.schema.column_names()
        columns = [table.column(name) for name in fields]
        for i in range(table.num_rows):
            yield {name: column[i] for name, column in zip(fields, columns)}

    def _select(self, plan: qplan.Select) -> Iterator[Row]:
        for row in self.iterate(plan.child):
            if evaluate(plan.predicate, row):
                yield row

    def _project(self, plan: qplan.Project) -> Iterator[Row]:
        for row in self.iterate(plan.child):
            yield {name: evaluate(expr, row) for name, expr in plan.projections}

    def _hash_join(self, plan: qplan.HashJoin) -> Iterator[Row]:
        # Build phase: hash the left input on its key.
        buckets: Dict[Any, List[Row]] = {}
        for row in self.iterate(plan.left):
            key = evaluate(plan.left_key, row)
            buckets.setdefault(key, []).append(row)

        if plan.kind == "inner":
            yield from self._probe_inner(plan, buckets)
        elif plan.kind == "leftouter":
            yield from self._probe_outer(plan, buckets)
        elif plan.kind in ("leftsemi", "leftanti"):
            yield from self._probe_semi_anti(plan, buckets)
        else:  # pragma: no cover - guarded by the QPlan constructor
            raise VolcanoError(f"unknown join kind {plan.kind!r}")

    def _probe_inner(self, plan: qplan.HashJoin, buckets: Dict[Any, List[Row]]) -> Iterator[Row]:
        for right_row in self.iterate(plan.right):
            key = evaluate(plan.right_key, right_row)
            for left_row in buckets.get(key, ()):
                if self._residual_ok(plan, left_row, right_row):
                    yield {**left_row, **right_row}

    def _probe_outer(self, plan: qplan.HashJoin, buckets: Dict[Any, List[Row]]) -> Iterator[Row]:
        """Left outer join: every left row appears; unmatched ones are null-padded.

        The probe side is the right input, so matches are gathered per left
        row first, then unmatched left rows are emitted with ``None`` columns.
        """
        right_fields = qplan.output_fields(plan.right, self.catalog)
        matched: Dict[int, bool] = {}
        left_rows: List[Row] = [row for rows in buckets.values() for row in rows]
        matched_pairs: List[Tuple[Row, Row]] = []
        for right_row in self.iterate(plan.right):
            key = evaluate(plan.right_key, right_row)
            for left_row in buckets.get(key, ()):
                if self._residual_ok(plan, left_row, right_row):
                    matched[id(left_row)] = True
                    matched_pairs.append((left_row, right_row))
        for left_row, right_row in matched_pairs:
            yield {**left_row, **right_row}
        null_pad = {name: None for name in right_fields}
        for left_row in left_rows:
            if id(left_row) not in matched:
                yield {**left_row, **null_pad}

    def _probe_semi_anti(self, plan: qplan.HashJoin, buckets: Dict[Any, List[Row]]) -> Iterator[Row]:
        """Semi/anti join: emit left rows with (without) at least one match."""
        matched: Dict[int, bool] = {}
        for right_row in self.iterate(plan.right):
            key = evaluate(plan.right_key, right_row)
            for left_row in buckets.get(key, ()):
                if self._residual_ok(plan, left_row, right_row):
                    matched[id(left_row)] = True
        want_match = plan.kind == "leftsemi"
        for rows in buckets.values():
            for left_row in rows:
                if (id(left_row) in matched) == want_match:
                    yield left_row

    def _nested_loop_join(self, plan: qplan.NestedLoopJoin) -> Iterator[Row]:
        right_rows = list(self.iterate(plan.right))
        if plan.kind == "inner":
            for left_row in self.iterate(plan.left):
                for right_row in right_rows:
                    if self._nl_predicate_ok(plan, left_row, right_row):
                        yield {**left_row, **right_row}
        elif plan.kind in ("leftsemi", "leftanti"):
            want_match = plan.kind == "leftsemi"
            for left_row in self.iterate(plan.left):
                has_match = any(self._nl_predicate_ok(plan, left_row, right_row)
                                for right_row in right_rows)
                if has_match == want_match:
                    yield left_row
        elif plan.kind == "leftouter":
            right_fields = qplan.output_fields(plan.right, self.catalog)
            null_pad = {name: None for name in right_fields}
            for left_row in self.iterate(plan.left):
                found = False
                for right_row in right_rows:
                    if self._nl_predicate_ok(plan, left_row, right_row):
                        found = True
                        yield {**left_row, **right_row}
                if not found:
                    yield {**left_row, **null_pad}
        else:  # pragma: no cover
            raise VolcanoError(f"unknown join kind {plan.kind!r}")

    def _aggregate(self, plan: qplan.Agg) -> Iterator[Row]:
        groups: Dict[Tuple, List[Any]] = {}
        key_rows: Dict[Tuple, Row] = {}
        distinct_sets: Dict[Tuple, List[set]] = {}
        aggs = plan.aggregates

        for row in self.iterate(plan.child):
            key = tuple(evaluate(expr, row) for _, expr in plan.group_keys)
            if key not in groups:
                groups[key] = [_initial_accumulator(a) for a in aggs]
                key_rows[key] = {name: value
                                 for (name, _), value in zip(plan.group_keys, key)}
                distinct_sets[key] = [set() if a.kind == "count_distinct" else None
                                      for a in aggs]
            accumulators = groups[key]
            sets = distinct_sets[key]
            for i, agg in enumerate(aggs):
                accumulators[i] = _fold_accumulator(agg, accumulators[i], row, sets[i])

        for key, accumulators in groups.items():
            out = dict(key_rows[key])
            for agg, accumulator in zip(aggs, accumulators):
                out[agg.name] = _finalise_accumulator(agg, accumulator)
            if plan.having is None or evaluate(plan.having, out):
                yield out

    def _sort(self, plan: qplan.Sort) -> Iterator[Row]:
        rows = list(self.iterate(plan.child))
        # Stable sorts applied from the least-significant key to the most
        # significant one implement multi-key ASC/DESC ordering.
        for expr, order in reversed(plan.keys):
            rows.sort(key=lambda row: evaluate(expr, row), reverse=(order == "desc"))
        return iter(rows)

    def _limit(self, plan: qplan.Limit) -> Iterator[Row]:
        count = 0
        for row in self.iterate(plan.child):
            if count >= plan.count:
                break
            count += 1
            yield row

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _residual_ok(self, plan: qplan.HashJoin, left_row: Row, right_row: Row) -> bool:
        if plan.residual is None:
            return True
        return bool(evaluate(plan.residual, {**left_row, **right_row},
                             left=left_row, right=right_row))

    def _nl_predicate_ok(self, plan: qplan.NestedLoopJoin, left_row: Row, right_row: Row) -> bool:
        if plan.predicate is None:
            return True
        return bool(evaluate(plan.predicate, {**left_row, **right_row},
                             left=left_row, right=right_row))


def _initial_accumulator(agg: qplan.AggSpec):
    if agg.kind in ("sum", "count"):
        return 0
    if agg.kind == "avg":
        return (0.0, 0)
    if agg.kind == "count_distinct":
        return 0
    return None  # min / max start undefined


def _fold_accumulator(agg: qplan.AggSpec, accumulator, row: Row, distinct_set):
    if agg.kind == "count":
        if agg.expr is None:
            return accumulator + 1
        value = evaluate(agg.expr, row)
        return accumulator + (0 if value is None else 1)
    value = evaluate(agg.expr, row)
    if value is None:
        return accumulator
    if agg.kind == "sum":
        return accumulator + value
    if agg.kind == "avg":
        total, count = accumulator
        return (total + value, count + 1)
    if agg.kind == "min":
        return value if accumulator is None or value < accumulator else accumulator
    if agg.kind == "max":
        return value if accumulator is None or value > accumulator else accumulator
    if agg.kind == "count_distinct":
        distinct_set.add(value)
        return len(distinct_set)
    raise VolcanoError(f"unknown aggregate {agg.kind!r}")


def _finalise_accumulator(agg: qplan.AggSpec, accumulator):
    if agg.kind == "avg":
        total, count = accumulator
        return total / count if count else None
    return accumulator


def execute(plan: qplan.Operator, catalog: Catalog) -> List[Row]:
    """Convenience wrapper: run ``plan`` against ``catalog`` with a fresh engine."""
    return VolcanoEngine(catalog).execute(plan)
