"""Null-aware sort keys and bounded top-k selection, shared by every engine.

This module is the single definition of the repository's **ordering
semantics**; the Volcano interpreter, the vectorized engine, the template
expander, the compiled runtime (:mod:`repro.codegen.runtime`) and the ``TopK``
operator all route their comparisons through it so that a plan returns the
same row order everywhere.

Null ordering
    ``None`` compares as **greater than every non-null value**: ascending
    sorts place nulls last, descending sorts place nulls first, and ties
    between nulls preserve input order (all sorts are stable).  This is the
    NULLS-LAST-for-asc contract of the planner's order framework; before it
    existed, sorting a nullable column raised ``TypeError`` in every engine
    (``None < 3`` is not defined in Python).

Top-k selection
    ``Limit(Sort(x))`` plans are fused by the planner into a single ``TopK``
    operator, executed as a bounded heap (:func:`heapq.nsmallest`) instead of
    a full materialise-and-sort.  To use one ``nsmallest`` call for multi-key
    ASC/DESC ordering, each row's keys are *encoded* into a composite tuple
    whose plain ascending lexicographic order equals the multi-pass stable
    sort the engines perform — including the null contract above and
    input-order tie-breaking.
"""
from __future__ import annotations

import heapq
from typing import Any, Callable, List, Sequence, Tuple


class _Reversed:
    """Order-reversing wrapper for DESC keys over non-numeric values.

    Numeric DESC keys are encoded by negation; values that cannot be negated
    (strings, mostly) are wrapped instead, with comparisons delegated to the
    underlying value in reverse.
    """

    __slots__ = ("value",)

    def __init__(self, value: Any) -> None:
        self.value = value

    def __lt__(self, other: "_Reversed") -> bool:
        return other.value < self.value

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _Reversed) and other.value == self.value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"_Reversed({self.value!r})"


# ---------------------------------------------------------------------------
# Per-pass keys for the engines' stable multi-pass sorts.
# ---------------------------------------------------------------------------
def pass_keys(values: Sequence[Any]) -> Sequence[Any]:
    """Keys for one stable sort pass over ``values`` (one key column).

    Returns ``values`` unchanged when no ``None`` is present (the common,
    fast path: native comparisons only).  Otherwise every value is decorated
    as ``(value is None, value)`` so that ``None`` compares greater than any
    non-null value without ever being compared *to* one; with
    ``reverse=True`` (a DESC pass) the same decoration puts nulls first,
    which is exactly the null contract's mirror image.
    """
    if None in values:
        return [(value is None, value) for value in values]
    return values


def null_aware_key(value: Any) -> Tuple[bool, Any]:
    """Decorate one sort-key value per the null contract (always decorates).

    Used where per-column ``None`` detection is not worth the bookkeeping
    (the template expander's generated sorts and the compiled runtime).
    """
    return (value is None, value)


# ---------------------------------------------------------------------------
# Composite key encoding for single-pass (heap) ordering.
# ---------------------------------------------------------------------------
def _encode_column(values: Sequence[Any], order: str) -> Sequence[Any]:
    """Encode one key column so plain ascending order realises ``order``.

    The encoding per element:

    * ASC, no nulls: the value itself,
    * ASC with nulls: ``(value is None, value)`` — nulls last,
    * DESC numeric: ``-value`` (``(0, 0)`` for a null — nulls first),
    * DESC non-numeric: :class:`_Reversed` (same null treatment).
    """
    has_nulls = None in values
    if order == "asc":
        if not has_nulls:
            return values
        return [(value is None, value) for value in values]
    # DESC: negate when every non-null value is numeric, wrap otherwise.
    numeric = all(value is None or isinstance(value, (int, float))
                  for value in values)
    if numeric:
        if not has_nulls:
            return [-value for value in values]
        return [(0, 0) if value is None else (1, -value) for value in values]
    if not has_nulls:
        return [_Reversed(value) for value in values]
    return [(0, 0) if value is None else (1, _Reversed(value)) for value in values]


def topk_indices(key_columns: Sequence[Sequence[Any]], orders: Sequence[str],
                 count: int, num_rows: int) -> List[int]:
    """Indices of the first ``count`` rows of the sorted order (stable).

    Equivalent to fully sorting ``range(num_rows)`` by the encoded keys and
    truncating, but runs a bounded heap: O(n log k) comparisons instead of
    O(n log n), and only ``count`` rows are ever gathered downstream.
    """
    if count <= 0 or num_rows == 0:
        return []
    if not key_columns:  # no keys: plain input order, top-k is a prefix
        return list(range(min(count, num_rows)))
    # Per-row composite keys whose ascending lexicographic order is the
    # multi-key ASC/DESC order.  The trailing row index both breaks ties
    # stably (= the engines' stable multi-pass sorts) and guarantees no
    # comparison ever falls through to incomparable payload values.  zip()
    # builds the decorated tuples at C speed from the encoded columns.
    encoded = [_encode_column(column, order)
               for column, order in zip(key_columns, orders)]
    decorated = list(zip(*encoded, range(num_rows)))
    if count >= num_rows:
        decorated.sort()
        return [entry[-1] for entry in decorated]
    return [entry[-1] for entry in heapq.nsmallest(count, decorated)]


def topk_rows(rows: Sequence[Any], keys: Sequence[Tuple[Callable[[Any], Any], str]],
              count: int) -> List[Any]:
    """The first ``count`` rows of ``rows`` under ``keys`` = ``[(key_fn, order)]``.

    Row-oriented front end over :func:`topk_indices`, shared by the Volcano
    interpreter and the template expander's generated code.
    """
    if count <= 0 or not rows:
        return []
    key_columns = [[key_fn(row) for row in rows] for key_fn, _ in keys]
    orders = [order for _, order in keys]
    return [rows[i] for i in topk_indices(key_columns, orders, count, len(rows))]
