"""Vectorized (batch-at-a-time) columnar execution engine.

MonetDB/X100-style execution for QPlan trees: operators consume and produce
:class:`ColumnBatch` objects — a dictionary of column value lists plus a
selection vector — instead of boxed per-row dictionaries.  A scan hands out
the catalog's columnar storage **zero-copy**; selections only ever shrink the
selection vector; joins and aggregations gather from columns directly; rows
are materialized once, for the final result.

Scalar expressions are compiled once per operator into closures that run over
whole column batches (:mod:`repro.dsl.expr_compile`), so neither per-row
dictionary construction nor per-row expression-tree walking happens anywhere
on the hot path.  This is the interpreted-engine analogue of the paper's
data-structure specialization lowerings.

The engine is row-identical to :class:`~repro.engine.volcano.VolcanoEngine`
on every plan — including output *order* — which the integration tests
enforce over all 22 TPC-H queries.
"""
from __future__ import annotations

from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from ..dsl import qplan
from ..dsl.expr_compile import (compile_columnar, compile_columnar_pair,
                                compile_columnar_predicate, compile_row)
from ..robustness.faults import fault_point
from ..robustness.governor import current_governor
from ..storage.access import AccessLayer, rewrite_string_predicates
from ..storage.catalog import Catalog
from .sharing import SubplanSharing
from .sortkeys import pass_keys, topk_indices

Row = Dict[str, Any]


class VectorizedError(Exception):
    pass


class ColumnBatch:
    """A batch of rows in columnar form.

    ``columns`` maps column names to value lists of ``length`` rows; ``sel``
    is the selection vector: an ordered sequence of row indices into those
    lists, or ``None`` meaning *all* rows.  Filters never copy column data —
    they only replace the selection vector.
    """

    __slots__ = ("columns", "sel", "length")

    def __init__(self, columns: Dict[str, Sequence[Any]],
                 sel: Optional[Sequence[int]], length: int) -> None:
        self.columns = columns
        self.sel = sel
        self.length = length

    def indices(self) -> Sequence[int]:
        """The selected row indices (a ``range`` when nothing is filtered)."""
        return range(self.length) if self.sel is None else self.sel

    @property
    def num_selected(self) -> int:
        return self.length if self.sel is None else len(self.sel)

    def __repr__(self) -> str:
        return (f"ColumnBatch({sorted(self.columns)}, "
                f"{self.num_selected}/{self.length} rows)")


class VectorizedEngine(SubplanSharing):
    """Batch-at-a-time columnar executor over QPlan operator trees.

    ``batch_size`` of ``None`` (the default) processes each base table as a
    single batch, which is fastest in pure Python; a positive value splits
    scans into windows of that many rows (selection vectors keep the windows
    zero-copy), which the selection-vector unit tests exercise.
    """

    def __init__(self, catalog: Catalog, batch_size: Optional[int] = None) -> None:
        if batch_size is not None and batch_size <= 0:
            raise VectorizedError(f"batch_size must be positive, got {batch_size}")
        self.catalog = catalog
        self.batch_size = batch_size
        self._sharing_init()

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def execute(self, plan: qplan.Operator) -> List[Row]:
        """Run a plan and materialize the result as boxed rows (done once)."""
        fields = qplan.output_fields(plan, self.catalog)
        with self._sharing_active(plan):
            rows: List[Row] = []
            for batch in self.execute_batches(plan):
                columns = [batch.columns[name] for name in fields]
                for i in batch.indices():
                    rows.append({name: column[i] for name, column in zip(fields, columns)})
        governor = current_governor()
        if governor is not None:
            governor.note_output_rows(len(rows))
        return rows

    def execute_batches(self, plan: qplan.Operator) -> Iterator[ColumnBatch]:
        """The batch pipeline for one operator (shared subplans run once and
        are replayed from the materialised-batch cache).

        Batch boundaries are the engine's cooperative cancellation points:
        with a governor installed every emitted batch charges its selected
        rows at an operator checkpoint, so a budget trip cancels within one
        batch.  Without a governor the stream is returned unwrapped.
        """
        fault_point("engine.vectorized.batch", operator=type(plan).__name__)
        cached = self._sharing_replay(plan)
        stream = cached if cached is not None else self._dispatch(plan)
        governor = current_governor()
        if governor is None:
            return stream
        return governor.guard_batches(stream, lambda batch: batch.num_selected)

    def _dispatch(self, plan: qplan.Operator) -> Iterator[ColumnBatch]:
        if isinstance(plan, qplan.Scan):
            return self._scan(plan)
        if isinstance(plan, qplan.PrunedScan):
            return self._pruned_scan(plan)
        if isinstance(plan, qplan.Select):
            return self._select(plan)
        if isinstance(plan, qplan.Project):
            return self._project(plan)
        if isinstance(plan, qplan.IndexJoin):
            return self._index_join(plan)
        if isinstance(plan, qplan.HashJoin):
            return self._hash_join(plan)
        if isinstance(plan, qplan.NestedLoopJoin):
            return self._nested_loop_join(plan)
        if isinstance(plan, qplan.Agg):
            return self._aggregate(plan)
        if isinstance(plan, qplan.Sort):
            return self._sort(plan)
        if isinstance(plan, qplan.TopK):
            return self._topk(plan)
        if isinstance(plan, qplan.Limit):
            return self._limit(plan)
        raise VectorizedError(f"unknown operator {type(plan).__name__}")

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _materialize(self, plan: qplan.Operator) -> Tuple[Dict[str, List[Any]], int]:
        """Compact an input into contiguous columns (zero-copy when the input
        is a single unfiltered batch, e.g. a whole-table scan)."""
        fields = qplan.output_fields(plan, self.catalog)
        batches = list(self.execute_batches(plan))
        if len(batches) == 1 and batches[0].sel is None:
            only = batches[0]
            return {name: only.columns[name] for name in fields}, only.length
        columns: Dict[str, List[Any]] = {name: [] for name in fields}
        total = 0
        for batch in batches:
            indices = batch.indices()
            for name in fields:
                source = batch.columns[name]
                columns[name].extend([source[i] for i in indices])
            total += len(indices)
        return columns, total

    # ------------------------------------------------------------------
    # Operators
    # ------------------------------------------------------------------
    def _scan(self, plan: qplan.Scan) -> Iterator[ColumnBatch]:
        table = self.catalog.table(plan.table)
        fields = plan.fields if plan.fields is not None else table.schema.column_names()
        columns = {name: table.column(name) for name in fields}
        num_rows = table.num_rows
        if self.batch_size is None or num_rows <= self.batch_size:
            yield ColumnBatch(columns, None, num_rows)
            return
        for start in range(0, num_rows, self.batch_size):
            yield ColumnBatch(columns, range(start, min(start + self.batch_size, num_rows)),
                              num_rows)

    def _select(self, plan: qplan.Select) -> Iterator[ColumnBatch]:
        # A filter directly over a base-table scan gets the dictionary
        # treatment: string equality / IN / prefix-LIKE conjuncts compare
        # load-time integer codes instead of strings.
        if isinstance(plan.child, qplan.Scan):
            yield from self._filtered_scan(plan.child, plan.predicate, None)
            return
        predicate = compile_columnar_predicate(plan.predicate)
        for batch in self.execute_batches(plan.child):
            sel = predicate(batch.columns, batch.indices())
            yield ColumnBatch(batch.columns, sel, batch.length)

    def _pruned_scan(self, plan: qplan.PrunedScan) -> Iterator[ColumnBatch]:
        yield from self._filtered_scan(plan.child, plan.predicate,
                                       plan.zone_filters)

    def _filtered_scan(self, scan: qplan.Scan, predicate,
                       zone_filters) -> Iterator[ColumnBatch]:
        """A filter fused onto a base-table scan.

        Zone filters (when present) shrink the evaluated index set through
        the access layer — sorted-column candidate slices or zone-map chunk
        ranges — and dictionary-encoded string columns rewrite the predicate
        to integer code comparisons.  Both legs only ever narrow *which* rows
        the (full) predicate is evaluated on, so the surviving selection
        vector is identical to the unpruned filter, in the same (ascending)
        order, over the same zero-copy columns.
        """
        table = self.catalog.table(scan.table)
        fields = scan.fields if scan.fields is not None else table.schema.column_names()
        columns = {name: table.column(name) for name in fields}
        num_rows = table.num_rows

        layer = AccessLayer.for_catalog(self.catalog)
        predicate, code_columns = rewrite_string_predicates(
            predicate, scan.table, table.schema.columns, layer)
        if code_columns:
            columns = {**columns, **code_columns}
        compiled = compile_columnar_predicate(predicate)

        if zone_filters:
            candidates = layer.pruned_indices(scan.table, zone_filters)
        else:
            candidates = range(num_rows)
        if self.batch_size is None:
            sel = compiled(columns, candidates)
            yield ColumnBatch(columns, sel, num_rows)
            return
        window: List[int] = []
        for index in candidates:
            window.append(index)
            if len(window) >= self.batch_size:
                yield ColumnBatch(columns, compiled(columns, window), num_rows)
                window = []
        if window:
            yield ColumnBatch(columns, compiled(columns, window), num_rows)

    def _project(self, plan: qplan.Project) -> Iterator[ColumnBatch]:
        projections = [(name, compile_columnar(expr)) for name, expr in plan.projections]
        for batch in self.execute_batches(plan.child):
            indices = batch.indices()
            columns = {name: fn(batch.columns, indices) for name, fn in projections}
            yield ColumnBatch(columns, None, len(indices))

    def _hash_join(self, plan: qplan.HashJoin) -> Iterator[ColumnBatch]:
        left_fields = qplan.output_fields(plan.left, self.catalog)
        right_fields = qplan.output_fields(plan.right, self.catalog)

        # Build phase: key column over the materialized left input.
        left_columns, left_count = self._materialize(plan.left)
        left_keys = compile_columnar(plan.left_key)(left_columns, range(left_count))
        buckets: Dict[Any, List[int]] = {}
        for j in range(left_count):
            buckets.setdefault(left_keys[j], []).append(j)

        right_key = compile_columnar(plan.right_key)
        residual_binder = None
        if plan.residual is not None:
            residual_binder = compile_columnar_pair(plan.residual, left_fields, right_fields)

        if plan.kind == "inner":
            yield from self._probe_inner(plan, buckets, left_columns, left_fields,
                                         right_fields, right_key, residual_binder)
        elif plan.kind == "leftouter":
            yield from self._probe_outer(plan, buckets, left_columns, left_fields,
                                         right_fields, right_key, residual_binder)
        elif plan.kind in ("leftsemi", "leftanti"):
            yield from self._probe_semi_anti(plan, buckets, left_columns, left_fields,
                                             right_key, residual_binder)
        else:  # pragma: no cover - guarded by the QPlan constructor
            raise VectorizedError(f"unknown join kind {plan.kind!r}")

    def _index_join(self, plan: qplan.IndexJoin) -> Iterator[ColumnBatch]:
        """Hash join served by the catalog's load-time unique-key index.

        The build side is never executed: probe keys index the memoized
        direct array, the build filter runs only on candidate rows, and the
        build columns are gathered zero-copy from the catalog.  With unique
        keys the emission orders below are exactly those of
        :meth:`_hash_join` (probe-major for inner, base order for semi/anti).
        """
        index = AccessLayer.for_catalog(self.catalog).key_index(
            plan.index_table, plan.index_column)
        parts = plan.build_parts()
        if index is None or parts is None:
            yield from self._hash_join(plan)
            return
        scan, build_predicate = parts
        table = self.catalog.table(scan.table)
        left_fields = scan.fields if scan.fields is not None \
            else table.schema.column_names()
        base_columns = {name: table.column(name) for name in left_fields}
        right_fields = qplan.output_fields(plan.right, self.catalog)

        from ..storage.access import DirectArray
        build_pass = (compile_columnar(build_predicate)
                      if build_predicate is not None else None)
        right_key = compile_columnar(plan.right_key)
        residual_binder = None
        if plan.residual is not None:
            residual_binder = compile_columnar_pair(plan.residual, left_fields,
                                                    right_fields)
        lookup = index.lookup
        # dense-array fast path bound to locals: the probe loops below index
        # `slots` inline instead of paying a method call per probe row
        if isinstance(index, DirectArray):
            slots, offset, size = index.slots, index.offset, len(index.slots)
        else:
            slots, offset, size = None, 0, 0
        # per-position build-filter verdicts, shared across probe batches and
        # evaluated in one compiled-columnar call per batch of new positions
        verdicts: Dict[int, bool] = {}

        def resolve(keys: List[Any]) -> List[Optional[int]]:
            """Key column -> build positions (the two-pass filtered path)."""
            if slots is not None:
                positions: List[Optional[int]] = []
                append = positions.append
                for key in keys:
                    if type(key) is int:
                        slot = key - offset
                        append(slots[slot] if 0 <= slot < size else None)
                    else:
                        append(lookup(key))
                return positions
            return [lookup(key) for key in keys]

        def screen(positions: List[Optional[int]]) -> None:
            """Fill ``verdicts`` for every not-yet-screened position."""
            fresh = [j for j in set(positions)
                     if j is not None and j not in verdicts]
            if fresh:
                for j, verdict in zip(fresh, build_pass(base_columns, fresh)):
                    verdicts[j] = bool(verdict)

        if plan.kind == "inner":
            for batch in self.execute_batches(plan.right):
                indices = batch.indices()
                keys = right_key(batch.columns, indices)
                residual = (residual_binder(base_columns, batch.columns)
                            if residual_binder is not None else None)
                left_idx: List[int] = []
                right_idx: List[int] = []
                if build_pass is None:
                    # single fused pass: lookup, residual, pair emission
                    for pos, i in enumerate(indices):
                        key = keys[pos]
                        if slots is not None and type(key) is int:
                            slot = key - offset
                            j = slots[slot] if 0 <= slot < size else None
                        else:
                            j = lookup(key)
                        if j is None:
                            continue
                        if residual is None or residual(j, i):
                            left_idx.append(j)
                            right_idx.append(i)
                else:
                    positions = resolve(keys)
                    screen(positions)
                    for pos, i in enumerate(indices):
                        j = positions[pos]
                        if j is None or not verdicts[j]:
                            continue
                        if residual is None or residual(j, i):
                            left_idx.append(j)
                            right_idx.append(i)
                columns: Dict[str, List[Any]] = {}
                for name in left_fields:
                    source = base_columns[name]
                    columns[name] = [source[j] for j in left_idx]
                for name in right_fields:
                    source = batch.columns[name]
                    columns[name] = [source[i] for i in right_idx]
                yield ColumnBatch(columns, None, len(left_idx))
            return

        if plan.kind == "leftouter":
            # Matched pairs gather in probe order; probe misses contribute
            # nothing.  The filter-surviving build rows that never matched
            # follow null-padded in base (= bucket) order — the same
            # matched-pairs-then-padding emission as :meth:`_probe_outer`.
            matched: set = set()
            left_idx: List[int] = []
            right_values: Dict[str, List[Any]] = {name: [] for name in right_fields}
            for batch in self.execute_batches(plan.right):
                indices = batch.indices()
                keys = right_key(batch.columns, indices)
                residual = (residual_binder(base_columns, batch.columns)
                            if residual_binder is not None else None)
                positions = resolve(keys)
                if build_pass is not None:
                    screen(positions)
                batch_columns = [batch.columns[name] for name in right_fields]
                outputs = [right_values[name] for name in right_fields]
                for pos, i in enumerate(indices):
                    j = positions[pos]
                    if j is None:
                        continue
                    if build_pass is not None and not verdicts[j]:
                        continue
                    if residual is None or residual(j, i):
                        matched.add(j)
                        left_idx.append(j)
                        for source, out in zip(batch_columns, outputs):
                            out.append(source[i])
            columns: Dict[str, List[Any]] = {}
            for name in left_fields:
                source = base_columns[name]
                columns[name] = [source[j] for j in left_idx]
            columns.update(right_values)
            yield ColumnBatch(columns, None, len(left_idx))

            if build_pass is not None:
                surviving = compile_columnar_predicate(
                    build_predicate)(base_columns, range(table.num_rows))
            else:
                surviving = range(table.num_rows)
            unmatched = [j for j in surviving if j not in matched]
            columns = {}
            for name in left_fields:
                source = base_columns[name]
                columns[name] = [source[j] for j in unmatched]
            for name in right_fields:
                columns[name] = [None] * len(unmatched)
            yield ColumnBatch(columns, None, len(unmatched))
            return

        # leftsemi / leftanti: mark matched build positions, then emit the
        # filter-surviving base rows (zero-copy, ascending = bucket order).
        matched: set = set()
        for batch in self.execute_batches(plan.right):
            indices = batch.indices()
            keys = right_key(batch.columns, indices)
            residual = (residual_binder(base_columns, batch.columns)
                        if residual_binder is not None else None)
            positions = resolve(keys)
            if build_pass is not None:
                screen(positions)
            for pos, i in enumerate(indices):
                j = positions[pos]
                if j is None or j in matched:
                    continue
                if build_pass is not None and not verdicts[j]:
                    continue
                if residual is None or residual(j, i):
                    matched.add(j)
        if build_pass is not None:
            surviving: Sequence[int] = compile_columnar_predicate(
                build_predicate)(base_columns, range(table.num_rows))
        else:
            surviving = range(table.num_rows)
        want_match = plan.kind == "leftsemi"
        keep = [j for j in surviving if (j in matched) == want_match]
        yield ColumnBatch(base_columns, keep, table.num_rows)

    def _probe_inner(self, plan, buckets, left_columns, left_fields, right_fields,
                     right_key, residual_binder) -> Iterator[ColumnBatch]:
        for batch in self.execute_batches(plan.right):
            indices = batch.indices()
            keys = right_key(batch.columns, indices)
            residual = (residual_binder(left_columns, batch.columns)
                        if residual_binder is not None else None)
            left_idx: List[int] = []
            right_idx: List[int] = []
            for pos, i in enumerate(indices):
                matches = buckets.get(keys[pos])
                if not matches:
                    continue
                for j in matches:
                    if residual is None or residual(j, i):
                        left_idx.append(j)
                        right_idx.append(i)
            columns: Dict[str, List[Any]] = {}
            for name in left_fields:
                source = left_columns[name]
                columns[name] = [source[j] for j in left_idx]
            for name in right_fields:
                source = batch.columns[name]
                columns[name] = [source[i] for i in right_idx]
            yield ColumnBatch(columns, None, len(left_idx))

    def _probe_outer(self, plan, buckets, left_columns, left_fields, right_fields,
                     right_key, residual_binder) -> Iterator[ColumnBatch]:
        """Left outer join: matched pairs first (probe order), then unmatched
        left rows null-padded — the interpreter's emission order."""
        matched: set = set()
        left_idx: List[int] = []
        right_values: Dict[str, List[Any]] = {name: [] for name in right_fields}
        for batch in self.execute_batches(plan.right):
            indices = batch.indices()
            keys = right_key(batch.columns, indices)
            residual = (residual_binder(left_columns, batch.columns)
                        if residual_binder is not None else None)
            batch_columns = [batch.columns[name] for name in right_fields]
            outputs = [right_values[name] for name in right_fields]
            for pos, i in enumerate(indices):
                for j in buckets.get(keys[pos], ()):
                    if residual is None or residual(j, i):
                        matched.add(j)
                        left_idx.append(j)
                        for source, out in zip(batch_columns, outputs):
                            out.append(source[i])
        columns: Dict[str, List[Any]] = {}
        for name in left_fields:
            source = left_columns[name]
            columns[name] = [source[j] for j in left_idx]
        columns.update(right_values)
        yield ColumnBatch(columns, None, len(left_idx))

        unmatched = [j for rows in buckets.values() for j in rows if j not in matched]
        columns = {}
        for name in left_fields:
            source = left_columns[name]
            columns[name] = [source[j] for j in unmatched]
        for name in right_fields:
            columns[name] = [None] * len(unmatched)
        yield ColumnBatch(columns, None, len(unmatched))

    def _probe_semi_anti(self, plan, buckets, left_columns, left_fields,
                         right_key, residual_binder) -> Iterator[ColumnBatch]:
        matched: set = set()
        for batch in self.execute_batches(plan.right):
            indices = batch.indices()
            keys = right_key(batch.columns, indices)
            residual = (residual_binder(left_columns, batch.columns)
                        if residual_binder is not None else None)
            for pos, i in enumerate(indices):
                for j in buckets.get(keys[pos], ()):
                    if j not in matched and (residual is None or residual(j, i)):
                        matched.add(j)
        want_match = plan.kind == "leftsemi"
        keep = [j for rows in buckets.values() for j in rows
                if (j in matched) == want_match]
        columns = {}
        for name in left_fields:
            source = left_columns[name]
            columns[name] = [source[j] for j in keep]
        yield ColumnBatch(columns, None, len(keep))

    def _nested_loop_join(self, plan: qplan.NestedLoopJoin) -> Iterator[ColumnBatch]:
        left_fields = qplan.output_fields(plan.left, self.catalog)
        right_fields = qplan.output_fields(plan.right, self.catalog)
        left_columns, left_count = self._materialize(plan.left)
        right_columns, right_count = self._materialize(plan.right)
        predicate = None
        if plan.predicate is not None:
            predicate = compile_columnar_pair(plan.predicate, left_fields, right_fields)(
                left_columns, right_columns)

        # pairs of (left index, right index or None for an outer null pad)
        pairs: List[Tuple[int, Optional[int]]] = []
        if plan.kind == "inner":
            for j in range(left_count):
                for i in range(right_count):
                    if predicate is None or predicate(j, i):
                        pairs.append((j, i))
        elif plan.kind in ("leftsemi", "leftanti"):
            want_match = plan.kind == "leftsemi"
            for j in range(left_count):
                has_match = any(predicate is None or predicate(j, i)
                                for i in range(right_count))
                if has_match == want_match:
                    pairs.append((j, None))
            columns = {name: [left_columns[name][j] for j, _ in pairs]
                       for name in left_fields}
            yield ColumnBatch(columns, None, len(pairs))
            return
        elif plan.kind == "leftouter":
            for j in range(left_count):
                found = False
                for i in range(right_count):
                    if predicate is None or predicate(j, i):
                        found = True
                        pairs.append((j, i))
                if not found:
                    pairs.append((j, None))
        else:  # pragma: no cover
            raise VectorizedError(f"unknown join kind {plan.kind!r}")

        columns = {name: [left_columns[name][j] for j, _ in pairs]
                   for name in left_fields}
        for name in right_fields:
            source = right_columns[name]
            columns[name] = [None if i is None else source[i] for _, i in pairs]
        yield ColumnBatch(columns, None, len(pairs))

    def _aggregate(self, plan: qplan.Agg) -> Iterator[ColumnBatch]:
        aggs = plan.aggregates
        key_names = [name for name, _ in plan.group_keys]
        key_fns = [compile_columnar(expr) for _, expr in plan.group_keys]
        value_fns = [compile_columnar(agg.expr) if agg.expr is not None else None
                     for agg in aggs]
        # HAVING runs over the handful of output groups; the row form is fine.
        having = compile_row(plan.having) if plan.having is not None else None

        # Per group: element 0 is the row count, then one gathered value list
        # per aggregate that takes an argument.  Values accumulate in global
        # scan order, so the final fold below adds floats in exactly the
        # interpreter's order regardless of batching.
        value_slots = [a for a, fn in enumerate(value_fns) if fn is not None]
        groups: Dict[Any, List[Any]] = {}
        for batch in self.execute_batches(plan.child):
            indices = batch.indices()
            num = len(indices)
            if num == 0:
                continue
            value_columns = [value_fns[a](batch.columns, indices) for a in value_slots]

            # Bucket batch positions by group key, then gather per group.
            buckets: Dict[Any, List[int]]
            if not key_fns:
                buckets = {(): list(range(num))}
            else:
                key_columns = [fn(batch.columns, indices) for fn in key_fns]
                keys: Any = key_columns[0] if len(key_columns) == 1 \
                    else zip(*key_columns)
                buckets = {}
                for pos, key in enumerate(keys):
                    bucket = buckets.get(key)
                    if bucket is None:
                        bucket = buckets[key] = []
                    bucket.append(pos)
            single_key = len(key_fns) == 1

            for key, positions in buckets.items():
                if single_key:
                    key = (key,)
                entry = groups.get(key)
                if entry is None:
                    entry = groups[key] = [0] + [[] for _ in value_slots]
                entry[0] += len(positions)
                for slot, column in enumerate(value_columns, start=1):
                    entry[slot].extend([column[p] for p in positions])

        # A global fold over an empty input still produces one row of neutral
        # aggregates (count=0, sum=0, avg/min/max None) — mirror volcano's
        # seeded-accumulator behaviour by registering one empty group.
        if not groups and not key_fns:
            groups[()] = [0] + [[] for _ in value_slots]

        out_names = key_names + [agg.name for agg in aggs]
        columns: Dict[str, List[Any]] = {name: [] for name in out_names}
        count = 0
        slot_of = {a: slot for slot, a in enumerate(value_slots, start=1)}
        for key, entry in groups.items():
            out = dict(zip(key_names, key))
            for a, agg in enumerate(aggs):
                values = entry[slot_of[a]] if a in slot_of else None
                out[agg.name] = _final_value(agg, entry[0], values)
            if having is None or having(out):
                for name in out_names:
                    columns[name].append(out[name])
                count += 1
        yield ColumnBatch(columns, None, count)

    def _sort(self, plan: qplan.Sort) -> Iterator[ColumnBatch]:
        columns, count = self._materialize(plan.child)
        # Decorate-sort-undecorate on the selection vector: key columns are
        # computed once, then stable index sorts from the least-significant
        # key up replicate the interpreter's multi-pass ordering exactly
        # (``pass_keys`` applies the shared null contract: nulls last on asc).
        order = list(range(count))
        for expr, direction in reversed(plan.keys):
            keys = pass_keys(compile_columnar(expr)(columns, range(count)))
            order.sort(key=keys.__getitem__, reverse=(direction == "desc"))
        yield ColumnBatch(columns, order, count)

    def _topk(self, plan: qplan.TopK) -> Iterator[ColumnBatch]:
        # Fused Sort+Limit: key columns are computed once over the
        # materialised input, then a bounded heap selects the first ``count``
        # indices of the sort order — the full selection vector is never
        # sorted, and only the surviving rows are gathered downstream.
        columns, count = self._materialize(plan.child)
        key_columns = [compile_columnar(expr)(columns, range(count))
                       for expr, _ in plan.keys]
        orders = [order for _, order in plan.keys]
        sel = topk_indices(key_columns, orders, plan.count, count)
        yield ColumnBatch(columns, sel, count)

    def _limit(self, plan: qplan.Limit) -> Iterator[ColumnBatch]:
        remaining = plan.count
        if remaining <= 0:
            return
        for batch in self.execute_batches(plan.child):
            indices = batch.indices()
            if len(indices) <= remaining:
                remaining -= len(indices)
                yield batch
            else:
                yield ColumnBatch(batch.columns, indices[:remaining], batch.length)
                remaining = 0
            if remaining <= 0:
                return


def _final_value(agg: qplan.AggSpec, row_count: int, values: Optional[List[Any]]) -> Any:
    """Fold a whole gathered value column into one aggregate result.

    Value-identical to folding :func:`repro.engine.volcano.fold_value` row by
    row: ``sum`` starts from 0 and adds non-null values left to right, nulls
    never contribute, an all-null (or empty) group yields ``None`` for
    min/max/avg.  Any semantic change to the volcano fold must be mirrored
    here — the TPC-H parity tests compare the two engines directly.
    """
    kind = agg.kind
    if kind == "count":
        if agg.expr is None:
            return row_count
        return sum(1 for v in values if v is not None)
    if kind == "sum":
        return sum(v for v in values if v is not None)
    if kind == "avg":
        present = [v for v in values if v is not None]
        return sum(present) / len(present) if present else None
    if kind == "min":
        present = [v for v in values if v is not None]
        return min(present) if present else None
    if kind == "max":
        present = [v for v in values if v is not None]
        return max(present) if present else None
    if kind == "count_distinct":
        return len({v for v in values if v is not None})
    raise VectorizedError(f"unknown aggregate {kind!r}")


def execute(plan: qplan.Operator, catalog: Catalog,
            batch_size: Optional[int] = None) -> List[Row]:
    """Convenience wrapper: run ``plan`` on a fresh vectorized engine."""
    return VectorizedEngine(catalog, batch_size=batch_size).execute(plan)
