"""Common-subtree sharing for the direct engines.

:class:`SubplanSharing` is mixed into the Volcano interpreter and the
vectorized engine.  Per execution it detects repeated subplans
(:func:`repro.dsl.qplan.shared_subplan_fingerprints`), executes each one
once through the engine's ``_dispatch`` and replays the materialised result
(rows or column batches — whatever ``_dispatch`` yields) for every further
occurrence.  Outside :meth:`_sharing_active` the cache is disarmed, so
direct pipeline iteration (``iterate`` / ``execute_batches`` called without
``execute``) runs unshared.

Detection is memoized by plan identity: the harness and the benchmarks
execute the same plan object many times, and the stored strong reference
keeps the plan — and thus the ``id()`` keys of its nodes — alive.
"""
from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Dict, List, Optional

from ..dsl import qplan


class SubplanSharing:
    """Mixin: a per-execution materialised cache for shared subplans.

    The host engine must provide ``_dispatch(plan)`` returning an iterable
    of that operator's output units, and route every recursive descent
    through :meth:`_sharing_replay`.
    """

    def _sharing_init(self) -> None:
        #: per-execution state (``None`` while no execute() is active)
        self._shared_ids: Optional[Dict[int, str]] = None
        self._shared_cache: Optional[Dict[str, List[Any]]] = None
        #: detection memo for the last executed plan (identity-keyed)
        self._last_plan: Optional[qplan.Operator] = None
        self._last_shared: Optional[Dict[int, str]] = None

    @contextmanager
    def _sharing_active(self, plan: qplan.Operator):
        """Arm the cache for one execution of ``plan``.

        The previous per-execution state is saved and restored rather than
        reset to ``None``: a nested ``execute()`` on the same engine instance
        (the hardened executor reuses engines across ladder attempts, and
        operator callbacks may re-enter) must neither observe the outer
        plan's materialised rows nor disarm the outer context on exit.  The
        ``finally`` also guarantees error-path hygiene — a query raising
        mid-execution discards its materialisation cache, so the next run
        can never see poisoned partial state.
        """
        if plan is self._last_plan:
            shared = self._last_shared
        else:
            shared = qplan.shared_subplan_fingerprints(plan)
            self._last_plan, self._last_shared = plan, shared
        saved = (self._shared_ids, self._shared_cache)
        if shared:
            self._shared_ids, self._shared_cache = shared, {}
        else:
            self._shared_ids = self._shared_cache = None
        try:
            yield
        finally:
            self._shared_ids, self._shared_cache = saved

    def _sharing_replay(self, plan: qplan.Operator):
        """An iterator over the cached result of a shared node, or ``None``
        when ``plan`` is not shared (or no execution is active)."""
        if self._shared_ids is None:
            return None
        key = self._shared_ids.get(id(plan))
        if key is None:
            return None
        cached = self._shared_cache.get(key)
        if cached is None:
            cached = self._shared_cache[key] = list(self._dispatch(plan))
        return iter(cached)
