"""Execution engines that run QPlan trees directly: the Volcano interpreter,
the single-step template expander and the vectorized columnar engine."""
from .template_expander import TemplateExpander
from .vectorized import ColumnBatch, VectorizedEngine
from .volcano import VolcanoEngine, execute

__all__ = ["ColumnBatch", "TemplateExpander", "VectorizedEngine",
           "VolcanoEngine", "execute"]
