"""Execution engines used as baselines: the Volcano interpreter and the template expander."""
from .template_expander import TemplateExpander
from .volcano import VolcanoEngine, execute

__all__ = ["TemplateExpander", "VolcanoEngine", "execute"]
