"""QMonad: the collection-programming front end (Section 4.5 of the paper).

QMonad expresses queries as chained collection operators (``filter``, ``map``,
``hashJoin``, ``groupBy``, ``fold``-style aggregates) instead of algebraic
plan operators.  Like QPlan it is a *tree* DSL at the top of the stack; its
programs are lowered by shortcut fusion (Section 5.1) into the same
imperative levels, which is how the paper demonstrates that a new front end
reuses every transformation below it for free.

The embedding uses a fluent builder::

    q = (QueryMonad.table("R")
         .filter(col("r_name") == "R1")
         .hashJoin(QueryMonad.table("S"), col("r_sid"), col("s_rid"))
         .count())
"""
from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence, Tuple

from .expr import Expr, wrap
from . import qplan as Q


class QMonadError(Exception):
    pass


@dataclass(repr=False)
class QueryMonad:
    """An immutable chain of collection operators over base relations.

    Each combinator returns a new :class:`QueryMonad`; ``op`` names the
    outermost operator and ``args`` carries its static arguments.  The
    producer/consumer (build/foreach) encoding of these operators is realised
    by the shortcut-fusion lowering in :mod:`repro.transforms.fusion`.
    """

    op: str
    args: dict = field(default_factory=dict)
    children: Tuple["QueryMonad", ...] = ()

    # ------------------------------------------------------------------
    # Sources
    # ------------------------------------------------------------------
    @staticmethod
    def table(name: str, fields: Optional[Sequence[str]] = None) -> "QueryMonad":
        """The collection of all rows of a base relation."""
        return QueryMonad("table", {"name": name,
                                    "fields": tuple(fields) if fields else None})

    # ------------------------------------------------------------------
    # Transformers (producers and consumers in the build/foreach encoding)
    # ------------------------------------------------------------------
    def filter(self, predicate: Expr) -> "QueryMonad":
        return QueryMonad("filter", {"predicate": wrap(predicate)}, (self,))

    def map(self, projections: Sequence[Tuple[str, Expr]]) -> "QueryMonad":
        return QueryMonad("map", {"projections": tuple((n, wrap(e)) for n, e in projections)},
                          (self,))

    def hashJoin(self, other: "QueryMonad", left_key: Expr, right_key: Expr,
                 kind: str = "inner", residual: Optional[Expr] = None) -> "QueryMonad":
        if kind not in Q.JOIN_KINDS:
            raise QMonadError(f"unknown join kind {kind!r}")
        return QueryMonad("hashJoin", {"left_key": wrap(left_key),
                                       "right_key": wrap(right_key),
                                       "kind": kind, "residual": residual},
                          (self, other))

    def groupBy(self, keys: Sequence[Tuple[str, Expr]],
                aggregates: Sequence[Q.AggSpec],
                having: Optional[Expr] = None) -> "QueryMonad":
        return QueryMonad("groupBy", {"keys": tuple((n, wrap(e)) for n, e in keys),
                                      "aggregates": tuple(aggregates),
                                      "having": having}, (self,))

    def sortBy(self, keys: Sequence[Tuple[Expr, str]]) -> "QueryMonad":
        return QueryMonad("sortBy", {"keys": tuple((wrap(e), o) for e, o in keys)}, (self,))

    def take(self, count: int) -> "QueryMonad":
        return QueryMonad("take", {"count": int(count)}, (self,))

    # ------------------------------------------------------------------
    # Folds (pure consumers)
    # ------------------------------------------------------------------
    def count(self, name: str = "count") -> "QueryMonad":
        return self.fold([Q.AggSpec("count", None, name)])

    def sum(self, expression: Expr, name: str = "sum") -> "QueryMonad":
        return self.fold([Q.AggSpec("sum", wrap(expression), name)])

    def avg(self, expression: Expr, name: str = "avg") -> "QueryMonad":
        return self.fold([Q.AggSpec("avg", wrap(expression), name)])

    def fold(self, aggregates: Sequence[Q.AggSpec]) -> "QueryMonad":
        """A global fold over the collection (the ``foldr`` of Section 5.1)."""
        return QueryMonad("fold", {"aggregates": tuple(aggregates)}, (self,))

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    def describe(self) -> str:
        if self.op == "table":
            return f"table({self.args['name']})"
        return self.op

    def tree_repr(self, indent: int = 0) -> str:
        lines = ["  " * indent + self.describe()]
        for child in self.children:
            lines.append(child.tree_repr(indent + 1))
        return "\n".join(lines)

    def __repr__(self) -> str:
        return self.tree_repr()


def to_qplan(query: QueryMonad) -> Q.Operator:
    """Translate a QMonad chain into the equivalent algebraic plan.

    The translation is purely structural — each collection operator has a
    direct algebraic counterpart — and is used by the shortcut-fusion lowering
    to reuse the producer/consumer machinery of the push engine (the paper
    observes in Section 5.1 that the two encodings coincide).
    """
    if query.op == "table":
        return Q.Scan(query.args["name"], query.args["fields"])
    if query.op == "filter":
        return Q.Select(to_qplan(query.children[0]), query.args["predicate"])
    if query.op == "map":
        return Q.Project(to_qplan(query.children[0]), query.args["projections"])
    if query.op == "hashJoin":
        return Q.HashJoin(to_qplan(query.children[0]), to_qplan(query.children[1]),
                          query.args["left_key"], query.args["right_key"],
                          query.args["kind"], query.args["residual"])
    if query.op == "groupBy":
        return Q.Agg(to_qplan(query.children[0]), query.args["keys"],
                     query.args["aggregates"], query.args["having"])
    if query.op == "fold":
        return Q.Agg(to_qplan(query.children[0]), (), query.args["aggregates"])
    if query.op == "sortBy":
        return Q.Sort(to_qplan(query.children[0]), query.args["keys"])
    if query.op == "take":
        return Q.Limit(to_qplan(query.children[0]), query.args["count"])
    raise QMonadError(f"unknown QMonad operator {query.op!r}")
