"""Scalar expressions used inside query-plan operators.

Predicates, projections, join keys and aggregate arguments are all scalar
expressions over the columns of the current row.  They form a small
declarative language of their own: the front ends build them, the Volcano
interpreter evaluates them row-at-a-time, and the pipelining lowering compiles
them into ANF arithmetic on column values.

Python operator overloading makes plan construction readable::

    (col("l_shipdate") <= lit(date("1998-09-02"))) & (col("l_discount") > lit(0.05))
"""
from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from .. import dates


class ExprError(Exception):
    pass


class Expr:
    """Base class of scalar expressions (with operator-overloading sugar)."""

    __slots__ = ()

    # -- arithmetic ------------------------------------------------------
    def __add__(self, other: "ExprLike") -> "BinOp":
        return BinOp("+", self, wrap(other))

    def __sub__(self, other: "ExprLike") -> "BinOp":
        return BinOp("-", self, wrap(other))

    def __mul__(self, other: "ExprLike") -> "BinOp":
        return BinOp("*", self, wrap(other))

    def __truediv__(self, other: "ExprLike") -> "BinOp":
        return BinOp("/", self, wrap(other))

    def __rsub__(self, other: "ExprLike") -> "BinOp":
        return BinOp("-", wrap(other), self)

    def __radd__(self, other: "ExprLike") -> "BinOp":
        return BinOp("+", wrap(other), self)

    def __rmul__(self, other: "ExprLike") -> "BinOp":
        return BinOp("*", wrap(other), self)

    # -- comparisons -----------------------------------------------------
    def __eq__(self, other):  # type: ignore[override]
        return BinOp("==", self, wrap(other))

    def __ne__(self, other):  # type: ignore[override]
        return BinOp("!=", self, wrap(other))

    def __lt__(self, other: "ExprLike") -> "BinOp":
        return BinOp("<", self, wrap(other))

    def __le__(self, other: "ExprLike") -> "BinOp":
        return BinOp("<=", self, wrap(other))

    def __gt__(self, other: "ExprLike") -> "BinOp":
        return BinOp(">", self, wrap(other))

    def __ge__(self, other: "ExprLike") -> "BinOp":
        return BinOp(">=", self, wrap(other))

    # -- boolean connectives ---------------------------------------------
    def __and__(self, other: "ExprLike") -> "BinOp":
        return BinOp("and", self, wrap(other))

    def __or__(self, other: "ExprLike") -> "BinOp":
        return BinOp("or", self, wrap(other))

    def __invert__(self) -> "UnaryOp":
        return UnaryOp("not", self)

    __hash__ = None  # type: ignore[assignment]  # == builds expressions, not booleans


ExprLike = Union[Expr, int, float, str, bool]


def wrap(value: ExprLike) -> Expr:
    """Coerce Python literals into :class:`Lit` nodes."""
    if isinstance(value, Expr):
        return value
    if isinstance(value, (int, float, str, bool)):
        return Lit(value)
    raise ExprError(f"cannot use {value!r} as a scalar expression")


@dataclass(eq=False, slots=True)
class Col(Expr):
    """A column reference.

    ``side`` is only meaningful inside join residual predicates, where it
    disambiguates columns of the left and right inputs ("left" / "right").
    """

    name: str
    side: Optional[str] = None

    def __repr__(self) -> str:
        return f"Col({self.name!r})" if self.side is None else f"Col({self.name!r}, {self.side})"


@dataclass(eq=False, slots=True)
class Lit(Expr):
    """A literal constant."""

    value: Any

    def __repr__(self) -> str:
        return f"Lit({self.value!r})"


@dataclass(eq=False, slots=True)
class BinOp(Expr):
    """A binary operation: arithmetic, comparison or boolean connective."""

    op: str
    left: Expr
    right: Expr

    VALID_OPS = {"+", "-", "*", "/", "==", "!=", "<", "<=", ">", ">=", "and", "or"}

    def __post_init__(self) -> None:
        if self.op not in self.VALID_OPS:
            raise ExprError(f"unknown binary operator {self.op!r}")

    def __repr__(self) -> str:
        return f"({self.left!r} {self.op} {self.right!r})"


@dataclass(eq=False, slots=True)
class UnaryOp(Expr):
    """Unary negation or logical not."""

    op: str
    operand: Expr

    VALID_OPS = {"not", "-"}

    def __post_init__(self) -> None:
        if self.op not in self.VALID_OPS:
            raise ExprError(f"unknown unary operator {self.op!r}")


@dataclass(eq=False, slots=True)
class Like(Expr):
    """SQL LIKE with ``%`` wildcards (the only wildcard TPC-H needs)."""

    operand: Expr
    pattern: str

    def kind(self) -> Tuple[str, str]:
        """Classify the pattern: prefix / suffix / contains / exact match."""
        pattern = self.pattern
        if pattern.startswith("%") and pattern.endswith("%"):
            return "contains", pattern.strip("%")
        if pattern.endswith("%"):
            return "prefix", pattern[:-1]
        if pattern.startswith("%"):
            return "suffix", pattern[1:]
        return "equals", pattern

    def matches(self, value: str) -> bool:
        kind, needle = self.kind()
        if "%" in needle:
            # multi-wildcard patterns like '%special%requests%'
            parts = [p for p in self.pattern.split("%") if p]
            position = 0
            for part in parts:
                index = value.find(part, position)
                if index < 0:
                    return False
                position = index + len(part)
            if not self.pattern.startswith("%") and not value.startswith(parts[0]):
                return False
            if not self.pattern.endswith("%") and not value.endswith(parts[-1]):
                return False
            return True
        if kind == "contains":
            return needle in value
        if kind == "prefix":
            return value.startswith(needle)
        if kind == "suffix":
            return value.endswith(needle)
        return value == needle


@dataclass(eq=False, slots=True)
class InList(Expr):
    """``expr IN (v1, v2, ...)`` over literal values."""

    operand: Expr
    values: Tuple[Any, ...]

    def __post_init__(self) -> None:
        self.values = tuple(self.values)


@dataclass(eq=False, slots=True)
class Case(Expr):
    """``CASE WHEN cond THEN value ... ELSE default END``."""

    whens: Tuple[Tuple[Expr, Expr], ...]
    otherwise: Expr

    def __post_init__(self) -> None:
        self.whens = tuple((c, v) for c, v in self.whens)


@dataclass(eq=False, slots=True)
class Substr(Expr):
    """``SUBSTRING(expr FROM start FOR length)`` (1-based, as in SQL)."""

    operand: Expr
    start: int
    length: int


@dataclass(eq=False, slots=True)
class YearOf(Expr):
    """``EXTRACT(YEAR FROM date_expr)`` over the integer date encoding."""

    operand: Expr


@dataclass(eq=False, slots=True)
class IsNull(Expr):
    """NULL test, used against the padded side of outer joins."""

    operand: Expr


# ---------------------------------------------------------------------------
# Construction helpers
# ---------------------------------------------------------------------------
def col(name: str, side: Optional[str] = None) -> Col:
    return Col(name, side)


def lit(value: Any) -> Lit:
    return Lit(value)


def date(text: str) -> Lit:
    """A date literal, converted to the integer encoding at plan-build time."""
    return Lit(dates.date_to_int(text))


def like(operand: ExprLike, pattern: str) -> Like:
    return Like(wrap(operand), pattern)


def in_list(operand: ExprLike, values: Sequence[Any]) -> InList:
    return InList(wrap(operand), tuple(values))


def case(whens: Sequence[Tuple[Expr, ExprLike]], otherwise: ExprLike) -> Case:
    return Case(tuple((c, wrap(v)) for c, v in whens), wrap(otherwise))


def substr(operand: ExprLike, start: int, length: int) -> Substr:
    return Substr(wrap(operand), start, length)


def year(operand: ExprLike) -> YearOf:
    return YearOf(wrap(operand))


def is_null(operand: ExprLike) -> IsNull:
    return IsNull(wrap(operand))


def and_all(predicates: Sequence[Expr]) -> Expr:
    """Conjunction of a non-empty list of predicates."""
    if not predicates:
        return Lit(True)
    result = predicates[0]
    for predicate in predicates[1:]:
        result = BinOp("and", result, predicate)
    return result


# ---------------------------------------------------------------------------
# Analysis
# ---------------------------------------------------------------------------
def columns_used(expr: Expr, side: Optional[str] = None) -> List[str]:
    """Column names referenced by an expression (optionally filtered by side)."""
    found: List[str] = []
    for name, col_side in columns_used_with_sides(expr):
        if side is None or col_side == side or col_side is None:
            if name not in found:
                found.append(name)
    return found


def columns_used_with_sides(expr: Expr) -> List[Tuple[str, Optional[str]]]:
    """``(name, side)`` pairs of every column reference in an expression.

    Unlike :func:`columns_used` this keeps the side annotation of each
    reference, which join-predicate validation and the plan optimizer need to
    resolve a column against the correct join input.  Duplicates are removed
    while preserving first-occurrence order.
    """
    found: List[Tuple[str, Optional[str]]] = []
    seen: set = set()

    def visit(node: Expr) -> None:
        if isinstance(node, Col):
            key = (node.name, node.side)
            if key not in seen:
                seen.add(key)
                found.append(key)
        elif isinstance(node, BinOp):
            visit(node.left)
            visit(node.right)
        elif isinstance(node, UnaryOp):
            visit(node.operand)
        elif isinstance(node, (Like, InList, Substr, YearOf, IsNull)):
            visit(node.operand)
        elif isinstance(node, Case):
            for cond, value in node.whens:
                visit(cond)
                visit(value)
            visit(node.otherwise)
        elif isinstance(node, Lit):
            pass
        else:
            raise ExprError(f"unknown expression node {type(node).__name__}")

    visit(expr)
    return found


# ---------------------------------------------------------------------------
# Row-at-a-time evaluation (used by the Volcano interpreter)
# ---------------------------------------------------------------------------
def evaluate(expr: Expr, row: Dict[str, Any],
             left: Optional[Dict[str, Any]] = None,
             right: Optional[Dict[str, Any]] = None) -> Any:
    """Evaluate a scalar expression against a row dictionary.

    ``left`` / ``right`` are only provided while evaluating join residual
    predicates, where sided column references resolve against the respective
    input rows.
    """
    if isinstance(expr, Lit):
        return expr.value
    if isinstance(expr, Col):
        if expr.side == "left" and left is not None:
            return left[expr.name]
        if expr.side == "right" and right is not None:
            return right[expr.name]
        if expr.name in row:
            return row[expr.name]
        raise ExprError(f"row has no column {expr.name!r}; available: {sorted(row)}")
    if isinstance(expr, BinOp):
        if expr.op == "and":
            return bool(evaluate(expr.left, row, left, right)) and \
                bool(evaluate(expr.right, row, left, right))
        if expr.op == "or":
            return bool(evaluate(expr.left, row, left, right)) or \
                bool(evaluate(expr.right, row, left, right))
        lhs = evaluate(expr.left, row, left, right)
        rhs = evaluate(expr.right, row, left, right)
        return _apply_binop(expr.op, lhs, rhs)
    if isinstance(expr, UnaryOp):
        value = evaluate(expr.operand, row, left, right)
        return (not value) if expr.op == "not" else -value
    if isinstance(expr, Like):
        return expr.matches(evaluate(expr.operand, row, left, right))
    if isinstance(expr, InList):
        return evaluate(expr.operand, row, left, right) in expr.values
    if isinstance(expr, Case):
        for cond, value in expr.whens:
            if evaluate(cond, row, left, right):
                return evaluate(value, row, left, right)
        return evaluate(expr.otherwise, row, left, right)
    if isinstance(expr, Substr):
        text = evaluate(expr.operand, row, left, right)
        return text[expr.start - 1: expr.start - 1 + expr.length]
    if isinstance(expr, YearOf):
        return dates.year_of(evaluate(expr.operand, row, left, right))
    if isinstance(expr, IsNull):
        return evaluate(expr.operand, row, left, right) is None
    raise ExprError(f"cannot evaluate expression node {type(expr).__name__}")


def _apply_binop(op: str, lhs: Any, rhs: Any) -> Any:
    if op == "+":
        return lhs + rhs
    if op == "-":
        return lhs - rhs
    if op == "*":
        return lhs * rhs
    if op == "/":
        return lhs / rhs
    if op == "==":
        return lhs == rhs
    if op == "!=":
        return lhs != rhs
    if op == "<":
        return lhs < rhs
    if op == "<=":
        return lhs <= rhs
    if op == ">":
        return lhs > rhs
    if op == ">=":
        return lhs >= rhs
    raise ExprError(f"unknown binary operator {op!r}")
