"""QPlan: the physical query-plan DSL (the paper's algebraic front end).

QPlan programs are plain operator trees — the paper notes that an AST is a
sufficient IR for algebraic languages without variable bindings.  The operator
vocabulary covers what commercial engines provide and what the 22 TPC-H
queries need: scans, selections, projections, hash joins (inner, semi, anti,
outer), nested-loop joins, group-by aggregation, sorting, limits and bounded
top-k (the planner's fusion of ``Limit`` over ``Sort``).

A QPlan tree is consumed by three clients:

* the Volcano interpreter (:mod:`repro.engine.volcano`) executes it directly,
* the template expander (:mod:`repro.engine.template_expander`) macro-expands
  it into Python source in one step, and
* the DSL stack lowers it through the intermediate languages
  (:mod:`repro.transforms.pipelining` and friends).
"""
from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from .expr import Expr, columns_used, columns_used_with_sides, wrap


class PlanError(Exception):
    pass


#: Join kinds supported by the join operators.
JOIN_KINDS = ("inner", "leftsemi", "leftanti", "leftouter")

#: Aggregate kinds supported by AggSpec.
AGG_KINDS = ("sum", "count", "avg", "min", "max", "count_distinct")


@dataclass(frozen=True, slots=True)
class AggSpec:
    """One aggregate of a group-by: ``name = kind(expr)``.

    ``expr`` is ``None`` for ``count(*)``.
    """

    kind: str
    expr: Optional[Expr]
    name: str

    def __post_init__(self) -> None:
        if self.kind not in AGG_KINDS:
            raise PlanError(f"unknown aggregate kind {self.kind!r}")
        if self.kind != "count" and self.expr is None:
            raise PlanError(f"aggregate {self.kind!r} requires an argument expression")


class Operator:
    """Base class of QPlan operators."""

    __slots__ = ()

    def children(self) -> Tuple["Operator", ...]:
        raise NotImplementedError

    def with_children(self, children: Sequence["Operator"]) -> "Operator":
        raise NotImplementedError

    def tree_repr(self, indent: int = 0) -> str:
        pad = "  " * indent
        lines = [pad + self.describe()]
        for child in self.children():
            lines.append(child.tree_repr(indent + 1))
        return "\n".join(lines)

    def describe(self) -> str:
        return type(self).__name__

    def __repr__(self) -> str:
        return self.tree_repr()


@dataclass(repr=False, slots=True)
class Scan(Operator):
    """Full scan of a base relation.

    ``fields`` restricts which columns the scan materialises; ``None`` means
    every column of the table (the unused-field-removal optimization prunes
    this at the QPlan level).
    """

    table: str
    fields: Optional[Tuple[str, ...]] = None

    def children(self) -> Tuple[Operator, ...]:
        return ()

    def with_children(self, children: Sequence[Operator]) -> "Scan":
        return self

    def describe(self) -> str:
        fields = "*" if self.fields is None else ", ".join(self.fields)
        return f"Scan({self.table}: {fields})"


@dataclass(repr=False, slots=True)
class Select(Operator):
    """Filter rows by a predicate."""

    child: Operator
    predicate: Expr

    def children(self) -> Tuple[Operator, ...]:
        return (self.child,)

    def with_children(self, children: Sequence[Operator]) -> "Select":
        return Select(children[0], self.predicate)

    def describe(self) -> str:
        return f"Select({self.predicate!r})"


@dataclass(repr=False, slots=True)
class PrunedScan(Select):
    """A filtered base-table scan with partition-pruning hints.

    Semantically identical to ``Select(Scan(table), predicate)`` — same rows,
    same values, same (scan) order — which is also how any consumer that only
    knows the parent operator executes it, since ``PrunedScan`` *is a*
    ``Select``.  The direct engines additionally consult ``zone_filters``:
    the conjuncts of the predicate that compare one scan column against a
    literal, as ``(column, op, literal)`` triples with ``op`` drawn from
    :data:`PrunedScan.FILTER_OPS` (``prefix`` encodes ``LIKE 'p%'``).  The
    catalog's access layer turns those into skipped chunks (zone maps) or a
    candidate row slice (sorted-column partition pruning); the full predicate
    is still evaluated on every surviving row, so the hints can only skip
    rows the predicate would reject anyway.
    """

    #: operators a zone filter may carry
    FILTER_OPS = ("<", "<=", ">", ">=", "==", "prefix")

    zone_filters: Tuple[Tuple[str, str, object], ...] = ()

    def __post_init__(self) -> None:
        if not isinstance(self.child, Scan):
            raise PlanError("PrunedScan requires a Scan child")
        for entry in self.zone_filters:
            if len(entry) != 3 or entry[1] not in self.FILTER_OPS:
                raise PlanError(f"malformed zone filter {entry!r}")

    def with_children(self, children: Sequence[Operator]) -> "PrunedScan":
        return PrunedScan(children[0], self.predicate, self.zone_filters)

    def describe(self) -> str:
        zones = ", ".join(f"{column} {op} {value!r}"
                          for column, op, value in self.zone_filters)
        return f"PrunedScan({self.predicate!r}; zones=[{zones}])"


@dataclass(repr=False, slots=True)
class Project(Operator):
    """Compute (and rename) output columns: ``projections = [(name, expr), ...]``."""

    child: Operator
    projections: Tuple[Tuple[str, Expr], ...]

    def __post_init__(self) -> None:
        self.projections = tuple((name, wrap(expr)) for name, expr in self.projections)
        names = [name for name, _ in self.projections]
        if len(names) != len(set(names)):
            raise PlanError("duplicate output names in projection")

    def children(self) -> Tuple[Operator, ...]:
        return (self.child,)

    def with_children(self, children: Sequence[Operator]) -> "Project":
        return Project(children[0], self.projections)

    def describe(self) -> str:
        return f"Project({', '.join(name for name, _ in self.projections)})"


@dataclass(repr=False, slots=True)
class HashJoin(Operator):
    """Equi hash join.

    The join builds a hash table on ``left_key`` over the left input and
    probes it with ``right_key`` for every right row.  ``kind`` selects the
    join flavour (inner / leftsemi / leftanti / leftouter, all with respect to
    the **left** input).  ``residual`` is an extra predicate evaluated on the
    pair of matching rows (with sided column references when names collide).
    """

    left: Operator
    right: Operator
    left_key: Expr
    right_key: Expr
    kind: str = "inner"
    residual: Optional[Expr] = None

    def __post_init__(self) -> None:
        if self.kind not in JOIN_KINDS:
            raise PlanError(f"unknown join kind {self.kind!r}")

    def children(self) -> Tuple[Operator, ...]:
        return (self.left, self.right)

    def with_children(self, children: Sequence[Operator]) -> "HashJoin":
        return HashJoin(children[0], children[1], self.left_key, self.right_key,
                        self.kind, self.residual)

    def describe(self) -> str:
        return f"HashJoin[{self.kind}]({self.left_key!r} = {self.right_key!r})"


@dataclass(repr=False, slots=True)
class IndexJoin(HashJoin):
    """A hash join served by a catalog-resident unique-key index.

    ``index_table.index_column`` names a dense (or at least unique)
    single-column key — in practice an annotated primary key — for which the
    access layer (:mod:`repro.storage.access`) holds a load-time direct
    array.  The build side must be a bare ``Scan`` of that table, optionally
    under one filter (``Select`` / ``PrunedScan``), with ``left_key`` exactly
    the key column: engines then probe the memoized index instead of building
    a per-query hash table, fetch the matching build row by position, and
    apply the build filter (and residual) per candidate.

    Because the key is unique, every bucket of the hash join this node
    replaces holds at most one row, and the index execution reproduces the
    hash join's emission order *exactly* — the rewrite is order- and
    value-preserving.  ``IndexJoin`` *is a* ``HashJoin``: any consumer that
    does not know the subtype (the compiled DSL stacks' lowering, the
    fallback paths of the engines) executes it as the plain hash join it
    replaces.
    """

    index_table: str = ""
    index_column: str = ""

    def __post_init__(self) -> None:
        HashJoin.__post_init__(self)
        if not self.index_table or not self.index_column:
            raise PlanError("IndexJoin requires index_table and index_column")

    def build_parts(self) -> Optional[Tuple["Scan", Optional[Expr]]]:
        """The build side decomposed as ``(scan, filter predicate)``, or
        ``None`` when it does not have the required shape."""
        node = self.left
        if isinstance(node, Select) and isinstance(node.child, Scan):
            return node.child, node.predicate
        if isinstance(node, Scan):
            return node, None
        return None

    def with_children(self, children: Sequence[Operator]) -> "IndexJoin":
        return IndexJoin(children[0], children[1], self.left_key, self.right_key,
                         self.kind, self.residual, self.index_table,
                         self.index_column)

    def describe(self) -> str:
        return (f"IndexJoin[{self.kind}]({self.left_key!r} = {self.right_key!r}; "
                f"index={self.index_table}.{self.index_column})")


@dataclass(repr=False, slots=True)
class NestedLoopJoin(Operator):
    """Nested-loop join for non-equi predicates (and cross products)."""

    left: Operator
    right: Operator
    predicate: Optional[Expr] = None
    kind: str = "inner"

    def __post_init__(self) -> None:
        if self.kind not in JOIN_KINDS:
            raise PlanError(f"unknown join kind {self.kind!r}")

    def children(self) -> Tuple[Operator, ...]:
        return (self.left, self.right)

    def with_children(self, children: Sequence[Operator]) -> "NestedLoopJoin":
        return NestedLoopJoin(children[0], children[1], self.predicate, self.kind)

    def describe(self) -> str:
        return f"NestedLoopJoin[{self.kind}]({self.predicate!r})"


@dataclass(repr=False, slots=True)
class Agg(Operator):
    """Group-by aggregation.

    ``group_keys`` is a list of ``(name, expr)`` pairs; an empty list produces
    a single global aggregate row.  ``having`` filters groups after
    aggregation (it may reference group keys and aggregate names).
    """

    child: Operator
    group_keys: Tuple[Tuple[str, Expr], ...]
    aggregates: Tuple[AggSpec, ...]
    having: Optional[Expr] = None

    def __post_init__(self) -> None:
        self.group_keys = tuple((name, wrap(expr)) for name, expr in self.group_keys)
        self.aggregates = tuple(self.aggregates)
        names = [name for name, _ in self.group_keys] + [a.name for a in self.aggregates]
        if len(names) != len(set(names)):
            raise PlanError("duplicate output names in aggregation")

    def children(self) -> Tuple[Operator, ...]:
        return (self.child,)

    def with_children(self, children: Sequence[Operator]) -> "Agg":
        return Agg(children[0], self.group_keys, self.aggregates, self.having)

    def describe(self) -> str:
        keys = ", ".join(name for name, _ in self.group_keys)
        aggs = ", ".join(f"{a.name}={a.kind}" for a in self.aggregates)
        return f"Agg(keys=[{keys}], aggs=[{aggs}])"


@dataclass(repr=False, slots=True)
class Sort(Operator):
    """Order rows by a list of ``(expr, 'asc'|'desc')`` keys."""

    child: Operator
    keys: Tuple[Tuple[Expr, str], ...]

    def __post_init__(self) -> None:
        self.keys = tuple((wrap(expr), order) for expr, order in self.keys)
        for _, order in self.keys:
            if order not in ("asc", "desc"):
                raise PlanError(f"unknown sort order {order!r}")

    def children(self) -> Tuple[Operator, ...]:
        return (self.child,)

    def with_children(self, children: Sequence[Operator]) -> "Sort":
        return Sort(children[0], self.keys)

    def describe(self) -> str:
        return f"Sort({', '.join(order for _, order in self.keys)})"


@dataclass(repr=False, slots=True)
class Limit(Operator):
    """Keep only the first ``count`` rows.

    ``count <= 0`` yields no rows on every engine; negative counts are
    rejected by :func:`validate`.
    """

    child: Operator
    count: int

    def children(self) -> Tuple[Operator, ...]:
        return (self.child,)

    def with_children(self, children: Sequence[Operator]) -> "Limit":
        return Limit(children[0], self.count)

    def describe(self) -> str:
        return f"Limit({self.count})"


@dataclass(repr=False, slots=True)
class TopK(Operator):
    """The first ``count`` rows of the ``Sort(keys)`` order of the input.

    Semantically identical to ``Limit(Sort(child, keys), count)`` — the
    planner's top-k fusion rule produces this operator from exactly that
    shape — but executed as a bounded heap (:mod:`repro.engine.sortkeys`)
    instead of a full sort, so the input is never materialised in sorted
    order.  Tie-breaking is stable (input order), matching the engines'
    stable multi-pass sorts row for row.
    """

    child: Operator
    keys: Tuple[Tuple[Expr, str], ...]
    count: int

    def __post_init__(self) -> None:
        self.keys = tuple((wrap(expr), order) for expr, order in self.keys)
        for _, order in self.keys:
            if order not in ("asc", "desc"):
                raise PlanError(f"unknown sort order {order!r}")

    def children(self) -> Tuple[Operator, ...]:
        return (self.child,)

    def with_children(self, children: Sequence[Operator]) -> "TopK":
        return TopK(children[0], self.keys, self.count)

    def describe(self) -> str:
        orders = ", ".join(order for _, order in self.keys)
        return f"TopK({self.count}; {orders})"


# ---------------------------------------------------------------------------
# Plan analysis
# ---------------------------------------------------------------------------
def walk(plan: Operator):
    """Yield every operator of a plan (pre-order)."""
    yield plan
    for child in plan.children():
        yield from walk(child)


def tables_used(plan: Operator) -> List[str]:
    """Names of the base relations scanned by a plan (in scan order)."""
    tables: List[str] = []
    for node in walk(plan):
        if isinstance(node, Scan) and node.table not in tables:
            tables.append(node.table)
    return tables


def output_fields(plan: Operator, catalog,
                  memo: Optional[Dict[int, List[str]]] = None) -> List[str]:
    """Output column names of a plan node (requires the catalog for scans).

    ``memo`` is an optional per-node cache keyed by ``id(node)``.  One
    validation (or optimization) pass over a plan asks for the fields of the
    same subtrees at every enclosing level; threading a memo dictionary
    through turns that from quadratic into linear work.  The memo is only
    valid while the plan tree is not mutated and stays alive, so callers
    create one per pass and drop it afterwards.
    """
    if memo is not None:
        cached = memo.get(id(plan))
        if cached is not None:
            return cached
    result = _output_fields(plan, catalog, memo)
    if memo is not None:
        memo[id(plan)] = result
    return result


def _output_fields(plan: Operator, catalog,
                   memo: Optional[Dict[int, List[str]]]) -> List[str]:
    if isinstance(plan, Scan):
        # Resolve the table before anything else so an unknown table surfaces
        # as a PlanError from validate()/output_fields() rather than a
        # storage-layer SchemaError escaping through plan analysis — and so
        # it is reported even for scans with an explicit field list.
        if not catalog.schema.has_table(plan.table):
            raise PlanError(f"scan of unknown table {plan.table!r}")
        if plan.fields is not None:
            return list(plan.fields)
        return catalog.schema.table(plan.table).column_names()
    if isinstance(plan, (Select, Limit, Sort, TopK)):
        return output_fields(plan.child, catalog, memo)
    if isinstance(plan, Project):
        return [name for name, _ in plan.projections]
    if isinstance(plan, (HashJoin, NestedLoopJoin)):
        left = output_fields(plan.left, catalog, memo)
        if plan.kind in ("leftsemi", "leftanti"):
            return left
        right = output_fields(plan.right, catalog, memo)
        overlap = set(left) & set(right)
        if overlap:
            raise PlanError(
                f"join would produce duplicate column names {sorted(overlap)}; "
                "rename with a Project before joining")
        return left + right
    if isinstance(plan, Agg):
        return [name for name, _ in plan.group_keys] + [a.name for a in plan.aggregates]
    raise PlanError(f"unknown operator {type(plan).__name__}")


def shared_subplan_fingerprints(plan: Operator) -> Dict[int, str]:
    """Repeated subplans of a plan: ``id(node) -> structural key``.

    A subtree is *shared* when its canonical structure occurs more than once
    in the plan — either as one Python object referenced from two parents
    (TPC-H Q15's revenue view) or as two structurally identical trees (Q11's
    twice-built partsupp pipeline).  Engines consult this map to execute each
    shared subtree once per query and serve later occurrences from a
    materialised-subplan cache.  Bare scans are excluded: they are already
    zero-copy reads of the catalog's columnar storage, so caching them would
    only add a materialisation.

    The returned keys are ``id()`` values of the plan's own nodes; the map is
    only valid while that plan object is alive (engines build it per
    execution and drop it afterwards).
    """
    counts: Dict[str, int] = {}
    by_id: Dict[int, str] = {}
    for node in walk(plan):
        if isinstance(node, Scan):
            continue
        canonical = by_id.get(id(node))
        if canonical is None:
            canonical = _plan_canonical(node)
            by_id[id(node)] = canonical
        counts[canonical] = counts.get(canonical, 0) + 1
    return {node_id: canonical for node_id, canonical in by_id.items()
            if counts[canonical] > 1}


def plan_fingerprint(plan: Operator) -> str:
    """A stable structural fingerprint of a plan tree (hex digest).

    Two plans share a fingerprint iff they are structurally identical —
    same operator tree, expressions, literals, field lists and options — which
    is the key of the compiled-query cache in :mod:`repro.codegen.compiler`.
    """
    import hashlib

    return hashlib.sha256(_plan_canonical(plan).encode("utf-8")).hexdigest()


def _plan_canonical(plan: Operator) -> str:
    from .expr_compile import expr_fingerprint as efp

    def opt(expr) -> str:
        return "-" if expr is None else efp(expr)

    if isinstance(plan, Scan):
        fields = "*" if plan.fields is None else ",".join(plan.fields)
        return f"Scan({plan.table};{fields})"
    if isinstance(plan, PrunedScan):
        zones = ",".join(f"{column}{op}{value!r}"
                         for column, op, value in plan.zone_filters)
        return (f"PrunedScan({efp(plan.predicate)};[{zones}];"
                f"{_plan_canonical(plan.child)})")
    if isinstance(plan, Select):
        return f"Select({efp(plan.predicate)};{_plan_canonical(plan.child)})"
    if isinstance(plan, Project):
        projections = ",".join(f"{name}={efp(expr)}" for name, expr in plan.projections)
        return f"Project({projections};{_plan_canonical(plan.child)})"
    if isinstance(plan, IndexJoin):
        return (f"IndexJoin({plan.kind};{plan.index_table}.{plan.index_column};"
                f"{efp(plan.left_key)};{efp(plan.right_key)};"
                f"{opt(plan.residual)};{_plan_canonical(plan.left)};"
                f"{_plan_canonical(plan.right)})")
    if isinstance(plan, HashJoin):
        return (f"HashJoin({plan.kind};{efp(plan.left_key)};{efp(plan.right_key)};"
                f"{opt(plan.residual)};{_plan_canonical(plan.left)};"
                f"{_plan_canonical(plan.right)})")
    if isinstance(plan, NestedLoopJoin):
        return (f"NestedLoopJoin({plan.kind};{opt(plan.predicate)};"
                f"{_plan_canonical(plan.left)};{_plan_canonical(plan.right)})")
    if isinstance(plan, Agg):
        keys = ",".join(f"{name}={efp(expr)}" for name, expr in plan.group_keys)
        aggs = ",".join(f"{a.name}={a.kind}({opt(a.expr)})" for a in plan.aggregates)
        return (f"Agg([{keys}];[{aggs}];{opt(plan.having)};"
                f"{_plan_canonical(plan.child)})")
    if isinstance(plan, Sort):
        keys = ",".join(f"{efp(expr)}:{order}" for expr, order in plan.keys)
        return f"Sort([{keys}];{_plan_canonical(plan.child)})"
    if isinstance(plan, Limit):
        return f"Limit({plan.count};{_plan_canonical(plan.child)})"
    if isinstance(plan, TopK):
        keys = ",".join(f"{efp(expr)}:{order}" for expr, order in plan.keys)
        return f"TopK([{keys}];{plan.count};{_plan_canonical(plan.child)})"
    raise PlanError(f"cannot fingerprint operator {type(plan).__name__}")


def validate(plan: Operator, catalog) -> None:
    """Check that every expression only references columns available to it.

    Join predicates that see both inputs — ``HashJoin.residual`` and
    ``NestedLoopJoin.predicate`` — are checked against the combined left+right
    fields, with sided column references resolved against the matching input.
    Child field lists are memoized per node for the duration of the pass, so
    validation is linear in the size of the plan.
    """
    memo: Dict[int, List[str]] = {}

    def fields_of(node: Operator) -> List[str]:
        return output_fields(node, catalog, memo)

    def check(node: Operator) -> None:
        fields = fields_of(node)
        if isinstance(node, Scan):
            table_columns = set(catalog.schema.table(node.table).column_names())
            unknown = set(fields) - table_columns
            if unknown:
                raise PlanError(f"scan of {node.table!r} selects unknown columns {sorted(unknown)}")
        if isinstance(node, Select):
            _require(columns_used(node.predicate), fields_of(node.child), node)
        if isinstance(node, PrunedScan):
            child_fields = fields_of(node.child)
            zone_columns = [column for column, _, _ in node.zone_filters]
            _require(zone_columns, child_fields, node)
        if isinstance(node, IndexJoin):
            parts = node.build_parts()
            if parts is None:
                raise PlanError(
                    f"{node.describe()}: build side must be a (optionally "
                    "filtered) scan of the indexed table")
            scan, _ = parts
            if scan.table != node.index_table:
                raise PlanError(
                    f"{node.describe()}: build side scans {scan.table!r}, "
                    f"not the indexed table {node.index_table!r}")
            if not catalog.schema.has_table(node.index_table):
                raise PlanError(
                    f"{node.describe()}: unknown indexed table "
                    f"{node.index_table!r}")
            if not catalog.schema.table(node.index_table).has_column(node.index_column):
                raise PlanError(
                    f"{node.describe()}: unknown index column "
                    f"{node.index_table}.{node.index_column}")
            from .expr import Col
            key = node.left_key
            if not (isinstance(key, Col) and key.side is None
                    and key.name == node.index_column):
                raise PlanError(
                    f"{node.describe()}: left key must be the bare index "
                    f"column {node.index_column!r}")
        if isinstance(node, Project):
            child_fields = fields_of(node.child)
            for _, expr in node.projections:
                _require(columns_used(expr), child_fields, node)
        if isinstance(node, HashJoin):
            left_fields = fields_of(node.left)
            right_fields = fields_of(node.right)
            _require(columns_used(node.left_key), left_fields, node)
            _require(columns_used(node.right_key), right_fields, node)
            if node.residual is not None:
                _require_sided(node.residual, left_fields, right_fields, node)
        if isinstance(node, NestedLoopJoin):
            if node.predicate is not None:
                _require_sided(node.predicate, fields_of(node.left),
                               fields_of(node.right), node)
        if isinstance(node, Agg):
            child_fields = fields_of(node.child)
            for _, expr in node.group_keys:
                _require(columns_used(expr), child_fields, node)
            for agg in node.aggregates:
                if agg.expr is not None:
                    _require(columns_used(agg.expr), child_fields, node)
            if node.having is not None:
                _require(columns_used(node.having), fields, node)
        if isinstance(node, (Sort, TopK)):
            child_fields = fields_of(node.child)
            for expr, _ in node.keys:
                _require(columns_used(expr), child_fields, node)
        if isinstance(node, (Limit, TopK)) and node.count < 0:
            raise PlanError(
                f"{node.describe()}: negative row count {node.count}; "
                "use 0 to return no rows")
        for child in node.children():
            check(child)

    check(plan)


def _require(columns: Sequence[str], available: Sequence[str], node: Operator) -> None:
    missing = [c for c in columns if c not in available]
    if missing:
        raise PlanError(
            f"{node.describe()}: references unavailable columns {missing}; "
            f"available: {sorted(available)}")


def _require_sided(expr: Expr, left: Sequence[str], right: Sequence[str],
                   node: Operator) -> None:
    """Check a two-input join predicate: ``side='left'`` references must come
    from the left input, ``side='right'`` from the right input, and unsided
    references from the union (the engines resolve those right-shadows-left)."""
    left_set, right_set = set(left), set(right)
    missing = []
    for name, side in columns_used_with_sides(expr):
        if side == "left":
            if name not in left_set:
                missing.append(f"{name} (left)")
        elif side == "right":
            if name not in right_set:
                missing.append(f"{name} (right)")
        elif name not in left_set and name not in right_set:
            missing.append(name)
    if missing:
        raise PlanError(
            f"{node.describe()}: join predicate references unavailable columns "
            f"{missing}; left: {sorted(left_set)}; right: {sorted(right_set)}")
