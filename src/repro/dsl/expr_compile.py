"""Expression-to-closure compilation: the interpreted fast path.

The Volcano interpreter historically walked the :class:`~repro.dsl.expr.Expr`
tree with :func:`~repro.dsl.expr.evaluate` once per row — the per-tuple
interpretation overhead the paper sets out to eliminate.  This module compiles
an expression tree **once** into a single Python function (via ``compile`` /
``exec`` of generated source, the same mechanism the DSL stack uses for whole
queries) and the engines then call that closure per row or per column batch.

Four forms are produced, all semantically identical to ``evaluate``:

* :func:`compile_row` — ``fn(row) -> value`` over a boxed row dictionary
  (used by the Volcano select/project/agg/sort hot paths),
* :func:`compile_pair` — ``fn(left_row, right_row) -> value`` for join
  residuals and nested-loop predicates with sided column references,
* :func:`compile_columnar` — ``fn(columns, sel) -> list`` evaluating the
  expression at every selected index of a column batch,
* :func:`compile_columnar_predicate` — ``fn(columns, sel) -> selection`` that
  filters a selection vector in one pass, and
* :func:`compile_columnar_pair` — a two-stage binder for vectorized join
  residuals: ``make(left_cols, right_cols) -> fn(j, i) -> value``.

Compiled closures are cached by a structural fingerprint of the expression
(:func:`expr_fingerprint`), so repeated executions of the same plan — and
different plans sharing subexpressions — never recompile.
"""
from __future__ import annotations

from typing import Any, Callable, Dict, List, Sequence, Tuple

from .. import dates
from . import expr as E


class ExprCompileError(Exception):
    pass


# ---------------------------------------------------------------------------
# Structural fingerprints
# ---------------------------------------------------------------------------
def expr_fingerprint(expr: E.Expr) -> str:
    """A stable structural fingerprint of an expression tree.

    Two expressions share a fingerprint iff they are structurally identical
    (same nodes, operators, column names/sides and literal values), which is
    exactly the condition under which they compile to the same closure.
    """
    if isinstance(expr, E.Lit):
        return f"L{type(expr.value).__name__}:{expr.value!r}"
    if isinstance(expr, E.Col):
        return f"C{expr.side or ''}:{expr.name}"
    if isinstance(expr, E.BinOp):
        return f"B{expr.op}({expr_fingerprint(expr.left)},{expr_fingerprint(expr.right)})"
    if isinstance(expr, E.UnaryOp):
        return f"U{expr.op}({expr_fingerprint(expr.operand)})"
    if isinstance(expr, E.Like):
        return f"K({expr_fingerprint(expr.operand)},{expr.pattern!r})"
    if isinstance(expr, E.InList):
        return f"I({expr_fingerprint(expr.operand)},{expr.values!r})"
    if isinstance(expr, E.Case):
        whens = ",".join(f"{expr_fingerprint(c)}>{expr_fingerprint(v)}"
                         for c, v in expr.whens)
        return f"W({whens};{expr_fingerprint(expr.otherwise)})"
    if isinstance(expr, E.Substr):
        return f"S({expr_fingerprint(expr.operand)},{expr.start},{expr.length})"
    if isinstance(expr, E.YearOf):
        return f"Y({expr_fingerprint(expr.operand)})"
    if isinstance(expr, E.IsNull):
        return f"N({expr_fingerprint(expr.operand)})"
    raise ExprCompileError(f"cannot fingerprint expression node {type(expr).__name__}")


# ---------------------------------------------------------------------------
# Source emission
# ---------------------------------------------------------------------------
#: expression nodes that always produce a Python ``bool``
_BOOLEAN_BINOPS = {"==", "!=", "<", "<=", ">", ">=", "and", "or"}


def _is_boolean(node: E.Expr) -> bool:
    if isinstance(node, E.Lit):
        return isinstance(node.value, bool)
    if isinstance(node, E.BinOp):
        return node.op in _BOOLEAN_BINOPS
    if isinstance(node, E.UnaryOp):
        return node.op == "not"
    return isinstance(node, (E.Like, E.InList, E.IsNull))


class _Emitter:
    """Turns an expression tree into a Python source fragment plus an
    environment of bound constants (LIKE matchers, IN sets, helpers)."""

    def __init__(self) -> None:
        self.env: Dict[str, Any] = {"_year": dates.year_of}
        self.counter = 0

    def bind(self, prefix: str, value: Any) -> str:
        name = f"_{prefix}{self.counter}"
        self.counter += 1
        self.env[name] = value
        return name

    def emit(self, node: E.Expr, ref: Callable[[E.Col], str]) -> str:
        if isinstance(node, E.Lit):
            value = node.value
            if value is None or isinstance(value, (bool, int, float, str)):
                return repr(value)
            return self.bind("k", value)
        if isinstance(node, E.Col):
            return ref(node)
        if isinstance(node, E.BinOp):
            left = self.emit(node.left, ref)
            right = self.emit(node.right, ref)
            if node.op in ("and", "or"):
                # `evaluate` returns bool(l) and bool(r): coerce non-boolean
                # operands so compiled results are value-identical.
                if not _is_boolean(node.left):
                    left = f"bool({left})"
                if not _is_boolean(node.right):
                    right = f"bool({right})"
            return f"({left} {node.op} {right})"
        if isinstance(node, E.UnaryOp):
            operand = self.emit(node.operand, ref)
            return f"(not {operand})" if node.op == "not" else f"(-{operand})"
        if isinstance(node, E.Like):
            matcher = self.bind("like", node.matches)
            return f"{matcher}({self.emit(node.operand, ref)})"
        if isinstance(node, E.InList):
            values: Any = node.values
            try:
                values = frozenset(values)
            except TypeError:
                pass
            return f"({self.emit(node.operand, ref)} in {self.bind('in', values)})"
        if isinstance(node, E.Case):
            out = self.emit(node.otherwise, ref)
            for cond, value in reversed(node.whens):
                out = f"({self.emit(value, ref)} if {self.emit(cond, ref)} else {out})"
            return out
        if isinstance(node, E.Substr):
            start = node.start - 1
            return f"({self.emit(node.operand, ref)}[{start}:{start + node.length}])"
        if isinstance(node, E.YearOf):
            return f"_year({self.emit(node.operand, ref)})"
        if isinstance(node, E.IsNull):
            return f"({self.emit(node.operand, ref)} is None)"
        raise ExprCompileError(f"cannot compile expression node {type(node).__name__}")


def _build(source: str, env: Dict[str, Any], fn_name: str = "_fn") -> Callable:
    namespace = dict(env)
    code = compile(source, "<expr-compile>", "exec")
    exec(code, namespace)  # noqa: S102 - executing our own generated code
    return namespace[fn_name]


# ---------------------------------------------------------------------------
# Closure cache
# ---------------------------------------------------------------------------
_CACHE: Dict[Tuple, Callable] = {}
_CACHE_LIMIT = 4096


def _cached(key: Tuple, builder: Callable[[], Callable]) -> Callable:
    fn = _CACHE.get(key)
    if fn is None:
        if len(_CACHE) >= _CACHE_LIMIT:
            _CACHE.clear()
        fn = _CACHE[key] = builder()
    return fn


def clear_cache() -> None:
    """Drop every cached closure (mainly for tests)."""
    _CACHE.clear()


def cache_size() -> int:
    return len(_CACHE)


# ---------------------------------------------------------------------------
# Row-at-a-time forms
# ---------------------------------------------------------------------------
def compile_row(expr: E.Expr) -> Callable[[Dict[str, Any]], Any]:
    """Compile to ``fn(row) -> value``, matching ``evaluate(expr, row)``."""
    def build() -> Callable:
        emitter = _Emitter()
        body = emitter.emit(expr, lambda c: f"row[{c.name!r}]")
        source = f"def _fn(row):\n    return {body}\n"
        return _build(source, emitter.env)

    return _cached(("row", expr_fingerprint(expr)), build)


def compile_pair(expr: E.Expr) -> Callable[[Dict[str, Any], Dict[str, Any]], Any]:
    """Compile to ``fn(left_row, right_row) -> value`` for join predicates.

    Sided column references resolve against the respective row; unsided ones
    follow the merged-dictionary semantics of ``evaluate`` (right shadows
    left, as in ``{**left, **right}``).
    """
    def ref(c: E.Col) -> str:
        if c.side == "left":
            return f"left[{c.name!r}]"
        if c.side == "right":
            return f"right[{c.name!r}]"
        return f"(right[{c.name!r}] if {c.name!r} in right else left[{c.name!r}])"

    def build() -> Callable:
        emitter = _Emitter()
        body = emitter.emit(expr, ref)
        source = f"def _fn(left, right):\n    return {body}\n"
        return _build(source, emitter.env)

    return _cached(("pair", expr_fingerprint(expr)), build)


# ---------------------------------------------------------------------------
# Columnar forms
# ---------------------------------------------------------------------------
def _columnar_prologue(expr: E.Expr) -> Tuple[Callable[[E.Col], str], List[str], Dict[str, str]]:
    """Assign one local per referenced column; return the ref function."""
    locals_for: Dict[str, str] = {}
    assigns: List[str] = []
    for name in E.columns_used(expr):
        local = f"_col{len(locals_for)}"
        locals_for[name] = local
        assigns.append(f"{local} = cols[{name!r}]")

    def ref(c: E.Col) -> str:
        return f"{locals_for[c.name]}[i]"

    return ref, assigns, locals_for


def compile_columnar(expr: E.Expr) -> Callable[[Dict[str, Sequence], Sequence[int]], List[Any]]:
    """Compile to ``fn(columns, sel) -> list`` of values at selected indices."""
    def build() -> Callable:
        emitter = _Emitter()
        ref, assigns, _ = _columnar_prologue(expr)
        body = emitter.emit(expr, ref)
        prologue = "\n    ".join(assigns) if assigns else "pass"
        source = (f"def _fn(cols, sel):\n"
                  f"    {prologue}\n"
                  f"    return [{body} for i in sel]\n")
        return _build(source, emitter.env)

    return _cached(("columnar", expr_fingerprint(expr)), build)


def compile_columnar_predicate(
        expr: E.Expr) -> Callable[[Dict[str, Sequence], Sequence[int]], List[int]]:
    """Compile to ``fn(columns, sel) -> selection`` keeping passing indices."""
    def build() -> Callable:
        emitter = _Emitter()
        ref, assigns, _ = _columnar_prologue(expr)
        body = emitter.emit(expr, ref)
        prologue = "\n    ".join(assigns) if assigns else "pass"
        source = (f"def _fn(cols, sel):\n"
                  f"    {prologue}\n"
                  f"    return [i for i in sel if {body}]\n")
        return _build(source, emitter.env)

    return _cached(("columnar-pred", expr_fingerprint(expr)), build)


def compile_columnar_pair(expr: E.Expr, left_fields: Sequence[str],
                          right_fields: Sequence[str]) -> Callable:
    """Compile a join residual for the vectorized engine.

    Returns ``make(left_cols, right_cols)`` which binds the column lists once
    per probe batch and yields ``fn(j, i) -> value`` over a (left row ``j``,
    right row ``i``) candidate pair.  Unsided columns resolve like the merged
    row dictionary of the interpreter: right shadows left.
    """
    left_fields = tuple(left_fields)
    right_fields = tuple(right_fields)

    def build() -> Callable:
        emitter = _Emitter()
        locals_for: Dict[Tuple[str, str], str] = {}
        assigns: List[str] = []

        def side_of(c: E.Col) -> str:
            if c.side == "left":
                return "left"
            if c.side == "right":
                return "right"
            return "right" if c.name in right_fields else "left"

        def ref(c: E.Col) -> str:
            side = side_of(c)
            key = (side, c.name)
            local = locals_for.get(key)
            if local is None:
                local = f"_{side[0]}{len(locals_for)}"
                locals_for[key] = local
                source_dict = "lcols" if side == "left" else "rcols"
                assigns.append(f"{local} = {source_dict}[{c.name!r}]")
            index = "j" if side == "left" else "i"
            return f"{local}[{index}]"

        body = emitter.emit(expr, ref)
        prologue = "\n    ".join(assigns) if assigns else "pass"
        source = (f"def _fn(lcols, rcols):\n"
                  f"    {prologue}\n"
                  f"    def _pred(j, i):\n"
                  f"        return {body}\n"
                  f"    return _pred\n")
        return _build(source, emitter.env)

    return _cached(("columnar-pair", expr_fingerprint(expr), left_fields, right_fields),
                   build)
