"""Front-end DSLs: scalar expressions, the QPlan algebra and the QMonad collection DSL."""
from . import expr, qmonad, qplan

__all__ = ["expr", "qmonad", "qplan"]
