"""Front-end DSLs: scalar expressions, the QPlan algebra and the QMonad collection DSL."""
from . import expr, expr_compile, qmonad, qplan

__all__ = ["expr", "expr_compile", "qmonad", "qplan"]
