"""repro — a multi-level DSL-stack query compiler.

This package reproduces the architecture described in "How to Architect a
Query Compiler" (Shaikhha et al., SIGMOD 2016): a query compiler organised as
a stack of DSLs at decreasing abstraction levels, with optimizations applied
inside each level and lowerings translating programs one level down, all the
way to executable low-level code.
"""
__version__ = "1.0.0"
