"""Benchmark harness regenerating the paper's evaluation (Section 7).

The harness runs TPC-H queries under every engine configuration and collects
the measurements behind the paper's tables and figures:

* **Table 3** — query execution time per configuration (interpreter,
  single-step template expander, DBLAB/LB with 2..5 levels, TPC-H compliant),
* **Figure 8** — peak memory consumption of the generated code,
* **Figure 9** — compilation time split into DSL-stack code generation and
  Python compilation (the CLang stand-in).

A *planner mode* extends the Table-3 grid with an optimized-vs-raw plan
dimension: ``use_planner=True`` times logically-optimized plans everywhere,
and :meth:`BenchmarkHarness.table3_planner` measures both variants side by
side (``format_planner_table`` / ``write_planner_json`` report them).

The module also hosts the **order-contract result comparator** the parity
suites and smoke drivers share: :func:`rows_equivalent` checks multiset
equality with float-accumulation tolerance and, when a plan carries a sort
contract (:func:`repro.planner.sort_contract`), additionally enforces the
guaranteed key order position by position.  This comparator is what allows
the cost-based join-strategy rules to be enabled by default.

Absolute numbers are not comparable to the paper's C implementation on a Xeon
server; the claims being reproduced are the *relative* ones (who wins, the
size of the jump when the data-structure-aware level is added, and that extra
levels never hurt).
"""
from __future__ import annotations

import json
import math
import time
import tracemalloc
from collections import Counter
from dataclasses import asdict, dataclass
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from ..codegen.compiler import CompiledQuery, QueryCompiler
from ..dsl import qplan as Q
from ..dsl.expr_compile import compile_row
from ..engine.template_expander import TemplateExpander
from ..planner import Planner, PlannerOptions
from ..stack.configs import (CONFIG_NAMES, DIRECT_ENGINE_NAMES, StackConfig,
                             build_config, build_direct_engine)
from ..storage.catalog import Catalog
from ..tpch.queries import QUERY_NAMES, build_query

#: every engine the harness knows how to run, in reporting order
ENGINE_NAMES = DIRECT_ENGINE_NAMES + ("template-expander",) + CONFIG_NAMES

#: the two plan modes of the planner comparison benchmarks
PLAN_MODES = ("raw", "planned")

#: significant digits floats are canonicalised to before comparison — wide
#: enough to distinguish genuinely different values, tolerant to the
#: accumulation-order perturbations of the cost-based join rules
FLOAT_DIGITS = 9


# ---------------------------------------------------------------------------
# Result comparison under order contracts
# ---------------------------------------------------------------------------
def canonical_value(value: Any, digits: int = FLOAT_DIGITS) -> Any:
    """A hashable, tolerance-normalised form of one result value.

    Floats are formatted to ``digits`` significant digits so that two sums
    accumulated in different orders (the only value difference a
    multiset-preserving rewrite can introduce) canonicalise identically.
    """
    if isinstance(value, float):
        return f"{value:.{digits}g}"
    return value


def canonical_rows(rows: Sequence[Dict[str, Any]],
                   digits: int = FLOAT_DIGITS) -> List[Tuple]:
    """Rows as hashable tuples with canonicalised values (order kept)."""
    return [tuple(sorted((name, canonical_value(value, digits))
                         for name, value in row.items()))
            for row in rows]


def _value_close(left: Any, right: Any, digits: int) -> bool:
    """Tolerant scalar equality: floats to ~``digits`` significant digits."""
    if isinstance(left, float) and isinstance(right, float):
        tolerance = 10.0 ** (1 - digits)
        return math.isclose(left, right, rel_tol=tolerance, abs_tol=tolerance)
    return left == right


def _rows_multiset_equal(expected: Sequence[Dict[str, Any]],
                         actual: Sequence[Dict[str, Any]],
                         digits: int) -> bool:
    """Order-insensitive row comparison with float tolerance.

    The fast path hashes canonicalised rows into counters.  Canonicalisation
    rounds, and rounding is bucketing, not a tolerance: two floats within
    accumulation tolerance can land in adjacent buckets and defeat the
    counter comparison.  The fallback therefore sorts both sides by their
    canonical form and compares rows pairwise with a real epsilon
    (:func:`_value_close`), so boundary-straddling values cannot cause a
    spurious mismatch.
    """
    if Counter(canonical_rows(expected, digits)) == \
            Counter(canonical_rows(actual, digits)):
        return True

    def ordered(rows: Sequence[Dict[str, Any]]) -> List[Dict[str, Any]]:
        return sorted(rows, key=lambda row: tuple(
            sorted((name, repr(canonical_value(value, digits)))
                   for name, value in row.items())))

    for left, right in zip(ordered(expected), ordered(actual)):
        if left.keys() != right.keys():
            return False
        if not all(_value_close(left[name], right[name], digits) for name in left):
            return False
    return True


def rows_equivalent(expected: Sequence[Dict[str, Any]],
                    actual: Sequence[Dict[str, Any]],
                    sort_keys=None, digits: int = FLOAT_DIGITS) -> bool:
    """Compare two result sets under an order contract.

    Without ``sort_keys`` the two row lists must be equal as **multisets**
    (float values compared to ``digits`` significant digits).  With
    ``sort_keys`` — a plan's :func:`repro.planner.sort_contract`, a tuple of
    ``(key_expr, order)`` pairs over the output columns — the comparison is
    sort-key aware and strictly stronger: the sequences of key tuples must
    match position by position, and rows may be permuted only *within* runs
    of equal keys (the ties the contract leaves unspecified).
    """
    if len(expected) != len(actual):
        return False
    if not sort_keys:
        return _rows_multiset_equal(expected, actual, digits)
    key_fns = [compile_row(expr) for expr, _ in sort_keys]

    def raw_keys_of(rows: Sequence[Dict[str, Any]]) -> List[Tuple]:
        return [tuple(fn(row) for fn in key_fns) for row in rows]

    expected_keys, actual_keys = raw_keys_of(expected), raw_keys_of(actual)
    for left, right in zip(expected_keys, actual_keys):
        if not all(_value_close(a, b, digits) for a, b in zip(left, right)):
            return False
    # Compare rows within each maximal run of equal (canonicalised) sort
    # keys: ties are the only positions a multiset-preserving rewrite may
    # permute.
    canonical_keys = [tuple(canonical_value(v, digits) for v in key)
                      for key in expected_keys]
    start = 0
    for stop in range(1, len(expected) + 1):
        if stop == len(expected) or canonical_keys[stop] != canonical_keys[start]:
            if not _rows_multiset_equal(expected[start:stop],
                                        actual[start:stop], digits):
                return False
            start = stop
    return True


def assert_rows_equivalent(expected: Sequence[Dict[str, Any]],
                           actual: Sequence[Dict[str, Any]],
                           sort_keys=None, digits: int = FLOAT_DIGITS,
                           context: str = "") -> None:
    """``rows_equivalent`` with a diagnostic ``AssertionError`` on mismatch."""
    if rows_equivalent(expected, actual, sort_keys=sort_keys, digits=digits):
        return
    prefix = f"{context}: " if context else ""
    if len(expected) != len(actual):
        raise AssertionError(
            f"{prefix}row count mismatch: expected {len(expected)}, "
            f"got {len(actual)}")
    missing = Counter(canonical_rows(expected, digits))
    missing.subtract(canonical_rows(actual, digits))
    diff = [f"{'-' if count > 0 else '+'} {row}"
            for row, count in missing.items() if count != 0]
    detail = "\n".join(diff[:10]) if diff else "(multisets equal; order contract violated)"
    raise AssertionError(f"{prefix}results differ under the order contract:\n{detail}")


@dataclass
class Measurement:
    """One engine's measurements for one query."""

    query: str
    engine: str
    run_seconds: float
    rows: int
    generation_seconds: float = 0.0
    compile_seconds: float = 0.0
    prepare_seconds: float = 0.0
    peak_memory_bytes: int = 0
    plan_mode: str = "raw"

    @property
    def run_millis(self) -> float:
        return self.run_seconds * 1000.0


class BenchmarkHarness:
    """Runs queries under the different engines and collects measurements."""

    def __init__(self, catalog: Catalog, repetitions: int = 3,
                 engines: Sequence[str] = ENGINE_NAMES,
                 use_planner: bool = False,
                 planner_options: Optional[PlannerOptions] = None) -> None:
        self.catalog = catalog
        self.repetitions = max(1, repetitions)
        self.engines = tuple(engines)
        self.use_planner = use_planner
        self.planner = Planner(catalog, planner_options)
        self._configs: Dict[str, StackConfig] = {
            name: build_config(name) for name in self.engines if name in CONFIG_NAMES}
        self._compiled_cache: Dict[tuple, CompiledQuery] = {}

    # ------------------------------------------------------------------
    # Single measurements
    # ------------------------------------------------------------------
    def measure(self, query_name: str, engine: str, plan=None,
                measure_memory: bool = False,
                optimize: Optional[bool] = None) -> Measurement:
        """Run one query under one engine and return its measurement.

        ``optimize`` runs the logical planner over the plan first (defaults
        to the harness-wide ``use_planner`` setting); the measurement's
        ``plan_mode`` records which plan was timed.
        """
        plan = plan if plan is not None else build_query(query_name)
        optimize = self.use_planner if optimize is None else optimize
        if optimize:
            plan = self.planner.optimize(plan)
        plan_mode = "planned" if optimize else "raw"
        measurement = self._dispatch(query_name, engine, plan, measure_memory)
        measurement.plan_mode = plan_mode
        return measurement

    def run_once(self, query_name: str, engine: str, plan) -> list:
        """Execute one plan on one engine outside the timed path and return
        its rows — the warm-up / verification counterpart of :meth:`measure`,
        routed exactly like it (compiled stacks go through the same compiled
        cache, so a later ``measure`` reuses what this call built)."""
        if engine in DIRECT_ENGINE_NAMES:
            return build_direct_engine(engine, self.catalog).execute(plan)
        if engine == "template-expander":
            return TemplateExpander(self.catalog).compile(
                plan, query_name).run(self.catalog)
        if engine in self._configs:
            compiled = self._compiled(query_name, engine, plan)
            aux = compiled.prepare(self.catalog)
            return compiled.run(self.catalog, aux)
        raise KeyError(f"unknown engine {engine!r}; known: {ENGINE_NAMES}")

    def _dispatch(self, query_name: str, engine: str, plan,
                  measure_memory: bool) -> Measurement:
        if engine in DIRECT_ENGINE_NAMES:
            runner = build_direct_engine(engine, self.catalog)
            return self._measure_callable(
                query_name, engine, lambda: runner.execute(plan),
                measure_memory=measure_memory)
        if engine == "template-expander":
            expanded = TemplateExpander(self.catalog).compile(plan, query_name)
            measurement = self._measure_callable(
                query_name, engine, lambda: expanded.run(self.catalog),
                measure_memory=measure_memory)
            measurement.generation_seconds = expanded.generation_seconds
            measurement.compile_seconds = expanded.compile_seconds
            return measurement
        if engine in self._configs:
            compiled = self._compiled(query_name, engine, plan)
            start = time.perf_counter()
            aux = compiled.prepare(self.catalog)
            prepare_seconds = time.perf_counter() - start
            measurement = self._measure_callable(
                query_name, engine, lambda: compiled.run(self.catalog, aux),
                measure_memory=measure_memory)
            measurement.generation_seconds = compiled.generation_seconds
            measurement.compile_seconds = compiled.compile_seconds
            measurement.prepare_seconds = prepare_seconds
            return measurement
        raise KeyError(f"unknown engine {engine!r}; known: {ENGINE_NAMES}")

    def _compiled(self, query_name: str, engine: str, plan) -> CompiledQuery:
        # The key includes the plan fingerprint so that raw and
        # planner-optimized variants of one query compile separately.
        key = (query_name, engine,
               Q.plan_fingerprint(plan) if isinstance(plan, Q.Operator) else None)
        if key not in self._compiled_cache:
            config = self._configs[engine]
            compiler = QueryCompiler(config.stack, config.flags)
            self._compiled_cache[key] = compiler.compile(plan, self.catalog, query_name)
        return self._compiled_cache[key]

    def _measure_callable(self, query_name: str, engine: str, fn: Callable[[], list],
                          measure_memory: bool) -> Measurement:
        import gc
        rows: list = []
        best = float("inf")
        peak = 0
        for _ in range(self.repetitions):
            if measure_memory:
                tracemalloc.start()
            gc.collect()
            gc_was_enabled = gc.isenabled()
            gc.disable()
            try:
                start = time.perf_counter()
                rows = fn()
                elapsed = time.perf_counter() - start
            finally:
                if gc_was_enabled:
                    gc.enable()
            if measure_memory:
                _, run_peak = tracemalloc.get_traced_memory()
                tracemalloc.stop()
                peak = max(peak, run_peak)
            best = min(best, elapsed)
        return Measurement(query=query_name, engine=engine, run_seconds=best,
                           rows=len(rows), peak_memory_bytes=peak)

    # ------------------------------------------------------------------
    # Experiment drivers
    # ------------------------------------------------------------------
    def table3(self, queries: Optional[Sequence[str]] = None,
               engines: Optional[Sequence[str]] = None) -> Dict[str, Dict[str, Measurement]]:
        """Per-query, per-engine execution times (the data behind Table 3)."""
        queries = list(queries) if queries is not None else list(QUERY_NAMES)
        engines = list(engines) if engines is not None else list(self.engines)
        results: Dict[str, Dict[str, Measurement]] = {}
        for query_name in queries:
            plan = build_query(query_name)
            results[query_name] = {}
            for engine in engines:
                results[query_name][engine] = self.measure(query_name, engine, plan)
        return results

    def table3_planner(self, queries: Optional[Sequence[str]] = None,
                       engines: Optional[Sequence[str]] = None
                       ) -> Dict[str, Dict[str, Dict[str, Measurement]]]:
        """Optimized-vs-raw execution times for every engine.

        Returns ``{query: {engine: {"raw": Measurement, "planned":
        Measurement}}}`` — the Table-3 grid with one extra dimension, showing
        what the logical planner buys each engine on each query.
        """
        queries = list(queries) if queries is not None else list(QUERY_NAMES)
        engines = list(engines) if engines is not None else list(self.engines)
        results: Dict[str, Dict[str, Dict[str, Measurement]]] = {}
        for query_name in queries:
            raw_plan = build_query(query_name)
            planned_plan = self.planner.optimize(build_query(query_name))
            results[query_name] = {}
            for engine in engines:
                results[query_name][engine] = {
                    "raw": self.measure(query_name, engine, raw_plan,
                                        optimize=False),
                    "planned": self.measure(query_name, engine, planned_plan,
                                            optimize=False),
                }
                results[query_name][engine]["planned"].plan_mode = "planned"
        return results

    @staticmethod
    def format_planner_table(results: Dict[str, Dict[str, Dict[str, Measurement]]]) -> str:
        """Render the planner comparison as fixed-width text (ms + speedup)."""
        if not results:
            return "(no results)"
        engines = list(next(iter(results.values())).keys())
        header = ["Query"] + [f"{e} raw/planned" for e in engines]
        widths = [max(8, len(h) + 2) for h in header]
        lines = ["".join(h.ljust(w) for h, w in zip(header, widths))]
        for query_name, per_engine in results.items():
            cells = [query_name]
            for engine in engines:
                pair = per_engine[engine]
                raw, planned = pair["raw"], pair["planned"]
                speedup = (raw.run_seconds / planned.run_seconds
                           if planned.run_seconds else float("inf"))
                cells.append(f"{raw.run_millis:.1f}/{planned.run_millis:.1f} "
                             f"({speedup:.2f}x)")
            lines.append("".join(c.ljust(w) for c, w in zip(cells, widths)))
        return "\n".join(lines)

    @staticmethod
    def planner_results_to_json(results: Dict[str, Dict[str, Dict[str, Measurement]]],
                                **meta: Any) -> Dict[str, Any]:
        """JSON-serializable form of a ``table3_planner`` result grid."""
        payload: Dict[str, Any] = {"meta": dict(meta), "queries": {}}
        for query_name, per_engine in results.items():
            payload["queries"][query_name] = {}
            for engine, pair in per_engine.items():
                raw, planned = pair["raw"], pair["planned"]
                payload["queries"][query_name][engine] = {
                    "raw": asdict(raw),
                    "planned": asdict(planned),
                    "speedup": (raw.run_seconds / planned.run_seconds
                                if planned.run_seconds else None),
                }
        return payload

    @classmethod
    def write_planner_json(cls, results, path: str, **meta: Any) -> None:
        """Write a ``table3_planner`` result grid to a JSON file."""
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(cls.planner_results_to_json(results, **meta), handle,
                      indent=2, sort_keys=True)

    def figure8_memory(self, queries: Optional[Sequence[str]] = None,
                       engine: str = "dblab-5") -> Dict[str, Measurement]:
        """Peak memory of the generated code per query (Figure 8)."""
        queries = list(queries) if queries is not None else list(QUERY_NAMES)
        return {name: self.measure(name, engine, measure_memory=True) for name in queries}

    def figure9_compilation(self, queries: Optional[Sequence[str]] = None,
                            engine: str = "dblab-5") -> Dict[str, Dict[str, float]]:
        """Compilation time split per query (Figure 9).

        ``generation`` is the DSL-stack side (optimizations, lowerings,
        unparsing); ``target_compile`` is Python bytecode compilation, the
        stand-in for the CLang half of the paper's figure.
        """
        queries = list(queries) if queries is not None else list(QUERY_NAMES)
        results: Dict[str, Dict[str, float]] = {}
        for query_name in queries:
            compiled = self._compiled(query_name, engine, build_query(query_name))
            results[query_name] = {
                "generation": compiled.generation_seconds,
                "target_compile": compiled.python_compile_seconds,
                "total": compiled.compile_seconds,
                "source_lines": compiled.source_lines,
            }
        return results

    # ------------------------------------------------------------------
    # Reporting helpers
    # ------------------------------------------------------------------
    @staticmethod
    def format_table3(results: Dict[str, Dict[str, Measurement]],
                      engines: Optional[Sequence[str]] = None) -> str:
        """Render Table 3 as fixed-width text (times in milliseconds)."""
        if not results:
            return "(no results)"
        engines = list(engines) if engines is not None else \
            list(next(iter(results.values())).keys())
        header = ["Query"] + list(engines)
        widths = [max(6, len(h) + 2) for h in header]
        lines = ["".join(h.ljust(w) for h, w in zip(header, widths))]
        for query_name, per_engine in results.items():
            cells = [query_name]
            for engine in engines:
                measurement = per_engine.get(engine)
                cells.append("-" if measurement is None else f"{measurement.run_millis:.1f}")
            lines.append("".join(c.ljust(w) for c, w in zip(cells, widths)))
        return "\n".join(lines)

    @staticmethod
    def speedups(results: Dict[str, Dict[str, Measurement]], baseline: str,
                 target: str) -> Dict[str, float]:
        """Per-query speed-up of ``target`` over ``baseline``."""
        speedups = {}
        for query_name, per_engine in results.items():
            base = per_engine.get(baseline)
            other = per_engine.get(target)
            if base is None or other is None or other.run_seconds == 0:
                continue
            speedups[query_name] = base.run_seconds / other.run_seconds
        return speedups

    @staticmethod
    def geometric_mean(values: Iterable[float]) -> float:
        values = [v for v in values if v > 0]
        if not values:
            return 0.0
        product = 1.0
        for value in values:
            product *= value
        return product ** (1.0 / len(values))
