"""Benchmark harness regenerating the paper's evaluation (Section 7).

The harness runs TPC-H queries under every engine configuration and collects
the measurements behind the paper's tables and figures:

* **Table 3** — query execution time per configuration (interpreter,
  single-step template expander, DBLAB/LB with 2..5 levels, TPC-H compliant),
* **Figure 8** — peak memory consumption of the generated code,
* **Figure 9** — compilation time split into DSL-stack code generation and
  Python compilation (the CLang stand-in).

Absolute numbers are not comparable to the paper's C implementation on a Xeon
server; the claims being reproduced are the *relative* ones (who wins, the
size of the jump when the data-structure-aware level is added, and that extra
levels never hurt).
"""
from __future__ import annotations

import time
import tracemalloc
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence

from ..codegen.compiler import CompiledQuery, QueryCompiler
from ..engine.template_expander import TemplateExpander
from ..stack.configs import (CONFIG_NAMES, DIRECT_ENGINE_NAMES, StackConfig,
                             build_config, build_direct_engine)
from ..storage.catalog import Catalog
from ..tpch.queries import QUERY_NAMES, build_query

#: every engine the harness knows how to run, in reporting order
ENGINE_NAMES = DIRECT_ENGINE_NAMES + ("template-expander",) + CONFIG_NAMES


@dataclass
class Measurement:
    """One engine's measurements for one query."""

    query: str
    engine: str
    run_seconds: float
    rows: int
    generation_seconds: float = 0.0
    compile_seconds: float = 0.0
    prepare_seconds: float = 0.0
    peak_memory_bytes: int = 0

    @property
    def run_millis(self) -> float:
        return self.run_seconds * 1000.0


class BenchmarkHarness:
    """Runs queries under the different engines and collects measurements."""

    def __init__(self, catalog: Catalog, repetitions: int = 3,
                 engines: Sequence[str] = ENGINE_NAMES) -> None:
        self.catalog = catalog
        self.repetitions = max(1, repetitions)
        self.engines = tuple(engines)
        self._configs: Dict[str, StackConfig] = {
            name: build_config(name) for name in self.engines if name in CONFIG_NAMES}
        self._compiled_cache: Dict[tuple, CompiledQuery] = {}

    # ------------------------------------------------------------------
    # Single measurements
    # ------------------------------------------------------------------
    def measure(self, query_name: str, engine: str, plan=None,
                measure_memory: bool = False) -> Measurement:
        """Run one query under one engine and return its measurement."""
        plan = plan if plan is not None else build_query(query_name)
        if engine in DIRECT_ENGINE_NAMES:
            runner = build_direct_engine(engine, self.catalog)
            return self._measure_callable(
                query_name, engine, lambda: runner.execute(plan),
                measure_memory=measure_memory)
        if engine == "template-expander":
            expanded = TemplateExpander(self.catalog).compile(plan, query_name)
            measurement = self._measure_callable(
                query_name, engine, lambda: expanded.run(self.catalog),
                measure_memory=measure_memory)
            measurement.generation_seconds = expanded.generation_seconds
            measurement.compile_seconds = expanded.compile_seconds
            return measurement
        if engine in self._configs:
            compiled = self._compiled(query_name, engine, plan)
            start = time.perf_counter()
            aux = compiled.prepare(self.catalog)
            prepare_seconds = time.perf_counter() - start
            measurement = self._measure_callable(
                query_name, engine, lambda: compiled.run(self.catalog, aux),
                measure_memory=measure_memory)
            measurement.generation_seconds = compiled.generation_seconds
            measurement.compile_seconds = compiled.compile_seconds
            measurement.prepare_seconds = prepare_seconds
            return measurement
        raise KeyError(f"unknown engine {engine!r}; known: {ENGINE_NAMES}")

    def _compiled(self, query_name: str, engine: str, plan) -> CompiledQuery:
        key = (query_name, engine)
        if key not in self._compiled_cache:
            config = self._configs[engine]
            compiler = QueryCompiler(config.stack, config.flags)
            self._compiled_cache[key] = compiler.compile(plan, self.catalog, query_name)
        return self._compiled_cache[key]

    def _measure_callable(self, query_name: str, engine: str, fn: Callable[[], list],
                          measure_memory: bool) -> Measurement:
        import gc
        rows: list = []
        best = float("inf")
        peak = 0
        for _ in range(self.repetitions):
            if measure_memory:
                tracemalloc.start()
            gc.collect()
            gc_was_enabled = gc.isenabled()
            gc.disable()
            try:
                start = time.perf_counter()
                rows = fn()
                elapsed = time.perf_counter() - start
            finally:
                if gc_was_enabled:
                    gc.enable()
            if measure_memory:
                _, run_peak = tracemalloc.get_traced_memory()
                tracemalloc.stop()
                peak = max(peak, run_peak)
            best = min(best, elapsed)
        return Measurement(query=query_name, engine=engine, run_seconds=best,
                           rows=len(rows), peak_memory_bytes=peak)

    # ------------------------------------------------------------------
    # Experiment drivers
    # ------------------------------------------------------------------
    def table3(self, queries: Optional[Sequence[str]] = None,
               engines: Optional[Sequence[str]] = None) -> Dict[str, Dict[str, Measurement]]:
        """Per-query, per-engine execution times (the data behind Table 3)."""
        queries = list(queries) if queries is not None else list(QUERY_NAMES)
        engines = list(engines) if engines is not None else list(self.engines)
        results: Dict[str, Dict[str, Measurement]] = {}
        for query_name in queries:
            plan = build_query(query_name)
            results[query_name] = {}
            for engine in engines:
                results[query_name][engine] = self.measure(query_name, engine, plan)
        return results

    def figure8_memory(self, queries: Optional[Sequence[str]] = None,
                       engine: str = "dblab-5") -> Dict[str, Measurement]:
        """Peak memory of the generated code per query (Figure 8)."""
        queries = list(queries) if queries is not None else list(QUERY_NAMES)
        return {name: self.measure(name, engine, measure_memory=True) for name in queries}

    def figure9_compilation(self, queries: Optional[Sequence[str]] = None,
                            engine: str = "dblab-5") -> Dict[str, Dict[str, float]]:
        """Compilation time split per query (Figure 9).

        ``generation`` is the DSL-stack side (optimizations, lowerings,
        unparsing); ``target_compile`` is Python bytecode compilation, the
        stand-in for the CLang half of the paper's figure.
        """
        queries = list(queries) if queries is not None else list(QUERY_NAMES)
        results: Dict[str, Dict[str, float]] = {}
        for query_name in queries:
            compiled = self._compiled(query_name, engine, build_query(query_name))
            results[query_name] = {
                "generation": compiled.generation_seconds,
                "target_compile": compiled.python_compile_seconds,
                "total": compiled.compile_seconds,
                "source_lines": compiled.source_lines,
            }
        return results

    # ------------------------------------------------------------------
    # Reporting helpers
    # ------------------------------------------------------------------
    @staticmethod
    def format_table3(results: Dict[str, Dict[str, Measurement]],
                      engines: Optional[Sequence[str]] = None) -> str:
        """Render Table 3 as fixed-width text (times in milliseconds)."""
        if not results:
            return "(no results)"
        engines = list(engines) if engines is not None else \
            list(next(iter(results.values())).keys())
        header = ["Query"] + list(engines)
        widths = [max(6, len(h) + 2) for h in header]
        lines = ["".join(h.ljust(w) for h, w in zip(header, widths))]
        for query_name, per_engine in results.items():
            cells = [query_name]
            for engine in engines:
                measurement = per_engine.get(engine)
                cells.append("-" if measurement is None else f"{measurement.run_millis:.1f}")
            lines.append("".join(c.ljust(w) for c, w in zip(cells, widths)))
        return "\n".join(lines)

    @staticmethod
    def speedups(results: Dict[str, Dict[str, Measurement]], baseline: str,
                 target: str) -> Dict[str, float]:
        """Per-query speed-up of ``target`` over ``baseline``."""
        speedups = {}
        for query_name, per_engine in results.items():
            base = per_engine.get(baseline)
            other = per_engine.get(target)
            if base is None or other is None or other.run_seconds == 0:
                continue
            speedups[query_name] = base.run_seconds / other.run_seconds
        return speedups

    @staticmethod
    def geometric_mean(values: Iterable[float]) -> float:
        values = [v for v in values if v > 0]
        if not values:
            return 0.0
        product = 1.0
        for value in values:
            product *= value
        return product ** (1.0 / len(values))
