"""The benchmark harness and lines-of-code accounting behind the paper's evaluation."""
from .harness import BenchmarkHarness

__all__ = ["BenchmarkHarness"]
