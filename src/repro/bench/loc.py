"""Lines-of-code accounting for the productivity evaluation (Table 4).

The paper argues that the multi-level architecture keeps individual
transformations small (Table 4 lists a few hundred lines each).  This module
measures the same quantity for this repository: non-blank, non-comment lines
of every transformation module and of the supporting compiler components.
"""
from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import repro


@dataclass
class LocEntry:
    name: str
    module: str
    lines: int


#: The transformations reported in Table 4 of the paper, mapped to the modules
#: implementing the equivalent functionality here.
TABLE4_COMPONENTS: Tuple[Tuple[str, str], ...] = (
    ("Column store / data layout transformer", "transforms/rowvals.py"),
    ("Automatic index inference & partitioning", "transforms/hashmap_specialization.py"),
    ("Memory allocation hoisting", "transforms/memory_hoisting.py"),
    ("Pipelining (push engine) for QPlan", "transforms/pipelining.py"),
    ("Pipelining (shortcut fusion) for QMonad", "transforms/fusion.py"),
    ("Scalar expression compilation", "transforms/scalar_compiler.py"),
    ("Constant folding / partial evaluation", "transforms/partial_eval.py"),
    ("Scalar replacement / struct flattening", "transforms/scalar_replacement.py"),
    ("Unused struct field removal", "transforms/field_removal.py"),
    ("Dead code elimination", "transforms/dce.py"),
    ("String dictionaries", "transforms/string_dictionary.py"),
    ("Hash-table specialization", "transforms/hashmap_specialization.py"),
    ("List specialization (unique keys)", "transforms/list_specialization.py"),
    ("Control-flow optimizations", "transforms/control_flow.py"),
    ("Scala-constructs-to-C (unparser to Python)", "codegen/unparser.py"),
)


def count_loc(path: str) -> int:
    """Count non-blank, non-comment source lines of one Python file."""
    if not os.path.exists(path):
        return 0
    lines = 0
    in_docstring = False
    delimiter = None
    with open(path, "r", encoding="utf-8") as handle:
        for raw in handle:
            line = raw.strip()
            if not line:
                continue
            if in_docstring:
                if delimiter in line:
                    in_docstring = False
                continue
            if line.startswith("#"):
                continue
            if line.startswith(('"""', "'''")):
                delimiter = line[:3]
                if line.count(delimiter) == 1:
                    in_docstring = True
                continue
            lines += 1
    return lines


def package_root() -> str:
    return os.path.dirname(os.path.abspath(repro.__file__))


def table4() -> List[LocEntry]:
    """Lines of code of every transformation component (the Table 4 data)."""
    root = package_root()
    entries: List[LocEntry] = []
    for name, relative in TABLE4_COMPONENTS:
        entries.append(LocEntry(name=name, module=relative,
                                lines=count_loc(os.path.join(root, relative))))
    return entries


def loc_by_package() -> Dict[str, int]:
    """Total lines of code per sub-package of the library."""
    root = package_root()
    totals: Dict[str, int] = {}
    for dirpath, _, filenames in os.walk(root):
        package = os.path.relpath(dirpath, root)
        for filename in filenames:
            if not filename.endswith(".py"):
                continue
            key = package.split(os.sep)[0] if package != "." else "(top level)"
            totals[key] = totals.get(key, 0) + count_loc(os.path.join(dirpath, filename))
    return dict(sorted(totals.items()))


def format_table4(entries: Optional[List[LocEntry]] = None) -> str:
    entries = entries if entries is not None else table4()
    width = max(len(e.name) for e in entries) + 2
    lines = [f"{'Transformation'.ljust(width)}LoC"]
    for entry in entries:
        lines.append(f"{entry.name.ljust(width)}{entry.lines}")
    lines.append(f"{'Total'.ljust(width)}{sum(e.lines for e in entries)}")
    return "\n".join(lines)
