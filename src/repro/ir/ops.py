"""The registry of IR operations used across the DSL stack.

Every imperative DSL level of the stack (ScaLite[Map, List], ScaLite[List],
ScaLite and C.Py) shares the same ANF data structure (:mod:`repro.ir.nodes`)
but restricts which *operations* may appear — footnote 6 of the paper.  This
module is the single source of truth for those operations: each op is
registered once with its effect summary, and the language definitions in
:mod:`repro.stack.language` pick subsets of this registry.

Registering effects centrally means generic transformations (CSE, DCE, code
motion, hoisting) never need op-specific data-flow analysis, which is the
point the paper makes for choosing ANF as the IR (Section 3.3).
"""
from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from .effects import (ALLOC, CONTROL, Effect, IO, PURE, READ, READ_WRITE,
                      WRITE)


@dataclass(frozen=True)
class OpDef:
    """Definition of one IR operation kind."""

    name: str
    effect: Effect = PURE
    doc: str = ""
    #: number of nested blocks the op expects (None = any)
    n_blocks: Optional[int] = 0
    #: how per-worker partial states of this *writing* op combine when the
    #: enclosing loop is split across morsels: ``"concat"`` (order-preserving
    #: concatenation), ``"reduce"`` (commutative aggregate merge),
    #: ``"set-union"``, ``"bucket-concat"`` — or ``None`` when the write is
    #: order-dependent and pins the loop to sequential execution.  The
    #: loop-dependence analysis (repro.analysis.dataflow) is the consumer.
    merge: Optional[str] = None


class OpRegistry:
    """A registry mapping op names to their :class:`OpDef`."""

    def __init__(self) -> None:
        self._ops: Dict[str, OpDef] = {}

    def register(self, name: str, effect: Effect = PURE, doc: str = "",
                 n_blocks: Optional[int] = 0,
                 merge: Optional[str] = None) -> OpDef:
        if name in self._ops:
            raise ValueError(f"op {name!r} registered twice")
        if merge is not None and not effect.writes:
            raise ValueError(f"op {name!r} declares a merge strategy but does not write")
        op = OpDef(name, effect, doc, n_blocks, merge)
        self._ops[name] = op
        return op

    def get(self, name: str) -> OpDef:
        try:
            return self._ops[name]
        except KeyError:
            raise KeyError(f"unknown IR op {name!r}; register it in repro.ir.ops") from None

    def __contains__(self, name: str) -> bool:
        return name in self._ops

    def names(self):
        return set(self._ops)

    def effect_of(self, name: str) -> Effect:
        return self.get(name).effect


#: The global registry used by the builder, the languages and the unparser.
REGISTRY = OpRegistry()
_r = REGISTRY.register

# ---------------------------------------------------------------------------
# Pure scalar operations (available at every imperative level).
# ---------------------------------------------------------------------------
ARITHMETIC_OPS = ("add", "sub", "mul", "div", "mod", "neg", "min2", "max2")
COMPARISON_OPS = ("eq", "ne", "lt", "le", "gt", "ge")
LOGICAL_OPS = ("and_", "or_", "not_", "band", "bor")
CONVERSION_OPS = ("to_float", "to_int", "year_of_date")
STRING_OPS = ("str_contains", "str_startswith", "str_endswith", "str_like",
              "str_length", "str_substr", "str_in")
TUPLE_OPS = ("tuple_new", "tuple_get")

for _name in ARITHMETIC_OPS + COMPARISON_OPS + LOGICAL_OPS + CONVERSION_OPS + TUPLE_OPS:
    _r(_name, PURE)

for _name in STRING_OPS:
    _r(_name, PURE, doc="string operation; target of the string-dictionary optimization")

# ---------------------------------------------------------------------------
# Control flow (ScaLite core: bounded loops and conditionals).
# ---------------------------------------------------------------------------
_r("if_", CONTROL, "if(cond) then-block else-block", n_blocks=2)
_r("for_range", CONTROL, "bounded loop over [start, end) with one index parameter", n_blocks=1)
_r("while_", CONTROL, "while loop: condition block + body block", n_blocks=2)

# ---------------------------------------------------------------------------
# Mutable local variables (ScaLite `var`).
# ---------------------------------------------------------------------------
_r("var_new", ALLOC, "allocate a mutable local variable with an initial value")
_r("var_read", READ, "read the current value of a mutable variable")
_r("var_write", WRITE, "assign a new value to a mutable variable")

# ---------------------------------------------------------------------------
# Records (structs).
# ---------------------------------------------------------------------------
_r("record_new", ALLOC, "construct a record; attrs: fields=(names...), layout='boxed'|'row'")
_r("record_get", READ, "read a record field; attrs: field=<name>")

# ---------------------------------------------------------------------------
# Arrays (ScaLite: fixed-size and dynamic arrays).
# ---------------------------------------------------------------------------
_r("array_new", ALLOC, "allocate an array of a given size; attrs: init=<default value>")
_r("array_get", READ)
_r("array_set", WRITE)
_r("array_len", READ)

# ---------------------------------------------------------------------------
# Lists (ScaLite[List] and below; also used for query results).
# ---------------------------------------------------------------------------
_r("list_new", ALLOC)
_r("list_append", WRITE, merge="concat")
_r("list_foreach", CONTROL, "iterate a list; one body block with one element parameter", n_blocks=1)
_r("list_len", READ)
_r("list_get", READ)
_r("list_clear", WRITE)
_r("list_sort_by_fields", Effect(reads=True, allocates=True),
   "sort a list of records; attrs: keys=[(field, 'asc'|'desc'), ...]")
_r("list_sort_by_index", Effect(reads=True, allocates=True),
   "sort a list of records/tuples by positional key; attrs: keys=[(index, order), ...]")
_r("list_take", Effect(reads=True, allocates=True), "first n elements of a list")

# ---------------------------------------------------------------------------
# Hash tables and sets: ScaLite[Map, List].  These same ops double as the
# generic library (GLib substitute) containers when they survive down to C.Py
# in the 2- and 3-level stack configurations.
# ---------------------------------------------------------------------------
_r("mmap_new", ALLOC, "MultiMap: key -> list of values (hash joins)")
_r("mmap_add", WRITE, "append a value to the bucket of a key", merge="bucket-concat")
_r("mmap_get", READ, "return the bucket list of a key (empty list if absent)")
_r("hashmap_agg_new", ALLOC,
   "HashMap keyed aggregation table; attrs: aggs=[('sum'|'count'|'min'|'max'|'avg'), ...]")
_r("hashmap_agg_update", WRITE,
   "get-or-initialise the accumulator row of a key and fold the given values into it",
   merge="reduce")
_r("hashmap_agg_foreach", CONTROL,
   "iterate (key, accumulator-values) pairs of an aggregation table", n_blocks=1)
_r("set_new", ALLOC)
_r("set_add", WRITE, merge="set-union")
_r("set_contains", READ)
_r("set_len", READ)

# ---------------------------------------------------------------------------
# Database access (the loaded catalog is a parameter of every program).
# ---------------------------------------------------------------------------
_r("table_size", READ, "number of rows of a table; attrs: table=<name>")
_r("table_column", READ, "column array of a table; attrs: table=<name>, column=<name>")

# ---------------------------------------------------------------------------
# Specialised data structures introduced by the level-4/5 lowerings
# (hash-table specialization, index inference, partitioning, string
# dictionaries, dense aggregation arrays).  Only allowed at ScaLite[List] and
# below: they are the *result* of lowering the Map/List abstractions.
# ---------------------------------------------------------------------------
_r("index_build_multi", ALLOC,
   "partition a table by an integer key: bucket[key] = list of row ids; attrs: table, key_column")
_r("index_get_multi", READ, "bucket (list of row ids) for a key")
_r("index_build_unique", ALLOC,
   "unique index on a primary key: slot[key] = row id; attrs: table, key_column")
_r("index_get_unique", READ, "row id for a key (-1 when absent)")
_r("dense_agg_new", ALLOC,
   "dense aggregation array over a known key range; attrs: aggs=[...], size known at prepare time")
_r("dense_agg_update", WRITE, merge="reduce")
_r("dense_agg_foreach", CONTROL, n_blocks=1)
_r("strdict_build", ALLOC,
   "build a string dictionary over a column; attrs: table, column, ordered=bool")
_r("strdict_encode_column", ALLOC, "integer-encoded copy of a string column")
_r("strdict_code", READ, "dictionary code of a constant string (-1 when absent)")
_r("strdict_prefix_range", READ,
   "[start, end] code range of the strings with a given prefix (ordered dictionaries only)")

# ---------------------------------------------------------------------------
# Catalog-resident access structures (repro.storage.access).  Unlike the
# index_build_* / strdict_build ops above — which construct per-query
# structures in the hoisted block — these ops *fetch* structures that live on
# the catalog itself and are built lazily once per loaded database, so every
# compiled query (and every direct engine) shares the same physical access
# layer.  They are reads of catalog state, never allocations.
# ---------------------------------------------------------------------------
ACCESS_OPS = ("access_key_index", "access_index_lookup", "access_pruned_indices",
              "access_strdict", "access_strdict_codes", "access_prefix_range")

_r("access_key_index", READ,
   "the catalog's load-time unique-key index of table.column; attrs: table, column; "
   "raises at prepare time when the loaded data has no such index")
_r("access_index_lookup", READ,
   "row position of a key in a unique-key index (None when absent)")
_r("access_pruned_indices", READ,
   "candidate base-row positions of a pruned scan (ascending, memoized); "
   "attrs: table, filters")
_r("access_strdict", READ,
   "the catalog's sorted string dictionary of table.column; attrs: table, column; "
   "raises at prepare time when the loaded column has no dictionary")
_r("access_strdict_codes", READ,
   "the shared per-row integer code column of a catalog string dictionary; "
   "attrs: table, column")
_r("access_prefix_range", READ,
   "inclusive [lo, hi] code range of the strings with a given prefix in a "
   "catalog dictionary ((1, 0) when no string matches)")

# ---------------------------------------------------------------------------
# C.Py level: explicit memory management (the C.Scala analogue).
# ---------------------------------------------------------------------------
_r("malloc", ALLOC, "allocate one record-sized chunk; attrs: record fields")
_r("free", WRITE)
_r("pool_new", ALLOC, "pre-allocate a memory pool of records; attrs: size hint")
_r("pool_next", READ_WRITE, "take the next free record slot from a pool")
_r("ptr_field_get", READ, "read a field through a pointer; attrs: field")
_r("ptr_field_set", WRITE, "write a field through a pointer; attrs: field")

# ---------------------------------------------------------------------------
# Output / debugging.
# ---------------------------------------------------------------------------
_r("emit_row", WRITE, "append an output row to the query result list", merge="concat")
_r("print_", IO)


def effect_of(op_name: str) -> Effect:
    """Effect summary of a registered op (raises ``KeyError`` for unknown ops)."""
    return REGISTRY.effect_of(op_name)


def merge_strategy(op_name: str) -> Optional[str]:
    """Morsel merge strategy of a writing op, or ``None`` for order-dependent writes."""
    return REGISTRY.get(op_name).merge


def is_registered(op_name: str) -> bool:
    return op_name in REGISTRY
