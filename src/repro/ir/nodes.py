"""ANF intermediate representation shared by all imperative DSL levels.

The paper (Section 3.3) argues that plain ASTs are not a sufficient IR once
the language has variable bindings and mutation, and settles on
administrative normal form (ANF): every sub-expression is bound to an
immutable local symbol, and operators only take constants or symbols as
arguments.  This module defines the data structures of that IR:

* :class:`Sym` — an immutable local binding (``val x1 = ...`` in the paper),
* :class:`Const` — a literal constant,
* :class:`Expr` — one operation applied to atoms, possibly carrying nested
  :class:`Block`s for control flow (loops, conditionals, lambdas),
* :class:`Stmt` — a binding of an expression to a symbol,
* :class:`Block` — a sequence of statements plus a result atom.

The same IR data structure is reused by every abstraction level of the stack;
what changes between levels is the *vocabulary of operations* allowed
(see :mod:`repro.stack.language`), exactly as footnote 6 of the paper
describes.
"""
from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Tuple, Union

from .types import Type, UNKNOWN

_sym_counter = itertools.count(1)


def reset_symbol_counter() -> None:
    """Reset the global symbol counter (used by tests for deterministic output)."""
    global _sym_counter
    _sym_counter = itertools.count(1)


@dataclass(eq=False)
class Sym:
    """A unique, immutable symbol bound by exactly one statement.

    Symbols use identity semantics: two symbols are equal only if they are the
    same binding.  The numeric id makes printed programs stable and readable
    (``x1``, ``x2``, ...).
    """

    hint: str = "x"
    type: Type = UNKNOWN
    id: int = field(default_factory=lambda: next(_sym_counter))

    @property
    def name(self) -> str:
        return f"{self.hint}{self.id}"

    def __repr__(self) -> str:
        return self.name

    def __hash__(self) -> int:
        return hash(self.id)


@dataclass(frozen=True)
class Const:
    """A literal constant atom."""

    value: Any
    type: Type = UNKNOWN

    def __repr__(self) -> str:
        if isinstance(self.value, str):
            return repr(self.value)
        return str(self.value)


#: Atoms are the only things operators may take as arguments in ANF.
Atom = Union[Sym, Const]


def is_atom(value: Any) -> bool:
    return isinstance(value, (Sym, Const))


@dataclass
class Block:
    """A sequence of ANF statements ending in a result atom."""

    stmts: List["Stmt"] = field(default_factory=list)
    result: Atom = Const(None)
    params: Tuple[Sym, ...] = ()

    def __iter__(self):
        return iter(self.stmts)

    def __len__(self) -> int:
        return len(self.stmts)

    def bound_syms(self) -> List[Sym]:
        return [stmt.sym for stmt in self.stmts]

    def copy_shallow(self) -> "Block":
        return Block(list(self.stmts), self.result, self.params)


@dataclass
class Expr:
    """One IR operation: an op name applied to atom arguments.

    Attributes:
        op: the operation name; must be registered in :mod:`repro.ir.ops`.
        args: atom arguments (symbols or constants).
        attrs: static attributes that are part of the instruction itself and
            are known at compile time (field names, record types, layout
            choices, ...).  They never reference symbols.
        blocks: nested blocks for control-flow / higher-order ops (loop
            bodies, branch arms, lambda bodies).
        type: result type of the expression.
    """

    op: str
    args: Tuple[Atom, ...] = ()
    attrs: Dict[str, Any] = field(default_factory=dict)
    blocks: Tuple[Block, ...] = ()
    type: Type = UNKNOWN

    def cse_key(self) -> Optional[Tuple]:
        """A hashable structural key used for hash-consing pure expressions.

        Expressions carrying nested blocks are never shared, so they have no
        key.  Attribute values must be hashable for the expression to be
        shareable; otherwise the expression is simply not CSE'd.
        """
        if self.blocks:
            return None
        arg_key = tuple(
            ("sym", a.id) if isinstance(a, Sym) else ("const", a.value, repr(a.type))
            for a in self.args
        )
        try:
            attr_key = tuple(sorted((k, _hashable(v)) for k, v in self.attrs.items()))
        except TypeError:
            return None
        return (self.op, arg_key, attr_key)

    def with_args(self, args: Iterable[Atom]) -> "Expr":
        return Expr(self.op, tuple(args), dict(self.attrs), self.blocks, self.type)

    def __repr__(self) -> str:
        parts = [repr(a) for a in self.args]
        parts += [f"{k}={v!r}" for k, v in self.attrs.items()]
        inner = ", ".join(parts)
        suffix = f" [{len(self.blocks)} block(s)]" if self.blocks else ""
        return f"{self.op}({inner}){suffix}"


def _hashable(value: Any) -> Any:
    """Best-effort conversion of attribute values to hashable keys."""
    if isinstance(value, (list, tuple)):
        return tuple(_hashable(v) for v in value)
    if isinstance(value, dict):
        return tuple(sorted((k, _hashable(v)) for k, v in value.items()))
    if isinstance(value, (set, frozenset)):
        return tuple(sorted(_hashable(v) for v in value))
    hash(value)
    return value


@dataclass
class Stmt:
    """A single ANF statement: ``val sym = expr``."""

    sym: Sym
    expr: Expr

    def __repr__(self) -> str:
        return f"val {self.sym!r} = {self.expr!r}"


@dataclass
class Program:
    """A whole ANF program: a top-level block plus its input parameters.

    Programs at the imperative levels take the loaded database as parameter.
    The ``hoisted`` block holds statements moved to data-loading time by the
    domain-specific code-motion transformations of the paper (index inference,
    string dictionaries, memory-allocation hoisting, data-structure
    initialisation hoisting); symbols it binds are visible to ``body``.
    """

    body: Block
    params: Tuple[Sym, ...] = ()
    language: str = ""
    hoisted: Block = field(default_factory=Block)

    def all_blocks(self) -> Tuple[Block, Block]:
        return (self.hoisted, self.body)

    def __repr__(self) -> str:
        return (f"Program(language={self.language!r}, params={list(self.params)!r}, "
                f"hoisted={len(self.hoisted.stmts)}, stmts={len(self.body.stmts)})")
