"""Human-readable printing of ANF programs.

The printer is also used as a cheap structural fingerprint: the fixed-point
driver of :mod:`repro.stack.transformation` re-applies optimizations until the
printed form stops changing, which is the paper's "no structurally different
code" termination condition.
"""
from __future__ import annotations

from typing import List

from .nodes import Atom, Block, Const, Program, Stmt, Sym

_INDENT = "  "


def atom_str(atom: Atom) -> str:
    if isinstance(atom, Sym):
        return atom.name
    if isinstance(atom, Const):
        return repr(atom.value)
    return repr(atom)


def stmt_str(stmt: Stmt) -> str:
    expr = stmt.expr
    parts = [atom_str(a) for a in expr.args]
    parts += [f"{key}={value!r}" for key, value in sorted(expr.attrs.items(), key=lambda kv: kv[0])]
    return f"val {stmt.sym.name} = {expr.op}({', '.join(parts)})"


def block_lines(block: Block, indent: int = 0) -> List[str]:
    lines: List[str] = []
    pad = _INDENT * indent
    if block.params:
        lines.append(f"{pad}params: {', '.join(p.name for p in block.params)}")
    for stmt in block.stmts:
        lines.append(pad + stmt_str(stmt))
        for i, nested in enumerate(stmt.expr.blocks):
            lines.append(f"{pad}{_INDENT}block[{i}]:")
            lines.extend(block_lines(nested, indent + 2))
    lines.append(f"{pad}result: {atom_str(block.result)}")
    return lines


def block_to_str(block: Block) -> str:
    return "\n".join(block_lines(block))


def program_to_str(program: Program) -> str:
    lines = [f"program [{program.language}] params({', '.join(p.name for p in program.params)})"]
    if program.hoisted.stmts:
        lines.append("hoisted (data-loading time):")
        lines.extend(block_lines(program.hoisted, 1))
    lines.append("body:")
    lines.extend(block_lines(program.body, 1))
    return "\n".join(lines)


def fingerprint(program: Program) -> str:
    """A structural fingerprint used to detect fixed points.

    Symbol identities are normalised away so that alpha-equivalent programs
    produce the same fingerprint.
    """
    mapping = {}

    def norm_atom(atom: Atom) -> str:
        if isinstance(atom, Sym):
            if atom.id not in mapping:
                mapping[atom.id] = f"s{len(mapping)}"
            return mapping[atom.id]
        return repr(atom.value)

    def norm_block(block: Block) -> str:
        parts = ["[" + ",".join(norm_atom(p) for p in block.params) + "]"]
        for stmt in block.stmts:
            expr = stmt.expr
            attrs = ";".join(f"{k}={v!r}" for k, v in sorted(expr.attrs.items()))
            nested = "|".join(norm_block(b) for b in expr.blocks)
            args = ",".join(norm_atom(a) for a in expr.args)
            parts.append(f"{norm_atom(stmt.sym)}={expr.op}({args};{attrs};{nested})")
        parts.append("->" + norm_atom(block.result))
        return "\n".join(parts)

    return norm_block(program.hoisted) + "\n====\n" + norm_block(program.body)
