"""Type system shared by all DSL levels of the stack.

The paper's DSLs (QPlan, QMonad, ScaLite[Map, List], ScaLite[List], ScaLite,
C.Scala) are statically typed Scala-embedded DSLs.  This module provides the
equivalent vocabulary of types for the Python embedding: scalar types, dates,
strings, records, arrays, lists, hash tables and pointers.

Types are immutable value objects: two structurally equal types compare and
hash equal, which is what the ANF builder relies on for hash-consing.
"""
from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple


class Type:
    """Base class of every DSL type."""

    def __repr__(self) -> str:  # pragma: no cover - repr defined per subclass
        return self.__class__.__name__


@dataclass(frozen=True)
class ScalarType(Type):
    """A primitive type identified by name (int, float, bool, string, date, unit)."""

    name: str

    def __repr__(self) -> str:
        return self.name


#: Singleton scalar types used throughout the stack.
INT = ScalarType("int")
FLOAT = ScalarType("float")
BOOL = ScalarType("bool")
STRING = ScalarType("string")
#: Dates are stored as integers of the form YYYYMMDD (see ``repro.codegen.runtime``).
DATE = ScalarType("date")
UNIT = ScalarType("unit")
UNKNOWN = ScalarType("unknown")


@dataclass(frozen=True)
class RecordType(Type):
    """A named record (struct) with ordered, typed fields."""

    name: str
    fields: Tuple[Tuple[str, Type], ...] = field(default=())

    def field_names(self) -> Tuple[str, ...]:
        return tuple(name for name, _ in self.fields)

    def field_type(self, name: str) -> Type:
        for fname, ftype in self.fields:
            if fname == name:
                return ftype
        raise KeyError(f"record {self.name!r} has no field {name!r}")

    def has_field(self, name: str) -> bool:
        return any(fname == name for fname, _ in self.fields)

    def without_fields(self, removed: frozenset) -> "RecordType":
        """Return a copy of this record type with ``removed`` fields dropped."""
        kept = tuple((n, t) for n, t in self.fields if n not in removed)
        return RecordType(self.name, kept)

    def __repr__(self) -> str:
        inner = ", ".join(f"{n}: {t!r}" for n, t in self.fields)
        return f"{self.name}{{{inner}}}"


@dataclass(frozen=True)
class ArrayType(Type):
    """A fixed-size (or dynamically grown) array of elements."""

    element: Type

    def __repr__(self) -> str:
        return f"Array[{self.element!r}]"


@dataclass(frozen=True)
class ListType(Type):
    """A (mutable) list of elements — available down to ScaLite[List]."""

    element: Type

    def __repr__(self) -> str:
        return f"List[{self.element!r}]"


@dataclass(frozen=True)
class MapType(Type):
    """A HashMap associating each key with a single value (aggregations)."""

    key: Type
    value: Type

    def __repr__(self) -> str:
        return f"HashMap[{self.key!r}, {self.value!r}]"


@dataclass(frozen=True)
class MultiMapType(Type):
    """A MultiMap associating each key with a collection of values (hash joins)."""

    key: Type
    value: Type

    def __repr__(self) -> str:
        return f"MultiMap[{self.key!r}, {self.value!r}]"


@dataclass(frozen=True)
class PointerType(Type):
    """An explicit pointer/reference — only available at the C.Py level."""

    target: Type

    def __repr__(self) -> str:
        return f"Pointer[{self.target!r}]"


@dataclass(frozen=True)
class FunctionType(Type):
    """Type of a lambda abstraction / staged function."""

    params: Tuple[Type, ...]
    result: Type

    def __repr__(self) -> str:
        params = ", ".join(repr(p) for p in self.params)
        return f"({params}) => {self.result!r}"


def is_numeric(tpe: Type) -> bool:
    """True for types supporting arithmetic (+, -, *, /)."""
    return tpe in (INT, FLOAT, DATE)


def is_comparable(tpe: Type) -> bool:
    """True for types supporting ordering comparisons."""
    return isinstance(tpe, ScalarType) and tpe is not UNIT


def common_numeric(left: Type, right: Type) -> Type:
    """Result type of a binary arithmetic operation between two numeric types."""
    if FLOAT in (left, right):
        return FLOAT
    if left is DATE or right is DATE:
        return INT
    return INT
