"""Annotation side-table keyed by IR symbols.

Section 3.3: "since ANF assigns a unique symbol to each subexpression, this
process is simplified by keeping a hash-table from these unique symbols to
their associated annotations".  Annotations carry high-level information that
is no longer expressible at the current abstraction level — for example that a
column is a primary key, that a loop's trip count is bounded by a table's
cardinality, or that a user-defined function is pure.
"""
from __future__ import annotations

from typing import Any, Dict, Iterator, Tuple

from .nodes import Sym


class AnnotationTable:
    """A mapping from symbols to named annotations."""

    def __init__(self) -> None:
        self._table: Dict[int, Dict[str, Any]] = {}

    def set(self, sym: Sym, key: str, value: Any) -> None:
        self._table.setdefault(sym.id, {})[key] = value

    def get(self, sym: Sym, key: str, default: Any = None) -> Any:
        return self._table.get(sym.id, {}).get(key, default)

    def has(self, sym: Sym, key: str) -> bool:
        return key in self._table.get(sym.id, {})

    def all_for(self, sym: Sym) -> Dict[str, Any]:
        return dict(self._table.get(sym.id, {}))

    def copy_from(self, source: Sym, target: Sym) -> None:
        """Propagate every annotation of ``source`` to ``target``.

        Lowerings call this when they replace a symbol by a lower-level one so
        that high-level facts guided from above survive the translation.
        """
        if source.id in self._table:
            self._table.setdefault(target.id, {}).update(self._table[source.id])

    def items(self) -> Iterator[Tuple[int, Dict[str, Any]]]:
        return iter(self._table.items())

    def __len__(self) -> int:
        return len(self._table)


#: Well-known annotation keys used across the stack.
PRIMARY_KEY = "primary_key"
FOREIGN_KEY = "foreign_key"
KEY_RANGE = "key_range"
CARDINALITY_BOUND = "cardinality_bound"
PURE_UDF = "pure_udf"
SOURCE_TABLE = "source_table"
SOURCE_COLUMN = "source_column"
