"""Effect summaries attached to IR operations.

The paper stresses (Section 3.2 and 5.2) that the imperative DSLs of the stack
restrict side effects enough that the compiler can still reason about code:
pure expressions may be CSE'd and dead-code eliminated, reads may be reordered
around other reads, writes pin the statement in place, and I/O is never moved.

Every registered IR op (see :mod:`repro.ir.ops`) carries one of these effect
summaries.  The :class:`~repro.ir.builder.IRBuilder` and the generic
optimizations (CSE, DCE, code motion) consult them instead of re-deriving
data-flow facts for every transformation, exactly the argument made in
Section 3.3 for a canonical ANF representation.
"""
from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Effect:
    """An effect summary for one operation kind.

    Attributes:
        reads: the op reads mutable state (arrays, lists, maps, variables).
        writes: the op mutates state visible outside the statement.
        allocates: the op allocates a fresh mutable object (its identity matters).
        io: the op performs input/output (printing results, loading data).
        control: the op is a control-flow construct carrying nested blocks.
    """

    reads: bool = False
    writes: bool = False
    allocates: bool = False
    io: bool = False
    control: bool = False

    @property
    def pure(self) -> bool:
        """Pure ops can be freely duplicated, shared (CSE) and removed (DCE)."""
        return not (self.reads or self.writes or self.allocates or self.io or self.control)

    @property
    def removable_if_unused(self) -> bool:
        """Ops whose only observable result is their value may be DCE'd.

        Allocation is removable when the allocated object is never used;
        reads are removable too.  Writes and I/O are never removable.
        """
        return not (self.writes or self.io or self.control)

    @property
    def can_reorder_with_reads(self) -> bool:
        return not (self.writes or self.io or self.control)

    def union(self, other: "Effect") -> "Effect":
        """Combine two effect summaries (used to summarise nested blocks)."""
        return Effect(
            reads=self.reads or other.reads,
            writes=self.writes or other.writes,
            allocates=self.allocates or other.allocates,
            io=self.io or other.io,
            control=self.control or other.control,
        )


#: Commonly used effect summaries.
PURE = Effect()
READ = Effect(reads=True)
WRITE = Effect(writes=True)
READ_WRITE = Effect(reads=True, writes=True)
ALLOC = Effect(allocates=True)
IO = Effect(io=True)
CONTROL = Effect(control=True, reads=True, writes=True)
GLOBAL = Effect(reads=True, writes=True, io=True)
