"""ANF construction with hash-consing ("CSE for free").

Section 3.3 of the paper explains that while converting sub-expressions to
immutable bindings, the compiler can look up an existing binding with the same
operator and the same arguments and reuse it, obtaining common-subexpression
elimination as a by-product of building the IR.  :class:`IRBuilder` implements
exactly that: ``emit`` returns an existing symbol whenever an equivalent pure
expression has already been emitted in a visible scope.
"""
from __future__ import annotations

from contextlib import contextmanager
from typing import (Any, Callable, Dict, Iterator, List, Optional, Sequence,
                    Tuple, Union)

from . import ops as op_registry
from .nodes import Atom, Block, Const, Expr, Program, Stmt, Sym, is_atom
from .types import BOOL, FLOAT, INT, STRING, Type, UNIT, UNKNOWN


class _Scope:
    """One lexical scope: a block under construction plus its CSE table."""

    def __init__(self, params: Tuple[Sym, ...] = ()) -> None:
        self.block = Block(params=params)
        self.cse: Dict[Tuple, Sym] = {}


class IRBuilder:
    """Builds ANF blocks statement by statement.

    The builder maintains a stack of open scopes.  Control-flow ops open child
    scopes through :meth:`new_block`; pure expressions are hash-consed against
    all enclosing scopes, so a sub-expression computed in an outer scope is
    reused instead of recomputed (the paper's ``R_A * R_B`` example).
    """

    def __init__(self) -> None:
        self._scopes: List[_Scope] = [_Scope()]

    # ------------------------------------------------------------------
    # Atom helpers
    # ------------------------------------------------------------------
    def const(self, value: Any, tpe: Optional[Type] = None) -> Const:
        """Wrap a Python value as a constant atom, inferring a type if needed."""
        if tpe is None:
            tpe = _infer_const_type(value)
        return Const(value, tpe)

    def as_atom(self, value: Any) -> Atom:
        """Coerce a raw Python value or an atom into an atom."""
        if is_atom(value):
            return value
        return self.const(value)

    # ------------------------------------------------------------------
    # Emission
    # ------------------------------------------------------------------
    def emit(self, op: str, args: Sequence[Any] = (), attrs: Optional[Dict[str, Any]] = None,
             blocks: Sequence[Block] = (), tpe: Type = UNKNOWN, hint: Optional[str] = None) -> Sym:
        """Emit one statement and return the symbol bound to its result.

        Pure expressions that were already emitted in a visible scope are not
        re-emitted; the previously bound symbol is returned instead.
        """
        opdef = op_registry.REGISTRY.get(op)
        if opdef.n_blocks is not None and len(blocks) != opdef.n_blocks:
            raise ValueError(
                f"op {op!r} expects {opdef.n_blocks} nested block(s), got {len(blocks)}")
        expr = Expr(op, tuple(self.as_atom(a) for a in args), dict(attrs or {}),
                    tuple(blocks), tpe)

        if opdef.effect.pure:
            key = expr.cse_key()
            if key is not None:
                existing = self._lookup_cse(key)
                if existing is not None:
                    return existing
        sym = Sym(hint or _default_hint(op), tpe)
        self._current.block.stmts.append(Stmt(sym, expr))
        if opdef.effect.pure:
            key = expr.cse_key()
            if key is not None:
                self._current.cse[key] = sym
        return sym

    def emit_stmt(self, stmt: Stmt) -> Sym:
        """Append an existing statement verbatim (used by block rewriters)."""
        self._current.block.stmts.append(stmt)
        opdef = op_registry.REGISTRY.get(stmt.expr.op)
        if opdef.effect.pure:
            key = stmt.expr.cse_key()
            if key is not None and key not in self._current.cse:
                self._current.cse[key] = stmt.sym
        return stmt.sym

    # ------------------------------------------------------------------
    # Scope management
    # ------------------------------------------------------------------
    @contextmanager
    def new_block(self, params: Union[int, Sequence[Sym]] = 0,
                  hints: Sequence[str] = (),
                  types: Sequence[Type] = ()) -> Iterator[Tuple[Block, Tuple[Sym, ...]]]:
        """Open a nested block (loop body, branch arm, lambda body).

        Yields ``(block, params)``; the block must be finished by setting its
        ``result`` (via :meth:`set_result`) before the context exits if a
        non-unit result is needed.
        """
        if isinstance(params, int):
            syms = tuple(
                Sym(hints[i] if i < len(hints) else "p",
                    types[i] if i < len(types) else UNKNOWN)
                for i in range(params)
            )
        else:
            syms = tuple(params)
        scope = _Scope(syms)
        self._scopes.append(scope)
        try:
            yield scope.block, syms
        finally:
            self._scopes.pop()

    def set_result(self, atom: Any) -> None:
        """Set the result atom of the innermost open block."""
        self._current.block.result = self.as_atom(atom)

    def finish(self, result: Any = None) -> Block:
        """Close the builder and return the top-level block."""
        if len(self._scopes) != 1:
            raise RuntimeError("finish() called with nested blocks still open")
        if result is not None:
            self.set_result(result)
        return self._scopes[0].block

    # ------------------------------------------------------------------
    # Convenience wrappers used heavily by the lowerings
    # ------------------------------------------------------------------
    def if_(self, cond: Any, then_fn: Callable[[], Any],
            else_fn: Optional[Callable[[], Any]] = None, tpe: Type = UNIT) -> Sym:
        """Emit a conditional; the branch functions receive this builder."""
        with self.new_block() as (then_block, _):
            result = then_fn()
            if result is not None:
                self.set_result(result)
        with self.new_block() as (else_block, _):
            if else_fn is not None:
                result = else_fn()
                if result is not None:
                    self.set_result(result)
        return self.emit("if_", [cond], blocks=[then_block, else_block], tpe=tpe)

    def for_range(self, start: Any, end: Any, body_fn: Callable[[Sym], Any],
                  hint: str = "i") -> Sym:
        """Emit a bounded loop; ``body_fn`` receives the index symbol."""
        with self.new_block(params=1, hints=[hint], types=[INT]) as (body, (idx,)):
            body_fn(idx)
        return self.emit("for_range", [start, end], blocks=[body], tpe=UNIT)

    def while_(self, cond_fn: Callable[[], Any], body_fn: Callable[[], Any]) -> Sym:
        """Emit a while loop; the condition block result is the loop condition."""
        with self.new_block() as (cond_block, _):
            self.set_result(cond_fn())
        with self.new_block() as (body_block, _):
            body_fn()
        return self.emit("while_", [], blocks=[cond_block, body_block], tpe=UNIT)

    def foreach(self, collection: Any, body_fn: Callable[[Sym], Any], op: str = "list_foreach",
                hint: str = "e", tpe: Type = UNKNOWN) -> Sym:
        """Emit a foreach over a list-like collection."""
        with self.new_block(params=1, hints=[hint], types=[tpe]) as (body, (elem,)):
            body_fn(elem)
        return self.emit(op, [collection], blocks=[body], tpe=UNIT)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    @property
    def _current(self) -> _Scope:
        return self._scopes[-1]

    def _lookup_cse(self, key: Tuple) -> Optional[Sym]:
        for scope in reversed(self._scopes):
            sym = scope.cse.get(key)
            if sym is not None:
                return sym
        return None


def _infer_const_type(value: Any) -> Type:
    if isinstance(value, bool):
        return BOOL
    if isinstance(value, int):
        return INT
    if isinstance(value, float):
        return FLOAT
    if isinstance(value, str):
        return STRING
    if value is None:
        return UNIT
    return UNKNOWN


def _default_hint(op: str) -> str:
    prefixes = {
        "var_new": "v",
        "list_new": "lst",
        "array_new": "arr",
        "mmap_new": "hm",
        "hashmap_agg_new": "agg",
        "record_new": "rec",
        "for_range": "loop",
        "table_column": "col",
        "table_size": "n",
    }
    return prefixes.get(op, "x")


def make_program(body: Block, params: Sequence[Sym], language: str,
                 hoisted: Optional[Block] = None) -> Program:
    """Assemble a :class:`~repro.ir.nodes.Program` from built blocks."""
    return Program(body=body, params=tuple(params), language=language,
                   hoisted=hoisted if hoisted is not None else Block())
