"""Generic traversals and rewrites over ANF blocks.

These utilities are the work-horses of every optimization and lowering in
:mod:`repro.transforms`: walking statements recursively, computing used and
free symbols, substituting atoms, and rebuilding blocks through a rewrite
callback.
"""
from __future__ import annotations

from typing import Callable, Dict, Iterable, Iterator, List, Optional, Set, Tuple

from . import ops as op_registry
from .effects import Effect
from .nodes import Atom, Block, Expr, Program, Stmt, Sym
from .types import Type


def iter_stmts(block: Block, recursive: bool = True) -> Iterator[Tuple[Stmt, Block]]:
    """Yield ``(stmt, enclosing_block)`` pairs, optionally descending into nested blocks."""
    for stmt in block.stmts:
        yield stmt, block
        if recursive:
            for nested in stmt.expr.blocks:
                yield from iter_stmts(nested, recursive=True)


def iter_program_stmts(program: Program) -> Iterator[Tuple[Stmt, Block]]:
    """Yield every statement of a program (hoisted block first)."""
    yield from iter_stmts(program.hoisted)
    yield from iter_stmts(program.body)


def used_syms(block: Block) -> Set[Sym]:
    """All symbols referenced (as arguments or results) anywhere inside a block."""
    used: Set[Sym] = set()

    def visit(blk: Block) -> None:
        for stmt in blk.stmts:
            for arg in stmt.expr.args:
                if isinstance(arg, Sym):
                    used.add(arg)
            for nested in stmt.expr.blocks:
                visit(nested)
        if isinstance(blk.result, Sym):
            used.add(blk.result)

    visit(block)
    return used


def bound_syms(block: Block, recursive: bool = True) -> Set[Sym]:
    """All symbols bound by statements (and block parameters) inside a block."""
    bound: Set[Sym] = set(block.params)
    for stmt, _ in iter_stmts(block, recursive=recursive):
        bound.add(stmt.sym)
        for nested in stmt.expr.blocks:
            bound.update(nested.params)
    return bound


def free_syms(block: Block) -> Set[Sym]:
    """Symbols used inside the block but defined outside of it."""
    return used_syms(block) - bound_syms(block)


def substitute_atom(atom: Atom, mapping: Dict[Sym, Atom]) -> Atom:
    if isinstance(atom, Sym):
        return mapping.get(atom, atom)
    return atom


def substitute_block(block: Block, mapping: Dict[Sym, Atom]) -> Block:
    """Return a copy of ``block`` with argument symbols replaced per ``mapping``.

    Bindings themselves keep their symbols; only uses are substituted.
    """
    new_stmts: List[Stmt] = []
    for stmt in block.stmts:
        expr = stmt.expr
        new_args = tuple(substitute_atom(a, mapping) for a in expr.args)
        new_blocks = tuple(substitute_block(b, mapping) for b in expr.blocks)
        new_stmts.append(Stmt(stmt.sym, Expr(expr.op, new_args, dict(expr.attrs),
                                             new_blocks, expr.type)))
    return Block(new_stmts, substitute_atom(block.result, mapping), block.params)


def block_effect(block: Block) -> Effect:
    """Combined effect summary of every statement in a block (recursively)."""
    effect = Effect()
    for stmt, _ in iter_stmts(block):
        effect = effect.union(op_registry.effect_of(stmt.expr.op))
    return effect


def count_ops(program: Program) -> Dict[str, int]:
    """Histogram of op names in a program (used by tests and reports)."""
    counts: Dict[str, int] = {}
    for stmt, _ in iter_program_stmts(program):
        counts[stmt.expr.op] = counts.get(stmt.expr.op, 0) + 1
    return counts


def ops_used(program: Program) -> Set[str]:
    return set(count_ops(program))


RewriteFn = Callable[[Stmt, "BlockRewriter"], Optional[Atom]]


class BlockRewriter:
    """Rebuilds a block, letting a callback replace individual statements.

    The callback receives each statement (with its argument atoms already
    remapped) and the rewriter itself; it can emit replacement statements via
    :meth:`emit` and return the atom that stands for the original statement's
    result.  Returning ``None`` keeps the statement unchanged.
    """

    def __init__(self, rewrite: RewriteFn) -> None:
        self._rewrite = rewrite
        self._mapping: Dict[Sym, Atom] = {}
        self._out_stack: List[List[Stmt]] = []

    # -- emission API available to rewrite callbacks -----------------------
    def emit(self, op: str, args: Iterable[Atom] = (), attrs: Optional[dict] = None,
             blocks: Tuple[Block, ...] = (), tpe: Optional[Type] = None,
             hint: str = "x") -> Sym:
        from .types import UNKNOWN
        result_type = tpe if tpe is not None else UNKNOWN
        sym = Sym(hint, result_type)
        expr = Expr(op, tuple(args), dict(attrs or {}), tuple(blocks), result_type)
        self._out_stack[-1].append(Stmt(sym, expr))
        return sym

    def emit_stmt(self, stmt: Stmt) -> Sym:
        self._out_stack[-1].append(stmt)
        return stmt.sym

    def rewrite_nested(self, block: Block) -> Block:
        """Rewrite a nested block with the same callback (used for control flow)."""
        return self._rewrite_block(block)

    def resolve(self, atom: Atom) -> Atom:
        return substitute_atom(atom, self._mapping)

    # -- main entry point ---------------------------------------------------
    def rewrite_block(self, block: Block) -> Block:
        return self._rewrite_block(block)

    def rewrite_program(self, program: Program) -> Program:
        hoisted = self._rewrite_block(program.hoisted)
        body = self._rewrite_block(program.body)
        return Program(body=body, params=program.params, language=program.language,
                       hoisted=hoisted)

    # -- internals ----------------------------------------------------------
    def _rewrite_block(self, block: Block) -> Block:
        self._out_stack.append([])
        for stmt in block.stmts:
            expr = stmt.expr
            remapped_args = tuple(substitute_atom(a, self._mapping) for a in expr.args)
            remapped = Stmt(stmt.sym, Expr(expr.op, remapped_args, dict(expr.attrs),
                                           expr.blocks, expr.type))
            replacement = self._rewrite(remapped, self)
            if replacement is None:
                # Keep the statement, but still rewrite its nested blocks.
                if expr.blocks:
                    new_blocks = tuple(self._rewrite_block(b) for b in expr.blocks)
                    remapped = Stmt(stmt.sym, Expr(expr.op, remapped_args, dict(expr.attrs),
                                                   new_blocks, expr.type))
                self._out_stack[-1].append(remapped)
            else:
                self._mapping[stmt.sym] = replacement
        stmts = self._out_stack.pop()
        return Block(stmts, substitute_atom(block.result, self._mapping), block.params)


def rewrite_program(program: Program, rewrite: RewriteFn,
                    language: Optional[str] = None) -> Program:
    """Convenience wrapper: rewrite a whole program with a statement callback."""
    result = BlockRewriter(rewrite).rewrite_program(program)
    if language is not None:
        result.language = language
    return result
