"""The ANF intermediate representation shared by every imperative DSL level."""
from .annotations import AnnotationTable
from .builder import IRBuilder, make_program
from .effects import Effect, PURE, READ, WRITE, ALLOC, IO, CONTROL
from .nodes import Atom, Block, Const, Expr, Program, Stmt, Sym, reset_symbol_counter
from .ops import REGISTRY, effect_of, is_registered
from .pretty import block_to_str, fingerprint, program_to_str
from . import types

__all__ = [
    "AnnotationTable", "IRBuilder", "make_program",
    "Effect", "PURE", "READ", "WRITE", "ALLOC", "IO", "CONTROL",
    "Atom", "Block", "Const", "Expr", "Program", "Stmt", "Sym", "reset_symbol_counter",
    "REGISTRY", "effect_of", "is_registered",
    "block_to_str", "fingerprint", "program_to_str", "types",
]
