"""Code generation: the C.Py level's unparser, the compiler facade and the runtime."""
from .compiler import CompiledQuery, QueryCompiler

__all__ = ["CompiledQuery", "QueryCompiler"]
