"""The query compiler: front end → DSL stack → Python source → callable.

:class:`QueryCompiler` wires together a stack configuration
(:mod:`repro.stack.configs`), the unparser and Python's ``compile``/``exec``
(standing in for CLang in the paper's tool chain).  The result of compiling a
plan is a :class:`CompiledQuery` exposing:

* ``prepare(db)`` — run the hoisted (data-loading time) section once,
* ``run(db)`` — execute the query body and return its rows,
* ``source`` — the generated Python source (for inspection / debugging),
* ``generation_seconds`` / ``python_compile_seconds`` — the two components of
  compilation time reported in Figure 9.
"""
from __future__ import annotations

import threading
import time
import weakref
from collections import OrderedDict
from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Optional, Tuple

from ..concurrency import guarded_by
from ..dsl import qmonad as M
from ..dsl import qplan as Q
from ..ir.nodes import Program
from ..robustness.faults import fault_point, fault_value
from ..robustness.governor import current_governor
from ..stack.context import CompilationContext, OptimizationFlags
from ..stack.language import QMONAD, QPLAN
from ..stack.pipeline import CompilationResult, DslStack
from ..storage.access import AccessLayer
from ..storage.catalog import Catalog
from . import runtime
from .unparser import PythonUnparser


class CompilerError(Exception):
    pass


@dataclass
class CompiledQuery:
    """A query compiled down to executable Python."""

    name: str
    source: str
    config: str
    program: Program
    phases: List[Any] = field(default_factory=list)
    #: per-loop parallel-safety classifications (verify-mode compiles only):
    #: each depth-0 loop of the final program, stamped and re-proved.
    loop_safety: List[Any] = field(default_factory=list)
    generation_seconds: float = 0.0
    python_compile_seconds: float = 0.0
    cache_hit: bool = False
    _prepare_fn: Any = None
    _query_fn: Any = None
    _aux: Optional[Dict[str, Any]] = None
    _aux_generation: Optional[int] = None
    #: access-layer generation the program was compiled against; compiled
    #: code bakes in statistics-derived facts (interval-folded predicates,
    #: dense key ranges), so running against reloaded data triggers a
    #: transparent recompile through ``_recompile``
    _compiled_generation: Optional[int] = None
    _recompile: Any = None

    def prepare(self, db: Catalog) -> Dict[str, Any]:
        """Run the data-loading-time section (index builds, dictionaries, pools)."""
        self._aux = self._prepare_fn(db, runtime)
        self._aux_generation = AccessLayer.for_catalog(db).generation
        return self._aux

    def run(self, db: Catalog, aux: Optional[Dict[str, Any]] = None) -> List[Dict[str, Any]]:
        """Execute the compiled query body and return its result rows.

        The memoized prepared state is stamped with the catalog's
        access-layer generation: re-registering a table invalidates it, so a
        later ``run()`` re-prepares instead of silently serving structures
        (index objects, candidate row lists, dictionaries) built against the
        replaced data.  The compiled *code* is stamped the same way —
        statistics-derived facts (interval-folded predicates, dense key
        ranges) are baked into it at compile time, so a generation mismatch
        transparently recompiles against the live data before running.  An
        explicitly passed ``aux`` is the caller's responsibility and is used
        as-is.
        """
        fault_point("engine.compiled.run", query=self.name, config=self.config)
        if self._recompile is not None and self._compiled_generation is not None \
                and AccessLayer.for_catalog(db).generation != self._compiled_generation:
            fresh = self._recompile(db)
            self.source = fresh.source
            self.program = fresh.program
            self.phases = fresh.phases
            self.loop_safety = fresh.loop_safety
            self._prepare_fn = fresh._prepare_fn
            self._query_fn = fresh._query_fn
            self._compiled_generation = fresh._compiled_generation
            self._aux = None
            self._aux_generation = None
        if aux is None:
            if self._aux is None or \
                    self._aux_generation != AccessLayer.for_catalog(db).generation:
                self.prepare(db)
            aux = self._aux
        rows = self._query_fn(db, runtime, aux)
        governor = current_governor()
        if governor is not None:
            governor.note_output_rows(len(rows))
        return rows

    @property
    def compile_seconds(self) -> float:
        return self.generation_seconds + self.python_compile_seconds

    @property
    def source_lines(self) -> int:
        return len(self.source.splitlines())


@dataclass
class QueryCacheStats:
    """Hit/miss/eviction counters of the compiled-query cache."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    def reset(self) -> None:
        self.hits = 0
        self.misses = 0
        self.evictions = 0


class QueryCompiler:
    """Compiles QPlan trees through a DSL stack configuration.

    Compilation results are cached process-wide, keyed by a stable fingerprint
    of the QPlan tree plus the stack configuration, its optimization flags and
    the target catalog.  Recompiling the same plan under the same
    configuration is therefore free: the DSL stack does not run again (this
    directly improves the repeated-compilation numbers behind Figure 9).

    The cache is a bounded LRU so a long-lived serving process cannot grow
    memory without limit: hits refresh recency, inserts beyond
    ``cache_capacity`` evict the least recently used entry, and an
    access-layer generation bump (table re-registration) evicts every entry
    compiled against the catalog's previous data.

    The cache is shared by every thread of a serving process (the async
    front door executes queries on a thread pool), so every structural
    operation — lookup + recency bump, insert + eviction, capacity change —
    holds :data:`_cache_lock`.  Compilation itself runs outside the lock;
    two threads missing on the same key may both compile, but only a result
    compiled against the catalog's *live* access-layer generation is ever
    inserted, so a slow compile racing a table re-registration cannot
    resurrect an entry the generation bump already evicted.
    """

    #: process-wide compiled-query cache (LRU order):
    #: key -> (CompiledQuery, catalog ref, access-layer generation)
    _cache: "OrderedDict[Tuple, Tuple[CompiledQuery, weakref.ref, int]]" = OrderedDict()
    #: guards _cache and cache_stats against concurrent readers/writers
    _cache_lock = threading.RLock()
    cache_stats = QueryCacheStats()
    #: maximum live entries; configurable via :meth:`set_cache_capacity`
    cache_capacity: int = 512

    def __init__(self, stack: DslStack, flags: Optional[OptimizationFlags] = None,
                 verify: bool = False) -> None:
        """``verify=True`` runs the :mod:`repro.analysis` battery during every
        compile: each transformation's output is scope/type/effect-checked,
        each optimization pass is audited for effect-system legality, and the
        generated Python is linted before ``exec``.  Verified compiles bypass
        the process-wide cache in both directions — a cached unverified entry
        must not satisfy a verifying compile, and verification runs must not
        mask cache-path bugs by polluting the cache."""
        self.stack = stack
        self.flags = flags if flags is not None else OptimizationFlags()
        self.verify = verify

    # ------------------------------------------------------------------
    # Cache management
    # ------------------------------------------------------------------
    @classmethod
    def clear_cache(cls) -> None:
        with cls._cache_lock:
            cls._cache.clear()
            cls.cache_stats.reset()

    @classmethod
    def cache_len(cls) -> int:
        with cls._cache_lock:
            return len(cls._cache)

    @classmethod
    def set_cache_capacity(cls, capacity: int) -> None:
        """Re-bound the compiled-query cache, evicting LRU-first if needed."""
        if capacity < 1:
            raise CompilerError(f"cache capacity must be positive, got {capacity}")
        with cls._cache_lock:
            cls.cache_capacity = capacity
            while len(cls._cache) > capacity:
                cls._cache.popitem(last=False)
                cls.cache_stats.evictions += 1

    @classmethod
    @guarded_by("_cache_lock")
    def _evict_stale_generations(cls, catalog: Catalog, generation: int) -> None:
        """Drop entries compiled against an earlier generation of ``catalog``.

        Called on insert: the first compile after a table re-registration
        observes the bumped generation and clears out every query that baked
        in the replaced data's statistics and indices.
        """
        stale = [key for key, (_, catalog_ref, entry_generation)
                 in cls._cache.items()
                 if entry_generation != generation and catalog_ref() is catalog]
        for key in stale:
            del cls._cache[key]
        cls.cache_stats.evictions += len(stale)

    def _cache_key(self, plan, catalog: Catalog, query_name: str) -> Optional[Tuple]:
        if not isinstance(plan, Q.Operator):
            return None  # QMonad chains are not fingerprinted (yet)
        flags_key = tuple(sorted(self.flags.__dict__.items()))
        # The access-layer generation is bumped whenever a table is
        # (re)registered: compiled queries bake in statistics-derived facts
        # (dense key ranges, dictionary availability) and close over memoized
        # index objects through prepare(), so a query compiled against the
        # previous data must miss the cache and recompile.
        generation = AccessLayer.for_catalog(catalog).generation
        return (Q.plan_fingerprint(plan), self.stack.name, flags_key,
                query_name, id(catalog), generation)

    def compile(self, plan, catalog: Catalog,
                query_name: str = "query") -> CompiledQuery:
        """Push a QPlan tree or a QMonad chain through the stack.

        The front-end language is inferred from the type of ``plan``; both
        front ends share every level below them, which is the extensibility
        argument of Section 4.6.
        """
        if isinstance(plan, M.QueryMonad):
            source = QMONAD
        elif isinstance(plan, Q.Operator):
            if self.flags.logical_plan_optimizer:
                # The logical optimizer runs before the cache key is computed,
                # so the cache is keyed on the *optimized* plan fingerprint:
                # two differently-written plans that optimize to the same tree
                # share one compiled query.  The shared per-catalog planner
                # validates both the raw and the optimized plan and memoizes
                # by raw fingerprint, keeping repeated compiles cheap.
                from ..planner import Planner
                if self.verify:
                    # A verifying compile also verifies the plan rewrites:
                    # every rule application re-validates the plan, and the
                    # shared memoizing planner is bypassed so a cached
                    # unverified optimization cannot satisfy this compile.
                    from ..planner import PlannerOptions
                    plan = Planner(
                        catalog,
                        PlannerOptions(validate_rewrites=True)).optimize(plan)
                else:
                    plan = Planner.for_catalog(catalog).optimize(plan)
            else:
                Q.validate(plan, catalog)
            source = QPLAN
        else:
            raise CompilerError(
                f"expected a QPlan operator or a QueryMonad chain, got {type(plan).__name__}")

        key = None if self.verify else self._cache_key(plan, catalog, query_name)
        if key is not None:
            with QueryCompiler._cache_lock:
                entry = QueryCompiler._cache.get(key)
                if entry is not None:
                    cached, catalog_ref, _ = entry
                    if catalog_ref() is catalog:
                        # The id() component of the key could alias a dead
                        # catalog; the weak reference check rules that out.
                        QueryCompiler._cache.move_to_end(key)
                        QueryCompiler.cache_stats.hits += 1
                        return replace(cached, cache_hit=True, _aux=None,
                                       _aux_generation=None)
                    del QueryCompiler._cache[key]

        fault_point("compiler.compile", query=query_name, stack=self.stack.name)
        context = CompilationContext(catalog=catalog, flags=self.flags,
                                     query_name=query_name)
        start = time.perf_counter()
        result: CompilationResult = self.stack.compile(plan, source, context,
                                                      verify=self.verify,
                                                      catalog=catalog if self.verify else None)
        program = result.program
        if not isinstance(program, Program):
            raise CompilerError(
                f"stack {self.stack.name!r} did not produce an ANF program "
                f"(got {type(program).__name__}); is the lowering chain complete?")
        loop_safety: List[Any] = []
        if self.verify:
            # Stamp every depth-0 loop with its parallel-safety verdict and
            # immediately re-prove the stamps: the annotate → check round
            # trip guards against the annotator and the checker drifting
            # apart.
            from ..analysis.dataflow import annotate_parallel_safety
            from ..analysis.dataflow.checks import check_stamps
            loop_safety = list(annotate_parallel_safety(program))
            check_stamps(program, catalog=catalog,
                         phase=f"parallel-safety[{query_name}]")
        source = PythonUnparser(query_name).unparse(program)
        if self.verify:
            from ..analysis import verify_source
            verify_source(source, phase=f"unparse[{query_name}]")
        generation_seconds = time.perf_counter() - start
        # Injected slow-compile penalty: deterministic extra seconds charged
        # as if the staged lowering had taken that long (no real sleeping).
        generation_seconds += fault_value("compiler.slow_compile", 0.0)

        start = time.perf_counter()
        namespace: Dict[str, Any] = {}
        code = compile(source, filename=f"<generated:{query_name}:{self.stack.name}>",
                       mode="exec")
        exec(code, namespace)  # noqa: S102 - executing our own generated code
        python_compile_seconds = time.perf_counter() - start

        compiled = CompiledQuery(
            name=query_name,
            source=source,
            config=self.stack.name,
            program=program,
            phases=result.phases,
            loop_safety=loop_safety,
            generation_seconds=generation_seconds,
            python_compile_seconds=python_compile_seconds,
            _prepare_fn=namespace["prepare"],
            _query_fn=namespace["query"],
            _compiled_generation=AccessLayer.for_catalog(catalog).generation,
            _recompile=lambda db, _plan=plan, _name=query_name:
                self.compile(_plan, db, query_name=_name),
        )
        with QueryCompiler._cache_lock:
            QueryCompiler.cache_stats.misses += 1
            if key is not None:
                generation = key[-1]
                # Re-read the live generation under the lock: a table
                # re-registration that landed while this thread was compiling
                # must win.  Stale-generation entries are evicted against the
                # *live* generation, and a result compiled against a
                # now-replaced generation is returned to the caller but never
                # inserted — otherwise it would resurrect an entry the bump
                # already evicted (and the eviction sweep, keyed on the stale
                # generation, would evict the *fresh* entries instead).
                live = AccessLayer.for_catalog(catalog).generation
                QueryCompiler._evict_stale_generations(catalog, live)
                if generation == live:
                    if len(QueryCompiler._cache) >= QueryCompiler.cache_capacity:
                        QueryCompiler._prune_cache()
                    QueryCompiler._cache[key] = (compiled, weakref.ref(catalog),
                                                 generation)
        governor = current_governor()
        if governor is not None:
            governor.charge_compile(compiled.compile_seconds)
        return compiled

    @classmethod
    @guarded_by("_cache_lock")
    def _prune_cache(cls) -> None:
        """Make room for one insert: drop entries whose catalog is gone,
        then evict least-recently-used entries until under capacity."""
        dead = [key for key, (_, catalog_ref, _) in cls._cache.items()
                if catalog_ref() is None]
        for key in dead:
            del cls._cache[key]
        while len(cls._cache) >= cls.cache_capacity:
            cls._cache.popitem(last=False)
            cls.cache_stats.evictions += 1
