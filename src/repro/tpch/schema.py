"""The TPC-H schema with primary/foreign-key annotations.

These annotations are what drives the level-4 optimizations of the paper:
automatic index inference, data-structure partitioning and initialisation
hoisting all consult the primary-key / foreign-key declarations made "at
schema definition time" (Section B.1).
"""
from __future__ import annotations

from ..storage.schema import (Schema, TableSchema, date_column, float_column,
                              int_column, string_column)

REGION = TableSchema(
    name="region",
    columns=[
        int_column("r_regionkey"),
        string_column("r_name"),
        string_column("r_comment"),
    ],
    primary_key=("r_regionkey",),
)

NATION = TableSchema(
    name="nation",
    columns=[
        int_column("n_nationkey"),
        string_column("n_name"),
        int_column("n_regionkey", references=("region", "r_regionkey")),
        string_column("n_comment"),
    ],
    primary_key=("n_nationkey",),
)

SUPPLIER = TableSchema(
    name="supplier",
    columns=[
        int_column("s_suppkey"),
        string_column("s_name"),
        string_column("s_address"),
        int_column("s_nationkey", references=("nation", "n_nationkey")),
        string_column("s_phone"),
        float_column("s_acctbal"),
        string_column("s_comment"),
    ],
    primary_key=("s_suppkey",),
)

CUSTOMER = TableSchema(
    name="customer",
    columns=[
        int_column("c_custkey"),
        string_column("c_name"),
        string_column("c_address"),
        int_column("c_nationkey", references=("nation", "n_nationkey")),
        string_column("c_phone"),
        float_column("c_acctbal"),
        string_column("c_mktsegment"),
        string_column("c_comment"),
    ],
    primary_key=("c_custkey",),
)

PART = TableSchema(
    name="part",
    columns=[
        int_column("p_partkey"),
        string_column("p_name"),
        string_column("p_mfgr"),
        string_column("p_brand"),
        string_column("p_type"),
        int_column("p_size"),
        string_column("p_container"),
        float_column("p_retailprice"),
        string_column("p_comment"),
    ],
    primary_key=("p_partkey",),
)

PARTSUPP = TableSchema(
    name="partsupp",
    columns=[
        int_column("ps_partkey", references=("part", "p_partkey")),
        int_column("ps_suppkey", references=("supplier", "s_suppkey")),
        int_column("ps_availqty"),
        float_column("ps_supplycost"),
        string_column("ps_comment"),
    ],
    primary_key=("ps_partkey", "ps_suppkey"),
)

ORDERS = TableSchema(
    name="orders",
    columns=[
        int_column("o_orderkey"),
        int_column("o_custkey", references=("customer", "c_custkey")),
        string_column("o_orderstatus"),
        float_column("o_totalprice"),
        date_column("o_orderdate"),
        string_column("o_orderpriority"),
        string_column("o_clerk"),
        int_column("o_shippriority"),
        string_column("o_comment"),
    ],
    primary_key=("o_orderkey",),
)

LINEITEM = TableSchema(
    name="lineitem",
    columns=[
        int_column("l_orderkey", references=("orders", "o_orderkey")),
        int_column("l_partkey", references=("part", "p_partkey")),
        int_column("l_suppkey", references=("supplier", "s_suppkey")),
        int_column("l_linenumber"),
        float_column("l_quantity"),
        float_column("l_extendedprice"),
        float_column("l_discount"),
        float_column("l_tax"),
        string_column("l_returnflag"),
        string_column("l_linestatus"),
        date_column("l_shipdate"),
        date_column("l_commitdate"),
        date_column("l_receiptdate"),
        string_column("l_shipinstruct"),
        string_column("l_shipmode"),
        string_column("l_comment"),
    ],
    primary_key=("l_orderkey", "l_linenumber"),
)

ALL_TABLES = (REGION, NATION, SUPPLIER, CUSTOMER, PART, PARTSUPP, ORDERS, LINEITEM)


def tpch_schema() -> Schema:
    """A fresh :class:`Schema` containing the eight TPC-H relations."""
    schema = Schema()
    for table in ALL_TABLES:
        schema.add(TableSchema(table.name, list(table.columns), table.primary_key))
    schema.validate_foreign_keys()
    return schema
