"""TPC-H queries 13-18 as QPlan physical plans."""
from __future__ import annotations

from ...dsl.expr import and_all, case, col, date, in_list, like, lit
from ...dsl.qplan import (Agg, AggSpec, HashJoin, Limit, Project, Scan, Select, Sort)


def q13():
    """Customer distribution: orders-per-customer histogram via a left outer join."""
    orders = Select(Scan("orders"),
                    ~like(col("o_comment"), "%special%requests%"))
    joined = HashJoin(Scan("customer"), orders, col("c_custkey"), col("o_custkey"),
                      kind="leftouter")
    per_customer = Agg(joined,
                       group_keys=[("c_custkey", col("c_custkey"))],
                       aggregates=[AggSpec("count", col("o_orderkey"), "c_count")])
    histogram = Agg(per_customer,
                    group_keys=[("c_count", col("c_count"))],
                    aggregates=[AggSpec("count", None, "custdist")])
    return Sort(histogram, [(col("custdist"), "desc"), (col("c_count"), "desc")])


def q14():
    """Promotion effect: share of PROMO revenue in September 1995."""
    lineitem = Select(Scan("lineitem"),
                      (col("l_shipdate") >= date("1995-09-01"))
                      & (col("l_shipdate") < date("1995-10-01")))
    joined = HashJoin(Scan("part"), lineitem, col("p_partkey"), col("l_partkey"))
    revenue = col("l_extendedprice") * (1 - col("l_discount"))
    promo_revenue = case([(like(col("p_type"), "PROMO%"), revenue)], lit(0.0))
    totals = Agg(joined, [], [AggSpec("sum", promo_revenue, "promo"),
                              AggSpec("sum", revenue, "total")])
    return Project(totals, [("promo_revenue", lit(100.0) * col("promo") / col("total"))])


def q15():
    """Top supplier: revenue view plus a max() scalar subquery."""
    shipped = Select(Scan("lineitem"),
                     (col("l_shipdate") >= date("1996-01-01"))
                     & (col("l_shipdate") < date("1996-04-01")))
    revenue = Agg(shipped,
                  group_keys=[("supplier_no", col("l_suppkey"))],
                  aggregates=[AggSpec("sum",
                                      col("l_extendedprice") * (1 - col("l_discount")),
                                      "total_revenue")])
    top = Agg(revenue, [], [AggSpec("max", col("total_revenue"), "max_revenue")])
    joined = HashJoin(Scan("supplier"), revenue, col("s_suppkey"), col("supplier_no"))
    with_max = HashJoin(joined, top, lit(0), lit(0))
    best = Select(with_max, col("total_revenue") == col("max_revenue"))
    projected = Project(best, [
        ("s_suppkey", col("s_suppkey")), ("s_name", col("s_name")),
        ("s_address", col("s_address")), ("s_phone", col("s_phone")),
        ("total_revenue", col("total_revenue")),
    ])
    return Sort(projected, [(col("s_suppkey"), "asc")])


def q16():
    """Parts/supplier relationship: anti join against complained-about suppliers."""
    part = Select(Scan("part"),
                  and_all([
                      col("p_brand") != "Brand#45",
                      ~like(col("p_type"), "MEDIUM POLISHED%"),
                      in_list(col("p_size"), [49, 14, 23, 45, 19, 3, 36, 9]),
                  ]))
    joined = HashJoin(part, Scan("partsupp"), col("p_partkey"), col("ps_partkey"))
    complainers = Select(Scan("supplier"),
                         like(col("s_comment"), "%Customer%Complaints%"))
    clean = HashJoin(joined, complainers, col("ps_suppkey"), col("s_suppkey"),
                     kind="leftanti")
    grouped = Agg(clean,
                  group_keys=[("p_brand", col("p_brand")), ("p_type", col("p_type")),
                              ("p_size", col("p_size"))],
                  aggregates=[AggSpec("count_distinct", col("ps_suppkey"),
                                      "supplier_cnt")])
    return Sort(grouped, [(col("supplier_cnt"), "desc"), (col("p_brand"), "asc"),
                          (col("p_type"), "asc"), (col("p_size"), "asc")])


def q17():
    """Small-quantity-order revenue: average quantity per part as a decorrelated join."""
    part = Select(Scan("part"),
                  (col("p_brand") == "Brand#23") & (col("p_container") == "MED BOX"))
    joined = HashJoin(part, Scan("lineitem"), col("p_partkey"), col("l_partkey"))
    avg_qty = Agg(Scan("lineitem"),
                  group_keys=[("agg_partkey", col("l_partkey"))],
                  aggregates=[AggSpec("avg", col("l_quantity"), "avg_quantity")])
    with_avg = HashJoin(joined, avg_qty, col("l_partkey"), col("agg_partkey"))
    small = Select(with_avg, col("l_quantity") < lit(0.2) * col("avg_quantity"))
    total = Agg(small, [], [AggSpec("sum", col("l_extendedprice"), "total_price")])
    return Project(total, [("avg_yearly", col("total_price") / 7.0)])


def q18():
    """Large volume customers: orders whose line quantities sum above 300."""
    big_orders = Agg(Scan("lineitem"),
                     group_keys=[("agg_orderkey", col("l_orderkey"))],
                     aggregates=[AggSpec("sum", col("l_quantity"), "sum_qty")],
                     having=col("sum_qty") > 300.0)
    orders = HashJoin(Scan("orders"), big_orders, col("o_orderkey"), col("agg_orderkey"),
                      kind="leftsemi")
    joined = HashJoin(
        HashJoin(Scan("customer"), orders, col("c_custkey"), col("o_custkey")),
        Scan("lineitem"), col("o_orderkey"), col("l_orderkey"))
    grouped = Agg(
        joined,
        group_keys=[("c_name", col("c_name")), ("c_custkey", col("c_custkey")),
                    ("o_orderkey", col("o_orderkey")), ("o_orderdate", col("o_orderdate")),
                    ("o_totalprice", col("o_totalprice"))],
        aggregates=[AggSpec("sum", col("l_quantity"), "sum_quantity")])
    ordered = Sort(grouped, [(col("o_totalprice"), "desc"), (col("o_orderdate"), "asc")])
    return Limit(ordered, 100)
