"""TPC-H queries 7-12 as QPlan physical plans."""
from __future__ import annotations

from ...dsl.expr import and_all, case, col, date, in_list, like, lit, year
from ...dsl.qplan import Agg, AggSpec, HashJoin, Limit, Project, Scan, Select, Sort


def q7():
    """Volume shipping between FRANCE and GERMANY, by nation pair and year."""
    supplier_nation = Project(Scan("nation"),
                              [("supp_nation", col("n_name")),
                               ("supp_nationkey", col("n_nationkey"))])
    customer_nation = Project(Scan("nation"),
                              [("cust_nation", col("n_name")),
                               ("cust_nationkey", col("n_nationkey"))])
    lineitem = Select(Scan("lineitem"),
                      (col("l_shipdate") >= date("1995-01-01"))
                      & (col("l_shipdate") <= date("1996-12-31")))
    joined = HashJoin(
        HashJoin(
            HashJoin(
                HashJoin(Scan("supplier"), lineitem, col("s_suppkey"), col("l_suppkey")),
                Scan("orders"), col("l_orderkey"), col("o_orderkey")),
            Scan("customer"), col("o_custkey"), col("c_custkey")),
        supplier_nation, col("s_nationkey"), col("supp_nationkey"))
    joined = HashJoin(joined, customer_nation, col("c_nationkey"), col("cust_nationkey"))
    pair_filter = Select(
        joined,
        ((col("supp_nation") == "FRANCE") & (col("cust_nation") == "GERMANY"))
        | ((col("supp_nation") == "GERMANY") & (col("cust_nation") == "FRANCE")))
    grouped = Agg(
        pair_filter,
        group_keys=[("supp_nation", col("supp_nation")),
                    ("cust_nation", col("cust_nation")),
                    ("l_year", year(col("l_shipdate")))],
        aggregates=[AggSpec("sum", col("l_extendedprice") * (1 - col("l_discount")),
                            "revenue")])
    return Sort(grouped, [(col("supp_nation"), "asc"), (col("cust_nation"), "asc"),
                          (col("l_year"), "asc")])


def q8():
    """National market share of BRAZIL for ECONOMY ANODIZED STEEL in AMERICA."""
    part = Select(Scan("part"), col("p_type") == "ECONOMY ANODIZED STEEL")
    orders = Select(Scan("orders"),
                    (col("o_orderdate") >= date("1995-01-01"))
                    & (col("o_orderdate") <= date("1996-12-31")))
    customer_nation = Project(Scan("nation"),
                              [("cust_nationkey", col("n_nationkey")),
                               ("cust_regionkey", col("n_regionkey"))])
    supplier_nation = Project(Scan("nation"),
                              [("supp_nation", col("n_name")),
                               ("supp_nationkey", col("n_nationkey"))])
    joined = HashJoin(
        HashJoin(part, Scan("lineitem"), col("p_partkey"), col("l_partkey")),
        orders, col("l_orderkey"), col("o_orderkey"))
    joined = HashJoin(joined, Scan("customer"), col("o_custkey"), col("c_custkey"))
    joined = HashJoin(joined, customer_nation, col("c_nationkey"), col("cust_nationkey"))
    joined = HashJoin(joined,
                      Select(Scan("region"), col("r_name") == "AMERICA"),
                      col("cust_regionkey"), col("r_regionkey"))
    joined = HashJoin(joined, Scan("supplier"), col("l_suppkey"), col("s_suppkey"))
    joined = HashJoin(joined, supplier_nation, col("s_nationkey"), col("supp_nationkey"))
    volume = col("l_extendedprice") * (1 - col("l_discount"))
    brazil_volume = case([(col("supp_nation") == "BRAZIL", volume)], lit(0.0))
    grouped = Agg(joined,
                  group_keys=[("o_year", year(col("o_orderdate")))],
                  aggregates=[AggSpec("sum", brazil_volume, "brazil_volume"),
                              AggSpec("sum", volume, "total_volume")])
    shares = Project(grouped, [
        ("o_year", col("o_year")),
        ("mkt_share", col("brazil_volume") / col("total_volume")),
    ])
    return Sort(shares, [(col("o_year"), "asc")])


def q9():
    """Product type profit measure for parts containing 'green', by nation and year."""
    part = Select(Scan("part"), like(col("p_name"), "%green%"))
    joined = HashJoin(part, Scan("lineitem"), col("p_partkey"), col("l_partkey"))
    joined = HashJoin(joined, Scan("partsupp"), col("l_partkey"), col("ps_partkey"),
                      residual=col("l_suppkey") == col("ps_suppkey"))
    joined = HashJoin(joined, Scan("supplier"), col("l_suppkey"), col("s_suppkey"))
    joined = HashJoin(joined, Scan("orders"), col("l_orderkey"), col("o_orderkey"))
    joined = HashJoin(joined, Scan("nation"), col("s_nationkey"), col("n_nationkey"))
    profit = (col("l_extendedprice") * (1 - col("l_discount"))
              - col("ps_supplycost") * col("l_quantity"))
    grouped = Agg(joined,
                  group_keys=[("nation", col("n_name")),
                              ("o_year", year(col("o_orderdate")))],
                  aggregates=[AggSpec("sum", profit, "sum_profit")])
    return Sort(grouped, [(col("nation"), "asc"), (col("o_year"), "desc")])


def q10():
    """Returned item reporting: top 20 customers by lost revenue in 1993Q4."""
    orders = Select(Scan("orders"),
                    (col("o_orderdate") >= date("1993-10-01"))
                    & (col("o_orderdate") < date("1994-01-01")))
    returned = Select(Scan("lineitem"), col("l_returnflag") == "R")
    joined = HashJoin(
        HashJoin(
            HashJoin(Scan("customer"), orders, col("c_custkey"), col("o_custkey")),
            returned, col("o_orderkey"), col("l_orderkey")),
        Scan("nation"), col("c_nationkey"), col("n_nationkey"))
    grouped = Agg(
        joined,
        group_keys=[("c_custkey", col("c_custkey")), ("c_name", col("c_name")),
                    ("c_acctbal", col("c_acctbal")), ("c_phone", col("c_phone")),
                    ("n_name", col("n_name")), ("c_address", col("c_address")),
                    ("c_comment", col("c_comment"))],
        aggregates=[AggSpec("sum", col("l_extendedprice") * (1 - col("l_discount")),
                            "revenue")])
    ordered = Sort(grouped, [(col("revenue"), "desc")])
    return Limit(ordered, 20)


def q11():
    """Important stock identification in GERMANY (HAVING over a scalar subquery)."""
    def german_partsupp():
        return HashJoin(
            HashJoin(Scan("partsupp"), Scan("supplier"),
                     col("ps_suppkey"), col("s_suppkey")),
            Select(Scan("nation"), col("n_name") == "GERMANY"),
            col("s_nationkey"), col("n_nationkey"))

    value = col("ps_supplycost") * col("ps_availqty")
    per_part = Agg(german_partsupp(),
                   group_keys=[("ps_partkey", col("ps_partkey"))],
                   aggregates=[AggSpec("sum", value, "value")])
    total = Agg(german_partsupp(), [],
                [AggSpec("sum", value, "total_value")])
    threshold = Project(total, [("threshold", col("total_value") * 0.0001)])
    filtered = Select(
        HashJoin(per_part, threshold, lit(0), lit(0)),
        col("value") > col("threshold"))
    projected = Project(filtered, [("ps_partkey", col("ps_partkey")),
                                   ("value", col("value"))])
    return Sort(projected, [(col("value"), "desc")])


def q12():
    """Shipping modes and order priority for MAIL/SHIP lines received in 1994."""
    lineitem = Select(
        Scan("lineitem"),
        and_all([
            in_list(col("l_shipmode"), ["MAIL", "SHIP"]),
            col("l_commitdate") < col("l_receiptdate"),
            col("l_shipdate") < col("l_commitdate"),
            col("l_receiptdate") >= date("1994-01-01"),
            col("l_receiptdate") < date("1995-01-01"),
        ]))
    joined = HashJoin(Scan("orders"), lineitem, col("o_orderkey"), col("l_orderkey"))
    is_high = in_list(col("o_orderpriority"), ["1-URGENT", "2-HIGH"])
    grouped = Agg(
        joined,
        group_keys=[("l_shipmode", col("l_shipmode"))],
        aggregates=[
            AggSpec("sum", case([(is_high, lit(1))], lit(0)), "high_line_count"),
            AggSpec("sum", case([(is_high, lit(0))], lit(1)), "low_line_count"),
        ])
    return Sort(grouped, [(col("l_shipmode"), "asc")])
