"""Registry of the 22 TPC-H query plans.

``QUERIES`` maps query names (``"Q1"`` .. ``"Q22"``) to zero-argument
functions building the corresponding QPlan tree with the standard validation
parameter values of the TPC-H specification.
"""
from __future__ import annotations

from typing import Callable, Dict, List

from ...dsl.qplan import Operator
from . import q01_q06, q07_q12, q13_q18, q19_q22

QUERIES: Dict[str, Callable[[], Operator]] = {
    "Q1": q01_q06.q1, "Q2": q01_q06.q2, "Q3": q01_q06.q3, "Q4": q01_q06.q4,
    "Q5": q01_q06.q5, "Q6": q01_q06.q6,
    "Q7": q07_q12.q7, "Q8": q07_q12.q8, "Q9": q07_q12.q9, "Q10": q07_q12.q10,
    "Q11": q07_q12.q11, "Q12": q07_q12.q12,
    "Q13": q13_q18.q13, "Q14": q13_q18.q14, "Q15": q13_q18.q15, "Q16": q13_q18.q16,
    "Q17": q13_q18.q17, "Q18": q13_q18.q18,
    "Q19": q19_q22.q19, "Q20": q19_q22.q20, "Q21": q19_q22.q21, "Q22": q19_q22.q22,
}

QUERY_NAMES: List[str] = [f"Q{i}" for i in range(1, 23)]


def build_query(name: str) -> Operator:
    """Build the plan of one TPC-H query by name (``"Q1"`` .. ``"Q22"``)."""
    try:
        return QUERIES[name]()
    except KeyError:
        raise KeyError(f"unknown TPC-H query {name!r}; known: {QUERY_NAMES}") from None


def all_queries() -> Dict[str, Operator]:
    """Build every TPC-H query plan."""
    return {name: build_query(name) for name in QUERY_NAMES}
