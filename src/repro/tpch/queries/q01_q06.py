"""TPC-H queries 1-6 as QPlan physical plans.

Each query is a function returning an operator tree, written against the
validated substitution parameters of the TPC-H specification (the same
constants the paper's evaluation uses).  Correlated subqueries are
decorrelated by hand into joins against aggregated subplans, exactly as the
LegoBase/DBLAB query plans do.
"""
from __future__ import annotations

from ...dsl.expr import and_all, col, date, like
from ...dsl.qplan import (Agg, AggSpec, HashJoin, Limit, Project, Scan, Select, Sort)


def q1():
    """Pricing summary report: big scan + group by (returnflag, linestatus)."""
    lineitem = Select(Scan("lineitem"), col("l_shipdate") <= date("1998-09-02"))
    disc_price = col("l_extendedprice") * (1 - col("l_discount"))
    charge = disc_price * (1 + col("l_tax"))
    grouped = Agg(
        lineitem,
        group_keys=[("l_returnflag", col("l_returnflag")),
                    ("l_linestatus", col("l_linestatus"))],
        aggregates=[
            AggSpec("sum", col("l_quantity"), "sum_qty"),
            AggSpec("sum", col("l_extendedprice"), "sum_base_price"),
            AggSpec("sum", disc_price, "sum_disc_price"),
            AggSpec("sum", charge, "sum_charge"),
            AggSpec("avg", col("l_quantity"), "avg_qty"),
            AggSpec("avg", col("l_extendedprice"), "avg_price"),
            AggSpec("avg", col("l_discount"), "avg_disc"),
            AggSpec("count", None, "count_order"),
        ])
    return Sort(grouped, [(col("l_returnflag"), "asc"), (col("l_linestatus"), "asc")])


def q2():
    """Minimum-cost supplier: decorrelated min(ps_supplycost) per part in EUROPE."""
    def europe_supply(prefix_projection):
        joined = HashJoin(
            HashJoin(
                HashJoin(Scan("supplier"), Scan("nation"),
                         col("s_nationkey"), col("n_nationkey")),
                Select(Scan("region"), col("r_name") == "EUROPE"),
                col("n_regionkey"), col("r_regionkey")),
            Scan("partsupp"),
            col("s_suppkey"), col("ps_suppkey"))
        return joined

    min_cost = Agg(
        europe_supply(None),
        group_keys=[("mc_partkey", col("ps_partkey"))],
        aggregates=[AggSpec("min", col("ps_supplycost"), "min_supplycost")])

    part = Select(Scan("part"),
                  (col("p_size") == 15) & like(col("p_type"), "%BRASS"))
    main = HashJoin(part, europe_supply(None), col("p_partkey"), col("ps_partkey"))
    with_min = HashJoin(main, min_cost, col("p_partkey"), col("mc_partkey"))
    best = Select(with_min, col("ps_supplycost") == col("min_supplycost"))
    projected = Project(best, [
        ("s_acctbal", col("s_acctbal")), ("s_name", col("s_name")),
        ("n_name", col("n_name")), ("p_partkey", col("p_partkey")),
        ("p_mfgr", col("p_mfgr")), ("s_address", col("s_address")),
        ("s_phone", col("s_phone")), ("s_comment", col("s_comment")),
    ])
    ordered = Sort(projected, [(col("s_acctbal"), "desc"), (col("n_name"), "asc"),
                               (col("s_name"), "asc"), (col("p_partkey"), "asc")])
    return Limit(ordered, 100)


def q3():
    """Shipping priority: BUILDING customers, pre-1995-03-15 orders, late shipments."""
    customer = Select(Scan("customer"), col("c_mktsegment") == "BUILDING")
    orders = Select(Scan("orders"), col("o_orderdate") < date("1995-03-15"))
    lineitem = Select(Scan("lineitem"), col("l_shipdate") > date("1995-03-15"))
    joined = HashJoin(
        HashJoin(customer, orders, col("c_custkey"), col("o_custkey")),
        lineitem, col("o_orderkey"), col("l_orderkey"))
    grouped = Agg(
        joined,
        group_keys=[("l_orderkey", col("l_orderkey")),
                    ("o_orderdate", col("o_orderdate")),
                    ("o_shippriority", col("o_shippriority"))],
        aggregates=[AggSpec("sum", col("l_extendedprice") * (1 - col("l_discount")),
                            "revenue")])
    ordered = Sort(grouped, [(col("revenue"), "desc"), (col("o_orderdate"), "asc")])
    return Limit(ordered, 10)


def q4():
    """Order priority checking: EXISTS(lineitem received late) as a semi join."""
    orders = Select(Scan("orders"),
                    (col("o_orderdate") >= date("1993-07-01"))
                    & (col("o_orderdate") < date("1993-10-01")))
    late = Select(Scan("lineitem"), col("l_commitdate") < col("l_receiptdate"))
    with_late = HashJoin(orders, late, col("o_orderkey"), col("l_orderkey"),
                         kind="leftsemi")
    grouped = Agg(with_late,
                  group_keys=[("o_orderpriority", col("o_orderpriority"))],
                  aggregates=[AggSpec("count", None, "order_count")])
    return Sort(grouped, [(col("o_orderpriority"), "asc")])


def q5():
    """Local supplier volume in ASIA during 1994."""
    orders = Select(Scan("orders"),
                    (col("o_orderdate") >= date("1994-01-01"))
                    & (col("o_orderdate") < date("1995-01-01")))
    joined = HashJoin(
        HashJoin(
            HashJoin(
                HashJoin(Scan("customer"), orders, col("c_custkey"), col("o_custkey")),
                Scan("lineitem"), col("o_orderkey"), col("l_orderkey")),
            Scan("supplier"), col("l_suppkey"), col("s_suppkey"),
            residual=col("c_nationkey") == col("s_nationkey")),
        HashJoin(Scan("nation"),
                 Select(Scan("region"), col("r_name") == "ASIA"),
                 col("n_regionkey"), col("r_regionkey")),
        col("s_nationkey"), col("n_nationkey"))
    grouped = Agg(joined,
                  group_keys=[("n_name", col("n_name"))],
                  aggregates=[AggSpec("sum",
                                      col("l_extendedprice") * (1 - col("l_discount")),
                                      "revenue")])
    return Sort(grouped, [(col("revenue"), "desc")])


def q6():
    """Forecasting revenue change: a single selective scan with a global sum."""
    lineitem = Select(
        Scan("lineitem"),
        and_all([
            col("l_shipdate") >= date("1994-01-01"),
            col("l_shipdate") < date("1995-01-01"),
            col("l_discount") >= 0.05,
            col("l_discount") <= 0.07,
            col("l_quantity") < 24.0,
        ]))
    return Agg(lineitem, [], [AggSpec("sum", col("l_extendedprice") * col("l_discount"),
                                      "revenue")])
