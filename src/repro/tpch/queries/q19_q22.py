"""TPC-H queries 19-22 as QPlan physical plans."""
from __future__ import annotations

from ...dsl.expr import Col, and_all, col, date, in_list, like, lit, substr
from ...dsl.qplan import Agg, AggSpec, HashJoin, Limit, Project, Scan, Select, Sort


def q19():
    """Discounted revenue: disjunction of brand/container/quantity conditions."""
    lineitem = Select(Scan("lineitem"),
                      in_list(col("l_shipmode"), ["AIR", "AIR REG"])
                      & (col("l_shipinstruct") == "DELIVER IN PERSON"))
    joined = HashJoin(Scan("part"), lineitem, col("p_partkey"), col("l_partkey"))

    def branch(brand, containers, qty_lo, qty_hi, size_hi):
        return and_all([
            col("p_brand") == brand,
            in_list(col("p_container"), containers),
            col("l_quantity") >= float(qty_lo),
            col("l_quantity") <= float(qty_hi),
            col("p_size") >= 1,
            col("p_size") <= size_hi,
        ])

    predicate = (branch("Brand#12", ["SM CASE", "SM BOX", "SM PACK", "SM PKG"], 1, 11, 5)
                 | branch("Brand#23", ["MED BAG", "MED BOX", "MED PKG", "MED PACK"], 10, 20, 10)
                 | branch("Brand#34", ["LG CASE", "LG BOX", "LG PACK", "LG PKG"], 20, 30, 15))
    filtered = Select(joined, predicate)
    return Agg(filtered, [],
               [AggSpec("sum", col("l_extendedprice") * (1 - col("l_discount")),
                        "revenue")])


def q20():
    """Potential part promotion: CANADA suppliers with excess 'forest' part stock."""
    shipped_1994 = Select(Scan("lineitem"),
                          (col("l_shipdate") >= date("1994-01-01"))
                          & (col("l_shipdate") < date("1995-01-01")))
    shipped_qty = Agg(shipped_1994,
                      group_keys=[("q_partkey", col("l_partkey")),
                                  ("q_suppkey", col("l_suppkey"))],
                      aggregates=[AggSpec("sum", col("l_quantity"), "sum_qty")])
    forest_parts = Select(Scan("part"), like(col("p_name"), "forest%"))
    forest_partsupp = HashJoin(Scan("partsupp"), forest_parts,
                               col("ps_partkey"), col("p_partkey"), kind="leftsemi")
    with_qty = HashJoin(forest_partsupp, shipped_qty,
                        col("ps_partkey"), col("q_partkey"),
                        residual=col("ps_suppkey") == col("q_suppkey"))
    excess = Select(with_qty, col("ps_availqty") > lit(0.5) * col("sum_qty"))
    suppliers = HashJoin(Scan("supplier"), excess, col("s_suppkey"), col("ps_suppkey"),
                         kind="leftsemi")
    canadian = HashJoin(suppliers,
                        Select(Scan("nation"), col("n_name") == "CANADA"),
                        col("s_nationkey"), col("n_nationkey"))
    projected = Project(canadian, [("s_name", col("s_name")),
                                   ("s_address", col("s_address"))])
    return Sort(projected, [(col("s_name"), "asc")])


def q21():
    """Suppliers who kept orders waiting: EXISTS / NOT EXISTS over lineitem."""
    late = Select(Scan("lineitem"), col("l_receiptdate") > col("l_commitdate"))
    failed_orders = Select(Scan("orders"), col("o_orderstatus") == "F")
    base = HashJoin(failed_orders, late, col("o_orderkey"), col("l_orderkey"))
    base = HashJoin(base, Scan("supplier"), col("l_suppkey"), col("s_suppkey"))
    base = HashJoin(base, Select(Scan("nation"), col("n_name") == "SAUDI ARABIA"),
                    col("s_nationkey"), col("n_nationkey"))
    other_supplier = Scan("lineitem", fields=("l_orderkey", "l_suppkey"))
    with_other = HashJoin(base, other_supplier, col("o_orderkey"), col("l_orderkey"),
                          kind="leftsemi",
                          residual=Col("l_suppkey", "left") != Col("l_suppkey", "right"))
    other_late = Select(Scan("lineitem",
                             fields=("l_orderkey", "l_suppkey", "l_receiptdate",
                                     "l_commitdate")),
                        col("l_receiptdate") > col("l_commitdate"))
    only_blamed = HashJoin(with_other, other_late, col("o_orderkey"), col("l_orderkey"),
                           kind="leftanti",
                           residual=Col("l_suppkey", "left") != Col("l_suppkey", "right"))
    grouped = Agg(only_blamed,
                  group_keys=[("s_name", col("s_name"))],
                  aggregates=[AggSpec("count", None, "numwait")])
    ordered = Sort(grouped, [(col("numwait"), "desc"), (col("s_name"), "asc")])
    return Limit(ordered, 100)


def q22():
    """Global sales opportunity: inactive customers from selected country codes."""
    codes = ["13", "31", "23", "29", "30", "18", "17"]
    candidates = Select(Scan("customer"), in_list(substr(col("c_phone"), 1, 2), codes))
    positive = Select(candidates, col("c_acctbal") > 0.0)
    average = Agg(positive, [], [AggSpec("avg", col("c_acctbal"), "avg_acctbal")])
    with_avg = HashJoin(candidates, average, lit(0), lit(0))
    wealthy = Select(with_avg, col("c_acctbal") > col("avg_acctbal"))
    inactive = HashJoin(wealthy, Scan("orders", fields=("o_custkey",)),
                        col("c_custkey"), col("o_custkey"), kind="leftanti")
    projected = Project(inactive, [("cntrycode", substr(col("c_phone"), 1, 2)),
                                   ("c_acctbal", col("c_acctbal"))])
    grouped = Agg(projected,
                  group_keys=[("cntrycode", col("cntrycode"))],
                  aggregates=[AggSpec("count", None, "numcust"),
                              AggSpec("sum", col("c_acctbal"), "totacctbal")])
    return Sort(grouped, [(col("cntrycode"), "asc")])
