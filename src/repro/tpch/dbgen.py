"""Deterministic TPC-H-shaped data generator.

The paper evaluates on TPC-H data produced by the official ``dbgen`` tool,
which is not available offline.  This generator produces the same eight
relations with the same key structure (dense primary keys, consistent foreign
keys), the same column domains (dates in 1992-1998, the official enumerations
for priorities, ship modes, segments, brands, types and containers) and
keyword-bearing text columns so that every LIKE / substring predicate of the
22 queries selects a non-trivial fraction of rows.

Row counts scale linearly with the scale factor exactly as in TPC-H
(customer = 150k·SF, orders = 1.5M·SF, lineitem ≈ 4·orders, part = 200k·SF,
partsupp = 4·part, supplier = 10k·SF), so plan shapes and relative operator
costs mirror the original benchmark even though absolute values differ.
Generation is fully deterministic for a given ``(scale_factor, seed)``.
"""
from __future__ import annotations

import random
from typing import Dict, List

from .. import dates
from ..storage.catalog import Catalog
from ..storage.layouts import ColumnarTable
from .schema import tpch_schema

# ---------------------------------------------------------------------------
# Official TPC-H value domains.
# ---------------------------------------------------------------------------
REGIONS = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"]

NATIONS = [
    ("ALGERIA", 0), ("ARGENTINA", 1), ("BRAZIL", 1), ("CANADA", 1), ("EGYPT", 4),
    ("ETHIOPIA", 0), ("FRANCE", 3), ("GERMANY", 3), ("INDIA", 2), ("INDONESIA", 2),
    ("IRAN", 4), ("IRAQ", 4), ("JAPAN", 2), ("JORDAN", 4), ("KENYA", 0),
    ("MOROCCO", 0), ("MOZAMBIQUE", 0), ("PERU", 1), ("CHINA", 2), ("ROMANIA", 3),
    ("SAUDI ARABIA", 4), ("VIETNAM", 2), ("RUSSIA", 3), ("UNITED KINGDOM", 3),
    ("UNITED STATES", 1),
]

SEGMENTS = ["AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD"]
PRIORITIES = ["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"]
SHIP_MODES = ["REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"]
SHIP_INSTRUCTIONS = ["DELIVER IN PERSON", "COLLECT COD", "NONE", "TAKE BACK RETURN"]
TYPE_SYLLABLE_1 = ["STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO"]
TYPE_SYLLABLE_2 = ["ANODIZED", "BURNISHED", "PLATED", "POLISHED", "BRUSHED"]
TYPE_SYLLABLE_3 = ["TIN", "NICKEL", "BRASS", "STEEL", "COPPER"]
CONTAINER_SYLLABLE_1 = ["SM", "LG", "MED", "JUMBO", "WRAP"]
CONTAINER_SYLLABLE_2 = ["CASE", "BOX", "BAG", "JAR", "PKG", "PACK", "CAN", "DRUM"]
COLORS = ["almond", "antique", "aquamarine", "azure", "beige", "bisque", "black",
          "blanched", "blue", "blush", "brown", "burlywood", "burnished", "chartreuse",
          "chiffon", "chocolate", "coral", "cornflower", "cornsilk", "cream", "cyan",
          "dark", "deep", "dim", "dodger", "drab", "firebrick", "floral", "forest",
          "frosted", "gainsboro", "ghost", "goldenrod", "green", "grey", "honeydew",
          "hot", "hazel", "indian", "ivory", "khaki", "lace", "lavender", "lawn",
          "lemon", "light", "lime", "linen", "magenta", "maroon", "medium", "metallic",
          "midnight", "mint", "misty", "moccasin", "navajo", "navy", "olive", "orange",
          "orchid", "pale", "papaya", "peach", "peru", "pink", "plum", "powder",
          "puff", "purple", "red", "rose", "rosy", "royal", "saddle", "salmon",
          "sandy", "seashell", "sienna", "sky", "slate", "smoke", "snow", "spring",
          "steel", "tan", "thistle", "tomato", "turquoise", "violet", "wheat", "white",
          "yellow"]
NOUNS = ["packages", "requests", "accounts", "deposits", "foxes", "ideas",
         "theodolites", "instructions", "dependencies", "excuses", "platelets",
         "asymptotes", "courts", "dolphins", "multipliers", "sauternes", "warthogs",
         "frets", "dinos", "attainments", "somas", "pinto beans", "instructions"]
VERBS = ["sleep", "wake", "are", "cajole", "haggle", "nag", "use", "boost", "affix",
         "detect", "integrate", "maintain", "nod", "was", "lose", "sublate", "solve",
         "thrash", "promise", "engage", "hinder", "print", "doze", "run", "dazzle"]
ADJECTIVES = ["special", "pending", "unusual", "express", "furious", "sly", "careful",
              "blithe", "quick", "fluffy", "slow", "quiet", "ruthless", "thin", "close",
              "dogged", "daring", "brave", "stealthy", "permanent", "enticing", "idle",
              "busy", "regular", "final", "ironic", "even", "bold", "silent"]

START_DATE = dates.date_to_int("1992-01-01")
END_DATE = dates.date_to_int("1998-08-02")
_TOTAL_DAYS = 2405   # days between START_DATE and END_DATE

#: TPC-H base cardinalities at scale factor 1.
BASE_CARDINALITIES = {
    "supplier": 10_000,
    "part": 200_000,
    "customer": 150_000,
    "orders": 1_500_000,
    "partsupp_per_part": 4,
    "lineitems_per_order": (1, 7),
}


class TpchGenerator:
    """Generates a scaled, deterministic TPC-H-shaped catalog."""

    def __init__(self, scale_factor: float = 0.01, seed: int = 20160626) -> None:
        if scale_factor <= 0:
            raise ValueError("scale factor must be positive")
        self.scale_factor = scale_factor
        self.seed = seed
        self._rng = random.Random(seed)

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def generate(self) -> Catalog:
        """Generate all eight relations and return a loaded catalog."""
        catalog = Catalog(schema=tpch_schema())
        tables = {
            "region": self._gen_region(),
            "nation": self._gen_nation(),
        }
        tables["supplier"] = self._gen_supplier()
        tables["part"] = self._gen_part()
        tables["partsupp"] = self._gen_partsupp(tables["part"], tables["supplier"])
        tables["customer"] = self._gen_customer()
        tables["orders"], tables["lineitem"] = self._gen_orders_and_lineitems(
            tables["customer"], tables["part"], tables["supplier"], tables["partsupp"])
        for name in ("region", "nation", "supplier", "customer", "part",
                     "partsupp", "orders", "lineitem"):
            schema = catalog.schema.table(name)
            catalog.tables[name] = ColumnarTable(schema, tables[name])
            from ..storage.statistics import compute_table_statistics
            catalog.statistics.tables[name] = compute_table_statistics(catalog.tables[name])
        return catalog

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _count(self, table: str) -> int:
        return max(1, int(round(BASE_CARDINALITIES[table] * self.scale_factor)))

    def _random_date(self, lo: int = START_DATE, hi_days: int = _TOTAL_DAYS) -> int:
        return dates.add_days(lo, self._rng.randrange(0, hi_days + 1))

    def _text(self, min_words: int = 4, max_words: int = 10,
              inject: str = "", inject_probability: float = 0.0) -> str:
        rng = self._rng
        words = []
        for _ in range(rng.randint(min_words, max_words)):
            words.append(rng.choice([rng.choice(ADJECTIVES), rng.choice(NOUNS), rng.choice(VERBS)]))
        text = " ".join(words)
        if inject and rng.random() < inject_probability:
            position = rng.randint(0, len(words))
            words.insert(position, inject)
            text = " ".join(words)
        return text

    def _phone(self, nation_key: int) -> str:
        rng = self._rng
        country = 10 + nation_key
        return (f"{country}-{rng.randint(100, 999)}"
                f"-{rng.randint(100, 999)}-{rng.randint(1000, 9999)}")

    # ------------------------------------------------------------------
    # Table generators
    # ------------------------------------------------------------------
    def _gen_region(self) -> Dict[str, List]:
        return {
            "r_regionkey": list(range(len(REGIONS))),
            "r_name": list(REGIONS),
            "r_comment": [self._text() for _ in REGIONS],
        }

    def _gen_nation(self) -> Dict[str, List]:
        return {
            "n_nationkey": list(range(len(NATIONS))),
            "n_name": [name for name, _ in NATIONS],
            "n_regionkey": [region for _, region in NATIONS],
            "n_comment": [self._text() for _ in NATIONS],
        }

    def _gen_supplier(self) -> Dict[str, List]:
        rng = self._rng
        n = self._count("supplier")
        columns: Dict[str, List] = {name: [] for name in
                                    ("s_suppkey", "s_name", "s_address", "s_nationkey",
                                     "s_phone", "s_acctbal", "s_comment")}
        for key in range(1, n + 1):
            nation = rng.randrange(len(NATIONS))
            columns["s_suppkey"].append(key)
            columns["s_name"].append(f"Supplier#{key:09d}")
            columns["s_address"].append(self._text(2, 4))
            columns["s_nationkey"].append(nation)
            columns["s_phone"].append(self._phone(nation))
            columns["s_acctbal"].append(round(rng.uniform(-999.99, 9999.99), 2))
            # ~8% of suppliers carry the "Customer ... Complaints" marker used by Q16.
            comment = self._text(5, 10)
            if rng.random() < 0.08:
                comment = comment + " Customer " + rng.choice(ADJECTIVES) + " Complaints"
            columns["s_comment"].append(comment)
        return columns

    def _gen_part(self) -> Dict[str, List]:
        rng = self._rng
        n = self._count("part")
        columns: Dict[str, List] = {name: [] for name in
                                    ("p_partkey", "p_name", "p_mfgr", "p_brand", "p_type",
                                     "p_size", "p_container", "p_retailprice", "p_comment")}
        for key in range(1, n + 1):
            manufacturer = rng.randint(1, 5)
            brand = manufacturer * 10 + rng.randint(1, 5)
            name = " ".join(rng.sample(COLORS, 5))
            columns["p_partkey"].append(key)
            columns["p_name"].append(name)
            columns["p_mfgr"].append(f"Manufacturer#{manufacturer}")
            columns["p_brand"].append(f"Brand#{brand}")
            columns["p_type"].append(" ".join([rng.choice(TYPE_SYLLABLE_1),
                                               rng.choice(TYPE_SYLLABLE_2),
                                               rng.choice(TYPE_SYLLABLE_3)]))
            columns["p_size"].append(rng.randint(1, 50))
            columns["p_container"].append(" ".join([rng.choice(CONTAINER_SYLLABLE_1),
                                                    rng.choice(CONTAINER_SYLLABLE_2)]))
            columns["p_retailprice"].append(
                round(90000 + ((key // 10) % 20001) + 100 * (key % 1000), 2) / 100.0)
            columns["p_comment"].append(self._text(2, 5))
        return columns

    def _gen_partsupp(self, part: Dict[str, List], supplier: Dict[str, List]) -> Dict[str, List]:
        rng = self._rng
        n_supp = len(supplier["s_suppkey"])
        per_part = BASE_CARDINALITIES["partsupp_per_part"]
        columns: Dict[str, List] = {name: [] for name in
                                    ("ps_partkey", "ps_suppkey", "ps_availqty",
                                     "ps_supplycost", "ps_comment")}
        for partkey in part["p_partkey"]:
            suppliers = rng.sample(range(1, n_supp + 1), min(per_part, n_supp))
            for suppkey in suppliers:
                columns["ps_partkey"].append(partkey)
                columns["ps_suppkey"].append(suppkey)
                columns["ps_availqty"].append(rng.randint(1, 9999))
                columns["ps_supplycost"].append(round(rng.uniform(1.0, 1000.0), 2))
                columns["ps_comment"].append(self._text(5, 12))
        return columns

    def _gen_customer(self) -> Dict[str, List]:
        rng = self._rng
        n = self._count("customer")
        columns: Dict[str, List] = {name: [] for name in
                                    ("c_custkey", "c_name", "c_address", "c_nationkey",
                                     "c_phone", "c_acctbal", "c_mktsegment", "c_comment")}
        for key in range(1, n + 1):
            nation = rng.randrange(len(NATIONS))
            columns["c_custkey"].append(key)
            columns["c_name"].append(f"Customer#{key:09d}")
            columns["c_address"].append(self._text(2, 4))
            columns["c_nationkey"].append(nation)
            columns["c_phone"].append(self._phone(nation))
            columns["c_acctbal"].append(round(rng.uniform(-999.99, 9999.99), 2))
            columns["c_mktsegment"].append(rng.choice(SEGMENTS))
            # ~10% of customer-facing order comments carry "special ... requests" (Q13);
            # customer comments themselves just need plausible text.
            columns["c_comment"].append(self._text(6, 12))
        return columns

    def _gen_orders_and_lineitems(self, customer, part, supplier, partsupp):
        rng = self._rng
        n_orders = self._count("orders")
        n_customers = len(customer["c_custkey"])
        n_parts = len(part["p_partkey"])
        n_suppliers = len(supplier["s_suppkey"])
        retail_price = part["p_retailprice"]

        orders: Dict[str, List] = {name: [] for name in
                                   ("o_orderkey", "o_custkey", "o_orderstatus", "o_totalprice",
                                    "o_orderdate", "o_orderpriority", "o_clerk",
                                    "o_shippriority", "o_comment")}
        lineitem: Dict[str, List] = {name: [] for name in
                                     ("l_orderkey", "l_partkey", "l_suppkey", "l_linenumber",
                                      "l_quantity", "l_extendedprice", "l_discount", "l_tax",
                                      "l_returnflag", "l_linestatus", "l_shipdate",
                                      "l_commitdate", "l_receiptdate", "l_shipinstruct",
                                      "l_shipmode", "l_comment")}
        lo_lines, hi_lines = BASE_CARDINALITIES["lineitems_per_order"]
        cutoff = dates.date_to_int("1995-06-17")

        for orderkey in range(1, n_orders + 1):
            # As in official dbgen, one third of the customers never place an
            # order (keys divisible by three), which keeps Q13/Q22 meaningful.
            custkey = rng.randint(1, n_customers)
            while custkey % 3 == 0:
                custkey = rng.randint(1, n_customers)
            # order dates leave room for shipping within the 1992-1998 window
            orderdate = self._random_date(START_DATE, _TOTAL_DAYS - 151)
            n_lines = rng.randint(lo_lines, hi_lines)
            total_price = 0.0
            all_filled = True
            any_open = False
            for line_number in range(1, n_lines + 1):
                partkey = rng.randint(1, n_parts)
                suppkey = rng.randint(1, n_suppliers)
                quantity = float(rng.randint(1, 50))
                extended = round(quantity * retail_price[partkey - 1], 2)
                discount = rng.randint(0, 10) / 100.0
                tax = rng.randint(0, 8) / 100.0
                shipdate = dates.add_days(orderdate, rng.randint(1, 121))
                commitdate = dates.add_days(orderdate, rng.randint(30, 90))
                receiptdate = dates.add_days(shipdate, rng.randint(1, 30))
                if receiptdate > cutoff:
                    returnflag = "N"
                else:
                    returnflag = rng.choice(["R", "A"])
                if shipdate > cutoff:
                    linestatus = "O"
                    any_open = True
                else:
                    linestatus = "F"
                    all_filled = all_filled and True
                if linestatus == "O":
                    all_filled = False
                total_price += round(extended * (1 + tax) * (1 - discount), 2)
                lineitem["l_orderkey"].append(orderkey)
                lineitem["l_partkey"].append(partkey)
                lineitem["l_suppkey"].append(suppkey)
                lineitem["l_linenumber"].append(line_number)
                lineitem["l_quantity"].append(quantity)
                lineitem["l_extendedprice"].append(extended)
                lineitem["l_discount"].append(discount)
                lineitem["l_tax"].append(tax)
                lineitem["l_returnflag"].append(returnflag)
                lineitem["l_linestatus"].append(linestatus)
                lineitem["l_shipdate"].append(shipdate)
                lineitem["l_commitdate"].append(commitdate)
                lineitem["l_receiptdate"].append(receiptdate)
                lineitem["l_shipinstruct"].append(rng.choice(SHIP_INSTRUCTIONS))
                lineitem["l_shipmode"].append(rng.choice(SHIP_MODES))
                lineitem["l_comment"].append(self._text(3, 6))

            if all_filled and not any_open:
                status = "F"
            elif any_open and not all_filled:
                status = "O" if rng.random() < 0.7 else "P"
            else:
                status = "P"
            orders["o_orderkey"].append(orderkey)
            orders["o_custkey"].append(custkey)
            orders["o_orderstatus"].append(status)
            orders["o_totalprice"].append(round(total_price, 2))
            orders["o_orderdate"].append(orderdate)
            orders["o_orderpriority"].append(rng.choice(PRIORITIES))
            orders["o_clerk"].append(f"Clerk#{rng.randint(1, max(2, n_orders // 1000)):09d}")
            orders["o_shippriority"].append(0)
            orders["o_comment"].append(
                self._text(5, 10, inject="special packages requests", inject_probability=0.05))
        return orders, lineitem


def generate_catalog(scale_factor: float = 0.01, seed: int = 20160626) -> Catalog:
    """Convenience wrapper: ``TpchGenerator(scale_factor, seed).generate()``."""
    return TpchGenerator(scale_factor, seed).generate()
