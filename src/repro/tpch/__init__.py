"""The TPC-H workload substrate: schema, deterministic data generator and the 22 queries."""
from .dbgen import generate_catalog
from .schema import tpch_schema

__all__ = ["generate_catalog", "tpch_schema"]
