"""The logical rewrite rules of the plan optimizer.

Every rule preserves the query result *exactly* — same rows, same values
(including float accumulation order into aggregates) and same output order on
every engine — unless its docstring says otherwise.  Order preservation is
what allows the all-22-query parity suite to compare optimized against raw
plans with plain ``==`` on the result lists:

* **ConstantFolding** rewrites expressions only, value-identically.
* **PredicatePushdown** moves conjuncts to positions where the engines filter
  the same tuples earlier, in ways proven not to change the surviving-row
  order (see the per-case notes in the class docstring).
* **EquiJoinConversion** replaces an inner nested-loop join by a hash join
  whose build/probe orientation reproduces the nested loop's left-major
  emission order exactly.
* **TopKFusion** fuses ``Limit`` over ``Sort`` into the bounded-heap ``TopK``
  operator; heap selection is stable with input-order tie-breaking, so the
  fused plan returns exactly the rows (and order) of the sort-then-limit.
* **BuildSideSwap** (cost-based) *does* change intermediate row order: it
  preserves the result multiset but may perturb float aggregate sums in the
  last bits and tie order under top-level sorts.  It runs by default under
  the planner's order contract (see :mod:`repro.planner.ordering`); the
  ``join_strategy`` option turns it off for exact-order comparisons.
"""
from __future__ import annotations

from typing import List, Optional, Tuple

from ..dsl import expr as E
from ..dsl import qplan as Q
from .access_rules import index_eligible_build
from .cardinality import CardinalityEstimator
from .exprs import (classify_columns, conjoin, flip_sides, fold_constants,
                    is_literal_true, simplify_predicate, split_conjuncts,
                    strip_sides, substitute_columns)
from .rewrite import PlanRule, PlannerContext


class ConstantFolding(PlanRule):
    """Fold literal subexpressions in every operator of the plan.

    Shares semantics with the IR-level partial evaluation
    (:mod:`repro.transforms.partial_eval`): folds are value-identical, and a
    fold that would raise (``mod``/``div`` by a constant zero, overflow, type
    mismatch) is skipped rather than performed.  Predicate positions (Select,
    residuals, HAVING) additionally get truthiness-preserving boolean
    simplification; a predicate folded to literal ``True`` removes the Select
    (or residual) entirely.
    """

    name = "constant-folding"

    def apply(self, node: Q.Operator, context: PlannerContext) -> Optional[Q.Operator]:
        if isinstance(node, Q.Select):
            predicate = simplify_predicate(node.predicate)
            if is_literal_true(predicate):
                return node.child
            if predicate is not node.predicate:
                return Q.Select(node.child, predicate)
            return None
        if isinstance(node, Q.Project):
            projections = tuple((name, fold_constants(expr))
                                for name, expr in node.projections)
            if all(new is old for (_, new), (_, old)
                   in zip(projections, node.projections)):
                return None
            return Q.Project(node.child, projections)
        if isinstance(node, Q.HashJoin):
            left_key = fold_constants(node.left_key)
            right_key = fold_constants(node.right_key)
            residual = node.residual
            if residual is not None:
                residual = simplify_predicate(residual)
                if is_literal_true(residual):
                    residual = None
            if (left_key is node.left_key and right_key is node.right_key
                    and residual is node.residual):
                return None
            return Q.HashJoin(node.left, node.right, left_key, right_key,
                              node.kind, residual)
        if isinstance(node, Q.NestedLoopJoin):
            predicate = node.predicate
            if predicate is None:
                return None
            predicate = simplify_predicate(predicate)
            if is_literal_true(predicate):
                predicate = None
            if predicate is node.predicate:
                return None
            return Q.NestedLoopJoin(node.left, node.right, predicate, node.kind)
        if isinstance(node, Q.Agg):
            group_keys = tuple((name, fold_constants(expr))
                               for name, expr in node.group_keys)
            aggregates = tuple(
                spec if spec.expr is None
                else self._fold_agg(spec) for spec in node.aggregates)
            having = node.having
            if having is not None:
                having = simplify_predicate(having)
                if is_literal_true(having):
                    having = None
            unchanged = (having is node.having
                         and all(new is old for (_, new), (_, old)
                                 in zip(group_keys, node.group_keys))
                         and all(new is old for new, old
                                 in zip(aggregates, node.aggregates)))
            if unchanged:
                return None
            return Q.Agg(node.child, group_keys, aggregates, having)
        if isinstance(node, Q.Sort):
            keys = tuple((fold_constants(expr), order) for expr, order in node.keys)
            if all(new is old for (new, _), (old, _) in zip(keys, node.keys)):
                return None
            return Q.Sort(node.child, keys)
        return None

    @staticmethod
    def _fold_agg(spec: Q.AggSpec) -> Q.AggSpec:
        folded = fold_constants(spec.expr)
        return spec if folded is spec.expr else Q.AggSpec(spec.kind, folded, spec.name)


class PredicatePushdown(PlanRule):
    """Push filter conjuncts towards the scans (order-preservingly).

    The predicate of a ``Select`` is split into conjuncts and each conjunct
    is moved as far down as a case below allows; leftovers stay in a Select
    above.  Order-safety per case:

    * **Select/Select**: merged into one conjunction, inner predicate first —
      the same tuples survive in the same order.
    * **Select/Project**: column references are substituted by the projected
      expressions and the filter runs below — projection then filter equals
      filter (on the same values) then projection.
    * **Select/HashJoin (inner only)**: a one-sided conjunct filters that
      input before the join.  Inner-join emission is driven by the probe
      (right) rows with build matches in bucket order; filtering either input
      preserves the relative order of the surviving pairs.  A two-sided
      conjunct becomes part of the join's residual, which the engines
      evaluate per candidate pair with the same merged-row column resolution.
      Semi/anti/outer hash joins are skipped: their left-row emission order
      follows bucket (key-first-seen) order, which an upstream filter can
      permute.
    * **Select/NestedLoopJoin**: left-side conjuncts push down for every join
      kind (nested-loop emission is left-major on every engine); right-side
      and two-sided conjuncts push only for inner joins.
    * **Select/Agg**: a conjunct over group-key *names* filters whole groups,
      so it can run below the aggregation with the key names substituted by
      their expressions; surviving groups keep their contents, encounter
      order and float accumulation order.
    * **Select/Sort**: filtering commutes with a stable sort.
    * **Select/Limit**: never pushed (it would change which rows are kept).
    """

    name = "predicate-pushdown"

    def apply(self, node: Q.Operator, context: PlannerContext) -> Optional[Q.Operator]:
        if not isinstance(node, Q.Select):
            return None
        child = node.child
        if isinstance(child, Q.Select):
            merged = conjoin(split_conjuncts(child.predicate)
                             + split_conjuncts(node.predicate))
            return Q.Select(child.child, merged)
        if isinstance(child, Q.Project):
            mapping = {name: expr for name, expr in child.projections}
            pushed = substitute_columns(node.predicate, mapping)
            return Q.Project(Q.Select(child.child, pushed), child.projections)
        if isinstance(child, Q.HashJoin):
            return self._push_into_hash_join(node, child, context)
        if isinstance(child, Q.NestedLoopJoin):
            return self._push_into_nested_loop(node, child, context)
        if isinstance(child, Q.Agg):
            return self._push_into_agg(node, child)
        if isinstance(child, Q.Sort):
            return Q.Sort(Q.Select(child.child, node.predicate), child.keys)
        return None

    def _push_into_hash_join(self, node: Q.Select, join: Q.HashJoin,
                             context: PlannerContext) -> Optional[Q.Operator]:
        if join.kind != "inner":
            return None
        left_fields = context.fields_of(join.left)
        right_fields = context.fields_of(join.right)
        to_left: List[E.Expr] = []
        to_right: List[E.Expr] = []
        to_residual: List[E.Expr] = []
        keep: List[E.Expr] = []
        for conjunct in split_conjuncts(node.predicate):
            side = classify_columns(conjunct, left_fields, right_fields)
            if side == "left":
                to_left.append(strip_sides(conjunct))
            elif side == "right":
                to_right.append(strip_sides(conjunct))
            elif side == "both":
                to_residual.append(conjunct)
            else:
                keep.append(conjunct)
        if not (to_left or to_right or to_residual):
            return None
        new_left = Q.Select(join.left, conjoin(to_left)) if to_left else join.left
        new_right = Q.Select(join.right, conjoin(to_right)) if to_right else join.right
        residual = join.residual
        if to_residual:
            existing = split_conjuncts(residual) if residual is not None else []
            residual = conjoin(existing + to_residual)
        rebuilt = Q.HashJoin(new_left, new_right, join.left_key, join.right_key,
                             join.kind, residual)
        leftover = conjoin(keep)
        return rebuilt if leftover is None else Q.Select(rebuilt, leftover)

    def _push_into_nested_loop(self, node: Q.Select, join: Q.NestedLoopJoin,
                               context: PlannerContext) -> Optional[Q.Operator]:
        left_fields = context.fields_of(join.left)
        # A filter above a semi/anti join only sees the left fields — even a
        # name that also exists on the right refers to the left input there.
        right_fields: List[str] = [] if join.kind in ("leftsemi", "leftanti") \
            else context.fields_of(join.right)
        inner = join.kind == "inner"
        to_left: List[E.Expr] = []
        to_right: List[E.Expr] = []
        to_predicate: List[E.Expr] = []
        keep: List[E.Expr] = []
        for conjunct in split_conjuncts(node.predicate):
            side = classify_columns(conjunct, left_fields, right_fields)
            if side == "left":
                to_left.append(strip_sides(conjunct))
            elif side == "right" and inner:
                to_right.append(strip_sides(conjunct))
            elif side == "both" and inner:
                to_predicate.append(conjunct)
            else:
                keep.append(conjunct)
        if not (to_left or to_right or to_predicate):
            return None
        new_left = Q.Select(join.left, conjoin(to_left)) if to_left else join.left
        new_right = Q.Select(join.right, conjoin(to_right)) if to_right else join.right
        predicate = join.predicate
        if to_predicate:
            existing = split_conjuncts(predicate) if predicate is not None else []
            predicate = conjoin(existing + to_predicate)
        rebuilt = Q.NestedLoopJoin(new_left, new_right, predicate, join.kind)
        leftover = conjoin(keep)
        return rebuilt if leftover is None else Q.Select(rebuilt, leftover)

    def _push_into_agg(self, node: Q.Select, agg: Q.Agg) -> Optional[Q.Operator]:
        key_names = {name for name, _ in agg.group_keys}
        mapping = {name: expr for name, expr in agg.group_keys}
        pushed: List[E.Expr] = []
        keep: List[E.Expr] = []
        for conjunct in split_conjuncts(node.predicate):
            columns = E.columns_used_with_sides(conjunct)
            if columns and all(side is None and name in key_names
                               for name, side in columns):
                pushed.append(substitute_columns(conjunct, mapping))
            else:
                keep.append(conjunct)
        if not pushed:
            return None
        new_child = Q.Select(agg.child, conjoin(pushed))
        rebuilt = Q.Agg(new_child, agg.group_keys, agg.aggregates, agg.having)
        leftover = conjoin(keep)
        return rebuilt if leftover is None else Q.Select(rebuilt, leftover)


class EquiJoinConversion(PlanRule):
    """Turn an inner nested-loop join with an equi conjunct into a hash join.

    The nested loop emits pairs left-major: for every left row, every
    matching right row in right order.  The replacement therefore *builds* on
    the nested loop's right input and *probes* with its left input — probe
    (= original left) rows drive emission and bucket lists hold right rows in
    input order, reproducing the nested loop's pair order exactly.  Remaining
    conjuncts become the hash join's residual with their side annotations
    flipped to match the swapped inputs.
    """

    name = "equi-join-conversion"

    def apply(self, node: Q.Operator, context: PlannerContext) -> Optional[Q.Operator]:
        if not isinstance(node, Q.NestedLoopJoin):
            return None
        if node.kind != "inner" or node.predicate is None:
            return None
        left_fields = context.fields_of(node.left)
        right_fields = context.fields_of(node.right)
        conjuncts = split_conjuncts(node.predicate)
        chosen: Optional[Tuple[int, E.Expr, E.Expr]] = None
        for index, conjunct in enumerate(conjuncts):
            if not isinstance(conjunct, E.BinOp) or conjunct.op != "==":
                continue
            lhs_side = classify_columns(conjunct.left, left_fields, right_fields)
            rhs_side = classify_columns(conjunct.right, left_fields, right_fields)
            if {lhs_side, rhs_side} == {"left", "right"}:
                probe_expr, build_expr = (conjunct.left, conjunct.right) \
                    if lhs_side == "left" else (conjunct.right, conjunct.left)
                chosen = (index, strip_sides(probe_expr), strip_sides(build_expr))
                break
        if chosen is None:
            return None
        index, probe_key, build_key = chosen
        rest = [flip_sides(c) for i, c in enumerate(conjuncts) if i != index]
        return Q.HashJoin(node.right, node.left, build_key, probe_key,
                          "inner", conjoin(rest))


class TopKFusion(PlanRule):
    """Fuse ``Limit(Sort(x))`` into the bounded-heap ``TopK`` operator.

    The engines execute ``TopK`` with :func:`heapq.nsmallest` over composite
    encoded keys (:mod:`repro.engine.sortkeys`): O(n log k) instead of a full
    O(n log n) sort, and the sorted prefix is the only thing ever gathered.
    Heap selection breaks ties by input position, exactly like the engines'
    stable multi-pass sorts, so the rewrite is value- **and order-**
    preserving and belongs to the default (exact-parity) rule set.

    ``Limit`` over an existing ``TopK`` tightens (or drops into) the fused
    operator, so stacked limits converge to a single bounded heap.
    """

    name = "topk-fusion"

    def apply(self, node: Q.Operator, context: PlannerContext) -> Optional[Q.Operator]:
        if not isinstance(node, Q.Limit):
            return None
        child = node.child
        if isinstance(child, Q.Sort):
            return Q.TopK(child.child, child.keys, max(0, node.count))
        if isinstance(child, Q.TopK):
            if node.count >= child.count:
                return child
            return Q.TopK(child.child, child.keys, max(0, node.count))
        if isinstance(child, Q.Limit):
            return Q.Limit(child.child, max(0, min(node.count, child.count)))
        return None


class BuildSideSwap(PlanRule):
    """Cost-based build-side selection for inner hash joins.

    Hash joins build on their left input; when statistics say the left input
    is substantially larger than the right one, swapping the inputs (and the
    keys, and the residual's side annotations) builds the smaller hash table
    and streams the larger input through the probe.  The result *multiset*
    is identical but row order changes from probe-major over the old right
    to probe-major over the old left — the relaxation the order contract
    permits.  The rule runs by default; ``PlannerOptions.exact_order()``
    (``join_strategy=False``) disables it.
    """

    name = "build-side-swap"

    #: only swap when the build side is at least this much bigger than the
    #: probe side — hysteresis that also guarantees the rule cannot fire
    #: again on its own output.
    threshold = 1.5

    def __init__(self, estimator: CardinalityEstimator) -> None:
        self.estimator = estimator

    def apply(self, node: Q.Operator, context: PlannerContext) -> Optional[Q.Operator]:
        if not isinstance(node, Q.HashJoin) or node.kind != "inner":
            return None
        if isinstance(node, Q.IndexJoin):
            return None
        # An index-eligible build side costs nothing to build (the access
        # layer holds its key index across queries), so size-based swapping
        # would only destroy the cheaper plan the access-path rules select.
        options = context.options
        if (options is None or getattr(options, "access_paths", True)) and \
                index_eligible_build(node, context.catalog,
                                     self.estimator) is not None:
            return None
        build = self.estimator.estimate_rows(node.left)
        probe = self.estimator.estimate_rows(node.right)
        if build <= probe * self.threshold:
            return None
        residual = flip_sides(node.residual) if node.residual is not None else None
        return Q.HashJoin(node.right, node.left, node.right_key, node.left_key,
                          node.kind, residual)
